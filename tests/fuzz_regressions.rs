//! Shrinker-minimized regressions from local `lc-fuzz` runs, plus the
//! meta-properties the fuzzer itself relies on.
//!
//! Each `fuzz_regression_*` test was emitted by the shrinker
//! (`lc-fuzz` writes a ready-to-paste snippet into `findings/` next to
//! the human-readable report) after a local sweep, then kept here
//! forever so the bug stays fixed. To reproduce a CI finding locally:
//!
//! ```text
//! cargo run --release -p lc-fuzz -- --seed <seed from the CI log> \
//!     --cases <failing case + 1> --out findings/
//! ```

use lc_fuzz::gen::{self, GenConfig};
use lc_fuzz::oracle::run_case;
use lc_fuzz::rng::Rng;
use lc_fuzz::shrink::shrink_with;
use lc_ir::parser::parse_program;
use lc_ir::printer::print_program;

/// Found by `lc-fuzz --seed 0xC0A1E5CE` (case 37) during the first
/// 100k-case local sweep: with strength reduction on, two identical
/// compiles could emit differently-numbered `rc_*` temporaries because
/// `intern_shared_divisions` resolved equal-profit ties by HashMap
/// iteration order. Minimized by the shrinker from a rank-3 nest; the
/// two `ceildiv` recovery terms of the empty coalesced band tie exactly.
#[test]
fn fuzz_regression_seed_c0a1e5ce_case_37() {
    let src = r#"
array R[7];
array W[3][2][3];
doall i = 1..1 {
    doall j = 2..3 {
        doall k = (-1)..0 {
        }
    }
}
"#;
    let coalesce = lc_xform::coalesce::CoalesceOptions::builder()
        .scheme(lc_xform::recovery::RecoveryScheme::Ceiling)
        .check_legality(true)
        .levels_opt(None)
        .auto_normalize(true)
        .strength_reduce(true)
        .build();
    let options = lc_driver::DriverOptions {
        coalesce,
        enable_perfection: false,
        enable_interchange: true,
        validate: false,
        advise: None,
        pass_order: None,
        validate_each_pass: false,
        lints: lc_lint::LintSet::all_allow(),
    };
    let divergence = lc_fuzz::oracle::check_source(
        src,
        &["coalesce", "normalize", "perfect", "interchange"],
        &options,
        0xdfe42d8be2cd69a8,
        true,
    );
    assert!(divergence.is_none(), "{divergence:?}");
}

/// The CI seed must stay clean: the exact configuration the push-gate
/// fuzz job runs, compressed to a smoke-sized prefix.
#[test]
fn ci_seed_prefix_is_clean() {
    let root = Rng::new(0xC0A1E5CE);
    let cfg = GenConfig::default();
    for case in 0..50 {
        let outcome = run_case(&root, case, &cfg);
        assert!(
            outcome.result.divergence.is_none(),
            "case {case} diverged: {:?}\n{}",
            outcome.result.divergence,
            outcome.source
        );
    }
}

/// Generator determinism is what makes every CI failure reproducible
/// from just the logged seed — same seed, same byte-identical programs.
#[test]
fn generator_is_deterministic_across_runs() {
    let cfg = GenConfig::default();
    for seed in [0u64, 0xC0A1E5CE, u64::MAX] {
        let a = gen::generate(&mut Rng::new(seed), &cfg);
        let b = gen::generate(&mut Rng::new(seed), &cfg);
        assert_eq!(
            print_program(&a.program),
            print_program(&b.program),
            "seed {seed:#x}"
        );
        assert_eq!(a.interp_cost, b.interp_cost);
    }
}

/// The shrinker must converge (bounded steps) and actually shrink: a
/// predicate needing only one deep write leaves nothing else behind.
#[test]
fn shrinker_converges_and_minimizes() {
    let p = parse_program(
        "
        array W[6][6];
        array R[4];
        extra = 5;
        doall i = 1..6 {
            doall j = 1..6 {
                W[i][j] = R[2] + extra;
                W[i][j] = 1;
            }
        }
        ",
    )
    .unwrap();
    let writes_w = |p: &lc_ir::program::Program| print_program(p).contains("W[");
    let (small, steps) = shrink_with(&p, writes_w);
    assert!(steps > 0, "nothing was shrunk");
    assert!(steps < lc_fuzz::shrink::MAX_SHRINK_STEPS);
    let text = print_program(&small);
    assert!(writes_w(&small));
    // Loops and the unrelated scalar are gone; a bare W write remains.
    assert!(!text.contains("doall"), "{text}");
    assert!(!text.contains("extra"), "{text}");
}
