//! Soundness of the static dependence analyzer against dynamic ground
//! truth: run randomly generated nests under the tracing interpreter,
//! reconstruct every *actual* cross-iteration conflict from the access
//! trace, and require the static analyzer to have predicted a dependence
//! carried at that level. (The analyzer may over-approximate — extra
//! dependences are fine — but it must never miss a real one: a miss would
//! let the coalescer parallelize a racy loop.)

use std::collections::HashMap;

use proptest::prelude::*;

use loop_coalescing::ir::analysis::depend::analyze_nest;
use loop_coalescing::ir::analysis::nest::extract_nest;
use loop_coalescing::ir::interp::{AccessKind, Interp, Store};
use loop_coalescing::ir::program::Program;
use loop_coalescing::ir::stmt::{Loop, LoopKind, Stmt};
use loop_coalescing::ir::{Expr, Symbol};

/// A generated nest whose subscripts are offset affine forms — rich
/// enough to create real carried dependences in both directions.
#[derive(Debug, Clone)]
struct Spec {
    dims: Vec<u64>,
    /// (write_offsets, read_offsets, read_same_array): subscript k of the
    /// write is `i_k + write_offsets[k]`, similarly for the read.
    write_off: Vec<i64>,
    read_off: Vec<i64>,
    read_same: bool,
    /// Whether subscripts swap the index order (i.e. A[i_2][i_1]) for
    /// depth-2 writes, creating transposed conflicts.
    transpose_read: bool,
}

fn spec() -> impl Strategy<Value = Spec> {
    (1usize..=2)
        .prop_flat_map(|depth| {
            (
                proptest::collection::vec(2u64..=4, depth),
                proptest::collection::vec(-2i64..=2, depth),
                proptest::collection::vec(-2i64..=2, depth),
                proptest::bool::ANY,
                proptest::bool::ANY,
            )
        })
        .prop_map(
            |(dims, write_off, read_off, read_same, transpose_read)| Spec {
                dims,
                write_off,
                read_off,
                read_same,
                transpose_read,
            },
        )
}

/// Build the program: `A[iv + w] = B-or-A[iv + r] + 1` inside the nest.
/// Subscripts are shifted by +3 so every offset stays in bounds.
fn build(s: &Spec) -> Program {
    let depth = s.dims.len();
    // Uniform extents sized for the largest dimension so transposed
    // subscripts stay in bounds too.
    let max_dim = *s.dims.iter().max().unwrap() as usize;
    let ext: Vec<usize> = vec![max_dim + 6; depth];
    let vars: Vec<Symbol> = (0..depth).map(|k| Symbol::new(format!("i{k}"))).collect();

    let sub = |offsets: &[i64], transpose: bool| -> Vec<Expr> {
        let mut subs: Vec<Expr> = offsets
            .iter()
            .zip(&vars)
            .map(|(&off, v)| Expr::Var(v.clone()) + Expr::lit(off + 3))
            .collect();
        if transpose && subs.len() == 2 {
            subs.swap(0, 1);
        }
        subs
    };

    let read_array = if s.read_same { "A" } else { "B" };
    let body = vec![Stmt::AssignArray {
        target: lc_ir::expr::ArrayRef::new("A", sub(&s.write_off, false)),
        value: Expr::read(read_array, sub(&s.read_off, s.transpose_read)) + Expr::lit(1),
    }];

    let mut stmts = body;
    for k in (0..depth).rev() {
        stmts = vec![Stmt::Loop(Loop::new(
            LoopKind::Serial,
            vars[k].clone(),
            1,
            s.dims[k] as i64,
            stmts,
        ))];
    }
    let mut p = Program::new().with_array("A", ext.clone());
    if !s.read_same {
        p = p.with_array("B", ext);
    }
    p.body = stmts;
    p
}

/// Extract the dynamic carried-conflict levels from a traced run: for
/// every pair of accesses to the same cell (≥ one write) from different
/// iterations, record the first level where their index vectors differ.
fn dynamic_carried_levels(p: &Program, depth: usize) -> Vec<usize> {
    let store = Store::for_program(p);
    let (_, stats) = Interp::new().with_trace().run_on(p, store).unwrap();
    // Group accesses by (array, flat cell).
    type CellAccesses = Vec<(Vec<i64>, AccessKind)>;
    let mut cells: HashMap<(String, usize), CellAccesses> = HashMap::new();
    for a in &stats.trace {
        let iv: Vec<i64> = a.iteration.iter().take(depth).map(|(_, v)| *v).collect();
        cells
            .entry((a.array.to_string(), a.flat))
            .or_default()
            .push((iv, a.kind));
    }
    let mut levels = Vec::new();
    for accesses in cells.values() {
        for x in 0..accesses.len() {
            for y in (x + 1)..accesses.len() {
                let (iva, ka) = &accesses[x];
                let (ivb, kb) = &accesses[y];
                if *ka == AccessKind::Read && *kb == AccessKind::Read {
                    continue;
                }
                if let Some(level) = iva.iter().zip(ivb).position(|(a, b)| a != b) {
                    levels.push(level);
                }
            }
        }
    }
    levels.sort_unstable();
    levels.dedup();
    levels
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn static_analysis_covers_every_dynamic_conflict(s in spec()) {
        let p = build(&s);
        p.check().unwrap();
        let Stmt::Loop(l) = &p.body[0] else { unreachable!() };
        let nest = extract_nest(l);
        let deps = analyze_nest(&nest).unwrap();

        let dynamic = dynamic_carried_levels(&p, s.dims.len());
        for level in dynamic {
            prop_assert!(
                deps.carried_at(level),
                "analyzer missed a real conflict carried at level {level}\n\
                 spec: {s:?}\ndeps: {deps:?}"
            );
        }
    }

    #[test]
    fn fully_parallel_verdicts_are_dynamically_conflict_free(s in spec()) {
        // The contrapositive, which is what the coalescer relies on: if
        // the analyzer says "no carried dependence anywhere", the trace
        // must contain no cross-iteration conflict at all.
        let p = build(&s);
        let Stmt::Loop(l) = &p.body[0] else { unreachable!() };
        let deps = analyze_nest(&extract_nest(l)).unwrap();
        if deps.fully_parallel() {
            let dynamic = dynamic_carried_levels(&p, s.dims.len());
            prop_assert!(
                dynamic.is_empty(),
                "analyzer said parallel but conflicts exist at levels {dynamic:?}\nspec: {s:?}"
            );
        }
    }
}
