//! Integration: every workload kernel coalesces legally and the
//! transformed program is equivalent to the original under multiple seeds
//! and doall orders.

use loop_coalescing::ir::Stmt;
use loop_coalescing::workloads::kernels;
use loop_coalescing::xform::coalesce::{coalesce_loop, CoalesceOptions};
use loop_coalescing::xform::validate::{check_equivalent, check_order_independent};

fn coalesce_kernel(kernel: &kernels::Kernel) -> loop_coalescing::ir::Program {
    let opts = CoalesceOptions::builder().levels_opt(kernel.band).build();
    let result = coalesce_loop(kernel.target_loop(), &opts)
        .unwrap_or_else(|e| panic!("kernel `{}` failed to coalesce: {e}", kernel.name));
    assert_eq!(
        result.info.dims, kernel.dims,
        "kernel `{}` coalesced unexpected dims",
        kernel.name
    );
    let mut transformed = kernel.program.clone();
    transformed.body[kernel.loop_index] = Stmt::Loop(result.transformed);
    transformed
}

#[test]
fn all_kernels_coalesce_and_stay_equivalent() {
    for kernel in kernels::all_small() {
        let transformed = coalesce_kernel(&kernel);
        for seed in [1u64, 77, 4242] {
            check_equivalent(&kernel.program, &transformed, seed)
                .unwrap_or_else(|e| panic!("kernel `{}`: {e}", kernel.name));
        }
    }
}

#[test]
fn coalesced_kernels_are_order_independent() {
    for kernel in kernels::all_small() {
        let transformed = coalesce_kernel(&kernel);
        check_order_independent(&transformed, 9)
            .unwrap_or_else(|e| panic!("kernel `{}`: {e}", kernel.name));
    }
}

#[test]
fn divmod_scheme_agrees_with_ceiling_scheme_on_kernels() {
    use loop_coalescing::ir::interp::Interp;
    use loop_coalescing::xform::recovery::RecoveryScheme;
    for kernel in kernels::all_small() {
        let mut outputs = Vec::new();
        for scheme in [RecoveryScheme::Ceiling, RecoveryScheme::DivMod] {
            let opts = CoalesceOptions::builder()
                .levels_opt(kernel.band)
                .scheme(scheme)
                .build();
            let result = coalesce_loop(kernel.target_loop(), &opts).unwrap();
            let mut transformed = kernel.program.clone();
            transformed.body[kernel.loop_index] = Stmt::Loop(result.transformed);
            outputs.push(Interp::new().run(&transformed).unwrap());
        }
        assert_eq!(outputs[0], outputs[1], "kernel `{}`", kernel.name);
    }
}

#[test]
fn matmul_partial_bands_all_work() {
    // For the (i, j) matmul nest, coalescing (0,1), (1,2) and (0,2) must
    // all be legal and equivalent.
    let kernel = kernels::matmul(5, 4, 3);
    for band in [(0usize, 1usize), (1, 2), (0, 2)] {
        let opts = CoalesceOptions::builder().levels(band.0, band.1).build();
        let result = coalesce_loop(kernel.target_loop(), &opts)
            .unwrap_or_else(|e| panic!("band {band:?}: {e}"));
        let mut transformed = kernel.program.clone();
        transformed.body[kernel.loop_index] = Stmt::Loop(result.transformed);
        check_equivalent(&kernel.program, &transformed, 5)
            .unwrap_or_else(|e| panic!("band {band:?}: {e}"));
    }
}

#[test]
fn printed_kernels_roundtrip_through_the_source_pipeline() {
    use loop_coalescing::coalesce_source;
    use loop_coalescing::ir::printer::print_program;
    for kernel in kernels::all_small() {
        let src = print_program(&kernel.program);
        let out = coalesce_source(&src)
            .unwrap_or_else(|e| panic!("kernel `{}` source pipeline: {e}", kernel.name));
        assert!(
            !out.coalesced.is_empty(),
            "kernel `{}`: nothing was coalesced",
            kernel.name
        );
    }
}
