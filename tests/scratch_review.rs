//! Scratch test (review only): certificate soundness for a read that
//! precedes a doall inside a repeating serial loop body.

use lc_ir::interp::{DoallOrder, Interp, Store};
use lc_ir::parser::parse_program;

#[test]
fn certificate_vs_interpreter_on_loop_carried_escape() {
    let src = "
        array A[8];
        array B[8];
        s = 0;
        for t = 1..3 {
            B[t] = s;
            doall i = 1..8 {
                s = i;
                A[i] = 0;
            }
        }
    ";
    let p = parse_program(src).unwrap();
    let certified = lc_lint::certifies_order_independent(&p);

    let base = Store::for_program(&p);
    let run = |order: DoallOrder| {
        Interp::new()
            .with_order(order)
            .run_on(&p, base.clone())
            .map(|(store, _)| store.digest())
    };
    let forward = run(DoallOrder::Forward).unwrap();
    let reverse = run(DoallOrder::Reverse).unwrap();

    eprintln!("certified={certified} forward={forward:#x} reverse={reverse:#x}");
    assert!(
        !(certified && forward != reverse),
        "UNSOUND: certified order-independent but digests differ"
    );
}
