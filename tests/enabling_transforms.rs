//! Integration: the enabling transformations (distribution, perfection,
//! fusion, interchange) compose with coalescing into full pipelines.

use loop_coalescing::ir::analysis::nest::extract_nest;
use loop_coalescing::ir::interp::{DoallOrder, Interp};
use loop_coalescing::ir::parser::parse_program;
use loop_coalescing::ir::program::Program;
use loop_coalescing::ir::stmt::{Loop, Stmt};
use loop_coalescing::xform::coalesce::{coalesce_loop, CoalesceOptions};
use loop_coalescing::xform::distribute::distribute;
use loop_coalescing::xform::fuse::fuse;
use loop_coalescing::xform::interchange::interchange;
use loop_coalescing::xform::perfect::perfect_one_level;

fn loop_at(p: &Program, idx: usize) -> Loop {
    match &p.body[idx] {
        Stmt::Loop(l) => l.clone(),
        other => panic!("expected loop at {idx}: {other:?}"),
    }
}

fn run_all_orders(p: &Program) -> lc_ir::interp::Store {
    let fwd = Interp::new().run(p).unwrap();
    for order in [DoallOrder::Reverse, DoallOrder::Shuffled(77)] {
        let other = Interp::new().with_order(order).run(p).unwrap();
        assert_eq!(fwd, other, "program is doall-order dependent");
    }
    fwd
}

#[test]
fn distribute_then_coalesce_pipeline() {
    // An imperfect nest: prologue + a 2-deep inner nest. Distribution
    // peels the prologue into its own loop; the rest coalesces to depth 2.
    let src = "
        array D[10];
        array M[10][12];
        doall i = 1..10 {
            D[i] = i * i - 3;
            doall j = 1..12 {
                M[i][j] = i * 100 + j;
            }
        }
    ";
    let p = parse_program(src).unwrap();
    let original = Interp::new().run(&p).unwrap();

    let pieces = distribute(&loop_at(&p, 0)).unwrap();
    assert_eq!(pieces.len(), 2);

    // Coalesce each piece as deep as it goes.
    let mut p2 = p.clone();
    p2.body.clear();
    for piece in &pieces {
        let out = coalesce_loop(piece, &CoalesceOptions::default()).unwrap();
        p2.body.push(Stmt::Loop(out.transformed));
    }
    let transformed = run_all_orders(&p2);
    assert_eq!(original, transformed);

    // And the M piece really did become a 120-iteration single loop.
    let nest = extract_nest(&loop_at(&p2, 1));
    assert_eq!(nest.loops[0].const_trip_count(), Some(120));
}

#[test]
fn perfect_then_coalesce_pipeline() {
    // Same shape, via perfection instead: guards keep everything in one
    // loop, which then coalesces whole (guards and all).
    let src = "
        array D[10];
        array M[10][12];
        doall i = 1..10 {
            D[i] = i * i - 3;
            doall j = 1..12 {
                M[i][j] = i * 100 + j;
            }
        }
    ";
    let p = parse_program(src).unwrap();
    let original = Interp::new().run(&p).unwrap();

    let perfected = perfect_one_level(&loop_at(&p, 0)).unwrap();
    let out = coalesce_loop(&perfected, &CoalesceOptions::default()).unwrap();
    assert_eq!(out.info.total_iterations, 120);

    let mut p2 = p.clone();
    p2.body[0] = Stmt::Loop(out.transformed);
    let transformed = run_all_orders(&p2);
    assert_eq!(original, transformed);
}

#[test]
fn interchange_then_coalesce_inner_band() {
    // Column recurrence: i carries, j is free. Interchange brings j
    // outward; the (now outer) j level alone is coalescible.
    let src = "
        array A[16][16];
        for i = 2..16 {
            for j = 1..16 {
                A[i][j] = A[i - 1][j] + j;
            }
        }
    ";
    let p = parse_program(src).unwrap();
    let original = Interp::new().run(&p).unwrap();

    let swapped = interchange(&loop_at(&p, 0), 0).unwrap();
    assert_eq!(swapped.var.as_str(), "j");
    let out = coalesce_loop(&swapped, &CoalesceOptions::builder().levels(0, 1).build()).unwrap();

    let mut p2 = p.clone();
    p2.body[0] = Stmt::Loop(out.transformed);
    let transformed = Interp::new().run(&p2).unwrap();
    assert_eq!(original, transformed);
}

#[test]
fn fuse_then_coalesce_two_kernels() {
    // Two conformable 2-deep doall nests over different arrays: fusing the
    // outer loops, then the (identical-trip) inner loops, yields one
    // perfect nest that coalesces whole.
    let src = "
        array A[6][8];
        array B[6][8];
        doall i = 1..6 {
            doall j = 1..8 {
                A[i][j] = i + j;
            }
        }
        doall k = 1..6 {
            doall j = 1..8 {
                B[k][j] = k * j;
            }
        }
    ";
    let p = parse_program(src).unwrap();
    let original = Interp::new().run(&p).unwrap();

    let outer_fused = fuse(&loop_at(&p, 0), &loop_at(&p, 1)).unwrap();
    // outer_fused body: two inner j loops — fuse those too.
    let (Stmt::Loop(j1), Stmt::Loop(j2)) = (&outer_fused.body[0], &outer_fused.body[1]) else {
        panic!("expected two inner loops");
    };
    let inner_fused = fuse(j1, j2).unwrap();
    let full = Loop {
        body: vec![Stmt::Loop(inner_fused)],
        ..outer_fused.clone()
    };
    let out = coalesce_loop(&full, &CoalesceOptions::default()).unwrap();
    assert_eq!(out.info.total_iterations, 48);

    let mut p2 = p.clone();
    p2.body = vec![Stmt::Loop(out.transformed)];
    p2.arrays = p.arrays.clone();
    let transformed = run_all_orders(&p2);
    assert_eq!(original, transformed);
}

#[test]
fn distribution_respects_cycles_end_to_end() {
    // A genuine cross-statement recurrence must survive distribution as a
    // single loop, and the pipeline must leave it serial.
    let src = "
        array A[20];
        array B[20];
        array C[20];
        for i = 2..20 {
            A[i] = B[i - 1] + 1;
            B[i] = A[i] * 2;
            C[i] = i;
        }
    ";
    let p = parse_program(src).unwrap();
    let original = Interp::new().run(&p).unwrap();

    let pieces = distribute(&loop_at(&p, 0)).unwrap();
    // C splits off; the A/B cycle stays together.
    assert_eq!(pieces.len(), 2);
    let cycle_piece = pieces
        .iter()
        .find(|l| l.body.len() == 2)
        .expect("A/B cycle kept together");
    assert!(coalesce_loop(cycle_piece, &CoalesceOptions::default()).is_err());

    let mut p2 = p.clone();
    p2.body = pieces.into_iter().map(Stmt::Loop).collect();
    p2.arrays = p.arrays.clone();
    let transformed = Interp::new().run(&p2).unwrap();
    assert_eq!(original, transformed);
}
