//! Failure-injection integration tests: every layer must reject bad input
//! with a descriptive error instead of panicking or silently mis-running.

use loop_coalescing::coalesce_source;
use loop_coalescing::ir::interp::Interp;
use loop_coalescing::ir::parser::parse_program;
use loop_coalescing::ir::{Error, Stmt};
use loop_coalescing::xform::coalesce::{coalesce_loop, CoalesceOptions};

#[test]
fn parse_errors_surface_through_the_pipeline() {
    for bad in [
        "doall i = 1..4 { A[i] = ",       // truncated
        "array A[4]; doall i 1..4 { }",   // missing '='
        "array A[4]; A[0x] = 1;",         // bad token
        "array A; A[1] = 1;",             // missing extent
        "array A[4]; if i { A[1] = 1; }", // condition without comparison
    ] {
        match coalesce_source(bad) {
            Err(Error::Parse { .. }) => {}
            other => panic!("`{bad}` should be a parse error, got {other:?}"),
        }
    }
}

#[test]
fn semantic_check_errors_surface() {
    assert!(matches!(
        coalesce_source("B[1] = 0;"),
        Err(Error::UnknownArray(_))
    ));
    assert!(matches!(
        coalesce_source("array A[2][2]; A[1] = 0;"),
        Err(Error::RankMismatch { .. })
    ));
    assert!(matches!(
        coalesce_source("array A[2]; array A[3]; A[1] = 0;"),
        Err(Error::DuplicateArray(_))
    ));
}

#[test]
fn runtime_errors_are_reported_not_hidden() {
    // Division by zero inside a loop body.
    let p = parse_program(
        "
        array A[4];
        doall i = 1..4 {
            A[i] = 10 / (i - 2);
        }
        ",
    )
    .unwrap();
    assert_eq!(Interp::new().run(&p), Err(Error::DivisionByZero));

    // Out-of-bounds subscript.
    let p = parse_program(
        "
        array A[4];
        doall i = 1..5 {
            A[i] = i;
        }
        ",
    )
    .unwrap();
    assert!(matches!(
        Interp::new().run(&p),
        Err(Error::OutOfBounds { .. })
    ));
}

#[test]
fn transformed_programs_preserve_runtime_errors() {
    // The coalesced version of a program that traps must also trap (same
    // error kind) — the rewrite may not mask faults.
    let src = "
        array A[6][6];
        doall i = 1..6 {
            doall j = 1..6 {
                A[i][j] = 100 / (i + j - 2);
            }
        }
        ";
    let p = parse_program(src).unwrap();
    let Stmt::Loop(l) = &p.body[0] else { panic!() };
    let out = coalesce_loop(l, &CoalesceOptions::default()).unwrap();
    let mut p2 = p.clone();
    p2.body[0] = Stmt::Loop(out.transformed);
    assert_eq!(Interp::new().run(&p), Err(Error::DivisionByZero));
    assert_eq!(Interp::new().run(&p2), Err(Error::DivisionByZero));
}

#[test]
fn step_budget_guards_against_runaway_transformed_loops() {
    let src = "
        array A[64][64];
        doall i = 1..64 {
            doall j = 1..64 {
                A[i][j] = i;
            }
        }
        ";
    let p = parse_program(src).unwrap();
    let r = Interp::new().with_budget(100).run(&p);
    assert!(matches!(r, Err(Error::StepBudgetExceeded { .. })));
}

#[test]
fn coalesce_error_messages_name_the_obstacle() {
    let cases = [
        ("array A[8]; for i = 2..8 { A[i] = A[i - 1]; }", "carried"),
        (
            "array A[8]; s = 0; for i = 1..8 { s = s + A[i]; }",
            "scalar",
        ),
    ];
    for (src, needle) in cases {
        let p = parse_program(src).unwrap();
        let l = p
            .body
            .iter()
            .find_map(|s| match s {
                Stmt::Loop(l) => Some(l),
                _ => None,
            })
            .unwrap();
        match coalesce_loop(l, &CoalesceOptions::default()) {
            Err(Error::Unsupported(m)) => {
                let msg = m.to_string();
                assert!(msg.contains(needle), "message `{msg}` lacks `{needle}`")
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }
}

#[test]
fn overflowing_iteration_space_is_rejected() {
    use loop_coalescing::xform::recovery::total_iterations;
    assert!(total_iterations(&[u64::MAX, 2]).is_err());
    assert!(total_iterations(&[1 << 32, 1 << 32]).is_err());
}

#[test]
fn empty_and_degenerate_loops_flow_through_every_layer() {
    // Zero-trip nests coalesce to an empty loop and run cleanly.
    let out = coalesce_source(
        "
        array A[4][4];
        doall i = 1..0 {
            doall j = 1..4 {
                A[i][j] = 1;
            }
        }
        ",
    )
    .unwrap();
    assert_eq!(out.coalesced.len(), 1);
    assert_eq!(out.coalesced[0].total_iterations, 0);
    let store = Interp::new().run(&out.transformed).unwrap();
    assert_eq!(store.get("A", &[1, 1]).unwrap(), 0);
}
