//! Property-based integration test: randomly generated rectangular DOALL
//! nests are coalesced (whole-nest and random partial bands, both recovery
//! schemes) and must stay equivalent to the original under shuffled
//! execution.

use proptest::prelude::*;

use loop_coalescing::ir::program::Program;
use loop_coalescing::ir::stmt::{Loop, LoopKind, Stmt};
use loop_coalescing::ir::{Expr, Symbol};
use loop_coalescing::xform::coalesce::{coalesce_loop, CoalesceOptions};
use loop_coalescing::xform::recovery::RecoveryScheme;
use loop_coalescing::xform::validate::check_equivalent;

/// A generated nest description: dims, per-level (lower, step), and a
/// small recipe for the body expression.
#[derive(Debug, Clone)]
struct NestSpec {
    dims: Vec<u64>,
    lowers: Vec<i64>,
    steps: Vec<i64>,
    coeffs: Vec<i64>,
    constant: i64,
    read_input: bool,
}

fn nest_spec() -> impl Strategy<Value = NestSpec> {
    (1usize..=3)
        .prop_flat_map(|depth| {
            (
                proptest::collection::vec(1u64..=5, depth),
                proptest::collection::vec(-3i64..=5, depth),
                proptest::collection::vec(prop_oneof![Just(1i64), Just(2), Just(3)], depth),
                proptest::collection::vec(-4i64..=4, depth),
                -10i64..=10,
                proptest::bool::ANY,
            )
        })
        .prop_map(
            |(dims, lowers, steps, coeffs, constant, read_input)| NestSpec {
                dims,
                lowers,
                steps,
                coeffs,
                constant,
                read_input,
            },
        )
}

/// Build the program: one OUT array indexed by normalized positions, an
/// optional IN array read with an offset, and the doall nest writing an
/// affine function of the indices.
fn build(spec: &NestSpec) -> (Program, usize) {
    let depth = spec.dims.len();
    // Subscript `i_k - lo_k + 1` is affine, injective, and 1-based no
    // matter the lower bound; the extent covers the largest stride.
    let ext: Vec<usize> = spec
        .dims
        .iter()
        .zip(&spec.steps)
        .map(|(&n, &st)| ((n as i64 - 1) * st + 1) as usize)
        .collect();

    let vars: Vec<Symbol> = (0..depth).map(|k| Symbol::new(format!("i{k}"))).collect();
    let subs: Vec<Expr> = vars
        .iter()
        .zip(&spec.lowers)
        .map(|(v, &lo)| Expr::Var(v.clone()) - Expr::lit(lo) + Expr::lit(1))
        .collect();

    let mut value = Expr::lit(spec.constant);
    for (v, &c) in vars.iter().zip(&spec.coeffs) {
        value = value + Expr::Var(v.clone()) * Expr::lit(c);
    }
    if spec.read_input {
        value = value + Expr::read("IN", subs.clone());
    }

    let mut body = vec![Stmt::store("OUT", subs, value)];
    for k in (0..depth).rev() {
        let n = spec.dims[k] as i64;
        let lo = spec.lowers[k];
        let st = spec.steps[k];
        let hi = lo + (n - 1) * st;
        body = vec![Stmt::Loop(Loop {
            var: vars[k].clone(),
            lower: Expr::lit(lo),
            upper: Expr::lit(hi),
            step: Expr::lit(st),
            kind: LoopKind::Doall,
            body,
        })];
    }

    let mut prog = Program::new();
    if spec.read_input {
        prog = prog.with_array("IN", ext.clone());
    }
    prog = prog.with_array("OUT", ext);
    let idx = prog.body.len();
    prog.body.extend(body);
    (prog, idx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_nests_coalesce_equivalently(spec in nest_spec(), seed in 0u64..1000) {
        let (prog, idx) = build(&spec);
        prog.check().expect("generated program must be well-formed");
        let Stmt::Loop(target) = &prog.body[idx] else { unreachable!() };

        for scheme in [RecoveryScheme::Ceiling, RecoveryScheme::DivMod] {
            let opts = CoalesceOptions::builder().scheme(scheme).build();
            let result = coalesce_loop(target, &opts).expect("independent nest must coalesce");
            let mut transformed = prog.clone();
            transformed.body[idx] = Stmt::Loop(result.transformed);
            check_equivalent(&prog, &transformed, seed)
                .map_err(|e| TestCaseError::fail(format!("{spec:?}: {e}")))?;
        }
    }

    #[test]
    fn random_partial_bands_coalesce_equivalently(
        spec in nest_spec(),
        band_seed in 0usize..100,
        seed in 0u64..1000,
    ) {
        let (prog, idx) = build(&spec);
        let Stmt::Loop(target) = &prog.body[idx] else { unreachable!() };
        let depth = spec.dims.len();
        // Pick a valid band from the seed.
        let start = band_seed % depth;
        let end = start + 1 + (band_seed / depth) % (depth - start);

        let opts = CoalesceOptions::builder().levels(start, end).build();
        let result = coalesce_loop(target, &opts).expect("band must coalesce");
        let mut transformed = prog.clone();
        transformed.body[idx] = Stmt::Loop(result.transformed);
        check_equivalent(&prog, &transformed, seed)
            .map_err(|e| TestCaseError::fail(format!("{spec:?} band ({start},{end}): {e}")))?;
    }
}
