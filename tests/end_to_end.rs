//! Integration: transform → schedule → simulate, end to end.
//!
//! The full paper pipeline: the compiler coalesces a nest and reports the
//! recovery cost; the scheduling layer predicts the dispatch savings; the
//! simulator confirms that the coalesced execution (paying the compiler's
//! own reported recovery cost) beats the fork-join nested execution.

use loop_coalescing::coalesce_source;
use loop_coalescing::machine::cost::CostModel;
use loop_coalescing::machine::exec::{simulate_nest, ExecMode};
use loop_coalescing::machine::sim::LoopSchedule;
use loop_coalescing::sched::dispatch::{coalesced_dispatch, nested_dispatch};
use loop_coalescing::sched::policy::PolicyKind;

#[test]
fn transform_then_simulate_shows_the_paper_headline() {
    let src = "
        array A[24][24][8];
        doall i = 1..24 {
            doall j = 1..24 {
                doall k = 1..8 {
                    A[i][j][k] = i * j + k;
                }
            }
        }
    ";
    let out = coalesce_source(src).unwrap();
    assert_eq!(out.coalesced.len(), 1);
    let info = &out.coalesced[0];
    assert_eq!(info.total_iterations, 24 * 24 * 8);

    // Scheduling layer: coalesced dispatch is far cheaper.
    let p = 16;
    let nested = nested_dispatch(&info.dims, p, PolicyKind::SelfSched);
    let coal = coalesced_dispatch(&info.dims, p, PolicyKind::SelfSched);
    assert!(coal.total_sync_ops() * 2 < nested.total_sync_ops());

    // Machine layer: the simulated makespan agrees, using the compiler's
    // own recovery cost.
    let cost = CostModel::default();
    let body = |_: &[i64]| 200u64; // large enough to amortize the depth-3 recovery cost
    let coal_span = simulate_nest(
        &info.dims,
        p,
        ExecMode::coalesced(PolicyKind::Guided, info.recovery_cost_per_iteration),
        &cost,
        &body,
    )
    .makespan;
    let sweep_span = simulate_nest(
        &info.dims,
        p,
        ExecMode::InnerParallelSweep {
            schedule: LoopSchedule::Dynamic(PolicyKind::SelfSched),
        },
        &cost,
        &body,
    )
    .makespan;
    let seq_span = simulate_nest(&info.dims, 1, ExecMode::Sequential, &cost, &body).makespan;

    assert!(coal_span < sweep_span, "{coal_span} !< {sweep_span}");
    assert!(
        (coal_span as f64) < seq_span as f64 / (p as f64 * 0.6),
        "coalesced speedup below 60% efficiency: {coal_span} vs seq {seq_span}"
    );
}

#[test]
fn pipeline_report_matches_scheduler_inputs() {
    // The CoalesceInfo dims drive the scheduling layer directly.
    let out = coalesce_source(
        "
        array B[10][20];
        doall i = 1..10 {
            doall j = 1..20 {
                B[i][j] = i - j;
            }
        }
        ",
    )
    .unwrap();
    let info = &out.coalesced[0];
    assert_eq!(info.dims, vec![10, 20]);
    let d = coalesced_dispatch(&info.dims, 4, PolicyKind::SelfSched);
    assert_eq!(d.iterations, info.total_iterations);
}

#[test]
fn mixed_program_transforms_only_what_is_legal() {
    let out = coalesce_source(
        "
        array H[16];
        array G[8][8];
        array S[1];
        // recurrence: must be skipped
        for t = 2..16 {
            H[t] = H[t - 1] * 2 + 1;
        }
        // independent: must be coalesced
        doall i = 1..8 {
            doall j = 1..8 {
                G[i][j] = H[i] + H[j];
            }
        }
        // scalar reduction: must be skipped
        s = 0;
        for i = 1..8 {
            s = s + H[i];
        }
        S[1] = s;
        ",
    )
    .unwrap();
    assert_eq!(out.coalesced.len(), 1, "{:?}", out.skipped);
    assert_eq!(out.skipped.len(), 2);
    // And the transformed program still runs correctly end to end.
    let store = loop_coalescing::ir::interp::Interp::new()
        .run(&out.transformed)
        .unwrap();
    // H[2] = 1, H[3] = 3, ... H[t] = 2^(t-1) - 1.
    assert_eq!(store.get("H", &[5]).unwrap(), 15);
    assert_eq!(
        store.get("G", &[5, 3]).unwrap(),
        15 + 3 // H[5] + H[3]
    );
}

#[test]
fn deep_nest_partial_collapse_through_public_api() {
    use loop_coalescing::coalesce_source_with;
    use loop_coalescing::xform::coalesce::CoalesceOptions;
    let opts = CoalesceOptions::builder().levels(0, 2).build();
    let out = coalesce_source_with(
        "
        array V[4][5][6];
        doall i = 1..4 {
            doall j = 1..5 {
                doall k = 1..6 {
                    V[i][j][k] = i + j + k;
                }
            }
        }
        ",
        &opts,
    )
    .unwrap();
    assert_eq!(out.coalesced[0].levels, (0, 2));
    assert_eq!(out.coalesced[0].total_iterations, 20);
    // The inner k loop survives inside the coalesced loop.
    assert!(out.transformed_source.contains("doall k = 1..6"));
}
