//! Integration: the layers agree with each other.
//!
//! * the IR-emitted recovery statements compute exactly what the shared
//!   `lc-space` math computes;
//! * the simulator's dispatch accounting matches the scheduler's analytic
//!   counts;
//! * the real runtime's chunk sequence matches the dispenser's for
//!   deterministic single-worker configurations.

use loop_coalescing::ir::interp::Interp;
use loop_coalescing::ir::program::Program;
use loop_coalescing::ir::stmt::{Loop, Stmt};
use loop_coalescing::ir::{Expr, Symbol};
use loop_coalescing::machine::cost::CostModel;
use loop_coalescing::machine::sim::{simulate_loop, LoopSchedule};
use loop_coalescing::sched::dispatch::single_loop_dispatch;
use loop_coalescing::sched::policy::{Dispenser, PolicyKind};
use loop_coalescing::space;
use loop_coalescing::xform::recovery::{recovery_stmts, RecoveryScheme};

#[test]
fn ir_recovery_matches_space_math_for_many_shapes() {
    for dims in [vec![7u64], vec![4, 9], vec![3, 5, 2], vec![2, 2, 2, 3]] {
        let n: u64 = dims.iter().product();
        for scheme in [RecoveryScheme::Ceiling, RecoveryScheme::DivMod] {
            let j = Symbol::new("j");
            let vars: Vec<Symbol> = (0..dims.len())
                .map(|k| Symbol::new(format!("i{k}")))
                .collect();
            let mut body = recovery_stmts(scheme, &j, &vars, &dims);
            // Encode the recovered vector into OUT[j] with positional
            // weights so one store checks every index.
            let mut enc = Expr::lit(0);
            for (k, v) in vars.iter().enumerate() {
                let weight = 100i64.pow((dims.len() - 1 - k) as u32);
                enc = enc + Expr::Var(v.clone()) * Expr::lit(weight);
            }
            body.push(Stmt::store("OUT", vec![Expr::var("j")], enc));
            let prog = Program::new()
                .with_array("OUT", vec![n as usize])
                .with_stmt(Stmt::Loop(Loop::doall("j", n as i64, body)));
            let store = Interp::new().run(&prog).unwrap();
            for jv in 1..=n as i64 {
                let want: i64 = space::recover_divmod(jv, &dims)
                    .iter()
                    .enumerate()
                    .map(|(k, ix)| ix * 100i64.pow((dims.len() - 1 - k) as u32))
                    .sum();
                assert_eq!(
                    store.get("OUT", &[jv]).unwrap(),
                    want,
                    "{scheme:?} dims {dims:?} j={jv}"
                );
            }
        }
    }
}

#[test]
fn simulator_fetch_adds_match_scheduler_accounting() {
    let cost = CostModel::default();
    for kind in [
        PolicyKind::SelfSched,
        PolicyKind::Chunked(8),
        PolicyKind::Guided,
    ] {
        for (n, p) in [(100u64, 4usize), (1000, 16), (37, 8)] {
            let sim = simulate_loop(n, p, LoopSchedule::Dynamic(kind), &cost, &|_| 10);
            let analytic = single_loop_dispatch(n, p, kind);
            // Both sides count one successful fetch per chunk plus one
            // exhaustion fetch per processor.
            assert_eq!(
                sim.fetch_adds, analytic.fetch_adds,
                "{kind:?} n={n} p={p}: simulator fetches {} vs analytic {}",
                sim.fetch_adds, analytic.fetch_adds
            );
            assert_eq!(sim.chunks, analytic.chunks, "{kind:?} n={n} p={p}");
        }
    }
}

#[test]
fn runtime_single_worker_chunks_match_dispenser() {
    use loop_coalescing::runtime::{parallel_for_chunks, RuntimeOptions};
    use std::sync::Mutex;
    for kind in [
        PolicyKind::SelfSched,
        PolicyKind::Chunked(16),
        PolicyKind::Trapezoid,
        PolicyKind::Factoring,
    ] {
        let n = 500u64;
        let seen = Mutex::new(Vec::new());
        parallel_for_chunks(
            n,
            &RuntimeOptions {
                threads: 1,
                policy: kind,
            },
            |c| seen.lock().unwrap().push((c.start, c.len)),
        );
        let want: Vec<(u64, u64)> = Dispenser::with_kind(n, 1, kind)
            .drain()
            .into_iter()
            .map(|c| (c.start, c.len))
            .collect();
        assert_eq!(*seen.lock().unwrap(), want, "{kind:?}");
    }
}

#[test]
fn simulator_static_block_matches_bounds_formula() {
    use loop_coalescing::sched::bounds::coalesced_block_length;
    use loop_coalescing::sched::policy::StaticKind;
    // Free machine, unit body: makespan == ceil(n/p) * body exactly.
    let cost = CostModel::free();
    for (n, p) in [(100u64, 4usize), (97, 8), (5, 16)] {
        let sim = simulate_loop(n, p, LoopSchedule::Static(StaticKind::Block), &cost, &|_| 7);
        assert_eq!(
            sim.makespan,
            coalesced_block_length(n, p as u64) * 7,
            "n={n} p={p}"
        );
    }
}

#[test]
fn odometer_walk_equals_interpreted_nest_order() {
    // Run a 3-level serial IR nest writing a sequence counter, then check
    // the odometer enumerates cells in exactly that order.
    let dims = [3u64, 2, 4];
    let src = "
        array SEQ[3][2][4];
        c = 0;
        for i = 1..3 {
            for j = 1..2 {
                for k = 1..4 {
                    c = c + 1;
                    SEQ[i][j][k] = c;
                }
            }
        }
    ";
    let prog = loop_coalescing::ir::parser::parse_program(src).unwrap();
    let store = Interp::new().run(&prog).unwrap();
    let mut odo = space::Odometer::new(&dims);
    for expect in 1..=24i64 {
        let iv = odo.indices();
        assert_eq!(store.get("SEQ", iv).unwrap(), expect);
        odo.advance();
    }
}
