//! The committed lint baseline for the 72-program benchmark corpus:
//! `tests/fixtures/corpus_lints.json` is exactly what
//! `lc-lint --corpus --format json` prints, and CI diffs the two. This
//! test keeps the fixture honest from inside `cargo test` as well, so a
//! lint behavior change cannot land without updating the baseline
//! (regenerate with `UPDATE_FIXTURE=1 cargo test --test lint_corpus`).

use lc_lint::render::corpus_report_json;
use lc_lint::{lint_source, Finding, LintCode, LintSet, Severity};
use lc_service::corpus::corpus72;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/corpus_lints.json"
);

#[test]
fn corpus_findings_match_the_committed_baseline() {
    let set = LintSet::default();
    let per_program: Vec<(usize, Vec<Finding>)> = corpus72()
        .iter()
        .enumerate()
        .map(|(i, src)| {
            (
                i,
                lint_source(src, &set).expect("corpus programs must parse"),
            )
        })
        .collect();
    let got = corpus_report_json(&per_program);

    if std::env::var_os("UPDATE_FIXTURE").is_some() {
        std::fs::write(FIXTURE, &got).expect("write fixture");
        return;
    }
    let want = std::fs::read_to_string(FIXTURE)
        .expect("golden fixture missing; regenerate with UPDATE_FIXTURE=1");
    assert_eq!(
        got, want,
        "corpus lint findings diverged from tests/fixtures/corpus_lints.json; \
         if intentional, regenerate with UPDATE_FIXTURE=1 cargo test --test lint_corpus"
    );
}

/// The seeded racy-DOALL fixture CI feeds to the `lc-lint` CLI under
/// `--deny doall-race`: it must trip LC001 with a direction vector, and
/// the certificate the fuzzer trusts must refuse it.
#[test]
fn racy_doall_fixture_trips_lc001() {
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/racy_doall.lc"
    ))
    .expect("fixture present");

    let findings = lint_source(&src, &LintSet::default()).unwrap();
    let race = findings
        .iter()
        .find(|f| f.code == LintCode::DoallRace)
        .expect("racy doall must trip LC001");
    assert_eq!(race.severity, Severity::Warn);
    assert_eq!(race.detail("direction"), Some("(<)"));

    // Under --deny doall-race the same finding escalates.
    let mut deny = LintSet::default();
    deny.set_by_name("doall-race", Severity::Deny).unwrap();
    let findings = lint_source(&src, &deny).unwrap();
    assert!(findings
        .iter()
        .any(|f| f.code == LintCode::DoallRace && f.severity == Severity::Deny));

    let program = lc_ir::parser::parse_program(&src).unwrap();
    assert!(
        !lc_lint::certifies_order_independent(&program),
        "a racy program must never be certified order-independent"
    );
}
