//! **loop-coalescing** — a reproduction of C. D. Polychronopoulos,
//! *“Loop Coalescing: A Compiler Transformation for Parallel Machines”*,
//! ICPP 1987.
//!
//! Loop coalescing rewrites a perfect nest of parallel (`DOALL`) loops
//! into a single parallel loop over the whole iteration space, recovering
//! the original indices from the coalesced index with ceiling-division
//! formulas. On a self-scheduled shared-memory machine this replaces
//! per-level dispatch counters and barriers with **one** fetch&add counter
//! and **one** join — the transformation that survives today as OpenMP's
//! `collapse` clause.
//!
//! The workspace is layered; this crate re-exports everything:
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | IR | [`ir`] | loop-nest IR, DSL parser, interpreter, dependence analysis |
//! | transformation | [`xform`] | coalescing, normalization, interchange, strip-mining, recovery CSE |
//! | iteration space | [`space`] | strides, linearization, index recovery, odometer |
//! | scheduling | [`sched`] | SS / CSS / GSS / TSS / factoring policies, dispatch counts, schedule-length bounds |
//! | machine | [`machine`] | deterministic multiprocessor simulator with fetch&add cost model |
//! | runtime | [`runtime`] | real-thread coalesced executor (`AtomicU64::fetch_add` dispatch) |
//! | workloads | [`workloads`] | kernels (matmul, Gauss–Jordan, stencil, π) and cost models |
//!
//! # Quickstart
//!
//! ```
//! use loop_coalescing::coalesce_source;
//!
//! let out = coalesce_source(
//!     "
//!     array A[100][50];
//!     doall i = 1..100 {
//!         doall j = 1..50 {
//!             A[i][j] = i * j;
//!         }
//!     }
//!     ",
//! )
//! .unwrap();
//! assert!(out.transformed_source.contains("doall jc = 1..5000"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use lc_driver as driver;
pub use lc_ir as ir;
pub use lc_machine as machine;
pub use lc_runtime as runtime;
pub use lc_sched as sched;
pub use lc_space as space;
pub use lc_workloads as workloads;
pub use lc_xform as xform;

use lc_driver::{Driver, DriverOptions};
use lc_ir::program::Program;
use lc_ir::{Error, Result, SkipReason};
use lc_xform::coalesce::{coalesce_loop, CoalesceInfo, CoalesceOptions};

pub use lc_driver::Skip;

/// Outcome of the end-to-end source pipeline.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// The transformed program.
    pub transformed: Program,
    /// The transformed program pretty-printed as DSL source.
    pub transformed_source: String,
    /// Metadata for every nest that was coalesced, in body order. A nest
    /// coalesced through the *symbolic* fallback (runtime trip counts)
    /// reports empty `dims` and zero `total_iterations` — the counts are
    /// computed by the emitted preamble, not known statically.
    pub coalesced: Vec<CoalesceInfo>,
    /// Top-level loops that were left alone, with typed diagnostics
    /// ([`Skip::reason`] plus the symbolic fallback's reason when that
    /// was tried too). `Display` renders the same messages the pipeline
    /// has always reported.
    pub skipped: Vec<Skip>,
}

/// Parse DSL source, coalesce every top-level loop nest whose levels can
/// be proven DOALL-legal, validate each rewrite against the interpreter,
/// and return the transformed program plus a report.
///
/// Nests that cannot be coalesced (carried dependences, symbolic bounds,
/// scalar reductions) are left untouched and reported in
/// [`PipelineResult::skipped`] — the pipeline never fails on a legal
/// program just because a loop is not transformable.
///
/// This is a thin wrapper over [`lc_driver::Driver`] in its
/// facade-compatible configuration; use the driver directly for the
/// per-pass trace, cache counters, enabling passes (perfection,
/// interchange, analytic band advice), and parallel batch compilation.
pub fn coalesce_source(src: &str) -> Result<PipelineResult> {
    coalesce_source_with(src, &CoalesceOptions::default())
}

/// [`coalesce_source`] with explicit options. `options.levels` applies to
/// every nest (use the lower-level API for per-nest bands).
pub fn coalesce_source_with(src: &str, options: &CoalesceOptions) -> Result<PipelineResult> {
    let driver = Driver::new(DriverOptions::facade_compat(options.clone()));
    let out = driver.compile(src)?;
    Ok(PipelineResult {
        transformed: out.transformed,
        transformed_source: out.transformed_source,
        coalesced: out.coalesced,
        skipped: out.skipped,
    })
}

/// Analyze a nest and recommend which contiguous band of levels to
/// coalesce for the given machine parameters: legality comes from the
/// dependence tester, recovery costs from the code generator, and the
/// choice from `lc-sched`'s analytic advisor.
pub fn advise_collapse(
    l: &ir::stmt::Loop,
    params: &sched::advise::AdviseParams,
) -> Result<sched::advise::Advice> {
    use ir::analysis::{depend::analyze_nest, nest::extract_nest};
    use xform::normalize::normalize_nest;
    use xform::recovery::{per_iteration_cost, RecoveryScheme};

    let nest = normalize_nest(&extract_nest(l))?;
    let dims = nest
        .trip_counts()
        .ok_or(Error::Unsupported(SkipReason::SymbolicBounds))?;
    let deps = analyze_nest(&nest)?;
    let legal: Vec<bool> = (0..nest.depth()).map(|k| !deps.carried_at(k)).collect();
    if !legal.iter().any(|&x| x) {
        return Err(Error::Unsupported(SkipReason::NothingLegal));
    }
    Ok(sched::advise::advise(&dims, &legal, params, &|band| {
        per_iteration_cost(RecoveryScheme::Ceiling, band)
    }))
}

/// One-call "do the right thing": pick the best legal band with
/// [`advise_collapse`], then coalesce it.
pub fn coalesce_advised(
    l: &ir::stmt::Loop,
    params: &sched::advise::AdviseParams,
) -> Result<xform::coalesce::CoalesceResult> {
    let advice = advise_collapse(l, params)?;
    coalesce_loop(
        l,
        &CoalesceOptions::builder()
            .levels(advice.band.0, advice.band.1)
            .build(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_ir::parser::parse_program;
    use lc_ir::stmt::Stmt;

    #[test]
    fn pipeline_coalesces_eligible_nest() {
        let out = coalesce_source(
            "
            array A[4][6];
            doall i = 1..4 {
                doall j = 1..6 {
                    A[i][j] = i + j;
                }
            }
            ",
        )
        .unwrap();
        assert_eq!(out.coalesced.len(), 1);
        assert_eq!(out.coalesced[0].total_iterations, 24);
        assert!(out.skipped.is_empty());
        assert!(out.transformed_source.contains("1..24"));
    }

    #[test]
    fn pipeline_skips_recurrences_without_failing() {
        let out = coalesce_source(
            "
            array A[8];
            array B[4][4];
            for i = 2..8 {
                A[i] = A[i - 1] + 1;
            }
            doall i = 1..4 {
                doall j = 1..4 {
                    B[i][j] = i * j;
                }
            }
            ",
        )
        .unwrap();
        assert_eq!(out.coalesced.len(), 1);
        assert_eq!(out.skipped.len(), 1);
        assert!(out.skipped[0].to_string().contains("carried"));
        assert!(matches!(
            out.skipped[0].reason,
            SkipReason::CarriedDependence { level: 0, .. }
        ));
    }

    #[test]
    fn pipeline_handles_program_with_no_loops() {
        let out = coalesce_source("array A[1]; A[1] = 5;").unwrap();
        assert!(out.coalesced.is_empty());
        assert!(out.skipped.is_empty());
        assert!(out.transformed_source.contains("A[1] = 5"));
    }

    #[test]
    fn pipeline_band_too_deep_falls_back_to_full_nest() {
        let opts = CoalesceOptions::builder().levels(0, 5).build();
        let out = coalesce_source_with(
            "
            array A[4][4];
            doall i = 1..4 {
                doall j = 1..4 {
                    A[i][j] = 1;
                }
            }
            ",
            &opts,
        )
        .unwrap();
        assert_eq!(out.coalesced.len(), 1);
        assert_eq!(out.coalesced[0].levels, (0, 2));
    }

    #[test]
    fn pipeline_falls_back_to_symbolic_coalescing() {
        let out = coalesce_source(
            "
            array A[12][9];
            n = 12;
            m = 9;
            doall i = 1..n {
                doall j = 1..m {
                    A[i][j] = i * 100 + j;
                }
            }
            ",
        )
        .unwrap();
        assert_eq!(out.coalesced.len(), 1, "{:?}", out.skipped);
        assert!(out.coalesced[0].dims.is_empty(), "symbolic marker");
        assert!(out.transformed_source.contains("lcs_total"));
        // The rewritten program still computes the same store (the
        // pipeline's built-in equivalence check ran), and reparses.
        parse_program(&out.transformed_source).unwrap();
    }

    #[test]
    fn advisor_picks_partial_band_on_deep_nest() {
        use lc_ir::parser::parse_program;
        let p = parse_program(
            "
            array V[8][8][8][8];
            doall a = 1..8 {
                doall b = 1..8 {
                    doall c = 1..8 {
                        doall d = 1..8 {
                            V[a][b][c][d] = a + b + c + d;
                        }
                    }
                }
            }
            ",
        )
        .unwrap();
        let Stmt::Loop(l) = &p.body[0] else { panic!() };
        let params = sched::advise::AdviseParams {
            p: 16,
            body_cost: 50,
            ..Default::default()
        };
        let advice = advise_collapse(l, &params).unwrap();
        let (s, e) = advice.band;
        assert!(e - s < 4, "expected partial collapse, got {advice:?}");
        let result = coalesce_advised(l, &params).unwrap();
        assert_eq!(result.info.levels, advice.band);
    }

    #[test]
    fn advisor_masks_illegal_levels() {
        use lc_ir::parser::parse_program;
        // The outer level carries a dependence; only inner bands qualify.
        let p = parse_program(
            "
            array A[8][16][16];
            for i = 2..8 {
                doall j = 1..16 {
                    doall k = 1..16 {
                        A[i][j][k] = A[i - 1][j][k] + 1;
                    }
                }
            }
            ",
        )
        .unwrap();
        let Stmt::Loop(l) = &p.body[0] else { panic!() };
        let advice = advise_collapse(l, &sched::advise::AdviseParams::default()).unwrap();
        assert!(advice.band.0 >= 1, "band must exclude level 0: {advice:?}");
        let result = coalesce_advised(l, &sched::advise::AdviseParams::default()).unwrap();
        assert!(result.info.levels.0 >= 1);
    }

    #[test]
    fn advisor_errors_when_nothing_is_legal() {
        use lc_ir::parser::parse_program;
        let p = parse_program(
            "
            array A[16];
            for i = 2..16 {
                A[i] = A[i - 1] + 1;
            }
            ",
        )
        .unwrap();
        let Stmt::Loop(l) = &p.body[0] else { panic!() };
        assert!(advise_collapse(l, &sched::advise::AdviseParams::default()).is_err());
    }

    #[test]
    fn transformed_source_reparses_and_matches() {
        let src = "
            array A[3][5][2];
            doall i = 1..3 {
                doall j = 1..5 {
                    doall k = 1..2 {
                        A[i][j][k] = i * 100 + j * 10 + k;
                    }
                }
            }
            ";
        let out = coalesce_source(src).unwrap();
        let reparsed = parse_program(&out.transformed_source).unwrap();
        let a = lc_ir::interp::Interp::new().run(&reparsed).unwrap();
        let b = lc_ir::interp::Interp::new()
            .run(&parse_program(src).unwrap())
            .unwrap();
        assert_eq!(a, b);
    }
}
