//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched. This vendored shim keeps every property-test in the tree
//! source-compatible: `proptest!`, `prop_assert!`/`prop_assert_eq!`,
//! `prop_oneof!`, integer-range and tuple strategies, `Just`, `prop_map`
//! / `prop_flat_map` / `prop_recursive` / `boxed`, `collection::vec`,
//! `sample::select`, and `bool::ANY`.
//!
//! Differences from real proptest, by design:
//! * generation is driven by a deterministic per-test splitmix64 stream
//!   (same inputs every run — failures are perfectly reproducible);
//! * there is **no shrinking**: a failing case reports the generated
//!   inputs verbatim;
//! * `prop_recursive` unrolls the recursion `depth` times instead of
//!   sizing by node count.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic case driver: RNG, config, and failure plumbing.

    use std::fmt;

    /// Deterministic RNG (splitmix64) feeding all strategies of one case.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed the stream; equal seeds give equal streams.
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// RNG for case `case` of the named test: stable across runs and
    /// independent across tests.
    pub fn rng_for_case(test_name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::from_seed(h ^ (((case as u64) << 32) | case as u64))
    }

    /// Runner configuration; only `cases` is meaningful in this shim.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config overriding the number of cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property was falsified.
        Fail(String),
        /// The inputs were rejected (e.g. `prop_assume!`); not a failure.
        Reject(String),
    }

    impl TestCaseError {
        /// A falsification with the given message.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// An input rejection with the given message.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Best-effort extraction of a panic payload's message.
    pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the combinators the workspace uses.

    use crate::test_runner::TestRng;
    use std::fmt;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a
    /// strategy is just a deterministic function of the RNG stream.
    pub trait Strategy: Clone {
        /// The type of generated values.
        type Value: fmt::Debug;

        /// Draw one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            U: fmt::Debug,
            F: Fn(Self::Value) -> U + 'static,
        {
            Map {
                source: self,
                f: Rc::new(f),
            }
        }

        /// Generate an intermediate value, then draw from the strategy
        /// `f` builds from it.
        fn prop_flat_map<R, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            R: Strategy,
            F: Fn(Self::Value) -> R + 'static,
        {
            FlatMap {
                source: self,
                f: Rc::new(f),
            }
        }

        /// Build a recursive strategy: `self` is the leaf case and
        /// `recurse` wraps an inner strategy into a larger value. The
        /// recursion is unrolled `depth` times (the size hints of real
        /// proptest are accepted and ignored).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut strat = self.boxed();
            for _ in 0..depth {
                strat = recurse(strat.clone()).boxed();
            }
            strat
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe core of [`Strategy`], used by [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    impl<T> fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    /// Strategy yielding a fixed value (`proptest::strategy::Just`).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + fmt::Debug>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F: ?Sized> {
        source: S,
        f: Rc<F>,
    }

    impl<S: Clone, F: ?Sized> Clone for Map<S, F> {
        fn clone(&self) -> Self {
            Map {
                source: self.source.clone(),
                f: Rc::clone(&self.f),
            }
        }
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        U: fmt::Debug,
        F: Fn(S::Value) -> U + 'static,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F: ?Sized> {
        source: S,
        f: Rc<F>,
    }

    impl<S: Clone, F: ?Sized> Clone for FlatMap<S, F> {
        fn clone(&self) -> Self {
            FlatMap {
                source: self.source.clone(),
                f: Rc::clone(&self.f),
            }
        }
    }

    impl<S, R, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        R: Strategy,
        F: Fn(S::Value) -> R + 'static,
    {
        type Value = R::Value;

        fn generate(&self, rng: &mut TestRng) -> R::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build a union; panics on an empty option list.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<T: fmt::Debug> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let ix = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[ix].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),+) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = rng.next_u64() as u128 % span;
                    (self.start as i128 + off as i128) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let off = rng.next_u64() as u128 % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )+};
    }

    int_range_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! tuple_strategies {
        ($({$($s:ident),+})+) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategies! {
        {A, B}
        {A, B, C}
        {A, B, C, D}
        {A, B, C, D, E}
        {A, B, C, D, E, F}
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive length bounds for a generated collection.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Generate a `Vec` whose length lies in `size`, with elements drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies (`proptest::sample::select`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt;

    /// Uniform choice among a fixed set of values. The values are cloned
    /// out of the borrowed slice, so temporaries are fine at call sites.
    pub fn select<T, V>(values: V) -> Select<T>
    where
        T: Clone + fmt::Debug + 'static,
        V: AsRef<[T]>,
    {
        let options = values.as_ref().to_vec();
        assert!(!options.is_empty(), "select() needs at least one value");
        Select { options }
    }

    /// See [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + fmt::Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let ix = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[ix].clone()
        }
    }
}

pub mod bool {
    //! Boolean strategies (`proptest::bool::ANY`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;

        fn generate(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. Supports the two forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(256))]
///     #[test]
///     fn my_prop(x in 0u64..10, v in proptest::collection::vec(0i64..5, 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        #[test]
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )+) => {$(
        #[test]
        fn $name() {
            let __config = $config;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::rng_for_case(stringify!($name), __case);
                let __vals = ($( $crate::strategy::Strategy::generate(&($strat), &mut __rng), )+);
                let __desc = format!("{__vals:?}");
                let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    move || -> $crate::test_runner::TestCaseResult {
                        let ($($arg,)+) = __vals;
                        $body
                        ::core::result::Result::Ok(())
                    },
                ));
                match __outcome {
                    ::core::result::Result::Ok(::core::result::Result::Ok(())) => {}
                    ::core::result::Result::Ok(::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    )) => {}
                    ::core::result::Result::Ok(::core::result::Result::Err(e)) => panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        __case + 1,
                        __config.cases,
                        e,
                        __desc
                    ),
                    ::core::result::Result::Err(payload) => panic!(
                        "proptest case {}/{} panicked: {}\n  inputs: {}",
                        __case + 1,
                        __config.cases,
                        $crate::test_runner::panic_message(payload.as_ref()),
                        __desc
                    ),
                }
            }
        }
    )+};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: `{:?}`",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Reject the current case (not a failure) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice between strategy arms, mirroring `prop_oneof!`
/// (unweighted arms only, which is all this workspace uses).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = crate::test_runner::rng_for_case("t", 3);
        let mut b = crate::test_runner::rng_for_case("t", 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = crate::test_runner::rng_for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::rng_for_case("ranges", 0);
        for _ in 0..500 {
            let x = (-30i64..=30).generate(&mut rng);
            assert!((-30..=30).contains(&x));
            let y = (1u64..12).generate(&mut rng);
            assert!((1..12).contains(&y));
            let z = (0usize..100).generate(&mut rng);
            assert!(z < 100);
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = crate::test_runner::rng_for_case("combine", 0);
        let strat = prop_oneof![
            Just(0i64),
            (1i64..5).prop_map(|v| v * 10),
            (1i64..3).prop_flat_map(|hi| 0i64..hi),
        ]
        .boxed();
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v == 0 || (10..50).contains(&v) || (0..3).contains(&v));
        }
    }

    #[test]
    fn vec_and_select_and_tuples() {
        let mut rng = crate::test_runner::rng_for_case("vecs", 0);
        let strat = (
            crate::collection::vec(1u64..8, 1..5),
            crate::sample::select(&["a", "b"][..]),
            crate::bool::ANY,
        );
        for _ in 0..100 {
            let (v, s, _flag) = crate::strategy::Strategy::generate(&strat, &mut rng);
            assert!(!v.is_empty() && v.len() < 5);
            assert!(v.iter().all(|&e| (1..8).contains(&e)));
            assert!(s == "a" || s == "b");
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] i64),
            Node(Vec<Tree>),
        }
        let leaf = (0i64..10).prop_map(Tree::Leaf).boxed();
        let strat = leaf.prop_recursive(3, 16, 2, |inner| {
            crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
        });
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let mut rng = crate::test_runner::rng_for_case("tree", 0);
        for _ in 0..50 {
            assert!(depth(&strat.generate(&mut rng)) <= 4);
        }
    }

    proptest! {
        #[test]
        fn macro_roundtrip(x in 0u64..100, (lo, hi) in (0i64..5, 10i64..20)) {
            prop_assert!(x < 100);
            prop_assert!(lo < hi, "lo={} hi={}", lo, hi);
            prop_assert_eq!(x, x);
            prop_assert_ne!(lo, hi);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn macro_respects_config(_x in 0u64..10) {
            // Counting happens implicitly; the body just must run.
        }
    }

    #[test]
    fn prop_asserts_produce_fail_errors() {
        fn check(x: u64) -> TestCaseResult {
            prop_assert!(x != 5, "x was {}", x);
            prop_assert_eq!(x % 2, 0);
            Ok(())
        }
        assert!(matches!(check(5), Err(TestCaseError::Fail(_))));
        assert!(matches!(check(3), Err(TestCaseError::Fail(_))));
        assert!(check(4).is_ok());
    }
}
