//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! [`scope`] with [`Scope::spawn`], implemented on top of
//! `std::thread::scope`.
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched; this vendored shim keeps the public call sites
//! (`crossbeam::scope(|s| { s.spawn(|_| …) })`) source-compatible.
//! Like the real crate, [`scope`] returns `Err` with the panic payload if
//! any thread in the scope panicked.

#![forbid(unsafe_code)]

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A scope for spawning borrowing threads; mirrors
/// `crossbeam_utils::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread inside the scope. The closure receives the scope
    /// again (crossbeam's signature) so it can spawn nested threads.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let nested = Scope { inner: self.inner };
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&nested)),
        }
    }
}

/// Handle to a thread spawned with [`Scope::spawn`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Wait for the thread to finish, returning its result or the panic
    /// payload.
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

/// Create a scope for spawning threads that may borrow from the caller's
/// stack. All spawned threads are joined before `scope` returns; a panic
/// in any of them surfaces as `Err(payload)`.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

/// `crossbeam::thread` module alias, matching the real crate's layout.
pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_collects() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .sum()
        })
        .expect("scope failed");
        assert_eq!(total, 10);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_via_closure_arg() {
        let n = super::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .expect("scope failed");
        assert_eq!(n, 7);
    }
}
