//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! a [`Mutex`] whose `lock()` returns the guard directly (no poisoning).
//!
//! Backed by `std::sync::Mutex`; a poisoned lock is recovered rather than
//! propagated, matching parking_lot's no-poisoning semantics.

#![forbid(unsafe_code)]

use std::fmt;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion primitive mirroring `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, returning the guard directly (parking_lot does
    /// not poison on panic).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock is usable again.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
