//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Benchmarks keep their exact source shape (`benchmark_group`,
//! `sample_size`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`, `criterion_main!`); measurement is a simple
//! best-of-samples wall-clock timer printed per benchmark. The goal is
//! compiling and running the suite offline, not statistical rigor.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque identity function preventing the optimizer from deleting a
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group: a function name plus a
/// parameter rendered with `Display`.
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("kernel", 64)` → `kernel/64`.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            repr: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Per-iteration timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    best: Option<Duration>,
}

impl Bencher {
    /// Time `routine`, keeping the best (minimum) per-iteration duration
    /// observed across the sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        let per_iter = start.elapsed() / self.iters.max(1) as u32;
        if self.best.is_none_or(|b| per_iter < b) {
            self.best = Some(per_iter);
        }
    }
}

fn run_one(id: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bench = Bencher {
        iters: 1,
        best: None,
    };
    // One warm-up pass, then `samples` measured passes.
    for _ in 0..=samples {
        f(&mut bench);
    }
    let best = bench.best.unwrap_or_default();
    println!("bench {id:<52} {:>12.3} µs/iter", best.as_secs_f64() * 1e6);
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark (criterion's default is
    /// 100; this shim caps it to keep offline runs short).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(1, 20);
        self
    }

    /// Run a parameterless benchmark.
    pub fn bench_function<S: fmt::Display, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.samples, f);
        self
    }

    /// Run a benchmark over a borrowed input value.
    pub fn bench_with_input<S: fmt::Display, I: ?Sized, F>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.samples, |b| f(b, input));
        self
    }

    /// End the group (report flushing in real criterion; a no-op here).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 5,
            _criterion: self,
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, 5, f);
        self
    }
}

/// Bundle benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        let mut runs = 0u32;
        group.bench_function("noop", |b| {
            runs += 1;
            b.iter(|| black_box(1 + 1));
        });
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
        assert!(runs >= 2, "warm-up plus samples should run the closure");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
