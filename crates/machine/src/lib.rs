//! `lc-machine` — a deterministic discrete-event simulator of a
//! shared-memory multiprocessor with fetch&add dispatch.
//!
//! The paper's evaluation is analytic: it counts the abstract instructions
//! a parallel machine executes to initiate, dispatch, and join a parallel
//! loop, and compares nested against coalesced execution. This crate
//! mechanizes that accounting as a simulator so the same counts can be
//! produced for *any* chunking policy and *any* per-iteration cost
//! profile, and so makespans (critical paths) — not just operation totals
//! — can be measured:
//!
//! * [`cost`] — the machine's cost model (fetch&add, barrier, fork,
//!   per-iteration loop overhead), in abstract instruction units.
//! * [`sim`] — the core event-driven simulation of one parallel loop:
//!   the earliest-free processor grabs the next chunk from a shared
//!   [`lc_sched::Dispenser`].
//! * [`exec`] — execution modes for a whole nest: sequential, coalesced,
//!   outer-parallel (inner serial), and inner-parallel-sweep (fork-join
//!   per instance), mirroring the strategies the paper compares.
//! * [`doacross`] — pipelined execution of dependence-carrying loops
//!   (the fallback regime where coalescing is illegal).
//! * [`metrics`] — speedup, efficiency, utilization, load imbalance.
//!
//! Everything is exact integer arithmetic over `u64` "instructions";
//! results are bit-reproducible across runs and platforms.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cost;
pub mod doacross;
pub mod exec;
pub mod metrics;
pub mod sim;

pub use cost::CostModel;
pub use doacross::{pipeline_speedup_bound, simulate_doacross};
pub use exec::{simulate_nest, ExecMode, NestResult};
pub use metrics::Metrics;
pub use sim::{simulate_loop, SimResult};
