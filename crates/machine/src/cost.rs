//! The machine's cost model, in abstract instruction units.
//!
//! Unit choice follows the paper's era: costs are *counts of abstract
//! machine instructions*, not nanoseconds, so comparisons are architecture
//! independent and exactly reproducible. The defaults are loosely
//! calibrated to the overhead ratios reported for fetch&add machines of
//! the period (a synchronized combining-network access costs several times
//! a local ALU op; a barrier costs a couple of network round-trips; a fork
//! costs hundreds of instructions of setup).

/// Abstract instruction costs for the simulated multiprocessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// One synchronized fetch&add on a shared dispatch counter.
    pub fetch_add: u64,
    /// Cost each participant pays to cross a barrier (join).
    pub barrier: u64,
    /// Cost to initiate (fork) a parallel loop instance: scheduling the
    /// team, distributing the loop descriptor.
    pub fork: u64,
    /// Per-iteration loop bookkeeping (index increment + bounds test) —
    /// the `O_seq = 2` of classic overhead analyses.
    pub loop_overhead: u64,
    /// Surcharge a processor pays when the iteration it is about to run is
    /// *not* the successor of the one it just finished (a cold cache line /
    /// lost spatial locality). Zero by default; setting it models the
    /// classic locality argument for chunked dispatch: SS scatters
    /// consecutive iterations across processors, CSS/GSS keep runs
    /// together.
    pub locality_miss: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            fetch_add: 8,
            barrier: 16,
            fork: 100,
            loop_overhead: 2,
            locality_miss: 0,
        }
    }
}

impl CostModel {
    /// A frictionless machine (all overheads zero) — useful to isolate
    /// load-balance effects from overhead effects in experiments.
    pub fn free() -> Self {
        CostModel {
            fetch_add: 0,
            barrier: 0,
            fork: 0,
            loop_overhead: 0,
            locality_miss: 0,
        }
    }

    /// Uniform scaling of every overhead component (e.g. to sweep "how
    /// expensive is synchronization on this machine").
    pub fn scaled(self, factor: u64) -> Self {
        CostModel {
            fetch_add: self.fetch_add * factor,
            barrier: self.barrier * factor,
            fork: self.fork * factor,
            loop_overhead: self.loop_overhead, // body-side, not sync-side
            locality_miss: self.locality_miss,
        }
    }

    /// The default model with a locality-miss surcharge (builder style).
    pub fn with_locality_miss(mut self, miss: u64) -> Self {
        self.locality_miss = miss;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_orders_overheads_sensibly() {
        let c = CostModel::default();
        assert!(c.fork > c.barrier);
        assert!(c.barrier > c.fetch_add);
        assert!(c.fetch_add > c.loop_overhead);
    }

    #[test]
    fn free_is_all_zero() {
        let c = CostModel::free();
        assert_eq!(
            c.fetch_add + c.barrier + c.fork + c.loop_overhead + c.locality_miss,
            0
        );
    }

    #[test]
    fn locality_builder_sets_only_the_miss_cost() {
        let c = CostModel::default().with_locality_miss(25);
        assert_eq!(c.locality_miss, 25);
        assert_eq!(c.fetch_add, CostModel::default().fetch_add);
    }

    #[test]
    fn scaled_multiplies_sync_costs_only() {
        let c = CostModel::default().scaled(3);
        let d = CostModel::default();
        assert_eq!(c.fetch_add, 3 * d.fetch_add);
        assert_eq!(c.fork, 3 * d.fork);
        assert_eq!(c.loop_overhead, d.loop_overhead);
    }
}
