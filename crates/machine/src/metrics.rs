//! Derived performance metrics: speedup, efficiency, utilization, load
//! imbalance — the y-axes of the paper's figures.

use crate::exec::NestResult;

/// Metrics derived from a parallel run and its sequential baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// `T_seq / T_par`.
    pub speedup: f64,
    /// `speedup / p`.
    pub efficiency: f64,
    /// Busy time over `p × makespan` (1.0 = no idling).
    pub utilization: f64,
    /// `(max busy − min busy) / max busy`; 0.0 = perfectly balanced.
    pub imbalance: f64,
}

impl Metrics {
    /// Compute metrics for a parallel result against a sequential time.
    pub fn compute(seq_time: u64, result: &NestResult, p: usize) -> Metrics {
        let p = p.max(1);
        let speedup = if result.makespan == 0 {
            p as f64
        } else {
            seq_time as f64 / result.makespan as f64
        };
        let efficiency = speedup / p as f64;
        let (utilization, imbalance) = if result.busy.is_empty() || result.makespan == 0 {
            (1.0, 0.0)
        } else {
            let total: u64 = result.busy.iter().sum();
            let max = *result.busy.iter().max().unwrap();
            let min = *result.busy.iter().min().unwrap();
            let util = total as f64 / (p as f64 * result.makespan as f64);
            let imb = if max == 0 {
                0.0
            } else {
                (max - min) as f64 / max as f64
            };
            (util, imb)
        };
        Metrics {
            speedup,
            efficiency,
            utilization,
            imbalance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::exec::{simulate_nest, ExecMode};
    use lc_sched::policy::PolicyKind;

    #[test]
    fn perfect_parallelism_on_free_machine() {
        let cost = CostModel::free();
        let body = |_: &[i64]| 10u64;
        let seq = simulate_nest(&[8, 8], 1, ExecMode::Sequential, &cost, &body);
        let par = simulate_nest(
            &[8, 8],
            8,
            ExecMode::coalesced(PolicyKind::SelfSched, 0),
            &cost,
            &body,
        );
        let m = Metrics::compute(seq.makespan, &par, 8);
        assert!(m.speedup > 7.9, "{m:?}");
        assert!(m.efficiency > 0.98, "{m:?}");
        assert!(m.imbalance < 0.01, "{m:?}");
    }

    #[test]
    fn overheads_reduce_efficiency() {
        let cost = CostModel::default().scaled(10);
        let body = |_: &[i64]| 5u64;
        let seq = simulate_nest(&[8, 8], 1, ExecMode::Sequential, &cost, &body);
        let par = simulate_nest(
            &[8, 8],
            8,
            ExecMode::coalesced(PolicyKind::SelfSched, 0),
            &cost,
            &body,
        );
        let m = Metrics::compute(seq.makespan, &par, 8);
        assert!(m.efficiency < 0.5, "{m:?}");
    }

    #[test]
    fn imbalance_zero_when_busy_equal() {
        let r = NestResult {
            makespan: 100,
            fetch_adds: 0,
            barriers: 0,
            forks: 0,
            chunks: 0,
            body_work: 0,
            iterations: 0,
            busy: vec![50, 50, 50],
        };
        let m = Metrics::compute(300, &r, 3);
        assert_eq!(m.imbalance, 0.0);
        assert!((m.utilization - 0.5).abs() < 1e-9);
        assert_eq!(m.speedup, 3.0);
        assert_eq!(m.efficiency, 1.0);
    }

    #[test]
    fn degenerate_inputs_do_not_divide_by_zero() {
        let r = NestResult {
            makespan: 0,
            fetch_adds: 0,
            barriers: 0,
            forks: 0,
            chunks: 0,
            body_work: 0,
            iterations: 0,
            busy: vec![],
        };
        let m = Metrics::compute(0, &r, 4);
        assert!(m.speedup.is_finite());
        assert!(m.imbalance == 0.0);
    }
}
