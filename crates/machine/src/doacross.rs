//! Doacross (pipelined) loop execution.
//!
//! When a loop carries a dependence, coalescing is illegal — but if the
//! dependence has a fixed distance, iterations can still be *pipelined*:
//! iteration `i` may begin once iteration `i−1` has run for `delay`
//! instructions (the time to produce the values `i` consumes). This module
//! simulates that regime so experiments can show both sides of the
//! legality boundary: what coalescing buys where it applies, and what is
//! left (doacross pipelining) where it does not.
//!
//! The model: iterations are handed out in order (one fetch&add each);
//! iteration `i` starts at `max(processor free, start(i−1) + delay)`.
//! With enough processors the makespan approaches
//! `fork + (N−1)·delay + body(N−1) + barrier` — the classic pipeline bound
//! `speedup ≤ body/delay`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::cost::CostModel;
use crate::sim::SimResult;

/// Simulate a doacross loop of `n` iterations with dependence delay
/// `delay` (abstract instructions) on `p` processors. `body(i)` is the
/// iteration cost.
pub fn simulate_doacross(
    n: u64,
    p: usize,
    delay: u64,
    cost: &CostModel,
    body: &dyn Fn(u64) -> u64,
) -> SimResult {
    let p = p.max(1);
    let mut busy = vec![0u64; p];
    let mut finish = vec![0u64; p];
    let mut chunks = 0u64;
    let mut body_work = 0u64;
    let mut fetch_adds = 0u64;

    // Earliest-free processor grabs the next iteration, in index order.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..p).map(|q| Reverse((cost.fork, q))).collect();
    let mut prev_start: Option<u64> = None;

    for i in 0..n {
        let Reverse((t_free, q)) = heap.pop().expect("non-empty heap");
        fetch_adds += 1;
        let after_grab = t_free + cost.fetch_add;
        busy[q] += cost.fetch_add;
        // Pipeline constraint: wait for the predecessor's values.
        let start = match prev_start {
            Some(s) => after_grab.max(s + delay),
            None => after_grab,
        };
        prev_start = Some(start);
        let w = body(i);
        body_work += w;
        let dt = cost.loop_overhead + w;
        busy[q] += dt;
        heap.push(Reverse((start + dt, q)));
    }

    // Every processor performs one exhaustion grab and goes to the join.
    while let Some(Reverse((t, q))) = heap.pop() {
        fetch_adds += 1;
        busy[q] += cost.fetch_add;
        finish[q] = t + cost.fetch_add;
    }
    let arrive = finish.iter().copied().max().unwrap_or(0);
    SimResult {
        makespan: arrive + cost.barrier,
        busy,
        finish,
        chunks: {
            chunks += n;
            chunks
        },
        fetch_adds,
        body_work,
        iterations: n,
        // In-order dispatch: iteration i follows i-1 globally but hops
        // between processors; count a miss whenever a processor's next
        // iteration is not its previous + 1. With in-order single-iteration
        // grabs that is nearly every iteration beyond the first per
        // processor; we report 0 here — pipelined loops are dominated by
        // the delay term, not locality.
        locality_misses: 0,
    }
}

/// The classic pipeline speedup bound for a uniform body: one iteration
/// can start every `delay` instructions, so throughput is capped at
/// `body / delay` regardless of processor count — `min(p, body/delay)`.
pub fn pipeline_speedup_bound(p: usize, body: u64, delay: u64) -> f64 {
    if delay == 0 {
        return p as f64;
    }
    (p as f64).min(body as f64 / delay as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{sequential_time, simulate_loop, LoopSchedule};
    use lc_sched::policy::PolicyKind;

    const BODY: fn(u64) -> u64 = |_| 100;

    #[test]
    fn zero_delay_matches_doall_self_scheduling() {
        let cost = CostModel::default();
        let da = simulate_doacross(200, 8, 0, &cost, &BODY);
        let doall = simulate_loop(
            200,
            8,
            LoopSchedule::Dynamic(PolicyKind::SelfSched),
            &cost,
            &BODY,
        );
        // Identical dispatch and work models: same makespan.
        assert_eq!(da.makespan, doall.makespan);
    }

    #[test]
    fn full_delay_serializes() {
        // delay >= body + overheads: iteration i starts only after i-1
        // finishes — no speedup beyond overlap of dispatch.
        let cost = CostModel::free();
        let da = simulate_doacross(100, 8, 100, &cost, &BODY);
        let seq = sequential_time(100, &cost, &BODY);
        assert!(da.makespan >= seq, "{} < {seq}", da.makespan);
    }

    #[test]
    fn speedup_respects_pipeline_bound() {
        let cost = CostModel::free();
        for delay in [10u64, 25, 50] {
            let n = 400;
            let da = simulate_doacross(n, 16, delay, &cost, &BODY);
            let seq = sequential_time(n, &cost, &BODY);
            let speedup = seq as f64 / da.makespan as f64;
            let bound = pipeline_speedup_bound(16, 100, delay);
            assert!(
                speedup <= bound + 0.3,
                "delay={delay}: speedup {speedup:.2} exceeds bound {bound:.2}"
            );
            // And the pipeline does achieve most of its bound.
            assert!(
                speedup > bound * 0.7,
                "delay={delay}: speedup {speedup:.2} far below bound {bound:.2}"
            );
        }
    }

    #[test]
    fn more_delay_means_longer_makespan() {
        let cost = CostModel::default();
        let spans: Vec<u64> = [0u64, 20, 50, 100]
            .iter()
            .map(|&d| simulate_doacross(300, 8, d, &cost, &BODY).makespan)
            .collect();
        assert!(spans.windows(2).all(|w| w[0] <= w[1]), "{spans:?}");
    }

    #[test]
    fn single_processor_is_sequentialish() {
        let cost = CostModel::default();
        let da = simulate_doacross(50, 1, 30, &cost, &BODY);
        // One processor: the pipeline constraint never binds beyond the
        // processor's own serialization.
        let base = simulate_loop(
            50,
            1,
            LoopSchedule::Dynamic(PolicyKind::SelfSched),
            &cost,
            &BODY,
        );
        assert_eq!(da.makespan, base.makespan);
    }

    #[test]
    fn zero_iterations() {
        let cost = CostModel::default();
        let da = simulate_doacross(0, 4, 10, &cost, &BODY);
        assert_eq!(da.iterations, 0);
        assert_eq!(da.body_work, 0);
    }

    #[test]
    fn deterministic() {
        let cost = CostModel::default();
        let body = |i: u64| 20 + (i * 7919) % 97;
        let a = simulate_doacross(500, 8, 15, &cost, &body);
        let b = simulate_doacross(500, 8, 15, &cost, &body);
        assert_eq!(a, b);
    }
}
