//! Event-driven simulation of one parallel loop.
//!
//! The model: `p` processors share a [`Dispenser`]. Whenever a processor
//! becomes free it performs one fetch&add (paying [`CostModel::fetch_add`])
//! to grab the next chunk, then executes the chunk's iterations back to
//! back (paying per-iteration loop overhead plus the workload's body
//! cost). A processor that draws an empty chunk has discovered exhaustion
//! and proceeds to the barrier. The loop's makespan is the time the last
//! processor clears the barrier, measured from the fork.
//!
//! Determinism: ties in "earliest free processor" break toward the lowest
//! processor id, so a simulation is a pure function of its inputs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use lc_sched::policy::{static_assignment, Chunk, Dispenser, PolicyKind, StaticKind};

use crate::cost::CostModel;

/// Outcome of simulating one parallel loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimResult {
    /// Time from fork until the last processor clears the join barrier.
    pub makespan: u64,
    /// Per-processor busy time (dispatch + loop overhead + body work).
    pub busy: Vec<u64>,
    /// Per-processor time of arrival at the barrier.
    pub finish: Vec<u64>,
    /// Chunks dispatched.
    pub chunks: u64,
    /// Synchronized fetch&add operations (for static schedules: zero).
    pub fetch_adds: u64,
    /// Total body work dispatched (sum of body costs, excl. overheads).
    pub body_work: u64,
    /// Iterations executed.
    pub iterations: u64,
    /// Chunk starts that were not adjacent to the worker's previous
    /// iteration (each paid [`CostModel::locality_miss`]).
    pub locality_misses: u64,
}

impl SimResult {
    /// Utilization: busy time over `p × makespan`.
    pub fn utilization(&self) -> f64 {
        let p = self.busy.len() as f64;
        if self.makespan == 0 {
            return 1.0;
        }
        self.busy.iter().sum::<u64>() as f64 / (p * self.makespan as f64)
    }
}

/// How iterations are distributed to processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopSchedule {
    /// Dynamic dispatch through a shared counter with the given policy.
    Dynamic(PolicyKind),
    /// Static pre-assignment (no shared counter at run time).
    Static(StaticKind),
}

/// Simulate one parallel loop of `n` iterations on `p` processors.
///
/// `body(i)` gives the body cost of 0-based iteration `i` in abstract
/// instructions. The returned makespan includes the fork and barrier.
pub fn simulate_loop(
    n: u64,
    p: usize,
    schedule: LoopSchedule,
    cost: &CostModel,
    body: &dyn Fn(u64) -> u64,
) -> SimResult {
    let p = p.max(1);
    match schedule {
        LoopSchedule::Dynamic(kind) => simulate_dynamic(n, p, kind, cost, body),
        LoopSchedule::Static(kind) => simulate_static(n, p, kind, cost, body),
    }
}

/// Execute a chunk; `prev_end` is the worker's one-past-last previous
/// iteration. Returns (elapsed, new prev_end, miss count: 0 or 1).
fn run_chunk(
    chunk: Chunk,
    prev_end: Option<u64>,
    cost: &CostModel,
    body: &dyn Fn(u64) -> u64,
    body_work: &mut u64,
) -> (u64, Option<u64>, u64) {
    let mut t = 0;
    let miss = match prev_end {
        Some(pe) if pe == chunk.start => 0,
        None => 0, // first chunk: no previous line to lose
        _ => 1,
    };
    t += miss * cost.locality_miss;
    for i in chunk.start..chunk.end() {
        let w = body(i);
        *body_work += w;
        t += cost.loop_overhead + w;
    }
    (t, Some(chunk.end()), miss)
}

fn simulate_dynamic(
    n: u64,
    p: usize,
    kind: PolicyKind,
    cost: &CostModel,
    body: &dyn Fn(u64) -> u64,
) -> SimResult {
    let mut dispenser = Dispenser::with_kind(n, p, kind);
    let mut busy = vec![0u64; p];
    let mut finish = vec![0u64; p];
    let mut prev_end: Vec<Option<u64>> = vec![None; p];
    let mut chunks = 0u64;
    let mut body_work = 0u64;
    let mut locality_misses = 0u64;

    // Min-heap of (free-at time, processor id); all start after the fork.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..p).map(|q| Reverse((cost.fork, q))).collect();

    while let Some(Reverse((t, q))) = heap.pop() {
        // One fetch&add to grab.
        let t_after_grab = t + cost.fetch_add;
        busy[q] += cost.fetch_add;
        match dispenser.grab() {
            Some(chunk) => {
                chunks += 1;
                let (dt, pe, miss) = run_chunk(chunk, prev_end[q], cost, body, &mut body_work);
                prev_end[q] = pe;
                locality_misses += miss;
                busy[q] += dt;
                heap.push(Reverse((t_after_grab + dt, q)));
            }
            None => {
                finish[q] = t_after_grab;
            }
        }
    }

    let arrive = finish.iter().copied().max().unwrap_or(0);
    let makespan = arrive + cost.barrier;
    SimResult {
        makespan,
        busy,
        finish,
        chunks,
        fetch_adds: dispenser.fetch_ops(),
        body_work,
        iterations: n,
        locality_misses,
    }
}

fn simulate_static(
    n: u64,
    p: usize,
    kind: StaticKind,
    cost: &CostModel,
    body: &dyn Fn(u64) -> u64,
) -> SimResult {
    let assignment = static_assignment(n, p, kind);
    let mut busy = vec![0u64; p];
    let mut finish = vec![0u64; p];
    let mut chunks = 0u64;
    let mut body_work = 0u64;
    let mut locality_misses = 0u64;
    for (q, chunk_list) in assignment.iter().enumerate() {
        let mut t = cost.fork;
        let mut prev_end = None;
        for c in chunk_list {
            chunks += 1;
            let (dt, pe, miss) = run_chunk(*c, prev_end, cost, body, &mut body_work);
            prev_end = pe;
            locality_misses += miss;
            t += dt;
        }
        busy[q] = t - cost.fork;
        finish[q] = t;
    }
    let arrive = finish.iter().copied().max().unwrap_or(0);
    SimResult {
        makespan: arrive + cost.barrier,
        busy,
        finish,
        chunks,
        fetch_adds: 0,
        body_work,
        iterations: n,
        locality_misses,
    }
}

/// Time to execute the loop on one processor with no parallel machinery at
/// all (no fork, no dispatch, no barrier) — the sequential baseline for
/// speedup computations.
pub fn sequential_time(n: u64, cost: &CostModel, body: &dyn Fn(u64) -> u64) -> u64 {
    (0..n).map(|i| cost.loop_overhead + body(i)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    const UNIT: fn(u64) -> u64 = |_| 10;

    #[test]
    fn single_processor_matches_sequential_plus_overheads() {
        let cost = CostModel::default();
        let n = 20;
        let r = simulate_loop(
            n,
            1,
            LoopSchedule::Dynamic(PolicyKind::SelfSched),
            &cost,
            &UNIT,
        );
        let seq = sequential_time(n, &cost, &UNIT);
        // fork + (n+1) fetch_adds + body time + barrier
        assert_eq!(
            r.makespan,
            cost.fork + (n + 1) * cost.fetch_add + seq + cost.barrier
        );
        assert_eq!(r.iterations, n);
        assert_eq!(r.body_work, n * 10);
    }

    #[test]
    fn perfect_split_on_uniform_work() {
        // 100 unit iterations on 4 processors, free machine: makespan is
        // exactly a quarter of the sequential body time.
        let cost = CostModel::free();
        let r = simulate_loop(
            100,
            4,
            LoopSchedule::Static(StaticKind::Block),
            &cost,
            &UNIT,
        );
        assert_eq!(r.makespan, 25 * 10);
        assert!((r.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dynamic_self_scheduling_balances_skewed_work() {
        // One enormous iteration plus many tiny ones: static block puts the
        // spike together with a quarter of the rest on one processor;
        // SS isolates it.
        let body = |i: u64| if i == 0 { 1000 } else { 10 };
        let cost = CostModel::free();
        let stat = simulate_loop(
            100,
            4,
            LoopSchedule::Static(StaticKind::Block),
            &cost,
            &body,
        );
        let dyn_ = simulate_loop(
            100,
            4,
            LoopSchedule::Dynamic(PolicyKind::SelfSched),
            &cost,
            &body,
        );
        assert!(
            dyn_.makespan < stat.makespan,
            "SS {} !< static {}",
            dyn_.makespan,
            stat.makespan
        );
    }

    #[test]
    fn self_scheduling_pays_dispatch_costs() {
        // On a machine with expensive fetch&add, CSS beats SS on uniform
        // work because it amortizes dispatch.
        let cost = CostModel {
            fetch_add: 50,
            ..Default::default()
        };
        let ss = simulate_loop(
            1000,
            4,
            LoopSchedule::Dynamic(PolicyKind::SelfSched),
            &cost,
            &UNIT,
        );
        let css = simulate_loop(
            1000,
            4,
            LoopSchedule::Dynamic(PolicyKind::Chunked(50)),
            &cost,
            &UNIT,
        );
        assert!(css.makespan < ss.makespan);
        assert!(css.fetch_adds < ss.fetch_adds);
    }

    #[test]
    fn gss_dispatch_count_is_logarithmicish() {
        let cost = CostModel::default();
        let r = simulate_loop(
            10_000,
            8,
            LoopSchedule::Dynamic(PolicyKind::Guided),
            &cost,
            &UNIT,
        );
        assert!(r.chunks < 120, "{}", r.chunks);
        assert_eq!(r.iterations, 10_000);
    }

    #[test]
    fn zero_iterations_still_pays_fork_and_barrier() {
        let cost = CostModel::default();
        let r = simulate_loop(
            0,
            4,
            LoopSchedule::Dynamic(PolicyKind::SelfSched),
            &cost,
            &UNIT,
        );
        assert_eq!(r.makespan, cost.fork + cost.fetch_add + cost.barrier);
        assert_eq!(r.chunks, 0);
    }

    #[test]
    fn more_processors_than_iterations() {
        let cost = CostModel::free();
        let r = simulate_loop(
            3,
            16,
            LoopSchedule::Dynamic(PolicyKind::SelfSched),
            &cost,
            &UNIT,
        );
        assert_eq!(r.makespan, 10); // three processors run one iter each
        assert_eq!(r.iterations, 3);
    }

    #[test]
    fn determinism() {
        let body = |i: u64| (i * 2654435761) % 97;
        let cost = CostModel::default();
        let a = simulate_loop(
            500,
            7,
            LoopSchedule::Dynamic(PolicyKind::Guided),
            &cost,
            &body,
        );
        let b = simulate_loop(
            500,
            7,
            LoopSchedule::Dynamic(PolicyKind::Guided),
            &cost,
            &body,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn busy_plus_idle_accounts_for_makespan() {
        let body = |i: u64| if i.is_multiple_of(7) { 100 } else { 5 };
        let cost = CostModel::default();
        let r = simulate_loop(
            200,
            5,
            LoopSchedule::Dynamic(PolicyKind::Chunked(8)),
            &cost,
            &body,
        );
        for q in 0..5 {
            assert!(r.busy[q] <= r.finish[q], "busy exceeds finish for {q}");
            assert!(r.finish[q] <= r.makespan);
        }
    }

    #[test]
    fn locality_misses_follow_the_dispatch_shape() {
        let cost = CostModel::free();
        // Static block: one contiguous chunk per worker — zero misses.
        let block = simulate_loop(
            100,
            4,
            LoopSchedule::Static(StaticKind::Block),
            &cost,
            &UNIT,
        );
        assert_eq!(block.locality_misses, 0);
        // Static cyclic: every length-1 chunk after a worker's first is
        // non-adjacent — 96 misses.
        let cyc = simulate_loop(
            100,
            4,
            LoopSchedule::Static(StaticKind::Cyclic),
            &cost,
            &UNIT,
        );
        assert_eq!(cyc.locality_misses, 96);
        // CSS(25) on 4 workers: each grabs one chunk — zero misses.
        let css = simulate_loop(
            100,
            4,
            LoopSchedule::Dynamic(PolicyKind::Chunked(25)),
            &cost,
            &UNIT,
        );
        assert_eq!(css.locality_misses, 0);
    }

    #[test]
    fn locality_surcharge_slows_scattered_dispatch_only() {
        let base = CostModel::free();
        let pricey = CostModel::free().with_locality_miss(50);
        // Block schedules are immune.
        let a = simulate_loop(
            200,
            4,
            LoopSchedule::Static(StaticKind::Block),
            &base,
            &UNIT,
        );
        let b = simulate_loop(
            200,
            4,
            LoopSchedule::Static(StaticKind::Block),
            &pricey,
            &UNIT,
        );
        assert_eq!(a.makespan, b.makespan);
        // Cyclic schedules pay per iteration.
        let c = simulate_loop(
            200,
            4,
            LoopSchedule::Static(StaticKind::Cyclic),
            &base,
            &UNIT,
        );
        let d = simulate_loop(
            200,
            4,
            LoopSchedule::Static(StaticKind::Cyclic),
            &pricey,
            &UNIT,
        );
        assert!(d.makespan > c.makespan + 40 * 50);
    }

    #[test]
    fn static_cyclic_handles_linear_skew_better_than_block() {
        // Cost grows linearly with index: block gives the last processor
        // the heaviest band; cyclic interleaves.
        let body = |i: u64| i;
        let cost = CostModel::free();
        let block = simulate_loop(
            400,
            4,
            LoopSchedule::Static(StaticKind::Block),
            &cost,
            &body,
        );
        let cyclic = simulate_loop(
            400,
            4,
            LoopSchedule::Static(StaticKind::Cyclic),
            &cost,
            &body,
        );
        assert!(cyclic.makespan < block.makespan);
    }
}
