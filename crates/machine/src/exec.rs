//! Nest-level execution strategies: the alternatives the paper compares.
//!
//! Given a rectangular nest with trip counts `dims` and a per-iteration
//! body cost, [`simulate_nest`] measures the makespan and synchronization
//! traffic of:
//!
//! * [`ExecMode::Sequential`] — one processor, plain nested loops;
//! * [`ExecMode::OuterParallel`] — only the outermost loop is parallel and
//!   each dispatched outer iteration runs its inner subnest serially (the
//!   common manual parallelization: cheap, but exposes only `N_1` units of
//!   balance);
//! * [`ExecMode::InnerParallelSweep`] — outer levels serial, innermost
//!   level parallel, so a fork and a barrier are paid for *every* instance
//!   of the inner loop (the shape coalescing eliminates);
//! * [`ExecMode::Coalesced`] — one parallel loop over all `N` iterations,
//!   paying an index-recovery cost per iteration but a single fork/barrier
//!   and a single dispatch counter.

use lc_sched::policy::PolicyKind;

use crate::cost::CostModel;
use crate::sim::{simulate_loop, LoopSchedule, SimResult};

/// How to execute the nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One processor, nested serial loops, no parallel machinery.
    Sequential,
    /// Single parallel loop over the whole iteration space; `recovery_cost`
    /// abstract instructions are paid per iteration to recover indices
    /// (use `lc_xform::recovery::per_iteration_cost` or a measured value).
    Coalesced {
        /// Iteration distribution for the coalesced loop.
        schedule: LoopSchedule,
        /// Per-iteration index-recovery cost.
        recovery_cost: u64,
    },
    /// Parallel outermost loop, serial inner subnest per iteration.
    OuterParallel {
        /// Iteration distribution for the outer loop.
        schedule: LoopSchedule,
    },
    /// Serial outer levels; the innermost loop is a parallel loop, forked
    /// and joined once per instance.
    InnerParallelSweep {
        /// Iteration distribution for each inner-loop instance.
        schedule: LoopSchedule,
    },
}

impl ExecMode {
    /// Convenience: coalesced with dynamic policy `kind` and the given
    /// recovery cost.
    pub fn coalesced(kind: PolicyKind, recovery_cost: u64) -> ExecMode {
        ExecMode::Coalesced {
            schedule: LoopSchedule::Dynamic(kind),
            recovery_cost,
        }
    }

    /// Short display name for tables.
    pub fn name(&self) -> String {
        match self {
            ExecMode::Sequential => "SEQ".into(),
            ExecMode::Coalesced { schedule, .. } => format!("COAL/{}", schedule_name(schedule)),
            ExecMode::OuterParallel { schedule } => format!("OUTER/{}", schedule_name(schedule)),
            ExecMode::InnerParallelSweep { schedule } => {
                format!("INNER/{}", schedule_name(schedule))
            }
        }
    }
}

fn schedule_name(s: &LoopSchedule) -> String {
    match s {
        LoopSchedule::Dynamic(k) => k.name(),
        LoopSchedule::Static(lc_sched::policy::StaticKind::Block) => "BLOCK".into(),
        LoopSchedule::Static(lc_sched::policy::StaticKind::Cyclic) => "CYCLIC".into(),
    }
}

/// Aggregate result of executing a whole nest.
#[derive(Debug, Clone, PartialEq)]
pub struct NestResult {
    /// End-to-end simulated time.
    pub makespan: u64,
    /// Synchronized fetch&add operations.
    pub fetch_adds: u64,
    /// Barrier crossings (loop joins).
    pub barriers: u64,
    /// Parallel-loop forks.
    pub forks: u64,
    /// Chunks dispatched across all parallel loops.
    pub chunks: u64,
    /// Sum of body costs (for coalesced mode this includes the
    /// per-iteration recovery cost).
    pub body_work: u64,
    /// Innermost iterations executed.
    pub iterations: u64,
    /// Per-processor busy time, aggregated across all parallel loop
    /// instances (empty for sequential mode).
    pub busy: Vec<u64>,
}

/// Recover the 1-based index vector from a 0-based linear index (shared
/// implementation in `lc-space`).
fn recover(q: u64, dims: &[u64], out: &mut Vec<i64>) {
    lc_space::recover_divmod_into(q as i64 + 1, dims, out);
}

/// Exact serial execution time of the subnest `dims`, calling `body` with
/// `prefix ++ inner-indices`.
fn serial_time(
    dims: &[u64],
    prefix: &mut Vec<i64>,
    cost: &CostModel,
    body: &mut dyn FnMut(&[i64]) -> u64,
) -> u64 {
    match dims.split_first() {
        None => body(prefix),
        Some((&n, rest)) => {
            let mut t = 0;
            for i in 1..=n as i64 {
                prefix.push(i);
                t += cost.loop_overhead + serial_time(rest, prefix, cost, body);
                prefix.pop();
            }
            t
        }
    }
}

/// Simulate the nest under the chosen execution mode on `p` processors.
pub fn simulate_nest(
    dims: &[u64],
    p: usize,
    mode: ExecMode,
    cost: &CostModel,
    body: &dyn Fn(&[i64]) -> u64,
) -> NestResult {
    assert!(!dims.is_empty(), "empty nest");
    let n: u64 = dims.iter().product();

    match mode {
        ExecMode::Sequential => {
            let mut body_work = 0;
            let mut wrapped = |iv: &[i64]| {
                let w = body(iv);
                body_work += w;
                w
            };
            let mut prefix = Vec::new();
            let makespan = serial_time(dims, &mut prefix, cost, &mut wrapped);
            NestResult {
                makespan,
                fetch_adds: 0,
                barriers: 0,
                forks: 0,
                chunks: 0,
                body_work,
                iterations: n,
                busy: Vec::new(),
            }
        }
        ExecMode::Coalesced {
            schedule,
            recovery_cost,
        } => {
            let dims_owned = dims.to_vec();
            let linear_body = move |j: u64| {
                let mut iv = Vec::new();
                recover(j, &dims_owned, &mut iv);
                recovery_cost + body(&iv)
            };
            let r = simulate_loop(n, p, schedule, cost, &linear_body);
            from_single(r, 1)
        }
        ExecMode::OuterParallel { schedule } => {
            let inner_dims = dims[1..].to_vec();
            let outer_body = move |i0: u64| {
                let mut prefix = vec![i0 as i64 + 1];
                if inner_dims.is_empty() {
                    body(&prefix)
                } else {
                    let mut f = |iv: &[i64]| body(iv);
                    serial_time(&inner_dims, &mut prefix, cost, &mut f)
                }
            };
            let r = simulate_loop(dims[0], p, schedule, cost, &outer_body);
            let mut out = from_single(r, 1);
            out.iterations = n; // inner iterations ran inside each body
            out
        }
        ExecMode::InnerParallelSweep { schedule } => {
            let (outer_dims, inner_n) = (&dims[..dims.len() - 1], dims[dims.len() - 1]);
            let mut acc = NestResult {
                makespan: 0,
                fetch_adds: 0,
                barriers: 0,
                forks: 0,
                chunks: 0,
                body_work: 0,
                iterations: n,
                busy: vec![0; p.max(1)],
            };
            // Walk the outer iteration space serially.
            let outer_total: u64 = outer_dims.iter().product();
            let mut iv = Vec::new();
            for q in 0..outer_total.max(1) {
                if outer_dims.is_empty() {
                    iv.clear();
                } else {
                    recover(q, outer_dims, &mut iv);
                }
                let prefix = iv.clone();
                let inner_body = |ik: u64| {
                    let mut full = prefix.clone();
                    full.push(ik as i64 + 1);
                    body(&full)
                };
                let r = simulate_loop(inner_n, p, schedule, cost, &inner_body);
                acc.makespan += cost.loop_overhead + r.makespan;
                acc.fetch_adds += r.fetch_adds;
                acc.barriers += 1;
                acc.forks += 1;
                acc.chunks += r.chunks;
                acc.body_work += r.body_work;
                for (b, rb) in acc.busy.iter_mut().zip(&r.busy) {
                    *b += rb;
                }
            }
            acc
        }
    }
}

fn from_single(r: SimResult, forks: u64) -> NestResult {
    NestResult {
        makespan: r.makespan,
        fetch_adds: r.fetch_adds,
        barriers: 1,
        forks,
        chunks: r.chunks,
        body_work: r.body_work,
        iterations: r.iterations,
        busy: r.busy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_sched::policy::StaticKind;

    const UNIT: fn(&[i64]) -> u64 = |_| 10;

    fn dyn_ss() -> LoopSchedule {
        LoopSchedule::Dynamic(PolicyKind::SelfSched)
    }

    #[test]
    fn sequential_counts_headers_at_every_level() {
        let cost = CostModel::default();
        let r = simulate_nest(&[3, 4], 1, ExecMode::Sequential, &cost, &UNIT);
        // headers: 3 outer + 12 inner; body: 12 * 10.
        assert_eq!(r.makespan, (3 + 12) * cost.loop_overhead + 120);
        assert_eq!(r.iterations, 12);
        assert_eq!(r.fetch_adds + r.barriers + r.forks, 0);
    }

    #[test]
    fn coalesced_beats_inner_sweep_on_deep_nests() {
        let cost = CostModel::default();
        let dims = [8u64, 8, 8];
        let coal = simulate_nest(
            &dims,
            8,
            ExecMode::coalesced(PolicyKind::SelfSched, 12),
            &cost,
            &UNIT,
        );
        let sweep = simulate_nest(
            &dims,
            8,
            ExecMode::InnerParallelSweep { schedule: dyn_ss() },
            &cost,
            &UNIT,
        );
        assert!(
            coal.makespan < sweep.makespan,
            "coalesced {} !< sweep {}",
            coal.makespan,
            sweep.makespan
        );
        assert!(coal.forks < sweep.forks);
        assert_eq!(sweep.forks, 64);
    }

    #[test]
    fn coalesced_beats_outer_parallel_when_outer_is_narrow() {
        // N1 = 3 outer iterations on p = 8: outer-parallel wastes 5
        // processors; coalescing exposes all 3*64 iterations.
        let cost = CostModel::default();
        let dims = [3u64, 64];
        let coal = simulate_nest(
            &dims,
            8,
            ExecMode::coalesced(PolicyKind::Guided, 12),
            &cost,
            &UNIT,
        );
        let outer = simulate_nest(
            &dims,
            8,
            ExecMode::OuterParallel { schedule: dyn_ss() },
            &cost,
            &UNIT,
        );
        assert!(
            coal.makespan < outer.makespan,
            "coalesced {} !< outer {}",
            coal.makespan,
            outer.makespan
        );
    }

    #[test]
    fn outer_parallel_fine_when_outer_is_wide_and_uniform() {
        // N1 = 256 ≫ p: outer-parallel has plenty of balance and pays no
        // recovery cost, so it should be at least competitive.
        let cost = CostModel::default();
        let dims = [256u64, 16];
        let coal = simulate_nest(
            &dims,
            8,
            ExecMode::coalesced(PolicyKind::SelfSched, 12),
            &cost,
            &UNIT,
        );
        let outer = simulate_nest(
            &dims,
            8,
            ExecMode::OuterParallel { schedule: dyn_ss() },
            &cost,
            &UNIT,
        );
        assert!(outer.makespan <= coal.makespan);
    }

    #[test]
    fn all_parallel_modes_dispatch_all_iterations() {
        let cost = CostModel::default();
        let dims = [5u64, 6];
        for mode in [
            ExecMode::coalesced(PolicyKind::Guided, 5),
            ExecMode::OuterParallel { schedule: dyn_ss() },
            ExecMode::InnerParallelSweep { schedule: dyn_ss() },
        ] {
            let r = simulate_nest(&dims, 4, mode, &cost, &UNIT);
            assert_eq!(r.iterations, 30, "{}", mode.name());
            // Body work: every body instance ran exactly once (coalesced
            // mode adds recovery on top).
            assert!(r.body_work >= 300, "{}", mode.name());
        }
    }

    #[test]
    fn coalesced_body_work_includes_recovery() {
        let cost = CostModel::free();
        let r = simulate_nest(
            &[4, 4],
            2,
            ExecMode::coalesced(PolicyKind::SelfSched, 7),
            &cost,
            &UNIT,
        );
        assert_eq!(r.body_work, 16 * (10 + 7));
    }

    #[test]
    fn static_block_coalesced_matches_bound() {
        // Free machine, unit work: makespan = ceil(N/p) * body.
        let cost = CostModel::free();
        let r = simulate_nest(
            &[5, 5],
            4,
            ExecMode::Coalesced {
                schedule: LoopSchedule::Static(StaticKind::Block),
                recovery_cost: 0,
            },
            &cost,
            &UNIT,
        );
        assert_eq!(r.makespan, 7 * 10); // ceil(25/4) = 7
    }

    #[test]
    fn triangular_workload_imbalance_is_visible_in_busy() {
        // Body cost proportional to i1: outer-parallel static block leaves
        // the last processor with much more work.
        let body = |iv: &[i64]| iv[0] as u64;
        let cost = CostModel::free();
        let r = simulate_nest(
            &[64, 4],
            4,
            ExecMode::OuterParallel {
                schedule: LoopSchedule::Static(StaticKind::Block),
            },
            &cost,
            &body,
        );
        let max = *r.busy.iter().max().unwrap();
        let min = *r.busy.iter().min().unwrap();
        assert!(max > min * 2, "busy={:?}", r.busy);
    }

    #[test]
    fn recover_helper_is_rowmajor_lexicographic() {
        let mut iv = Vec::new();
        recover(0, &[2, 3], &mut iv);
        assert_eq!(iv, vec![1, 1]);
        recover(5, &[2, 3], &mut iv);
        assert_eq!(iv, vec![2, 3]);
        recover(3, &[2, 3], &mut iv);
        assert_eq!(iv, vec![2, 1]);
    }

    #[test]
    fn mode_names() {
        assert_eq!(ExecMode::Sequential.name(), "SEQ");
        assert_eq!(
            ExecMode::coalesced(PolicyKind::Guided, 0).name(),
            "COAL/GSS"
        );
        assert_eq!(
            ExecMode::OuterParallel {
                schedule: LoopSchedule::Static(StaticKind::Block)
            }
            .name(),
            "OUTER/BLOCK"
        );
    }
}
