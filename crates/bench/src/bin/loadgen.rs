//! `lc-loadgen` — replay the 72-program benchmark corpus against the
//! compile server and report throughput and latency quantiles.
//!
//! ```text
//! lc-loadgen [--addr HOST:PORT] [--concurrency N] [--rounds N]
//!            [--workers N] [--out PATH] [--best-of N]
//!            [--baseline PATH] [--max-regress PCT] [--analyze]
//! ```
//!
//! Without `--addr` the generator starts an in-process server (with
//! `--workers` compile workers) on a loopback port, drives it, and
//! shuts it down — one command produces a complete benchmark. The
//! report is printed human-readably and written as JSON to `--out`
//! (default `BENCH_service.json`).
//!
//! `--best-of N` repeats the whole measurement N times and reports the
//! run with the lowest p95 — the minimum is far less sensitive to
//! scheduler noise than any single run, which matters when gating.
//!
//! With `--baseline`, the (best) run's p95 latency is gated against the
//! `p95_micros` field of the given JSON report (itself a previous
//! `--out`): exceeding it by more than `--max-regress` percent
//! (default 25) exits nonzero. The committed baseline is a *typical*
//! single measurement while the gated run takes the best of five, so
//! ordinary scheduler noise lands inside the budget and only a real
//! slowdown — one that even the quietest of five runs can't hide —
//! trips the gate. Refresh the committed baseline with
//!
//! ```text
//! cargo run --release -p lc-bench --bin lc-loadgen -- \
//!     --rounds 20 --out BENCH_baseline.json
//! ```

use std::net::SocketAddr;
use std::process::ExitCode;

use lc_driver::json::Json;
use lc_service::corpus::corpus72;
use lc_service::loadgen::{check_p95_regression, run, LoadTarget, LoadgenConfig};
use lc_service::{Server, ServiceConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: lc-loadgen [--addr HOST:PORT] [--concurrency N] [--rounds N] [--workers N] \
         [--out PATH] [--best-of N] [--baseline PATH] [--max-regress PCT] [--analyze]"
    );
    ExitCode::FAILURE
}

/// Read `p95_micros` out of a previously-written loadgen report.
fn baseline_p95(path: &str) -> Result<u64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("{path} is not valid JSON: {e}"))?;
    match json.get("p95_micros") {
        Some(Json::Int(v)) if *v >= 0 => Ok(*v as u64),
        _ => Err(format!("{path} has no integer p95_micros field")),
    }
}

fn main() -> ExitCode {
    let mut config = LoadgenConfig::default();
    let mut addr: Option<SocketAddr> = None;
    let mut workers = 4usize;
    let mut out_path = "BENCH_service.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut max_regress_pct = 25u64;
    let mut best_of = 1usize;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "-h" {
            return usage();
        }
        // Value-less flags first; everything below consumes flag + value.
        if flag == "--analyze" {
            config.target = LoadTarget::Analyze;
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            eprintln!("lc-loadgen: {flag} needs a value");
            return usage();
        };
        match flag {
            "--addr" => match value.parse() {
                Ok(a) => addr = Some(a),
                Err(_) => {
                    eprintln!("lc-loadgen: bad --addr {value}");
                    return usage();
                }
            },
            "--concurrency" => match value.parse() {
                Ok(n) => config.concurrency = n,
                Err(_) => return usage(),
            },
            "--rounds" => match value.parse() {
                Ok(n) => config.rounds = n,
                Err(_) => return usage(),
            },
            "--workers" => match value.parse() {
                Ok(n) => workers = n,
                Err(_) => return usage(),
            },
            "--out" => out_path = value.clone(),
            "--baseline" => baseline_path = Some(value.clone()),
            "--best-of" => match value.parse() {
                Ok(n) if n >= 1 => best_of = n,
                _ => return usage(),
            },
            "--max-regress" => match value.parse() {
                Ok(n) => max_regress_pct = n,
                Err(_) => return usage(),
            },
            _ => {
                eprintln!("lc-loadgen: unknown flag {flag}");
                return usage();
            }
        }
        i += 2;
    }

    // Either drive an already-running server or bring up our own.
    let own_server = match addr {
        Some(_) => None,
        None => {
            let server = match Server::start(
                ServiceConfig {
                    workers,
                    ..ServiceConfig::default()
                },
                "127.0.0.1:0",
            ) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("lc-loadgen: cannot start in-process server: {e}");
                    return ExitCode::FAILURE;
                }
            };
            addr = Some(server.addr());
            Some(server)
        }
    };
    let addr = addr.expect("address resolved above");

    let corpus = corpus72();
    eprintln!(
        "lc-loadgen: {} programs x {} rounds at concurrency {} against {addr}{}",
        corpus.len(),
        config.rounds,
        config.concurrency,
        config.target.path()
    );
    let mut report = run(addr, &corpus, &config);
    for attempt in 1..best_of {
        let again = run(addr, &corpus, &config);
        eprintln!(
            "lc-loadgen: attempt {}: p95 {} us (best so far {} us)",
            attempt + 1,
            again.p95_micros,
            report.p95_micros.min(again.p95_micros)
        );
        if again.p95_micros < report.p95_micros {
            report = again;
        }
    }

    if let Some(server) = own_server {
        server.shutdown();
    }

    println!("requests    : {}", report.requests);
    println!("  200 OK    : {}", report.ok_200);
    println!("  429 shed  : {}", report.shed_429);
    println!("  other     : {}", report.other);
    println!("cache hits  : {}", report.cache_hits_observed);
    println!("elapsed     : {} us", report.elapsed_micros);
    println!(
        "throughput  : {}.{:03} req/s",
        report.throughput_milli_rps / 1000,
        report.throughput_milli_rps % 1000
    );
    println!("p50 latency : {} us", report.p50_micros);
    println!("p95 latency : {} us", report.p95_micros);
    println!("p99 latency : {} us", report.p99_micros);
    println!("max latency : {} us", report.max_micros);

    let json = report.to_json().to_string();
    if let Err(e) = std::fs::write(&out_path, format!("{json}\n")) {
        eprintln!("lc-loadgen: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("lc-loadgen: wrote {out_path}");

    if let Some(path) = baseline_path {
        let p95 = match baseline_p95(&path) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("lc-loadgen: {e}");
                return ExitCode::FAILURE;
            }
        };
        match check_p95_regression(report.p95_micros, p95, max_regress_pct) {
            Ok(()) => eprintln!(
                "lc-loadgen: p95 {} us within {max_regress_pct}% of baseline {p95} us",
                report.p95_micros
            ),
            Err(verdict) => {
                eprintln!("lc-loadgen: {verdict}");
                eprintln!(
                    "lc-loadgen: if intentional, refresh with: cargo run --release -p lc-bench \
                     --bin lc-loadgen -- --rounds 20 --out {path}"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
