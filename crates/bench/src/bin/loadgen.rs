//! `lc-loadgen` — replay the 72-program benchmark corpus against the
//! compile server and report throughput and latency quantiles.
//!
//! ```text
//! lc-loadgen [--addr HOST:PORT] [--concurrency N] [--rounds N]
//!            [--workers N] [--out PATH]
//! ```
//!
//! Without `--addr` the generator starts an in-process server (with
//! `--workers` compile workers) on a loopback port, drives it, and
//! shuts it down — one command produces a complete benchmark. The
//! report is printed human-readably and written as JSON to `--out`
//! (default `BENCH_service.json`).

use std::net::SocketAddr;
use std::process::ExitCode;

use lc_service::corpus::corpus72;
use lc_service::loadgen::{run, LoadgenConfig};
use lc_service::{Server, ServiceConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: lc-loadgen [--addr HOST:PORT] [--concurrency N] [--rounds N] [--workers N] [--out PATH]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut config = LoadgenConfig::default();
    let mut addr: Option<SocketAddr> = None;
    let mut workers = 4usize;
    let mut out_path = "BENCH_service.json".to_string();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "-h" {
            return usage();
        }
        let Some(value) = args.get(i + 1) else {
            eprintln!("lc-loadgen: {flag} needs a value");
            return usage();
        };
        match flag {
            "--addr" => match value.parse() {
                Ok(a) => addr = Some(a),
                Err(_) => {
                    eprintln!("lc-loadgen: bad --addr {value}");
                    return usage();
                }
            },
            "--concurrency" => match value.parse() {
                Ok(n) => config.concurrency = n,
                Err(_) => return usage(),
            },
            "--rounds" => match value.parse() {
                Ok(n) => config.rounds = n,
                Err(_) => return usage(),
            },
            "--workers" => match value.parse() {
                Ok(n) => workers = n,
                Err(_) => return usage(),
            },
            "--out" => out_path = value.clone(),
            _ => {
                eprintln!("lc-loadgen: unknown flag {flag}");
                return usage();
            }
        }
        i += 2;
    }

    // Either drive an already-running server or bring up our own.
    let own_server = match addr {
        Some(_) => None,
        None => {
            let server = match Server::start(
                ServiceConfig {
                    workers,
                    ..ServiceConfig::default()
                },
                "127.0.0.1:0",
            ) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("lc-loadgen: cannot start in-process server: {e}");
                    return ExitCode::FAILURE;
                }
            };
            addr = Some(server.addr());
            Some(server)
        }
    };
    let addr = addr.expect("address resolved above");

    let corpus = corpus72();
    eprintln!(
        "lc-loadgen: {} programs x {} rounds at concurrency {} against {addr}",
        corpus.len(),
        config.rounds,
        config.concurrency
    );
    let report = run(addr, &corpus, &config);

    if let Some(server) = own_server {
        server.shutdown();
    }

    println!("requests    : {}", report.requests);
    println!("  200 OK    : {}", report.ok_200);
    println!("  429 shed  : {}", report.shed_429);
    println!("  other     : {}", report.other);
    println!("cache hits  : {}", report.cache_hits_observed);
    println!("elapsed     : {} us", report.elapsed_micros);
    println!(
        "throughput  : {}.{:03} req/s",
        report.throughput_milli_rps / 1000,
        report.throughput_milli_rps % 1000
    );
    println!("p50 latency : {} us", report.p50_micros);
    println!("p95 latency : {} us", report.p95_micros);
    println!("p99 latency : {} us", report.p99_micros);
    println!("max latency : {} us", report.max_micros);

    let json = report.to_json().to_string();
    if let Err(e) = std::fs::write(&out_path, format!("{json}\n")) {
        eprintln!("lc-loadgen: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("lc-loadgen: wrote {out_path}");
    ExitCode::SUCCESS
}
