//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments all          # everything
//! experiments T1 T3 F4     # a subset
//! experiments --json all   # machine-readable output
//! experiments --list       # what exists
//! ```

use lc_bench::registry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return;
    }
    if args.iter().any(|a| a == "--list") {
        for (id, desc, _) in registry() {
            println!("  {id}  {desc}");
        }
        return;
    }

    let json = args.iter().any(|a| a == "--json");
    let run_all = args.iter().any(|a| a.eq_ignore_ascii_case("all"));

    // Every non-flag argument must name a registered experiment (or
    // `all`); a typo like `T9` must fail loudly, not vanish.
    let unknown: Vec<&String> = args
        .iter()
        .filter(|a| {
            !a.starts_with('-')
                && !a.eq_ignore_ascii_case("all")
                && !registry()
                    .iter()
                    .any(|(id, _, _)| a.eq_ignore_ascii_case(id))
        })
        .collect();
    if !unknown.is_empty() {
        for a in &unknown {
            eprintln!("unknown experiment id: {a}");
        }
        print_usage();
        std::process::exit(1);
    }

    let mut matched = 0;
    let mut json_tables = Vec::new();
    for (id, desc, runner) in registry() {
        let wanted = run_all || args.iter().any(|a| a.eq_ignore_ascii_case(id));
        if !wanted {
            continue;
        }
        matched += 1;
        eprintln!("running {id}: {desc} ...");
        for table in runner() {
            if json {
                json_tables.push(table.to_json());
            } else {
                println!("{table}");
            }
        }
    }
    if json && matched > 0 {
        println!("[{}]", json_tables.join(","));
    }
    if matched == 0 {
        eprintln!("no experiment matched {args:?}");
        print_usage();
        std::process::exit(1);
    }
}

fn print_usage() {
    eprintln!("usage: experiments [--json] [all | --list | T1..T4 F1..F6 A1 ...]");
    eprintln!("regenerates the evaluation tables/figures; see DESIGN.md section 4");
}
