//! `lc-lint` — run the static legality & race analyzer over DSL
//! sources from the command line.
//!
//! ```text
//! lc-lint [FILE...] [--corpus] [--format text|json]
//!         [--deny SPEC]... [--allow SPEC]... [--warn SPEC]...
//! ```
//!
//! Inputs are positional files, or the built-in 72-program benchmark
//! corpus with `--corpus` (both may be combined; corpus programs come
//! first). `SPEC` is a lint code (`LC001`), a slug (`doall-race`), or
//! `all`; severity flags apply left to right on top of the default
//! everything-at-`warn` configuration.
//!
//! `--format text` (default) prints rustc-flavoured diagnostics to
//! stdout; `--format json` prints the corpus report
//! (`[{"index":…,"findings":[…]}, …]`), byte-stable for a given input
//! set, which CI diffs against `tests/fixtures/corpus_lints.json`.
//!
//! Exit status: 0 when no finding reached `deny`, 1 when at least one
//! did, 2 on usage or I/O errors.

use std::process::ExitCode;

use lc_lint::render::{corpus_report_json, finding_to_text};
use lc_lint::{lint_source, Finding, LintSet, Severity};
use lc_service::corpus::corpus72;

const USAGE: &str = "usage: lc-lint [FILE...] [--corpus] [--format text|json]
               [--deny SPEC]... [--allow SPEC]... [--warn SPEC]...
  FILE           DSL source file(s) to analyze
  --corpus       analyze the built-in 72-program benchmark corpus
  --format FMT   text (default) or json (the committed corpus report)
  --deny SPEC    escalate a lint to deny   (SPEC: LC001 | doall-race | all)
  --allow SPEC   silence a lint
  --warn SPEC    reset a lint to warn";

enum Format {
    Text,
    Json,
}

struct Args {
    files: Vec<String>,
    corpus: bool,
    format: Format,
    set: LintSet,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        files: Vec::new(),
        corpus: false,
        format: Format::Text,
        set: LintSet::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--corpus" => args.corpus = true,
            "--format" => {
                args.format = match take("--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("bad --format {other:?} (text or json)")),
                };
            }
            "--deny" => args.set.set_by_name(&take("--deny")?, Severity::Deny)?,
            "--allow" => args.set.set_by_name(&take("--allow")?, Severity::Allow)?,
            "--warn" => args.set.set_by_name(&take("--warn")?, Severity::Warn)?,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other:?}")),
            file => args.files.push(file.to_string()),
        }
    }
    if !args.corpus && args.files.is_empty() {
        return Err("nothing to analyze: pass FILE(s) or --corpus".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lc-lint: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    // (label, source) per input, corpus first.
    let mut inputs: Vec<(String, String)> = Vec::new();
    if args.corpus {
        for (i, src) in corpus72().iter().enumerate() {
            inputs.push((format!("corpus[{i}]"), src.clone()));
        }
    }
    for path in &args.files {
        match std::fs::read_to_string(path) {
            Ok(src) => inputs.push((path.clone(), src)),
            Err(e) => {
                eprintln!("lc-lint: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let mut per_program: Vec<(usize, Vec<Finding>)> = Vec::new();
    for (index, (label, src)) in inputs.iter().enumerate() {
        match lint_source(src, &args.set) {
            Ok(findings) => per_program.push((index, findings)),
            Err(e) => {
                eprintln!("lc-lint: {label}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let mut denied = 0usize;
    let mut total = 0usize;
    for (_, findings) in &per_program {
        total += findings.len();
        denied += findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
            .count();
    }

    match args.format {
        Format::Json => print!("{}", corpus_report_json(&per_program)),
        Format::Text => {
            for ((_, findings), (label, _)) in per_program.iter().zip(&inputs) {
                for f in findings {
                    print!("{label}: {}", finding_to_text(f));
                }
            }
            eprintln!(
                "lc-lint: {} program(s), {total} finding(s), {denied} denied",
                inputs.len()
            );
        }
    }

    if denied > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
