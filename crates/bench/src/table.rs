//! Plain-text aligned tables for experiment output.

use std::fmt;

/// A rendered experiment table (or one series of a figure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Experiment id (e.g. `T3`, `F1`).
    pub id: &'static str,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (stringified cells).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Construct a table; headers fix the column count.
    pub fn new(id: &'static str, title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            id,
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in table {}",
            self.id
        );
        self.rows.push(cells);
    }

    /// Find a column index by header name.
    pub fn col(&self, header: &str) -> Option<usize> {
        self.headers.iter().position(|h| h == header)
    }

    /// Parse a cell as `f64` (used by the self-checking tests).
    pub fn cell_f64(&self, row: usize, header: &str) -> Option<f64> {
        let c = self.col(header)?;
        self.rows.get(row)?.get(c)?.parse().ok()
    }

    /// Render the table as a JSON object (hand-rolled; cells stay strings
    /// so the output is a faithful transcript of the text table).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"id\":{},", json_str(self.id)));
        out.push_str(&format!("\"title\":{},", json_str(&self.title)));
        out.push_str("\"headers\":[");
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(h));
        }
        out.push_str("],\"rows\":[");
        for (r, row) in self.rows.iter().enumerate() {
            if r > 0 {
                out.push(',');
            }
            out.push('[');
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json_str(cell));
            }
            out.push(']');
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "\n[{}] {}", self.id, self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "  ")?;
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, "{cell:>w$}  ", w = w)?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(f, &rule)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("T0", "demo", &["n", "value"]);
        t.row(vec!["1".into(), "short".into()]);
        t.row(vec!["1000".into(), "x".into()]);
        let s = t.to_string();
        assert!(s.contains("demo"));
        assert!(s.contains("1000"));
        // Every data line has the same length.
        let lines: Vec<&str> = s.lines().filter(|l| !l.trim().is_empty()).collect();
        let widths: Vec<usize> = lines[1..].iter().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_enforced() {
        let mut t = Table::new("T0", "demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn json_output_is_wellformed_and_escaped() {
        let mut t = Table::new("T0", "demo \"quoted\"", &["n", "text"]);
        t.row(vec!["1".into(), "a\\b\nc".into()]);
        let j = t.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\\\"quoted\\\""), "{j}");
        assert!(j.contains("\\\\b\\nc"), "{j}");
        assert!(j.contains("\"headers\":[\"n\",\"text\"]"));
    }

    #[test]
    fn cell_lookup() {
        let mut t = Table::new("T0", "demo", &["n", "speedup"]);
        t.row(vec!["4".into(), "3.91".into()]);
        assert_eq!(t.cell_f64(0, "speedup"), Some(3.91));
        assert_eq!(t.cell_f64(0, "missing"), None);
        assert_eq!(t.col("n"), Some(0));
    }
}
