//! `lc-bench` — the experiment harness.
//!
//! Each module under [`experiments`] regenerates one table or figure of
//! the (reconstructed) evaluation; see `DESIGN.md` §4 for the experiment
//! index and `EXPERIMENTS.md` for expected-vs-measured. The `experiments`
//! binary prints any subset:
//!
//! ```text
//! cargo run -p lc-bench --release --bin experiments -- all
//! cargo run -p lc-bench --release --bin experiments -- T1 F4
//! ```
//!
//! The Criterion benches (`cargo bench -p lc-bench`) time the
//! computational cores of the same experiments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod table;

pub use table::Table;

/// An experiment entry: `(id, description, runner)`.
pub type Experiment = (&'static str, &'static str, fn() -> Vec<Table>);

/// The experiment registry.
pub fn registry() -> Vec<Experiment> {
    vec![
        (
            "T1",
            "index-recovery cost per scheme and nest depth",
            experiments::t1::run,
        ),
        (
            "T2",
            "dispatch/synchronization operations: nested vs coalesced",
            experiments::t2::run,
        ),
        (
            "T3",
            "static schedule length: ceil(N/p) vs best nested allocation",
            experiments::t3::run,
        ),
        (
            "T4",
            "granularity crossover: body size where coalescing pays",
            experiments::t4::run,
        ),
        (
            "T5",
            "per-kernel simulated speedups with IR-measured body costs",
            experiments::t5::run,
        ),
        (
            "F1",
            "speedup vs processors, scheduler x dispatch-shape matrix",
            experiments::f1::run,
        ),
        (
            "F2",
            "load imbalance vs processors on triangular work",
            experiments::f2::run,
        ),
        (
            "F3",
            "GSS chunk decay and makespan under irregular work",
            experiments::f3::run,
        ),
        (
            "F4",
            "overhead vs nest depth at fixed N",
            experiments::f4::run,
        ),
        (
            "F5",
            "real-thread wall-clock speedup (host machine)",
            experiments::f5::run,
        ),
        (
            "F6",
            "legality boundary: doacross pipelining vs interchange+coalesce",
            experiments::f6::run,
        ),
        (
            "F7",
            "locality vs dispatch granularity (chunking ablation)",
            experiments::f7::run,
        ),
        (
            "A1",
            "collapse-band advisor vs exhaustive simulation (ablation)",
            experiments::a1::run,
        ),
    ]
}

/// Look up and run one experiment by id (case-insensitive).
pub fn run_experiment(id: &str) -> Option<Vec<Table>> {
    registry()
        .into_iter()
        .find(|(eid, _, _)| eid.eq_ignore_ascii_case(id))
        .map(|(_, _, f)| f())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_complete() {
        let reg = registry();
        assert_eq!(reg.len(), 13);
        let mut ids: Vec<_> = reg.iter().map(|(id, _, _)| *id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 13);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(run_experiment("t3").is_some());
        assert!(run_experiment("T3").is_some());
        assert!(run_experiment("nope").is_none());
    }
}
