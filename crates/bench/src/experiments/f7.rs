//! **F7 — locality vs dispatch granularity (ablation).**
//!
//! Self-scheduling scatters consecutive iterations across processors; on
//! machines where a non-adjacent iteration costs a cache refill, that
//! scattering has a price the dispatch-count tables don't show. This
//! figure sweeps the locality-miss surcharge on a uniform coalesced loop
//! and reports each policy's makespan and miss count: SS degrades
//! linearly with the surcharge, CSS/GSS/BLOCK barely move — the locality
//! argument for chunked dispatch of a coalesced loop.

use lc_machine::cost::CostModel;
use lc_machine::sim::{simulate_loop, LoopSchedule};
use lc_sched::policy::{PolicyKind, StaticKind};

use crate::table::Table;

const N: u64 = 4096;
const P: usize = 16;
const BODY: u64 = 20;

/// The compared schedules.
pub fn schedules() -> Vec<(&'static str, LoopSchedule)> {
    vec![
        ("SS", LoopSchedule::Dynamic(PolicyKind::SelfSched)),
        ("CSS(16)", LoopSchedule::Dynamic(PolicyKind::Chunked(16))),
        ("CSS(128)", LoopSchedule::Dynamic(PolicyKind::Chunked(128))),
        ("GSS", LoopSchedule::Dynamic(PolicyKind::Guided)),
        ("FAC", LoopSchedule::Dynamic(PolicyKind::Factoring)),
        ("BLOCK", LoopSchedule::Static(StaticKind::Block)),
        ("CYCLIC", LoopSchedule::Static(StaticKind::Cyclic)),
    ]
}

/// `(makespan, misses)` for one schedule under one miss surcharge.
pub fn cell(schedule: LoopSchedule, miss_cost: u64) -> (u64, u64) {
    let cost = CostModel::default().with_locality_miss(miss_cost);
    let r = simulate_loop(N, P, schedule, &cost, &|_| BODY);
    (r.makespan, r.locality_misses)
}

/// Build the tables: makespans per surcharge, plus the miss counts.
pub fn run() -> Vec<Table> {
    let sweeps = [0u64, 8, 32, 128];
    let mut headers: Vec<String> = vec!["schedule".into(), "misses".into()];
    headers.extend(sweeps.iter().map(|m| format!("miss={m}")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut t = Table::new(
        "F7",
        format!("coalesced-loop makespan vs locality-miss cost, N={N}, p={P}, body={BODY}"),
        &header_refs,
    );
    for (name, sched) in schedules() {
        let misses = cell(sched, 0).1;
        let mut row = vec![name.to_string(), misses.to_string()];
        for &m in &sweeps {
            row.push(cell(sched, m).0.to_string());
        }
        t.row(row);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ss_scatters_and_pays_for_it() {
        let (base, misses) = cell(LoopSchedule::Dynamic(PolicyKind::SelfSched), 0);
        // SS hands out singles: nearly every chunk is non-adjacent.
        assert!(
            misses > N / 2,
            "SS should scatter most iterations: {misses}"
        );
        let (pricey, _) = cell(LoopSchedule::Dynamic(PolicyKind::SelfSched), 128);
        assert!(
            pricey as f64 > base as f64 * 2.0,
            "SS must degrade badly: {base} -> {pricey}"
        );
    }

    #[test]
    fn chunked_and_block_schedules_are_nearly_immune() {
        for (name, sched) in [
            ("CSS(128)", LoopSchedule::Dynamic(PolicyKind::Chunked(128))),
            ("GSS", LoopSchedule::Dynamic(PolicyKind::Guided)),
            ("BLOCK", LoopSchedule::Static(StaticKind::Block)),
        ] {
            let (base, misses) = cell(sched, 0);
            // GSS dispatches ~p·ln(N/p) ≈ 90 chunks; each is at worst one
            // miss — still two orders of magnitude below SS's ~N.
            assert!(misses < 128, "{name}: {misses} misses");
            let (pricey, _) = cell(sched, 128);
            assert!(
                (pricey as f64) < base as f64 * 1.2,
                "{name}: {base} -> {pricey}"
            );
        }
    }

    #[test]
    fn locality_flips_the_ss_vs_css_verdict() {
        // With free locality, SS and CSS(16) are close on uniform work;
        // with a 128-op surcharge CSS(16) wins decisively.
        let ss_0 = cell(LoopSchedule::Dynamic(PolicyKind::SelfSched), 0).0;
        let css_0 = cell(LoopSchedule::Dynamic(PolicyKind::Chunked(16)), 0).0;
        assert!((ss_0 as f64 / css_0 as f64) < 1.6);
        let ss_128 = cell(LoopSchedule::Dynamic(PolicyKind::SelfSched), 128).0;
        let css_128 = cell(LoopSchedule::Dynamic(PolicyKind::Chunked(16)), 128).0;
        assert!(
            ss_128 as f64 > css_128 as f64 * 1.5,
            "SS {ss_128} vs CSS {css_128}"
        );
    }

    #[test]
    fn cyclic_is_the_worst_case_for_locality() {
        let (_, cyc_misses) = cell(LoopSchedule::Static(StaticKind::Cyclic), 0);
        let (_, ss_misses) = cell(LoopSchedule::Dynamic(PolicyKind::SelfSched), 0);
        assert!(cyc_misses >= ss_misses, "{cyc_misses} < {ss_misses}");
        assert_eq!(cyc_misses, N - P as u64); // every chunk after each worker's first
    }
}
