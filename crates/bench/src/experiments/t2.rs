//! **T2 — dispatch/synchronization operations: nested vs coalesced.**
//!
//! The paper's central count: executing a nest with per-level
//! self-scheduling pays a fetch&add per iteration *per level instance*
//! plus a barrier per loop instance, while the coalesced loop pays one
//! counter and one barrier. Rows sweep nest shapes and processor counts;
//! columns give total synchronized operations for nested, outer-only, and
//! coalesced dispatch under SS and GSS.

use lc_sched::dispatch::{coalesced_dispatch, nested_dispatch, outer_only_dispatch};
use lc_sched::policy::PolicyKind;

use crate::table::Table;

/// Shapes and processor counts the table sweeps.
pub fn cases() -> Vec<(Vec<u64>, usize)> {
    vec![
        (vec![100, 100], 4),
        (vec![100, 100], 16),
        (vec![100, 100], 64),
        (vec![10, 10, 10], 16),
        (vec![4, 4, 4, 4], 16),
        (vec![32, 8, 4], 16),
    ]
}

/// Build the table.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "T2",
        "synchronization operations (fetch&adds + barriers) per nest execution",
        &[
            "dims",
            "p",
            "nested SS",
            "outer SS",
            "coal SS",
            "coal GSS",
            "nested/coal",
        ],
    );
    for (dims, p) in cases() {
        let nested = nested_dispatch(&dims, p, PolicyKind::SelfSched).total_sync_ops();
        let outer = outer_only_dispatch(&dims, p, PolicyKind::SelfSched).total_sync_ops();
        let coal = coalesced_dispatch(&dims, p, PolicyKind::SelfSched).total_sync_ops();
        let coal_gss = coalesced_dispatch(&dims, p, PolicyKind::Guided).total_sync_ops();
        t.row(vec![
            format!("{dims:?}"),
            p.to_string(),
            nested.to_string(),
            outer.to_string(),
            coal.to_string(),
            coal_gss.to_string(),
            format!("{:.1}", nested as f64 / coal as f64),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesced_always_beats_nested() {
        let t = &run()[0];
        for r in 0..t.rows.len() {
            let nested = t.cell_f64(r, "nested SS").unwrap();
            let coal = t.cell_f64(r, "coal SS").unwrap();
            assert!(coal < nested, "row {r}: {coal} !< {nested}");
        }
    }

    #[test]
    fn gss_beats_ss_on_sync_traffic() {
        let t = &run()[0];
        for r in 0..t.rows.len() {
            let ss = t.cell_f64(r, "coal SS").unwrap();
            let gss = t.cell_f64(r, "coal GSS").unwrap();
            assert!(gss < ss, "row {r}");
        }
    }

    #[test]
    fn savings_ratio_grows_with_depth() {
        let t = &run()[0];
        // rows 1 (100x100, p=16) vs 3 (10x10x10, p=16) vs 4 (4^4, p=16):
        // same-order iteration counts, deeper nests → larger ratio.
        let r2 = t.cell_f64(1, "nested/coal").unwrap();
        let r3 = t.cell_f64(3, "nested/coal").unwrap();
        let r4 = t.cell_f64(4, "nested/coal").unwrap();
        assert!(r3 > r2 * 0.9, "depth-3 ratio unexpectedly small");
        assert!(r4 > r3, "ratio must grow with depth: {r3} !< {r4}");
    }

    #[test]
    fn outer_only_is_cheapest_on_sync_but_limited() {
        // Outer-only dispatch has the fewest sync ops (it only dispatches
        // N1) — the paper's point is that it loses on *balance*, not on
        // sync count; F1/F2 show the balance side.
        let t = &run()[0];
        for r in 0..t.rows.len() {
            let outer = t.cell_f64(r, "outer SS").unwrap();
            let coal = t.cell_f64(r, "coal SS").unwrap();
            assert!(outer <= coal, "row {r}");
        }
    }
}
