//! **F3 — GSS chunk decay and makespan under irregular work.**
//!
//! Two views of guided self-scheduling on a coalesced loop:
//!
//! 1. the chunk-size sequence for `N = 1000` at several processor counts
//!    (the geometric decay curve of the GSS paper), and
//! 2. makespans of the policy matrix on a coalesced 64×64 loop whose body
//!    cost is random / bimodal — the regime where big static chunks lose
//!    and pure SS drowns in dispatch, leaving GSS/factoring in front.

use lc_machine::cost::CostModel;
use lc_machine::exec::{simulate_nest, ExecMode};
use lc_machine::sim::LoopSchedule;
use lc_sched::policy::{Dispenser, PolicyKind, StaticKind};
use lc_workloads::itertime::WorkModel;
use lc_xform::recovery::{per_iteration_cost, RecoveryScheme};

use crate::table::Table;

/// Chunk sizes GSS hands out for `n` iterations on `p` processors.
pub fn gss_chunks(n: u64, p: usize) -> Vec<u64> {
    Dispenser::with_kind(n, p, PolicyKind::Guided)
        .drain()
        .iter()
        .map(|c| c.len)
        .collect()
}

const DIMS: [u64; 2] = [64, 64];
const P: usize = 16;

/// The irregular workloads compared.
pub fn workloads() -> Vec<WorkModel> {
    vec![
        WorkModel::Random {
            base: 10,
            spread: 200,
            seed: 7,
        },
        WorkModel::Bimodal {
            light: 10,
            heavy: 1000,
            heavy_every: 13,
        },
        WorkModel::Constant(100),
    ]
}

/// The policy matrix on the coalesced loop.
pub fn policies() -> Vec<(&'static str, LoopSchedule)> {
    vec![
        ("SS", LoopSchedule::Dynamic(PolicyKind::SelfSched)),
        ("CSS(64)", LoopSchedule::Dynamic(PolicyKind::Chunked(64))),
        ("GSS", LoopSchedule::Dynamic(PolicyKind::Guided)),
        ("TSS", LoopSchedule::Dynamic(PolicyKind::Trapezoid)),
        ("FAC", LoopSchedule::Dynamic(PolicyKind::Factoring)),
        ("BLOCK", LoopSchedule::Static(StaticKind::Block)),
    ]
}

/// Makespan of one (workload, policy) cell.
pub fn makespan(model: WorkModel, schedule: LoopSchedule) -> u64 {
    let cost = CostModel::default();
    let rec = per_iteration_cost(RecoveryScheme::Ceiling, &DIMS).units();
    let body = move |iv: &[i64]| model.cost(iv);
    simulate_nest(
        &DIMS,
        P,
        ExecMode::Coalesced {
            schedule,
            recovery_cost: rec,
        },
        &cost,
        &body,
    )
    .makespan
}

/// Build the tables.
pub fn run() -> Vec<Table> {
    let mut decay = Table::new(
        "F3",
        "GSS chunk-size sequence, N=1000",
        &["dispatch #", "p=4", "p=16"],
    );
    let c4 = gss_chunks(1000, 4);
    let c16 = gss_chunks(1000, 16);
    for i in 0..c4.len().max(c16.len()).min(24) {
        decay.row(vec![
            (i + 1).to_string(),
            c4.get(i).map(|v| v.to_string()).unwrap_or_default(),
            c16.get(i).map(|v| v.to_string()).unwrap_or_default(),
        ]);
    }

    let pol = policies();
    let mut headers: Vec<&str> = vec!["workload"];
    headers.extend(pol.iter().map(|(n, _)| *n));
    let mut mk = Table::new(
        "F3",
        format!("coalesced-loop makespan by policy, {DIMS:?}, p={P}"),
        &headers,
    );
    for model in workloads() {
        let mut row = vec![model.name()];
        for (_, schedule) in &pol {
            row.push(makespan(model, *schedule).to_string());
        }
        mk.row(row);
    }
    vec![decay, mk]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gss_chunks_decay_and_sum_to_n() {
        for p in [4usize, 16] {
            let chunks = gss_chunks(1000, p);
            assert_eq!(chunks.iter().sum::<u64>(), 1000);
            assert!(chunks.windows(2).all(|w| w[0] >= w[1]), "{chunks:?}");
            assert_eq!(chunks[0], 1000u64.div_ceil(p as u64));
        }
    }

    #[test]
    fn gss_beats_ss_and_block_on_random_work() {
        let model = workloads()[0];
        let gss = makespan(model, LoopSchedule::Dynamic(PolicyKind::Guided));
        let ss = makespan(model, LoopSchedule::Dynamic(PolicyKind::SelfSched));
        let block = makespan(model, LoopSchedule::Static(StaticKind::Block));
        assert!(gss < ss, "GSS {gss} !< SS {ss}");
        assert!(gss <= block, "GSS {gss} !<= BLOCK {block}");
    }

    #[test]
    fn dynamic_policies_beat_block_on_bimodal_work() {
        // The bimodal spikes cluster on whole rows (the period applies to
        // the outer index), so adaptive decaying policies beat BLOCK but
        // fixed CSS(64) — one row per chunk — cannot.
        let model = workloads()[1];
        let block = makespan(model, LoopSchedule::Static(StaticKind::Block));
        for kind in [
            PolicyKind::Guided,
            PolicyKind::Trapezoid,
            PolicyKind::Factoring,
        ] {
            let m = makespan(model, LoopSchedule::Dynamic(kind));
            assert!(m < block, "{kind:?} {m} !< BLOCK {block}");
        }
    }

    #[test]
    fn pure_ss_wins_on_row_clustered_spikes() {
        // Heavy iterations arrive in runs of 64 (whole rows): only the
        // finest-grained dispatch splits a run across processors, so SS
        // decisively beats every chunked policy here — the counterpoint
        // to the uniform-work case where SS drowns in dispatch cost.
        let model = workloads()[1];
        let ss = makespan(model, LoopSchedule::Dynamic(PolicyKind::SelfSched));
        let gss = makespan(model, LoopSchedule::Dynamic(PolicyKind::Guided));
        assert!(ss < gss, "SS {ss} !< GSS {gss}");
    }

    #[test]
    fn on_uniform_work_all_reasonable_policies_are_close() {
        let model = workloads()[2]; // constant
        let gss = makespan(model, LoopSchedule::Dynamic(PolicyKind::Guided));
        let block = makespan(model, LoopSchedule::Static(StaticKind::Block));
        let ratio = gss as f64 / block as f64;
        assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
    }
}
