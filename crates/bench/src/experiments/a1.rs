//! **A1 — collapse-band advisor vs exhaustive simulation.**
//!
//! The advisor (`lc-sched::advise`) picks a band analytically; this
//! experiment simulates *every* contiguous band of each shape on the
//! machine model and compares. The advisor is validated if its choice is
//! within a few percent of the simulated optimum (it need not match the
//! argmin exactly — near-ties are fine).

use lc_machine::cost::CostModel;
use lc_machine::exec::{simulate_nest, ExecMode};
use lc_sched::advise::{advise, AdviseParams};
use lc_sched::policy::PolicyKind;
use lc_xform::recovery::{per_iteration_cost, RecoveryScheme};

use crate::table::Table;

const P: usize = 16;
const BODY: u64 = 50;

/// The shapes examined.
pub fn shapes() -> Vec<Vec<u64>> {
    vec![
        vec![8, 8, 8, 8],
        vec![4, 4, 4, 4, 4, 4],
        vec![2, 2, 64],
        vec![64, 64],
        vec![3, 3, 3],
        vec![128, 2, 2],
    ]
}

/// Simulated makespan of coalescing band `[s, e)`: outer levels run the
/// coalesced instance once per outer iteration; inner levels run serially
/// inside each coalesced iteration.
pub fn simulated_band_makespan(dims: &[u64], band: (usize, usize)) -> u64 {
    let (s, e) = band;
    let cost = CostModel::default();
    let rec = per_iteration_cost(RecoveryScheme::Ceiling, &dims[s..e]).units();

    let outer: u64 = dims[..s].iter().product();
    let inner: Vec<u64> = dims[e..].to_vec();
    let inner_n: u64 = inner.iter().product();
    let inner_headers: u64 = {
        let mut acc = 0;
        let mut inst = 1;
        for &d in &inner {
            inst *= d;
            acc += inst;
        }
        acc
    };
    let per_iter_body = inner_headers * cost.loop_overhead + inner_n * BODY;
    let body = move |_: &[i64]| per_iter_body;

    let one = simulate_nest(
        &dims[s..e],
        P,
        ExecMode::coalesced(PolicyKind::Guided, rec),
        &cost,
        &body,
    )
    .makespan;
    outer * (one + cost.loop_overhead)
}

/// For one shape: the advisor's pick, the simulated optimum, and the gap.
pub fn evaluate(dims: &[u64]) -> ((usize, usize), u64, (usize, usize), u64) {
    let params = AdviseParams {
        p: P as u64,
        body_cost: BODY,
        ..Default::default()
    };
    let legal = vec![true; dims.len()];
    let advice = advise(dims, &legal, &params, &|band| {
        per_iteration_cost(RecoveryScheme::Ceiling, band)
    });
    let advised_span = simulated_band_makespan(dims, advice.band);

    let mut best_band = (0, dims.len());
    let mut best_span = u64::MAX;
    for s in 0..dims.len() {
        for e in (s + 1)..=dims.len() {
            let span = simulated_band_makespan(dims, (s, e));
            if span < best_span {
                best_span = span;
                best_band = (s, e);
            }
        }
    }
    (advice.band, advised_span, best_band, best_span)
}

/// Build the table.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "A1",
        format!("advisor choice vs exhaustive band simulation, p={P}, body={BODY}"),
        &[
            "dims",
            "advised band",
            "advised makespan",
            "best band",
            "best makespan",
            "overhead %",
        ],
    );
    for dims in shapes() {
        let (ab, aspan, bb, bspan) = evaluate(&dims);
        t.row(vec![
            format!("{dims:?}"),
            format!("{ab:?}"),
            aspan.to_string(),
            format!("{bb:?}"),
            bspan.to_string(),
            format!(
                "{:.1}",
                100.0 * (aspan as f64 - bspan as f64) / bspan as f64
            ),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advisor_is_within_ten_percent_of_simulated_optimum() {
        for dims in shapes() {
            let (ab, aspan, bb, bspan) = evaluate(&dims);
            let gap = (aspan as f64 - bspan as f64) / bspan as f64;
            assert!(
                gap < 0.10,
                "{dims:?}: advised {ab:?} ({aspan}) vs best {bb:?} ({bspan}), gap {gap:.2}"
            );
        }
    }

    #[test]
    fn narrow_bands_are_only_chosen_when_genuinely_competitive() {
        // The advisor may expose fewer than p iterations when the nest is
        // small and recovery savings outweigh the idle processors (e.g.
        // [3,3,3] at p=16) — but then the simulated makespan of its pick
        // must not lose to full collapse by more than a sliver.
        for dims in shapes() {
            let (band, aspan, ..) = evaluate(&dims);
            let n: u64 = dims[band.0..band.1].iter().product();
            if n >= P as u64 {
                continue; // wide enough: nothing to justify
            }
            let full = simulated_band_makespan(&dims, (0, dims.len()));
            assert!(
                aspan as f64 <= full as f64 * 1.05,
                "{dims:?} -> narrow {band:?} ({aspan}) loses to full collapse ({full})"
            );
        }
    }
}
