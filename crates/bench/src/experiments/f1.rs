//! **F1 — speedup vs processors, scheduler × dispatch-shape matrix.**
//!
//! A 64×64 uniform nest (body = 100 abstract ops) swept over
//! `p = 1..64`. Series: coalesced with SS / CSS(16) / GSS / static block,
//! outer-parallel with SS, and inner-parallel-sweep with SS. The paper's
//! qualitative picture: all coalesced variants track near-ideal speedup;
//! the fork-join-per-instance shape saturates early; outer-parallel
//! tracks until `p` approaches `N_1`.

use lc_machine::cost::CostModel;
use lc_machine::exec::{simulate_nest, ExecMode, NestResult};
use lc_machine::metrics::Metrics;
use lc_machine::sim::LoopSchedule;
use lc_sched::policy::{PolicyKind, StaticKind};
use lc_xform::recovery::{per_iteration_cost, RecoveryScheme};

use crate::table::Table;

const DIMS: [u64; 2] = [64, 64];
const BODY: u64 = 100;

/// The processor counts swept.
pub fn procs() -> Vec<usize> {
    vec![1, 2, 4, 8, 16, 32, 64]
}

/// The compared execution modes (name, mode) for a given machine.
pub fn modes() -> Vec<(&'static str, ExecMode)> {
    let rec = per_iteration_cost(RecoveryScheme::Ceiling, &DIMS).units();
    vec![
        ("COAL/SS", ExecMode::coalesced(PolicyKind::SelfSched, rec)),
        (
            "COAL/CSS16",
            ExecMode::coalesced(PolicyKind::Chunked(16), rec),
        ),
        ("COAL/GSS", ExecMode::coalesced(PolicyKind::Guided, rec)),
        (
            "COAL/BLOCK",
            ExecMode::Coalesced {
                schedule: LoopSchedule::Static(StaticKind::Block),
                recovery_cost: rec,
            },
        ),
        (
            "OUTER/SS",
            ExecMode::OuterParallel {
                schedule: LoopSchedule::Dynamic(PolicyKind::SelfSched),
            },
        ),
        (
            "INNER/SS",
            ExecMode::InnerParallelSweep {
                schedule: LoopSchedule::Dynamic(PolicyKind::SelfSched),
            },
        ),
    ]
}

/// Run one cell of the matrix.
pub fn speedup(mode: ExecMode, p: usize) -> f64 {
    let cost = CostModel::default();
    let body = |_: &[i64]| BODY;
    let seq = simulate_nest(&DIMS, 1, ExecMode::Sequential, &cost, &body).makespan;
    let r: NestResult = simulate_nest(&DIMS, p, mode, &cost, &body);
    Metrics::compute(seq, &r, p).speedup
}

/// Build the figure's series table.
pub fn run() -> Vec<Table> {
    let mode_list = modes();
    let mut headers: Vec<&str> = vec!["p", "ideal"];
    headers.extend(mode_list.iter().map(|(n, _)| *n));
    let mut t = Table::new(
        "F1",
        format!("speedup vs processors, {DIMS:?} nest, body={BODY} ops"),
        &headers,
    );
    for p in procs() {
        let mut row = vec![p.to_string(), p.to_string()];
        for (_, mode) in &mode_list {
            row.push(format!("{:.2}", speedup(*mode, p)));
        }
        t.row(row);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesced_gss_tracks_ideal_speedup() {
        let t = &run()[0];
        for r in 0..t.rows.len() {
            let p = t.cell_f64(r, "p").unwrap();
            let s = t.cell_f64(r, "COAL/GSS").unwrap();
            assert!(s > 0.75 * p, "p={p}: GSS speedup {s} below 75% of ideal");
        }
    }

    #[test]
    fn inner_sweep_saturates_far_below_ideal() {
        let t = &run()[0];
        let last = t.rows.len() - 1;
        let p = t.cell_f64(last, "p").unwrap();
        let inner = t.cell_f64(last, "INNER/SS").unwrap();
        let coal = t.cell_f64(last, "COAL/GSS").unwrap();
        assert!(
            inner < 0.8 * coal,
            "fork-join-per-instance should trail badly at p={p}: {inner} vs {coal}"
        );
    }

    #[test]
    fn speedups_are_monotone_in_p_for_coalesced() {
        let t = &run()[0];
        for series in ["COAL/GSS", "COAL/BLOCK"] {
            let vals: Vec<f64> = (0..t.rows.len())
                .map(|r| t.cell_f64(r, series).unwrap())
                .collect();
            assert!(
                vals.windows(2).all(|w| w[1] >= w[0] * 0.99),
                "{series} not monotone: {vals:?}"
            );
        }
    }

    #[test]
    fn outer_parallel_matches_coalesced_until_p_approaches_n1() {
        let t = &run()[0];
        // At p=64 = N1, outer-parallel has exactly one outer iteration per
        // processor — no slack for imbalance but uniform work, so it stays
        // close; the coalesced loop must never lose to it by much, and at
        // p=64 both should be within 25%.
        let last = t.rows.len() - 1;
        let outer = t.cell_f64(last, "OUTER/SS").unwrap();
        let coal = t.cell_f64(last, "COAL/GSS").unwrap();
        assert!((outer - coal).abs() / coal < 0.25, "{outer} vs {coal}");
    }
}
