//! One module per table/figure of the reconstructed evaluation.
//!
//! Naming follows `DESIGN.md` §4: `T*` are tables (analytic counts and
//! bounds), `F*` are figures (sweeps producing series). Every module
//! exposes `run() -> Vec<Table>` and carries tests asserting the
//! qualitative claim the paper makes for that experiment — who wins, in
//! which direction, and where the crossover falls.

pub mod a1;
pub mod f1;
pub mod f2;
pub mod f3;
pub mod f4;
pub mod f5;
pub mod f6;
pub mod f7;
pub mod t1;
pub mod t2;
pub mod t3;
pub mod t4;
pub mod t5;
