//! **T4 — granularity crossover: the body size where coalescing pays.**
//!
//! Dispatch and recovery overheads mean a parallel loop only beats
//! sequential execution above a minimum iteration size (the era's
//! *lower-bound granularity*). The table sweeps constant body cost `S`
//! for a small 8×8 nest on p = 16 — deliberately narrow (`N_1 < p`) so
//! outer-parallel cannot use all processors — on a machine with 4×
//! synchronization costs, and reports the simulated makespans of
//! sequential, outer-parallel, and coalesced (SS and GSS) execution plus
//! the winner; the second table extracts the crossover points.

use lc_machine::cost::CostModel;
use lc_machine::exec::{simulate_nest, ExecMode};
use lc_machine::sim::LoopSchedule;
use lc_sched::policy::PolicyKind;
use lc_xform::recovery::{per_iteration_cost, RecoveryScheme};

use crate::table::Table;

/// The swept body sizes.
pub fn body_sizes() -> Vec<u64> {
    vec![0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
}

const DIMS: [u64; 2] = [8, 8];
const P: usize = 16;

/// Makespans for a given body size: (seq, outer-SS, coal-SS, coal-GSS).
pub fn makespans(s: u64) -> (u64, u64, u64, u64) {
    let cost = CostModel::default().scaled(4);
    let rec = per_iteration_cost(RecoveryScheme::Ceiling, &DIMS).units();
    let body = move |_: &[i64]| s;
    let seq = simulate_nest(&DIMS, 1, ExecMode::Sequential, &cost, &body).makespan;
    let outer = simulate_nest(
        &DIMS,
        P,
        ExecMode::OuterParallel {
            schedule: LoopSchedule::Dynamic(PolicyKind::SelfSched),
        },
        &cost,
        &body,
    )
    .makespan;
    let coal_ss = simulate_nest(
        &DIMS,
        P,
        ExecMode::coalesced(PolicyKind::SelfSched, rec),
        &cost,
        &body,
    )
    .makespan;
    let coal_gss = simulate_nest(
        &DIMS,
        P,
        ExecMode::coalesced(PolicyKind::Guided, rec),
        &cost,
        &body,
    )
    .makespan;
    (seq, outer, coal_ss, coal_gss)
}

/// Smallest swept body size where coalesced-GSS beats sequential.
pub fn crossover_vs_sequential() -> Option<u64> {
    body_sizes()
        .into_iter()
        .find(|&s| makespans(s).3 < makespans(s).0)
}

/// Build the tables.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "T4",
        format!("makespan (abstract instructions) vs body size, {DIMS:?} nest, p={P}"),
        &["body S", "SEQ", "OUTER/SS", "COAL/SS", "COAL/GSS", "winner"],
    );
    for s in body_sizes() {
        let (seq, outer, coal_ss, coal_gss) = makespans(s);
        let min = seq.min(outer).min(coal_ss).min(coal_gss);
        let winner = if min == seq {
            "SEQ"
        } else if min == coal_gss {
            "COAL/GSS"
        } else if min == coal_ss {
            "COAL/SS"
        } else {
            "OUTER/SS"
        };
        t.row(vec![
            s.to_string(),
            seq.to_string(),
            outer.to_string(),
            coal_ss.to_string(),
            coal_gss.to_string(),
            winner.to_string(),
        ]);
    }

    let mut c = Table::new(
        "T4",
        "crossover points (smallest swept body size S)",
        &["comparison", "S*"],
    );
    c.row(vec![
        "COAL/GSS beats SEQ".into(),
        crossover_vs_sequential()
            .map(|s| s.to_string())
            .unwrap_or_else(|| "never".into()),
    ]);
    let css = body_sizes()
        .into_iter()
        .find(|&s| makespans(s).2 < makespans(s).0);
    c.row(vec![
        "COAL/SS beats SEQ".into(),
        css.map(|s| s.to_string()).unwrap_or_else(|| "never".into()),
    ]);
    vec![t, c]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_bodies_favor_sequential() {
        let (seq, _, coal_ss, _) = makespans(0);
        assert!(seq < coal_ss, "empty bodies cannot amortize dispatch");
    }

    #[test]
    fn large_bodies_favor_coalescing() {
        let (seq, outer, coal_ss, coal_gss) = makespans(1024);
        assert!(coal_ss < seq);
        assert!(coal_gss < seq);
        // With only N1 = 8 outer iterations for p = 16 processors,
        // outer-parallel is capped at 8x while coalescing exposes all 64
        // iterations — it must win.
        assert!(coal_gss < outer, "gss {coal_gss} !< outer {outer}");
        // And come within 2x of the ideal seq/16 critical path.
        assert!(coal_gss < seq / 8, "gss {coal_gss} vs seq {seq}");
    }

    #[test]
    fn crossover_exists_and_is_small() {
        let s = crossover_vs_sequential().expect("a crossover must exist");
        assert!(
            (1..=64).contains(&s),
            "crossover {s} outside the expected small-body range"
        );
    }

    #[test]
    fn gss_crossover_not_later_than_ss() {
        // GSS amortizes dispatch, so it starts paying off no later than SS.
        let gss = crossover_vs_sequential().unwrap();
        let ss = body_sizes()
            .into_iter()
            .find(|&s| makespans(s).2 < makespans(s).0)
            .unwrap();
        assert!(gss <= ss, "gss {gss} vs ss {ss}");
    }
}
