//! **T1 — index-recovery cost per scheme and nest depth.**
//!
//! The paper's overhead argument hinges on index recovery being cheap
//! relative to dispatch savings. This table reports, for depth `m = 1..6`
//! (uniform dims, fixed total N):
//!
//! * the abstract per-iteration op cost of the **ceiling** formula as
//!   emitted (constant-folded),
//! * the same after **CSE** (shared `⌈j/P⌉` terms hoisted — the paper's
//!   strength-reduction remark),
//! * the **div/mod** mapping's cost,
//! * the **odometer**'s amortized digit updates per iteration (valid for
//!   chunked dispatch).

use lc_space::Odometer;
use lc_xform::recovery::{per_iteration_cost, recovery_stmts, RecoveryScheme};
use lc_xform::strength::cse_recovery;

use crate::table::Table;

/// Uniform test dims for a given depth: total ≈ 4096.
pub fn dims_for_depth(m: usize) -> Vec<u64> {
    let per = match m {
        1 => 4096,
        2 => 64,
        3 => 16,
        4 => 8,
        6 => 4,
        _ => (4096f64.powf(1.0 / m as f64)).round() as u64,
    };
    vec![per; m]
}

/// Ceiling-scheme cost after CSE of shared division terms.
pub fn ceiling_cse_cost(dims: &[u64]) -> u64 {
    let j = lc_ir::Symbol::new("j");
    let vars: Vec<lc_ir::Symbol> = (0..dims.len())
        .map(|k| lc_ir::Symbol::new(format!("i{k}")))
        .collect();
    let stmts = recovery_stmts(RecoveryScheme::Ceiling, &j, &vars, dims);
    let (_, report) = cse_recovery(&stmts, "t");
    report.cost_after
}

/// Amortized odometer digit updates per iteration over a full sweep.
pub fn odometer_updates_per_iter(dims: &[u64]) -> f64 {
    let mut odo = Odometer::new(dims);
    while odo.advance() {}
    let s = odo.stats();
    if s.advances == 0 {
        0.0
    } else {
        s.digit_updates as f64 / s.advances as f64
    }
}

/// Build the table.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "T1",
        "per-iteration index-recovery cost (abstract ops) vs nest depth",
        &[
            "depth",
            "dims",
            "ceiling",
            "ceiling+CSE",
            "divmod",
            "odometer upd/iter",
        ],
    );
    for m in [1usize, 2, 3, 4, 6] {
        let dims = dims_for_depth(m);
        t.row(vec![
            m.to_string(),
            format!("{dims:?}"),
            per_iteration_cost(RecoveryScheme::Ceiling, &dims)
                .units()
                .to_string(),
            ceiling_cse_cost(&dims).to_string(),
            per_iteration_cost(RecoveryScheme::DivMod, &dims)
                .units()
                .to_string(),
            format!("{:.3}", odometer_updates_per_iter(&dims)),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_grow_with_depth_but_odometer_stays_constant() {
        let tables = run();
        let t = &tables[0];
        let ceiling: Vec<f64> = (0..t.rows.len())
            .map(|r| t.cell_f64(r, "ceiling").unwrap())
            .collect();
        assert!(
            ceiling.windows(2).all(|w| w[0] <= w[1]),
            "ceiling cost must be non-decreasing in depth: {ceiling:?}"
        );
        // The odometer is amortized O(1) regardless of depth.
        for r in 0..t.rows.len() {
            let upd = t.cell_f64(r, "odometer upd/iter").unwrap();
            assert!(upd < 2.0, "odometer amortized bound violated: {upd}");
        }
    }

    #[test]
    fn cse_never_hurts_and_helps_at_depth() {
        let tables = run();
        let t = &tables[0];
        for r in 0..t.rows.len() {
            let raw = t.cell_f64(r, "ceiling").unwrap();
            let cse = t.cell_f64(r, "ceiling+CSE").unwrap();
            assert!(cse <= raw, "CSE made things worse at row {r}");
        }
        // At depth >= 3 the shared ceiling terms produce real savings.
        let raw3 = t.cell_f64(2, "ceiling").unwrap();
        let cse3 = t.cell_f64(2, "ceiling+CSE").unwrap();
        assert!(cse3 < raw3, "expected CSE savings at depth 3");
    }

    #[test]
    fn depth_one_recovery_is_nearly_free() {
        let tables = run();
        let t = &tables[0];
        assert!(t.cell_f64(0, "ceiling").unwrap() <= 1.0);
    }
}
