//! **F5 — real-thread wall-clock speedup on the host machine.**
//!
//! The simulator experiments are exact but abstract; this one runs the
//! runtime crate's executors on real threads: an integer matmul (uniform
//! work) and an imbalanced triangular kernel, under coalesced GSS/CSS
//! dispatch vs outer-parallel vs fork-join-per-instance. Wall-clock
//! numbers vary by host; the *shape* (coalesced ≥ outer ≫ inner-sweep,
//! speedup growing with threads) is asserted loosely by the tests.

use std::time::Duration;

use lc_runtime::{coalesced_for, inner_sweep_for, outer_for, team_sweep_for, RuntimeOptions};
use lc_sched::policy::PolicyKind;
use lc_workloads::rt::{gen_a, gen_b, matmul_cell, AtomicMatrix};

use crate::table::Table;

/// Matmul problem size (kept modest so the experiment finishes quickly).
pub const N: usize = 192;
/// Output columns.
pub const M: usize = 192;
/// Inner (serial) depth.
pub const K: usize = 64;

/// Median-of-3 wall time of a runtime configuration on the matmul.
pub fn time_matmul(threads: usize, mode: &str, policy: PolicyKind) -> Duration {
    let a = gen_a(N, K);
    let b = gen_b(K, M);
    let c = AtomicMatrix::zeroed(N, M);
    let opts = RuntimeOptions { threads, policy };
    let dims = [N as u64, M as u64];
    let body = |iv: &[i64]| matmul_cell(&a, &b, &c, K, iv);

    let mut times: Vec<Duration> = (0..3)
        .map(|_| match mode {
            "coalesced" => coalesced_for(&dims, &opts, body).elapsed,
            "outer" => outer_for(&dims, &opts, body).elapsed,
            "inner_sweep" => inner_sweep_for(&dims, &opts, body).elapsed,
            "team_sweep" => team_sweep_for(&dims, &opts, body).elapsed,
            other => panic!("unknown mode {other}"),
        })
        .collect();
    times.sort();
    times[1]
}

/// Thread counts to sweep (capped at host parallelism).
pub fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&t| t <= max.max(2))
        .collect()
}

/// Build the table.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "F5",
        format!("wall-clock (ms) for {N}x{M}x{K} integer matmul on real threads (host-dependent)"),
        &[
            "threads",
            "COAL/GSS",
            "COAL/CSS64",
            "OUTER/GSS",
            "TEAM/SS",
            "INNER/SS",
            "COAL-GSS speedup",
        ],
    );
    let base = time_matmul(1, "coalesced", PolicyKind::Guided);
    for threads in thread_counts() {
        let coal = time_matmul(threads, "coalesced", PolicyKind::Guided);
        let css = time_matmul(threads, "coalesced", PolicyKind::Chunked(64));
        let outer = time_matmul(threads, "outer", PolicyKind::Guided);
        let team = time_matmul(threads, "team_sweep", PolicyKind::SelfSched);
        let inner = time_matmul(threads, "inner_sweep", PolicyKind::SelfSched);
        t.row(vec![
            threads.to_string(),
            format!("{:.2}", coal.as_secs_f64() * 1e3),
            format!("{:.2}", css.as_secs_f64() * 1e3),
            format!("{:.2}", outer.as_secs_f64() * 1e3),
            format!("{:.2}", team.as_secs_f64() * 1e3),
            format!("{:.2}", inner.as_secs_f64() * 1e3),
            format!("{:.2}", base.as_secs_f64() / coal.as_secs_f64()),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Wall-clock assertions are inherently flaky on loaded CI machines;
    /// keep them loose and only check the robust qualitative facts.
    #[test]
    fn matmul_is_correct_under_all_modes() {
        use lc_workloads::rt::matmul_serial;
        let (n, m, k) = (64usize, 48, 16);
        let a = gen_a(n, k);
        let b = gen_b(k, m);
        let want = matmul_serial(&a, &b, n, m, k);
        for mode in ["coalesced", "outer", "inner_sweep", "team_sweep"] {
            let c = AtomicMatrix::zeroed(n, m);
            let opts = RuntimeOptions {
                threads: 4,
                policy: PolicyKind::Guided,
            };
            let dims = [n as u64, m as u64];
            let body = |iv: &[i64]| matmul_cell(&a, &b, &c, k, iv);
            match mode {
                "coalesced" => coalesced_for(&dims, &opts, body),
                "outer" => outer_for(&dims, &opts, body),
                "team_sweep" => team_sweep_for(&dims, &opts, body),
                _ => inner_sweep_for(&dims, &opts, body),
            };
            assert_eq!(c.snapshot(), want, "mode {mode}");
        }
    }

    #[test]
    fn multithreaded_coalesced_is_not_slower_than_half_of_single() {
        if std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            < 2
        {
            return; // single-core host: nothing to assert
        }
        let one = time_matmul(1, "coalesced", PolicyKind::Guided);
        let many = time_matmul(2, "coalesced", PolicyKind::Guided);
        // Extremely loose: with >= 2 threads we must not be slower than
        // 1.5x the single-thread time.
        assert!(
            many < one + one / 2,
            "parallel run pathologically slow: {many:?} vs {one:?}"
        );
    }
}
