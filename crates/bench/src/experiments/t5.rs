//! **T5 — per-kernel simulated speedups with IR-derived costs.**
//!
//! The other experiments use synthetic cost models; this table closes the
//! loop: each workload kernel's per-iteration cost is *measured* by
//! executing one iteration of its actual IR under the interpreter's op
//! accounting, and those costs drive the machine simulator. Columns give
//! the simulated speedup at p = 16 of coalesced-GSS, outer-parallel, and
//! fork-join-per-instance execution, plus the compiler-reported recovery
//! cost for the kernel's band.

use lc_machine::cost::CostModel;
use lc_machine::exec::{simulate_nest, ExecMode};
use lc_machine::sim::LoopSchedule;
use lc_sched::policy::PolicyKind;
use lc_workloads::kernels::{self, Kernel};
use lc_workloads::simcost::IrBodyCost;
use lc_xform::recovery::{per_iteration_cost, RecoveryScheme};

use crate::table::Table;

const P: usize = 16;

/// The kernels examined (sized so the experiment stays fast). The two
/// `narrow` variants have `N1 < p`, the regime where outer-only
/// parallelism starves and coalescing is the only way to feed the
/// machine.
pub fn kernel_list() -> Vec<Kernel> {
    vec![
        kernels::matmul(16, 16, 8),
        kernels::matmul(4, 64, 8), // narrow outer: N1 = 4 < p
        kernels::gauss_jordan_backsub(16, 12),
        kernels::stencil2d(16, 16),
        kernels::stencil2d(3, 85), // narrow outer
        kernels::triangular_mask(16),
        kernels::cube_fill(8, 8, 4),
    ]
}

/// Simulated result for one kernel: (mean body ops, coal, outer, inner).
pub fn evaluate(kernel: &Kernel) -> (f64, f64, f64, f64) {
    let oracle = IrBodyCost::new(kernel).expect("kernel supports IR costing");
    let dims = kernel.dims.clone();
    let n: u64 = dims.iter().product();
    let cost = CostModel::default();
    let rec = per_iteration_cost(RecoveryScheme::Ceiling, &dims).units();
    let body = |iv: &[i64]| oracle.cost(iv);

    let seq = simulate_nest(&dims, 1, ExecMode::Sequential, &cost, &body).makespan;
    let coal = simulate_nest(
        &dims,
        P,
        ExecMode::coalesced(PolicyKind::Guided, rec),
        &cost,
        &body,
    )
    .makespan;
    let outer = simulate_nest(
        &dims,
        P,
        ExecMode::OuterParallel {
            schedule: LoopSchedule::Dynamic(PolicyKind::SelfSched),
        },
        &cost,
        &body,
    )
    .makespan;
    let inner = if dims.len() >= 2 {
        simulate_nest(
            &dims,
            P,
            ExecMode::InnerParallelSweep {
                schedule: LoopSchedule::Dynamic(PolicyKind::SelfSched),
            },
            &cost,
            &body,
        )
        .makespan
    } else {
        coal
    };

    let mean_body = oracle.total(&dims) as f64 / n as f64;
    (
        mean_body,
        seq as f64 / coal as f64,
        seq as f64 / outer as f64,
        seq as f64 / inner as f64,
    )
}

/// Build the table.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "T5",
        format!("simulated speedup per kernel (IR-measured body costs), p={P}"),
        &[
            "kernel",
            "mean body ops",
            "COAL/GSS",
            "OUTER/SS",
            "INNER/SS",
        ],
    );
    for kernel in kernel_list() {
        let (mean_body, coal, outer, inner) = evaluate(&kernel);
        t.row(vec![
            format!("{} {:?}", kernel.name, kernel.dims),
            format!("{mean_body:.1}"),
            format!("{coal:.2}"),
            format!("{outer:.2}"),
            format!("{inner:.2}"),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kernel_speeds_up_under_coalescing() {
        for kernel in kernel_list() {
            let (_, coal, ..) = evaluate(&kernel);
            assert!(
                coal > 2.0,
                "{}: coalesced speedup only {coal:.2}",
                kernel.name
            );
        }
    }

    #[test]
    fn matmul_coalescing_is_near_ideal() {
        let (mean_body, coal, ..) = evaluate(&kernels::matmul(16, 16, 8));
        // The k-reduction makes iterations fat (~8*(3+1+1+1+2)+… ops), so
        // recovery overhead is negligible and speedup approaches p.
        assert!(
            mean_body > 40.0,
            "matmul body unexpectedly thin: {mean_body}"
        );
        assert!(coal > 10.0, "matmul coalesced speedup {coal:.2}");
    }

    #[test]
    fn coalescing_beats_fork_join_on_every_multilevel_kernel() {
        for kernel in kernel_list() {
            if kernel.dims.len() < 2 {
                continue;
            }
            let (_, coal, _, inner) = evaluate(&kernel);
            assert!(
                coal > inner,
                "{}: coal {coal:.2} !> inner {inner:.2}",
                kernel.name
            );
        }
    }

    #[test]
    fn thin_bodies_favor_outer_parallelism_the_granularity_caveat() {
        // With IR-real (thin) bodies and N1 = p, outer-parallel pays no
        // recovery cost and wins — the same granularity boundary T4 maps
        // with synthetic costs. Coalescing is not a free lunch.
        let (mean_body, coal, outer, _) = evaluate(&kernels::triangular_mask(16));
        assert!(mean_body < 10.0, "premise: thin body ({mean_body:.1})");
        assert!(
            outer > coal,
            "thin-body kernel should favor outer: coal {coal:.2} vs outer {outer:.2}"
        );
    }

    #[test]
    fn narrow_outer_dimension_is_where_coalescing_wins() {
        // N1 = 4 < p = 16: outer-parallel caps at 4x; the coalesced pool
        // feeds all 16 processors.
        let (_, coal, outer, _) = evaluate(&kernels::matmul(4, 64, 8));
        assert!(outer < 5.0, "outer cannot exceed N1: {outer:.2}");
        assert!(
            coal > 2.0 * outer,
            "narrow-outer matmul: coal {coal:.2} !>> outer {outer:.2}"
        );
        let (_, coal_s, outer_s, _) = evaluate(&kernels::stencil2d(3, 85));
        assert!(
            coal_s > outer_s,
            "narrow-outer stencil: coal {coal_s:.2} !> outer {outer_s:.2}"
        );
    }
}
