//! **F4 — overhead vs nest depth at fixed N.**
//!
//! N = 4096 iterations factored into nests of depth 1..6 (uniform dims).
//! The inner-parallel-sweep shape pays a fork and a barrier for every
//! inner-loop *instance* — `N / N_m` of them — so its makespan explodes
//! with depth. The coalesced loop pays one fork, one barrier, and a
//! recovery cost that grows only arithmetically with depth: the deeper
//! the nest, the bigger coalescing's win. Partial collapse (coalescing
//! just the outer two levels) is included as the ablation point.

use lc_machine::cost::CostModel;
use lc_machine::exec::{simulate_nest, ExecMode};
use lc_machine::sim::LoopSchedule;
use lc_sched::policy::PolicyKind;
use lc_xform::recovery::{per_iteration_cost, RecoveryScheme};

use crate::table::Table;

const P: usize = 16;
const BODY: u64 = 50;

/// Depth → uniform dims with product 4096.
pub fn shapes() -> Vec<Vec<u64>> {
    vec![
        vec![4096],
        vec![64, 64],
        vec![16, 16, 16],
        vec![8, 8, 8, 8],
        vec![4, 4, 4, 4, 4, 4],
    ]
}

/// Makespan of one mode on one shape.
pub fn makespan(dims: &[u64], mode: ExecMode) -> u64 {
    let cost = CostModel::default();
    let body = |_: &[i64]| BODY;
    simulate_nest(dims, P, mode, &cost, &body).makespan
}

/// Makespan when only the outermost two levels are coalesced (inner
/// levels run serially inside each coalesced iteration). Models partial
/// collapse: the coalesced loop has `N1·N2` iterations, each executing
/// `N / (N1·N2)` bodies plus inner loop overhead.
pub fn partial_collapse_makespan(dims: &[u64]) -> u64 {
    let cost = CostModel::default();
    if dims.len() <= 2 {
        let rec = per_iteration_cost(RecoveryScheme::Ceiling, dims).units();
        return makespan(dims, ExecMode::coalesced(PolicyKind::Guided, rec));
    }
    let outer: Vec<u64> = dims[..2].to_vec();
    let inner: Vec<u64> = dims[2..].to_vec();
    let inner_n: u64 = inner.iter().product();
    let rec = per_iteration_cost(RecoveryScheme::Ceiling, &outer).units();
    // Each coalesced iteration runs the inner subnest serially: body cost
    // per coalesced iteration = inner headers + inner bodies.
    let inner_headers: u64 = {
        let mut acc = 0;
        let mut inst = 1;
        for &d in &inner {
            inst *= d;
            acc += inst;
        }
        acc
    };
    let per_iter = inner_headers * cost.loop_overhead + inner_n * BODY;
    let body = move |_: &[i64]| per_iter;
    simulate_nest(
        &outer,
        P,
        ExecMode::coalesced(PolicyKind::Guided, rec),
        &cost,
        &body,
    )
    .makespan
}

/// Build the table.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "F4",
        format!("makespan vs nest depth, N=4096, p={P}, body={BODY} ops"),
        &[
            "depth",
            "dims",
            "recovery/iter",
            "COAL/GSS",
            "COAL(0..2)/GSS",
            "INNER/SS",
            "inner/coal",
        ],
    );
    for dims in shapes() {
        let rec = per_iteration_cost(RecoveryScheme::Ceiling, &dims).units();
        let coal = makespan(&dims, ExecMode::coalesced(PolicyKind::Guided, rec));
        let partial = partial_collapse_makespan(&dims);
        let inner = makespan(
            &dims,
            ExecMode::InnerParallelSweep {
                schedule: LoopSchedule::Dynamic(PolicyKind::SelfSched),
            },
        );
        t.row(vec![
            dims.len().to_string(),
            format!("{dims:?}"),
            rec.to_string(),
            coal.to_string(),
            partial.to_string(),
            inner.to_string(),
            format!("{:.1}", inner as f64 / coal as f64),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesced_growth_is_explained_by_recovery_cost_alone() {
        // Full collapse pays recovery per iteration, so its makespan grows
        // with depth — but only by the recovery factor (body+loop+rec)
        // relative to depth 1, never by the fork-join explosion the
        // inner-sweep shape suffers.
        let t = &run()[0];
        let base = t.cell_f64(0, "COAL/GSS").unwrap();
        let loop_ov = 2.0;
        for r in 0..t.rows.len() {
            let v = t.cell_f64(r, "COAL/GSS").unwrap();
            let rec = t.cell_f64(r, "recovery/iter").unwrap();
            let bound = base * (BODY as f64 + loop_ov + rec) / (BODY as f64 + loop_ov + 1.0);
            assert!(
                v < bound * 1.25,
                "depth row {r}: {v} exceeds recovery-explained bound {bound}"
            );
        }
    }

    #[test]
    fn inner_sweep_explodes_with_depth() {
        let t = &run()[0];
        let ratio_d2 = t.cell_f64(1, "inner/coal").unwrap();
        let ratio_d6 = t.cell_f64(4, "inner/coal").unwrap();
        assert!(
            ratio_d6 > 2.5 * ratio_d2,
            "expected the fork-join penalty to grow with depth: {ratio_d2} -> {ratio_d6}"
        );
    }

    #[test]
    fn partial_collapse_beats_full_collapse_at_depth() {
        // The ablation headline: once two coalesced levels already expose
        // enough balance (64 units for 16 processors), collapsing further
        // only adds recovery cost — coalesce as many levels as needed, and
        // no more.
        let t = &run()[0];
        for r in 2..t.rows.len() {
            let full = t.cell_f64(r, "COAL/GSS").unwrap();
            let partial = t.cell_f64(r, "COAL(0..2)/GSS").unwrap();
            assert!(partial < full, "row {r}: partial {partial} !< full {full}");
        }
    }

    #[test]
    fn coalescing_wins_at_every_depth_beyond_one() {
        let t = &run()[0];
        for r in 1..t.rows.len() {
            let coal = t.cell_f64(r, "COAL/GSS").unwrap();
            let inner = t.cell_f64(r, "INNER/SS").unwrap();
            assert!(coal < inner, "row {r}");
        }
    }

    #[test]
    fn partial_collapse_is_competitive_at_moderate_depth() {
        // Coalescing just the outer 8x8 of an 8^4 nest already exposes 64
        // units of balance for 16 processors — within 2x of the full
        // collapse, at lower recovery cost.
        let t = &run()[0];
        let r = 3; // depth 4
        let full = t.cell_f64(r, "COAL/GSS").unwrap();
        let partial = t.cell_f64(r, "COAL(0..2)/GSS").unwrap();
        assert!(partial < 2.0 * full, "partial {partial} vs full {full}");
    }
}
