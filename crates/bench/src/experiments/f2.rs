//! **F2 — load imbalance vs processors on triangular work.**
//!
//! A 96×96 nest whose body is heavy only below the diagonal (triangular
//! mask, 100:1). With outer-parallel static-block scheduling the heavy
//! rows cluster on the high-numbered processors; coalescing exposes the
//! full iteration space so dynamic policies rebalance. Series report both
//! imbalance (max−min busy over max) and speedup.

use lc_machine::cost::CostModel;
use lc_machine::exec::{simulate_nest, ExecMode};
use lc_machine::metrics::Metrics;
use lc_machine::sim::LoopSchedule;
use lc_sched::policy::{PolicyKind, StaticKind};
use lc_workloads::itertime::WorkModel;
use lc_xform::recovery::{per_iteration_cost, RecoveryScheme};

use crate::table::Table;

const DIMS: [u64; 2] = [96, 96];

/// Work model: heavy below/on the diagonal, light above.
pub fn model() -> WorkModel {
    WorkModel::TriangularMask {
        heavy: 100,
        light: 1,
    }
}

/// Swept processor counts.
pub fn procs() -> Vec<usize> {
    vec![2, 4, 8, 16, 32, 64]
}

/// The compared modes.
pub fn modes() -> Vec<(&'static str, ExecMode)> {
    let rec = per_iteration_cost(RecoveryScheme::Ceiling, &DIMS).units();
    vec![
        (
            "OUTER/BLOCK",
            ExecMode::OuterParallel {
                schedule: LoopSchedule::Static(StaticKind::Block),
            },
        ),
        (
            "OUTER/SS",
            ExecMode::OuterParallel {
                schedule: LoopSchedule::Dynamic(PolicyKind::SelfSched),
            },
        ),
        (
            "COAL/BLOCK",
            ExecMode::Coalesced {
                schedule: LoopSchedule::Static(StaticKind::Block),
                recovery_cost: rec,
            },
        ),
        ("COAL/GSS", ExecMode::coalesced(PolicyKind::Guided, rec)),
        ("COAL/FAC", ExecMode::coalesced(PolicyKind::Factoring, rec)),
    ]
}

/// `(imbalance, speedup)` for one mode at one processor count.
pub fn cell(mode: ExecMode, p: usize) -> (f64, f64) {
    let cost = CostModel::default();
    let m = model();
    let body = move |iv: &[i64]| m.cost(iv);
    let seq = simulate_nest(&DIMS, 1, ExecMode::Sequential, &cost, &body).makespan;
    let r = simulate_nest(&DIMS, p, mode, &cost, &body);
    let metrics = Metrics::compute(seq, &r, p);
    (metrics.imbalance, metrics.speedup)
}

/// Build the two series tables (imbalance, speedup).
pub fn run() -> Vec<Table> {
    let mode_list = modes();
    let mut headers: Vec<&str> = vec!["p"];
    headers.extend(mode_list.iter().map(|(n, _)| *n));

    let mut imb = Table::new(
        "F2",
        format!("load imbalance vs processors, {DIMS:?} triangular(100:1)"),
        &headers,
    );
    let mut spd = Table::new(
        "F2",
        format!("speedup vs processors, {DIMS:?} triangular(100:1)"),
        &headers,
    );
    for p in procs() {
        let mut row_i = vec![p.to_string()];
        let mut row_s = vec![p.to_string()];
        for (_, mode) in &mode_list {
            let (i, s) = cell(*mode, p);
            row_i.push(format!("{i:.3}"));
            row_s.push(format!("{s:.2}"));
        }
        imb.row(row_i);
        spd.row(row_s);
    }
    vec![imb, spd]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_outer_block_is_badly_imbalanced() {
        let tables = run();
        let imb = &tables[0];
        // At p=16 the block split of a triangular workload leaves the
        // first processor with ~1/256 of the heavy work of the last.
        let r = procs().iter().position(|&p| p == 16).unwrap();
        let block = imb.cell_f64(r, "OUTER/BLOCK").unwrap();
        assert!(block > 0.5, "expected heavy imbalance, got {block}");
    }

    #[test]
    fn coalesced_dynamic_fixes_the_imbalance() {
        let tables = run();
        let imb = &tables[0];
        for r in 0..imb.rows.len() {
            let block = imb.cell_f64(r, "OUTER/BLOCK").unwrap();
            let gss = imb.cell_f64(r, "COAL/GSS").unwrap();
            assert!(
                gss < block * 0.5 || gss < 0.05,
                "row {r}: GSS {gss} vs BLOCK {block}"
            );
        }
    }

    #[test]
    fn speedup_ordering_matches_imbalance_story() {
        let tables = run();
        let spd = &tables[1];
        let r = procs().iter().position(|&p| p == 32).unwrap();
        let block = spd.cell_f64(r, "OUTER/BLOCK").unwrap();
        let gss = spd.cell_f64(r, "COAL/GSS").unwrap();
        assert!(
            gss > 1.25 * block,
            "GSS {gss} should dominate BLOCK {block}"
        );
    }

    #[test]
    fn coalescing_alone_does_not_fix_static_imbalance() {
        // With 96 rows on 16 processors, a static block of the *linear*
        // space is exactly 6 consecutive rows — the same bands as
        // OUTER/BLOCK (plus per-iteration recovery overhead). The ablation
        // insight: the balance win comes from coalescing *plus dynamic
        // dispatch*, not from coalescing alone — both static variants stay
        // heavily imbalanced while COAL/GSS is near-perfect.
        let tables = run();
        let imb = &tables[0];
        let r = procs().iter().position(|&p| p == 16).unwrap();
        let outer = imb.cell_f64(r, "OUTER/BLOCK").unwrap();
        let coal_static = imb.cell_f64(r, "COAL/BLOCK").unwrap();
        let coal_gss = imb.cell_f64(r, "COAL/GSS").unwrap();
        assert!(outer > 0.5, "outer static imbalance {outer}");
        assert!(
            coal_static > 0.4,
            "coalesced static imbalance {coal_static}"
        );
        assert!(coal_gss < 0.05, "coalesced GSS imbalance {coal_gss}");
    }
}
