//! **F6 — the legality boundary: what to do when coalescing is illegal.**
//!
//! A column recurrence `A[i][j] = A[i−1][j] + …` carries a dependence at
//! the outer level, so coalescing the whole nest is (correctly) rejected.
//! Two escapes exist, and the figure quantifies both:
//!
//! 1. **doacross pipelining** of the carrying loop — throughput capped at
//!    `body/delay` (first table: speedup vs dependence delay);
//! 2. **interchange + coalesce**: move the clean `j` level outward and
//!    run it as a doall (second table) — full parallelism, no pipeline
//!    cap, available exactly because the dependence analysis knows which
//!    level carries.

use lc_machine::cost::CostModel;
use lc_machine::doacross::{pipeline_speedup_bound, simulate_doacross};
use lc_machine::exec::{simulate_nest, ExecMode};
use lc_machine::sim::simulate_loop;
use lc_machine::sim::LoopSchedule;
use lc_sched::policy::PolicyKind;

use crate::table::Table;

const N: u64 = 256;
const BODY: u64 = 100;
const P: usize = 16;

/// Doacross speedup at a given dependence delay.
pub fn doacross_speedup(delay: u64) -> f64 {
    let cost = CostModel::free();
    let body = |_: u64| BODY;
    let seq: u64 = (0..N).map(|i| cost.loop_overhead + body(i)).sum();
    let r = simulate_doacross(N, P, delay, &cost, &body);
    seq as f64 / r.makespan as f64
}

/// The three strategies for the 2-D column recurrence (dims N×M, carried
/// at level 0 with delay = one body): sequential, doacross outer, and
/// interchange + coalesce the clean level. Returns their makespans.
pub fn recurrence_strategies(m: u64) -> (u64, u64, u64) {
    let cost = CostModel::default();
    let dims = [N, m];
    let seq = simulate_nest(&dims, 1, ExecMode::Sequential, &cost, &|_| BODY).makespan;

    // Doacross outer: each outer iteration runs its inner row serially;
    // the producing statement finishes at the end of the row, so the
    // delay is the full row time.
    let row_time = m * (BODY + cost.loop_overhead);
    let da = simulate_doacross(N, P, row_time, &cost, &|_| row_time).makespan;

    // Interchange: the clean j level (m iterations) becomes an outer
    // doall; each of its iterations runs the N-long recurrence serially.
    let col_time = N * (BODY + cost.loop_overhead);
    let ic = simulate_loop(
        m,
        P,
        LoopSchedule::Dynamic(PolicyKind::Guided),
        &cost,
        &|_| col_time,
    )
    .makespan;
    (seq, da, ic)
}

/// Build the tables.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "F6",
        format!("doacross speedup vs dependence delay, N={N}, body={BODY}, p={P}"),
        &["delay", "speedup", "pipeline bound"],
    );
    for delay in [0u64, 5, 10, 25, 50, 100, 200] {
        t.row(vec![
            delay.to_string(),
            format!("{:.2}", doacross_speedup(delay)),
            format!("{:.2}", pipeline_speedup_bound(P, BODY, delay)),
        ]);
    }

    let mut s = Table::new(
        "F6",
        format!("column recurrence {N}xM: sequential vs doacross vs interchange+coalesce, p={P}"),
        &["M", "SEQ", "DOACROSS", "INTERCHANGE+DOALL", "best"],
    );
    for m in [4u64, 16, 64, 256] {
        let (seq, da, ic) = recurrence_strategies(m);
        let best = if ic <= da && ic <= seq {
            "INTERCHANGE"
        } else if da <= seq {
            "DOACROSS"
        } else {
            "SEQ"
        };
        s.row(vec![
            m.to_string(),
            seq.to_string(),
            da.to_string(),
            ic.to_string(),
            best.into(),
        ]);
    }
    vec![t, s]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doacross_speedup_decays_with_delay_and_respects_bound() {
        let mut prev = f64::INFINITY;
        for delay in [0u64, 5, 10, 25, 50, 100] {
            let s = doacross_speedup(delay);
            let b = pipeline_speedup_bound(P, BODY, delay);
            assert!(s <= b + 0.3, "delay={delay}: {s:.2} > bound {b:.2}");
            assert!(
                s <= prev + 0.05,
                "speedup must decay: {s:.2} after {prev:.2}"
            );
            prev = s;
        }
    }

    #[test]
    fn interchange_wins_once_the_clean_dimension_is_wide() {
        // With M >= p the interchanged doall feeds every processor while
        // doacross is capped at ~1 (row-granularity dependence).
        let (seq, da, ic) = recurrence_strategies(64);
        assert!(ic < da, "interchange {ic} !< doacross {da}");
        assert!(ic * 8 < seq, "interchange speedup too small: {seq}/{ic}");
    }

    #[test]
    fn doacross_beats_sequential_when_rows_overlap_dispatch() {
        // Full-row delay means almost no overlap: doacross ≈ sequential
        // (slightly worse due to dispatch). It must never *beat* the
        // pipeline bound of ~1.
        let (seq, da, _) = recurrence_strategies(16);
        let ratio = seq as f64 / da as f64;
        assert!(
            ratio < 1.2,
            "doacross with full-row delay cannot speed up: {ratio:.2}"
        );
    }

    #[test]
    fn narrow_clean_dimension_limits_interchange() {
        // M = 4 < p: interchange exposes only 4 columns — speedup ≤ 4.
        let (seq, _, ic) = recurrence_strategies(4);
        let speedup = seq as f64 / ic as f64;
        assert!(speedup <= 4.2, "{speedup:.2}");
        assert!(speedup > 3.0, "{speedup:.2}");
    }
}
