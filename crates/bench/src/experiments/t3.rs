//! **T3 — static schedule length: `⌈N/p⌉` vs the best nested allocation.**
//!
//! The paper's schedule-length theorem: for every per-dimension processor
//! allocation `Π p_k ≤ p`, the coalesced block schedule's critical path
//! `⌈N/p⌉` is no longer than the nested one `Π ⌈N_k/p_k⌉`. The table
//! compares against the *optimal* allocation (exhaustive search), reports
//! the gap, and a final summary row sweeps a grid of shapes to count how
//! often the inequality is strict.

use lc_sched::bounds::{best_processor_allocation, coalesced_block_length};

use crate::table::Table;

/// The showcased shapes.
pub fn cases() -> Vec<(Vec<u64>, u64)> {
    vec![
        (vec![8, 8], 16),   // perfect fit: tie
        (vec![5, 5], 4),    // classic misfit
        (vec![7, 11], 8),   // prime trip counts
        (vec![3, 40], 8),   // narrow outer dimension
        (vec![33, 17], 32), // both dimensions misfit
        (vec![4, 5, 6], 12),
        (vec![10, 2, 7], 16),
    ]
}

/// Sweep a grid and count strict wins for coalescing.
pub fn sweep_stats() -> (u64, u64, u64) {
    let (mut cases_n, mut ties, mut wins) = (0, 0, 0);
    for n1 in 2..=24u64 {
        for n2 in 2..=24u64 {
            for p in [2u64, 4, 8, 16] {
                let n = n1 * n2;
                let c = coalesced_block_length(n, p);
                let (_, nested) = best_processor_allocation(&[n1, n2], p);
                assert!(c <= nested, "theorem violated at {n1}x{n2} p={p}");
                cases_n += 1;
                if c == nested {
                    ties += 1;
                } else {
                    wins += 1;
                }
            }
        }
    }
    (cases_n, ties, wins)
}

/// Build the tables.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "T3",
        "static block-schedule length (body executions on the critical path)",
        &[
            "dims",
            "p",
            "coalesced",
            "best nested",
            "best alloc",
            "gap %",
        ],
    );
    for (dims, p) in cases() {
        let n: u64 = dims.iter().product();
        let c = coalesced_block_length(n, p);
        let (alloc, nested) = best_processor_allocation(&dims, p);
        t.row(vec![
            format!("{dims:?}"),
            p.to_string(),
            c.to_string(),
            nested.to_string(),
            format!("{alloc:?}"),
            format!("{:.1}", 100.0 * (nested - c) as f64 / nested as f64),
        ]);
    }

    let (cases_n, ties, wins) = sweep_stats();
    let mut s = Table::new(
        "T3",
        "sweep 2..=24 x 2..=24, p in {2,4,8,16}: coalesced vs best nested",
        &["cases", "ties", "coalesced strictly shorter", "win %"],
    );
    s.row(vec![
        cases_n.to_string(),
        ties.to_string(),
        wins.to_string(),
        format!("{:.1}", 100.0 * wins as f64 / cases_n as f64),
    ]);
    vec![t, s]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_holds_on_showcased_rows() {
        let t = &run()[0];
        for r in 0..t.rows.len() {
            let c = t.cell_f64(r, "coalesced").unwrap();
            let nested = t.cell_f64(r, "best nested").unwrap();
            assert!(c <= nested, "row {r}");
        }
    }

    #[test]
    fn perfect_fit_ties_and_misfit_wins() {
        let t = &run()[0];
        // Row 0: 8x8 on 16 — tie.
        assert_eq!(t.cell_f64(0, "coalesced"), t.cell_f64(0, "best nested"));
        // Row 2: 7x11 on 8 — strict win.
        assert!(t.cell_f64(2, "coalesced").unwrap() < t.cell_f64(2, "best nested").unwrap());
    }

    #[test]
    fn sweep_finds_many_strict_wins() {
        let (cases_n, ties, wins) = sweep_stats();
        assert_eq!(cases_n, ties + wins);
        // Misfit shapes dominate a dense grid: coalescing wins strictly in
        // a substantial fraction of cases.
        assert!(
            wins as f64 / cases_n as f64 > 0.3,
            "{wins}/{cases_n} strict wins"
        );
    }
}
