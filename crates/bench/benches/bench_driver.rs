//! Driver overhead and batch-compilation throughput: the full
//! instrumented pipeline on a single program, the facade-compatible
//! configuration, and `compile_batch` at increasing batch sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lc_driver::{Driver, DriverOptions};
use lc_xform::coalesce::CoalesceOptions;

const QUICKSTART: &str = "
    array A[100][50];
    doall i = 1..100 {
        doall j = 1..50 {
            A[i][j] = i * j;
        }
    }
";

fn batch_sources(n: usize) -> Vec<String> {
    (0..n)
        .map(|k| {
            let rows = 4 + (k % 13);
            format!(
                "array B[{rows}][8]; doall i = 1..{rows} {{ doall j = 1..8 {{ B[i][j] = i + j; }} }}"
            )
        })
        .collect()
}

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("driver");
    group.sample_size(20);

    let full = Driver::default();
    group.bench_function("compile/full-pipeline", |b| {
        b.iter(|| full.compile(black_box(QUICKSTART)).unwrap())
    });

    let compat = Driver::new(DriverOptions::facade_compat(CoalesceOptions::default()));
    group.bench_function("compile/facade-compat", |b| {
        b.iter(|| compat.compile(black_box(QUICKSTART)).unwrap())
    });

    let fast = Driver::new(DriverOptions {
        validate: false,
        ..Default::default()
    });
    group.bench_function("compile/no-validate", |b| {
        b.iter(|| fast.compile(black_box(QUICKSTART)).unwrap())
    });
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("driver_batch");
    group.sample_size(10);
    let driver = Driver::new(DriverOptions {
        validate: false,
        ..Default::default()
    });
    for n in [16usize, 64, 256] {
        let sources = batch_sources(n);
        group.bench_with_input(BenchmarkId::new("parallel", n), &sources, |b, s| {
            b.iter(|| driver.compile_batch(black_box(s)))
        });
        group.bench_with_input(BenchmarkId::new("sequential", n), &sources, |b, s| {
            b.iter(|| {
                s.iter()
                    .map(|src| driver.compile(black_box(src)))
                    .collect::<Vec<_>>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile, bench_batch);
criterion_main!(benches);
