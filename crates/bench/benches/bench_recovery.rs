//! T1 companion: wall-clock cost of the index-recovery schemes over a
//! 2^20-iteration space at several nest depths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lc_space::{recover_ceiling_into, recover_divmod_into, Odometer};

fn bench_recovery(c: &mut Criterion) {
    let shapes: Vec<(usize, Vec<u64>)> = vec![
        (2, vec![1024, 1024]),
        (3, vec![128, 128, 64]),
        (4, vec![32, 32, 32, 32]),
    ];
    let mut group = c.benchmark_group("recovery");
    group.sample_size(20);
    for (depth, dims) in shapes {
        let n: u64 = dims.iter().product();
        group.bench_with_input(BenchmarkId::new("ceiling", depth), &dims, |b, dims| {
            b.iter(|| {
                let mut buf = Vec::new();
                let mut acc = 0i64;
                for j in 1..=n as i64 {
                    recover_ceiling_into(black_box(j), dims, &mut buf);
                    acc ^= buf[0];
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("divmod", depth), &dims, |b, dims| {
            b.iter(|| {
                let mut buf = Vec::new();
                let mut acc = 0i64;
                for j in 1..=n as i64 {
                    recover_divmod_into(black_box(j), dims, &mut buf);
                    acc ^= buf[0];
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("odometer", depth), &dims, |b, dims| {
            b.iter(|| {
                let mut odo = Odometer::new(dims);
                let mut acc = 0i64;
                loop {
                    acc ^= odo.indices()[0];
                    if !odo.advance() {
                        break;
                    }
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
