//! F4 companion: depth-sweep simulation cells.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lc_bench::experiments::f4;
use lc_machine::exec::ExecMode;
use lc_machine::sim::LoopSchedule;
use lc_sched::policy::PolicyKind;
use lc_xform::recovery::{per_iteration_cost, RecoveryScheme};

fn bench_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("depth");
    group.sample_size(10);
    for dims in f4::shapes() {
        let rec = per_iteration_cost(RecoveryScheme::Ceiling, &dims).units();
        group.bench_with_input(
            BenchmarkId::new("coalesced", dims.len()),
            &dims,
            |b, dims| {
                b.iter(|| {
                    f4::makespan(
                        black_box(dims),
                        ExecMode::coalesced(PolicyKind::Guided, rec),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("inner_sweep", dims.len()),
            &dims,
            |b, dims| {
                b.iter(|| {
                    f4::makespan(
                        black_box(dims),
                        ExecMode::InnerParallelSweep {
                            schedule: LoopSchedule::Dynamic(PolicyKind::SelfSched),
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_depth);
criterion_main!(benches);
