//! F2 companion: triangular-workload simulation per mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lc_bench::experiments::f2;

fn bench_imbalance(c: &mut Criterion) {
    let mut group = c.benchmark_group("imbalance");
    group.sample_size(10);
    for (name, mode) in f2::modes() {
        group.bench_with_input(BenchmarkId::new("p16", name), &mode, |b, &mode| {
            b.iter(|| f2::cell(black_box(mode), 16))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_imbalance);
criterion_main!(benches);
