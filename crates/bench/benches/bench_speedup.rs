//! F1 companion: one simulated speedup cell per execution mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lc_bench::experiments::f1;

fn bench_speedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("speedup");
    group.sample_size(15);
    for (name, mode) in f1::modes() {
        group.bench_with_input(BenchmarkId::new("p16", name), &mode, |b, &mode| {
            b.iter(|| f1::speedup(black_box(mode), 16))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_speedup);
criterion_main!(benches);
