//! T2 companion: time to generate the full dispatch sequence, nested vs
//! coalesced, per policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lc_sched::dispatch::{coalesced_dispatch, nested_dispatch};
use lc_sched::policy::PolicyKind;

fn bench_dispatch(c: &mut Criterion) {
    let dims = vec![100u64, 100];
    let mut group = c.benchmark_group("dispatch");
    group.sample_size(30);
    for kind in [
        PolicyKind::SelfSched,
        PolicyKind::Chunked(8),
        PolicyKind::Guided,
        PolicyKind::Factoring,
    ] {
        group.bench_with_input(
            BenchmarkId::new("coalesced", kind.name()),
            &kind,
            |b, &kind| b.iter(|| coalesced_dispatch(black_box(&dims), 16, kind)),
        );
        group.bench_with_input(
            BenchmarkId::new("nested", kind.name()),
            &kind,
            |b, &kind| b.iter(|| nested_dispatch(black_box(&dims), 16, kind)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
