//! T3 companion: cost of the exhaustive best-allocation search and the
//! closed-form coalesced bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lc_sched::bounds::{best_processor_allocation, coalesced_block_length};

fn bench_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_bounds");
    group.sample_size(30);
    for (dims, p) in [
        (vec![33u64, 17], 32u64),
        (vec![10, 12, 14], 64),
        (vec![6, 6, 6, 6], 64),
    ] {
        group.bench_with_input(
            BenchmarkId::new("best_allocation", format!("{dims:?}/p{p}")),
            &(dims.clone(), p),
            |b, (dims, p)| b.iter(|| best_processor_allocation(black_box(dims), *p)),
        );
        let n: u64 = dims.iter().product();
        group.bench_with_input(
            BenchmarkId::new("coalesced_bound", format!("{dims:?}/p{p}")),
            &p,
            |b, p| b.iter(|| coalesced_block_length(black_box(n), *p)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bounds);
criterion_main!(benches);
