//! A1 companion: advisor estimate vs exhaustive simulated band search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lc_bench::experiments::a1;

fn bench_advisor(c: &mut Criterion) {
    let mut group = c.benchmark_group("advisor");
    group.sample_size(15);
    for dims in a1::shapes() {
        group.bench_with_input(
            BenchmarkId::new("evaluate", format!("{dims:?}")),
            &dims,
            |b, dims| b.iter(|| a1::evaluate(black_box(dims))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_advisor);
criterion_main!(benches);
