//! F3 companion: GSS chunk-sequence generation and policy-matrix cells on
//! irregular workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lc_bench::experiments::f3;
use lc_machine::sim::LoopSchedule;
use lc_sched::policy::PolicyKind;

fn bench_gss(c: &mut Criterion) {
    let mut group = c.benchmark_group("gss");
    group.sample_size(15);
    group.bench_function("chunk_sequence_n1e6_p16", |b| {
        b.iter(|| f3::gss_chunks(black_box(1_000_000), 16))
    });
    for (name, sched) in [
        ("SS", LoopSchedule::Dynamic(PolicyKind::SelfSched)),
        ("GSS", LoopSchedule::Dynamic(PolicyKind::Guided)),
        ("FAC", LoopSchedule::Dynamic(PolicyKind::Factoring)),
    ] {
        group.bench_with_input(BenchmarkId::new("random_work", name), &sched, |b, &s| {
            b.iter(|| f3::makespan(black_box(f3::workloads()[0]), s))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gss);
criterion_main!(benches);
