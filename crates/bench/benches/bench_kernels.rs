//! T5 companion: IR-costed kernel simulation, one cell per kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lc_bench::experiments::t5;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);
    for kernel in t5::kernel_list() {
        group.bench_with_input(
            BenchmarkId::new("simulate", format!("{} {:?}", kernel.name, kernel.dims)),
            &kernel,
            |b, k| b.iter(|| t5::evaluate(black_box(k))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
