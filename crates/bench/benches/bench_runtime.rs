//! F5 companion: real-thread matmul under the three runtime executors.
//!
//! Wall-clock and host dependent by design — this is the bench that shows
//! the transformation working on actual hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lc_runtime::{coalesced_for, inner_sweep_for, outer_for, RuntimeOptions};
use lc_sched::policy::PolicyKind;
use lc_workloads::rt::{gen_a, gen_b, matmul_cell, AtomicMatrix};

const N: usize = 128;
const M: usize = 128;
const K: usize = 48;

fn bench_runtime(c: &mut Criterion) {
    let a = gen_a(N, K);
    let b_mat = gen_b(K, M);
    let out = AtomicMatrix::zeroed(N, M);
    let dims = [N as u64, M as u64];
    let threads = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4);

    let mut group = c.benchmark_group("runtime_matmul");
    group.sample_size(10);

    for policy in [
        PolicyKind::Guided,
        PolicyKind::Chunked(64),
        PolicyKind::SelfSched,
    ] {
        group.bench_with_input(
            BenchmarkId::new("coalesced", policy.name()),
            &policy,
            |bch, &policy| {
                let opts = RuntimeOptions { threads, policy };
                bch.iter(|| coalesced_for(&dims, &opts, |iv| matmul_cell(&a, &b_mat, &out, K, iv)))
            },
        );
    }
    group.bench_function("outer/GSS", |bch| {
        let opts = RuntimeOptions {
            threads,
            policy: PolicyKind::Guided,
        };
        bch.iter(|| outer_for(&dims, &opts, |iv| matmul_cell(&a, &b_mat, &out, K, iv)))
    });
    group.bench_function("inner_sweep/SS", |bch| {
        let opts = RuntimeOptions {
            threads,
            policy: PolicyKind::SelfSched,
        };
        bch.iter(|| inner_sweep_for(&dims, &opts, |iv| matmul_cell(&a, &b_mat, &out, K, iv)))
    });
    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
