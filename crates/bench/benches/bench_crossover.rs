//! T4 companion: simulation cost at selected body sizes around the
//! crossover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lc_bench::experiments::t4;

fn bench_crossover(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossover");
    group.sample_size(15);
    for s in [1u64, 16, 256] {
        group.bench_with_input(BenchmarkId::new("makespans", s), &s, |b, &s| {
            b.iter(|| t4::makespans(black_box(s)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_crossover);
criterion_main!(benches);
