//! F6 companion: doacross simulation cost across delays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lc_bench::experiments::f6;

fn bench_doacross(c: &mut Criterion) {
    let mut group = c.benchmark_group("doacross");
    group.sample_size(20);
    for delay in [0u64, 25, 100] {
        group.bench_with_input(BenchmarkId::new("speedup", delay), &delay, |b, &d| {
            b.iter(|| f6::doacross_speedup(black_box(d)))
        });
    }
    group.bench_function("strategies_m64", |b| {
        b.iter(|| f6::recurrence_strategies(black_box(64)))
    });
    group.finish();
}

criterion_group!(benches, bench_doacross);
criterion_main!(benches);
