//! Static schedule-length bounds: the paper's theorem that coalescing
//! never lengthens — and usually shortens — a statically scheduled nest.
//!
//! With block scheduling, a coalesced loop of `N = Π N_k` iterations on
//! `p` processors finishes in `⌈N/p⌉` body-executions per processor. A
//! nested loop must instead split the processors across dimensions,
//! `p_1 · p_2 · … · p_m ≤ p`, and finishes in `Π ⌈N_k/p_k⌉`. For every
//! feasible allocation,
//!
//! `⌈N/p⌉ ≤ Π_k ⌈N_k/p_k⌉`,
//!
//! with the gap largest when trip counts don't divide the allocation
//! (e.g. `N_k = p_k + 1`). [`best_processor_allocation`] searches the
//! allocation space exhaustively so experiments can compare against the
//! *best* nested schedule, not a strawman.

/// `⌈n/p⌉` — body executions on the critical path of a block-scheduled
/// coalesced loop.
pub fn coalesced_block_length(n: u64, p: u64) -> u64 {
    if p == 0 {
        return n;
    }
    n.div_ceil(p)
}

/// `Π ⌈N_k/p_k⌉` — critical path of a block-scheduled nested loop under a
/// per-dimension processor allocation. Panics if lengths differ.
pub fn nested_block_length(dims: &[u64], alloc: &[u64]) -> u64 {
    assert_eq!(dims.len(), alloc.len(), "allocation/dims length mismatch");
    dims.iter()
        .zip(alloc)
        .map(|(&n, &pk)| n.div_ceil(pk.max(1)))
        .product()
}

/// Exhaustively find the processor allocation `(p_1, …, p_m)` with
/// `Π p_k ≤ p` minimizing `Π ⌈N_k/p_k⌉`. Returns `(allocation, length)`.
///
/// The search space is pruned: `p_k` never exceeds `N_k` (extra processors
/// on a dimension are wasted) nor the remaining processor budget.
pub fn best_processor_allocation(dims: &[u64], p: u64) -> (Vec<u64>, u64) {
    assert!(!dims.is_empty(), "empty nest");
    let p = p.max(1);
    let mut best_alloc = vec![1; dims.len()];
    let mut best_len = u64::MAX;
    let mut current = vec![1u64; dims.len()];
    search(dims, p, 0, &mut current, &mut best_alloc, &mut best_len);
    (best_alloc, best_len)
}

fn search(
    dims: &[u64],
    budget: u64,
    k: usize,
    current: &mut Vec<u64>,
    best_alloc: &mut Vec<u64>,
    best_len: &mut u64,
) {
    if k == dims.len() {
        let len = nested_block_length(dims, current);
        if len < *best_len {
            *best_len = len;
            best_alloc.clone_from(current);
        }
        return;
    }
    let max_pk = budget.min(dims[k].max(1));
    for pk in 1..=max_pk {
        current[k] = pk;
        search(dims, budget / pk, k + 1, current, best_alloc, best_len);
    }
    current[k] = 1;
}

/// The theorem: for the given shape and processor count, check that the
/// coalesced bound is no worse than the best nested allocation. Returns
/// `(coalesced, best_nested)` so callers can also report the gap.
pub fn coalescing_bound_pair(dims: &[u64], p: u64) -> (u64, u64) {
    let n: u64 = dims.iter().product();
    let c = coalesced_block_length(n, p);
    let (_, nested) = best_processor_allocation(dims, p);
    (c, nested)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn coalesced_length_basics() {
        assert_eq!(coalesced_block_length(100, 4), 25);
        assert_eq!(coalesced_block_length(101, 4), 26);
        assert_eq!(coalesced_block_length(3, 8), 1);
        assert_eq!(coalesced_block_length(5, 0), 5);
    }

    #[test]
    fn nested_length_matches_hand_computation() {
        // 10×10 on (2, 2): ceil(10/2) * ceil(10/2) = 25.
        assert_eq!(nested_block_length(&[10, 10], &[2, 2]), 25);
        // Misfit: 5×5 on (2, 2): 3 * 3 = 9 while coalesced is ceil(25/4)=7.
        assert_eq!(nested_block_length(&[5, 5], &[2, 2]), 9);
        assert_eq!(coalesced_block_length(25, 4), 7);
    }

    #[test]
    fn best_allocation_prefers_fitting_dimensions() {
        // 8×2 nest, p=4: (4,1) gives 2*2=4; (2,2) gives 4*1=4; both optimal.
        let (_alloc, len) = best_processor_allocation(&[8, 2], 4);
        assert_eq!(len, 4);
        // 9×3 nest, p=9: (3,3) gives 3*1 = 3.
        let (alloc, len) = best_processor_allocation(&[9, 3], 9);
        assert_eq!(len, 3);
        assert_eq!(alloc, vec![3, 3]);
    }

    #[test]
    fn allocation_caps_at_dimension_size() {
        // One dim of 2 with p=64: no point using more than 2.
        let (alloc, len) = best_processor_allocation(&[2, 4], 64);
        assert!(alloc[0] <= 2 && alloc[1] <= 4);
        assert_eq!(len, 1);
    }

    #[test]
    fn paper_theorem_on_a_grid_of_shapes() {
        for n1 in [3u64, 5, 7, 10, 16, 33] {
            for n2 in [2u64, 4, 9, 15] {
                for p in [2u64, 3, 4, 8, 16, 64] {
                    let (c, nested) = coalescing_bound_pair(&[n1, n2], p);
                    assert!(
                        c <= nested,
                        "coalescing lost at {n1}x{n2}, p={p}: {c} > {nested}"
                    );
                }
            }
        }
    }

    #[test]
    fn misfit_shapes_show_strict_improvement() {
        // The classic example: prime-ish trip counts waste processors under
        // any per-dimension split.
        let (c, nested) = coalescing_bound_pair(&[7, 11], 8);
        assert!(c < nested, "coalesced {c} vs nested {nested}");
    }

    #[test]
    fn perfect_fit_shapes_tie() {
        let (c, nested) = coalescing_bound_pair(&[8, 8], 16);
        assert_eq!(c, nested); // 4 == ceil(8/4)*ceil(8/4) with (4,4)
    }

    #[test]
    fn three_level_theorem_spot_checks() {
        for dims in [[4u64, 5, 6], [3, 3, 3], [10, 2, 7]] {
            for p in [2u64, 6, 12, 48] {
                let (c, nested) = coalescing_bound_pair(&dims, p);
                assert!(c <= nested, "{dims:?} p={p}");
            }
        }
    }

    proptest! {
        #[test]
        fn prop_coalescing_never_loses(
            dims in proptest::collection::vec(1u64..12, 1..4),
            p in 1u64..32,
        ) {
            let (c, nested) = coalescing_bound_pair(&dims, p);
            prop_assert!(c <= nested, "dims={dims:?} p={p}: {c} > {nested}");
        }

        #[test]
        fn prop_best_allocation_is_feasible(
            dims in proptest::collection::vec(1u64..12, 1..4),
            p in 1u64..32,
        ) {
            let (alloc, len) = best_processor_allocation(&dims, p);
            prop_assert_eq!(alloc.len(), dims.len());
            prop_assert!(alloc.iter().product::<u64>() <= p.max(1));
            prop_assert_eq!(nested_block_length(&dims, &alloc), len);
        }
    }
}
