//! Dispatch-operation accounting: the paper's synchronization-count
//! comparison between nested and coalesced execution.
//!
//! Executing a nest with per-level self-scheduling pays
//!
//! * one fetch&add per dispatched chunk *per loop instance*, plus one empty
//!   fetch per participating processor to discover exhaustion, and
//! * one barrier per loop instance (the fork-join around each inner loop).
//!
//! A level-`k` loop (0-based) is instantiated `Π_{l<k} N_l` times, so the
//! nested totals grow with the *product of outer trip counts*, while the
//! coalesced loop pays a single instance: `N` dispatches (for SS) and one
//! barrier, regardless of depth. These functions compute both sides
//! exactly for any chunking policy.

use crate::policy::{Dispenser, PolicyKind};

/// Synchronization-operation totals for one loop-nest execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DispatchStats {
    /// Chunks successfully dispatched.
    pub chunks: u64,
    /// Synchronized fetch&add operations (successful + exhaustion checks).
    pub fetch_adds: u64,
    /// Barrier (join) operations.
    pub barriers: u64,
    /// Iterations of innermost-body work dispatched.
    pub iterations: u64,
}

impl DispatchStats {
    /// Total synchronization operations (fetch&adds + barriers).
    pub fn total_sync_ops(&self) -> u64 {
        self.fetch_adds + self.barriers
    }
}

/// Dispatch counts for the *coalesced* nest: one loop of `Π dims`
/// iterations, one dispenser, one terminal barrier.
pub fn coalesced_dispatch(dims: &[u64], p: usize, kind: PolicyKind) -> DispatchStats {
    let n: u64 = dims.iter().product();
    single_loop_dispatch(n, p, kind)
}

/// Dispatch counts for a single parallel loop of `n` iterations.
pub fn single_loop_dispatch(n: u64, p: usize, kind: PolicyKind) -> DispatchStats {
    let mut d = Dispenser::with_kind(n, p, kind);
    let mut chunks = 0;
    while d.grab().is_some() {
        chunks += 1;
    }
    // Every processor pays one (possibly shared-with-above) exhaustion
    // fetch; the drain above recorded one, the other p−1 are added here.
    let fetch_adds = d.fetch_ops() + p.saturating_sub(1) as u64;
    DispatchStats {
        chunks,
        fetch_adds,
        barriers: 1,
        iterations: n,
    }
}

/// Dispatch counts for the *nested* execution: self-scheduling applied at
/// every level, with a barrier closing every loop instance.
///
/// `p_per_level[k]` is how many processors contend at level `k`; the
/// classic setup dedicates all `p` to the outermost level and lets inner
/// loops run with the team that reaches them (here: also `p`, matching the
/// paper's worst-case accounting; pass `1` to model outer-only
/// parallelism, which then pays no inner dispatch at all — see
/// [`outer_only_dispatch`]).
pub fn nested_dispatch(dims: &[u64], p: usize, kind: PolicyKind) -> DispatchStats {
    let mut stats = DispatchStats::default();
    let mut instances: u64 = 1;
    for &n_k in dims {
        // `instances` copies of this loop run over the program's lifetime.
        let per = single_loop_dispatch(n_k, p, kind);
        stats.chunks += instances * per.chunks;
        stats.fetch_adds += instances * per.fetch_adds;
        stats.barriers += instances * per.barriers;
        instances *= n_k;
    }
    stats.iterations = instances;
    stats
}

/// Dispatch counts when only the outermost loop is parallel and inner
/// levels run serially inside each dispatched iteration (the common manual
/// parallelization the paper's coalescing improves on for load balance).
pub fn outer_only_dispatch(dims: &[u64], p: usize, kind: PolicyKind) -> DispatchStats {
    let n_outer = dims.first().copied().unwrap_or(0);
    let mut s = single_loop_dispatch(n_outer, p, kind);
    s.iterations = dims.iter().product();
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesced_ss_pays_n_plus_p_fetches_and_one_barrier() {
        let dims = [10u64, 10];
        let s = coalesced_dispatch(&dims, 4, PolicyKind::SelfSched);
        assert_eq!(s.iterations, 100);
        assert_eq!(s.chunks, 100);
        assert_eq!(s.fetch_adds, 100 + 4);
        assert_eq!(s.barriers, 1);
    }

    #[test]
    fn nested_ss_pays_per_instance() {
        // 10×10 nest: outer loop once (10+p fetches, 1 barrier), inner loop
        // 10 times (each 10+p fetches, 1 barrier).
        let dims = [10u64, 10];
        let p = 4;
        let s = nested_dispatch(&dims, p, PolicyKind::SelfSched);
        assert_eq!(s.fetch_adds, (10 + 4) + 10 * (10 + 4));
        assert_eq!(s.barriers, 1 + 10);
        assert_eq!(s.iterations, 100);
    }

    #[test]
    fn coalescing_reduces_sync_ops_and_gap_grows_with_depth() {
        let p = 16;
        let flat2 = coalesced_dispatch(&[32, 32], p, PolicyKind::SelfSched).total_sync_ops();
        let nest2 = nested_dispatch(&[32, 32], p, PolicyKind::SelfSched).total_sync_ops();
        assert!(flat2 < nest2);

        let flat3 = coalesced_dispatch(&[16, 16, 16], p, PolicyKind::SelfSched).total_sync_ops();
        let nest3 = nested_dispatch(&[16, 16, 16], p, PolicyKind::SelfSched).total_sync_ops();
        assert!(flat3 < nest3);

        // Relative savings grow with depth (same-ish total iterations).
        let r2 = nest2 as f64 / flat2 as f64;
        let r3 = nest3 as f64 / flat3 as f64;
        assert!(r3 > r2, "r2={r2:.2} r3={r3:.2}");
    }

    #[test]
    fn gss_dispatches_far_fewer_chunks_than_ss() {
        let s_ss = coalesced_dispatch(&[64, 64], 8, PolicyKind::SelfSched);
        let s_gss = coalesced_dispatch(&[64, 64], 8, PolicyKind::Guided);
        assert_eq!(s_ss.chunks, 4096);
        assert!(s_gss.chunks < 100, "{}", s_gss.chunks);
        assert!(s_gss.fetch_adds < s_ss.fetch_adds);
    }

    #[test]
    fn outer_only_dispatch_counts_only_the_outer_loop() {
        let s = outer_only_dispatch(&[8, 1000], 4, PolicyKind::SelfSched);
        assert_eq!(s.chunks, 8);
        assert_eq!(s.fetch_adds, 8 + 4);
        assert_eq!(s.barriers, 1);
        assert_eq!(s.iterations, 8000);
    }

    #[test]
    fn single_iteration_dims_are_handled() {
        let s = nested_dispatch(&[1, 1, 5], 2, PolicyKind::SelfSched);
        assert_eq!(s.iterations, 5);
        assert!(s.barriers >= 3);
    }

    #[test]
    fn empty_dims_mean_no_work() {
        let s = coalesced_dispatch(&[], 4, PolicyKind::SelfSched);
        assert_eq!(s.iterations, 1); // empty product — a single body instance
        let s0 = coalesced_dispatch(&[0, 10], 4, PolicyKind::SelfSched);
        assert_eq!(s0.iterations, 0);
        assert_eq!(s0.chunks, 0);
    }

    #[test]
    fn chunked_reduces_fetches_proportionally() {
        let ss = coalesced_dispatch(&[100, 10], 4, PolicyKind::SelfSched);
        let css = coalesced_dispatch(&[100, 10], 4, PolicyKind::Chunked(10));
        assert_eq!(css.chunks, 100);
        assert!(css.fetch_adds * 9 < ss.fetch_adds);
    }
}
