//! `lc-sched` — loop scheduling policies and their analytic properties.
//!
//! The paper's case for coalescing is a *scheduling* argument: a coalesced
//! loop exposes all `N = N1·…·Nm` iterations to a single dispatch point (one
//! fetch&add counter), where a nested loop needs per-level dispatch and
//! barriers, or a static per-dimension processor allocation. This crate
//! implements the dispatch side of that argument, independent of both the
//! IR (`lc-ir`) and the machine model (`lc-machine`):
//!
//! * [`policy`] — dynamic chunking policies: pure self-scheduling (SS),
//!   chunked self-scheduling CSS(k), guided self-scheduling GSS (the
//!   Polychronopoulos–Kuck companion policy), trapezoid self-scheduling
//!   TSS, and factoring; plus static block/cyclic pre-assignments.
//! * [`dispatch`] — dispatch-operation accounting for coalesced vs nested
//!   execution of a loop nest (the paper's synchronization-count tables).
//! * [`bounds`] — static schedule-length bounds: `⌈N/p⌉` for the coalesced
//!   loop vs `Π ⌈N_k/p_k⌉` for the best per-dimension allocation, and the
//!   theorem that coalescing never lengthens a static schedule.
//! * [`mod@advise`] — the collapse-band advisor: an analytic cost model that
//!   picks how many levels to coalesce (full collapse is not always
//!   best — recovery cost is paid per iteration while the balance gain
//!   saturates at the processor count).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod advise;
pub mod bounds;
pub mod dispatch;
pub mod policy;

pub use advise::{advise, Advice, AdviseParams};
pub use bounds::{best_processor_allocation, coalesced_block_length, nested_block_length};
pub use dispatch::{coalesced_dispatch, nested_dispatch, DispatchStats};
pub use policy::{Chunk, ChunkPolicy, Dispenser, PolicyKind, StaticKind};
