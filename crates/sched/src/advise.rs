//! Collapse-band advisor: how many levels should be coalesced?
//!
//! The F4 ablation shows that full collapse is not always best — index
//! recovery is paid per iteration, while the balance benefit saturates
//! once the coalesced band exposes "enough" iterations for the processor
//! count. This module picks the contiguous band `[s, e)` minimizing an
//! analytic makespan estimate:
//!
//! ```text
//! total(s, e) = Π_{k<s} N_k · ( fork + barrier + dispatch(s, e)
//!               + ⌈Π_{k∈[s,e)} N_k / p⌉ · C(s, e) )
//! C(s, e)     = recovery(dims[s..e]) + loop_overhead
//!               + Π_{k≥e} N_k · (body + loop_overhead)
//! ```
//!
//! with GSS dispatch (`≈ p·ln(N/p) + p` chunks). The estimate intentionally
//! mirrors `lc-machine`'s simulator — an experiment (`A1`) checks the
//! advisor's choice against exhaustively simulating every band.
//!
//! Recovery cost arrives as a typed [`RecoveryCost`] from the shared
//! recovery-expression builder — the same count the rewrite itself emits
//! — so the advisor and the analytic tables cannot drift apart.

use lc_ir::build::RecoveryCost;

/// Machine and workload parameters for the estimate. These mirror
/// `lc_machine::CostModel` plus a constant per-iteration body cost.
#[derive(Debug, Clone, Copy)]
pub struct AdviseParams {
    /// Cost of one synchronized fetch&add.
    pub fetch_add: u64,
    /// Barrier cost per crossing.
    pub barrier: u64,
    /// Fork cost per parallel-loop instance.
    pub fork: u64,
    /// Per-iteration loop bookkeeping.
    pub loop_overhead: u64,
    /// Estimated innermost-body cost per iteration.
    pub body_cost: u64,
    /// Processor count.
    pub p: u64,
}

impl Default for AdviseParams {
    fn default() -> Self {
        AdviseParams {
            fetch_add: 8,
            barrier: 16,
            fork: 100,
            loop_overhead: 2,
            body_cost: 50,
            p: 16,
        }
    }
}

/// One candidate band with its estimated makespan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandEstimate {
    /// The band `[start, end)`.
    pub band: (usize, usize),
    /// Estimated makespan in abstract instructions.
    pub estimate: u64,
}

/// The advisor's output: the chosen band and every candidate's estimate
/// (sorted best-first) for inspection.
#[derive(Debug, Clone)]
pub struct Advice {
    /// The recommended band.
    pub band: (usize, usize),
    /// Every candidate, best first.
    pub candidates: Vec<BandEstimate>,
}

/// Number of GSS chunks for `n` iterations on `p` processors (counted
/// exactly, not by the logarithmic approximation, so the estimate stays
/// integer-exact).
fn gss_chunk_count(n: u64, p: u64) -> u64 {
    let mut remaining = n;
    let mut chunks = 0;
    while remaining > 0 {
        let take = remaining.div_ceil(p).max(1);
        remaining -= take.min(remaining);
        chunks += 1;
    }
    chunks
}

/// Estimate the makespan of coalescing band `[s, e)` of `dims` under the
/// given parameters. `recovery_cost(dims_band)` supplies the typed
/// per-iteration index-recovery cost for a band (e.g.
/// `lc_xform::recovery::per_iteration_cost`); the estimate charges its
/// weighted [`RecoveryCost::units`].
pub fn estimate_band(
    dims: &[u64],
    band: (usize, usize),
    params: &AdviseParams,
    recovery_cost: &dyn Fn(&[u64]) -> RecoveryCost,
) -> u64 {
    let (s, e) = band;
    assert!(s < e && e <= dims.len(), "invalid band");
    let p = params.p.max(1);

    let outer: u64 = dims[..s].iter().product();
    let n_band: u64 = dims[s..e].iter().product();
    let inner: u64 = dims[e..].iter().product();

    // Serial inner subnest per coalesced iteration: headers + bodies.
    let inner_headers: u64 = {
        let mut acc = 0;
        let mut inst = 1;
        for &d in &dims[e..] {
            inst *= d;
            acc += inst;
        }
        acc
    };
    let per_iter = recovery_cost(&dims[s..e]).units()
        + params.loop_overhead
        + inner_headers * params.loop_overhead
        + inner * params.body_cost;

    let chunks = gss_chunk_count(n_band, p);
    // Dispatch on the critical path: each processor's share of the chunk
    // grabs plus its final empty grab.
    let dispatch = (chunks.div_ceil(p) + 1) * params.fetch_add;
    let critical_iters = n_band.div_ceil(p);

    let per_instance = params.fork + params.barrier + dispatch + critical_iters * per_iter;
    // Outer serial levels run the whole parallel instance once each, plus
    // their own header bookkeeping.
    outer * (per_instance + params.loop_overhead)
}

/// Evaluate every contiguous band of doall-legal levels and return the
/// best. `legal[k]` marks levels that may participate (the caller derives
/// this from dependence analysis); bands must consist of consecutive
/// legal levels. Panics if no level is legal.
pub fn advise(
    dims: &[u64],
    legal: &[bool],
    params: &AdviseParams,
    recovery_cost: &dyn Fn(&[u64]) -> RecoveryCost,
) -> Advice {
    assert_eq!(dims.len(), legal.len());
    let mut candidates = Vec::new();
    for s in 0..dims.len() {
        for e in (s + 1)..=dims.len() {
            if (s..e).all(|k| legal[k]) {
                candidates.push(BandEstimate {
                    band: (s, e),
                    estimate: estimate_band(dims, (s, e), params, recovery_cost),
                });
            }
        }
    }
    assert!(
        !candidates.is_empty(),
        "no coalescible band (no legal level)"
    );
    candidates.sort_by_key(|c| (c.estimate, c.band.0, c.band.1));
    Advice {
        band: candidates[0].band,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A recovery-cost stand-in matching the shape of the real one:
    /// ~22 weighted units per level beyond the first, 1 for a single
    /// level (expressed as bare add units; only `units()` matters here).
    fn rec(dims: &[u64]) -> RecoveryCost {
        let units = if dims.len() <= 1 {
            1
        } else {
            22 * dims.len() as u64 - 21
        };
        RecoveryCost {
            adds: units,
            ..RecoveryCost::default()
        }
    }

    #[test]
    fn gss_chunk_count_matches_dispenser() {
        use crate::policy::{Dispenser, PolicyKind};
        for (n, p) in [(1000u64, 4u64), (64, 16), (5, 8), (1, 1)] {
            let want = Dispenser::with_kind(n, p as usize, PolicyKind::Guided)
                .drain()
                .len() as u64;
            assert_eq!(gss_chunk_count(n, p), want, "n={n} p={p}");
        }
    }

    #[test]
    fn advisor_prefers_partial_collapse_on_deep_nests() {
        // The F4 scenario: 8^4 nest, p=16 — two levels expose 64
        // iterations, enough for 16 processors; deeper collapse only adds
        // recovery cost.
        let dims = [8u64, 8, 8, 8];
        let advice = advise(&dims, &[true; 4], &AdviseParams::default(), &rec);
        let (s, e) = advice.band;
        assert!(e - s < 4, "advisor chose full collapse: {advice:?}");
        assert!((e - s) >= 1);
        // The chosen band must expose at least p iterations.
        let n: u64 = dims[s..e].iter().product();
        assert!(n >= 16, "band too narrow: {advice:?}");
    }

    #[test]
    fn advisor_collapses_fully_when_outer_is_narrow() {
        // 2×2×2 on p=16: even full collapse only yields 8 iterations —
        // the advisor must take everything it can get.
        let dims = [2u64, 2, 2];
        let advice = advise(&dims, &[true; 3], &AdviseParams::default(), &rec);
        assert_eq!(advice.band, (0, 3), "{advice:?}");
    }

    #[test]
    fn advisor_respects_legality_mask() {
        // Level 1 is illegal: only bands within {0} or {2,3} qualify.
        let dims = [4u64, 4, 4, 4];
        let legal = [true, false, true, true];
        let advice = advise(&dims, &legal, &AdviseParams::default(), &rec);
        let (s, e) = advice.band;
        assert!(
            (s == 0 && e == 1) || (s >= 2),
            "band crosses illegal level: {advice:?}"
        );
        for c in &advice.candidates {
            assert!((c.band.0..c.band.1).all(|k| legal[k]));
        }
    }

    #[test]
    fn single_level_nest_has_one_candidate() {
        let advice = advise(&[100], &[true], &AdviseParams::default(), &rec);
        assert_eq!(advice.band, (0, 1));
        assert_eq!(advice.candidates.len(), 1);
    }

    #[test]
    fn estimates_increase_with_body_cost() {
        let dims = [16u64, 16];
        let cheap = estimate_band(
            &dims,
            (0, 2),
            &AdviseParams {
                body_cost: 10,
                ..Default::default()
            },
            &rec,
        );
        let pricey = estimate_band(
            &dims,
            (0, 2),
            &AdviseParams {
                body_cost: 1000,
                ..Default::default()
            },
            &rec,
        );
        assert!(pricey > cheap);
    }

    #[test]
    #[should_panic(expected = "no coalescible band")]
    fn all_illegal_panics() {
        let _ = advise(&[4, 4], &[false, false], &AdviseParams::default(), &rec);
    }
}
