//! Dynamic chunking policies and the shared-counter dispenser.
//!
//! A *policy* decides how many consecutive iterations the next requesting
//! processor receives, as a function of how many iterations remain and how
//! many processors share the loop. The [`Dispenser`] wraps a policy around
//! the shared iteration counter — the software analogue of the fetch&add
//! dispatch the paper assumes — and counts the synchronized operations it
//! performs.

use std::fmt;

/// A contiguous block of coalesced iterations: 0-based `[start, start+len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// First iteration index (0-based).
    pub start: u64,
    /// Number of iterations.
    pub len: u64,
}

impl Chunk {
    /// One-past-the-end iteration index.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }
}

/// A dynamic chunk-size policy.
pub trait ChunkPolicy: Send {
    /// Size of the next chunk. `remaining` is the number of undispatched
    /// iterations (> 0) and `p` the number of processors sharing the loop.
    /// Must return a value in `1..=remaining`.
    fn next_chunk_size(&mut self, remaining: u64, p: usize) -> u64;

    /// Display name for tables.
    fn name(&self) -> String;
}

/// Self-scheduling: one iteration per dispatch (maximal balance, maximal
/// synchronization traffic).
#[derive(Debug, Clone, Copy, Default)]
pub struct SelfSched;

impl ChunkPolicy for SelfSched {
    fn next_chunk_size(&mut self, _remaining: u64, _p: usize) -> u64 {
        1
    }
    fn name(&self) -> String {
        "SS".into()
    }
}

/// Chunked self-scheduling CSS(k): a fixed `k` iterations per dispatch.
#[derive(Debug, Clone, Copy)]
pub struct Chunked(
    /// The fixed chunk size `k ≥ 1`.
    pub u64,
);

impl ChunkPolicy for Chunked {
    fn next_chunk_size(&mut self, remaining: u64, _p: usize) -> u64 {
        self.0.max(1).min(remaining)
    }
    fn name(&self) -> String {
        format!("CSS({})", self.0)
    }
}

/// Guided self-scheduling GSS: each dispatch takes `⌈remaining / p⌉`
/// iterations, so chunks decay geometrically and the tail self-balances.
#[derive(Debug, Clone, Copy)]
pub struct Guided {
    /// Smallest chunk ever handed out (classic GSS uses 1).
    pub min_chunk: u64,
}

impl Default for Guided {
    fn default() -> Self {
        Guided { min_chunk: 1 }
    }
}

impl ChunkPolicy for Guided {
    fn next_chunk_size(&mut self, remaining: u64, p: usize) -> u64 {
        let g = remaining.div_ceil(p.max(1) as u64);
        g.max(self.min_chunk).min(remaining)
    }
    fn name(&self) -> String {
        if self.min_chunk <= 1 {
            "GSS".into()
        } else {
            format!("GSS(min={})", self.min_chunk)
        }
    }
}

/// Trapezoid self-scheduling TSS(f, l): chunk sizes decrease linearly from
/// `first` to `last` over the life of the loop.
#[derive(Debug, Clone)]
pub struct Trapezoid {
    first: u64,
    last: u64,
    /// Fixed-point (×1024) decrement per dispatch.
    step_fp: u64,
    /// Fixed-point (×1024) current size.
    current_fp: u64,
    started: bool,
}

impl Trapezoid {
    /// Classic parameterization for a loop of `n` iterations on `p`
    /// processors: `f = ⌈n / 2p⌉`, `l = 1`.
    pub fn classic(n: u64, p: usize) -> Self {
        let first = n.div_ceil(2 * p.max(1) as u64).max(1);
        Trapezoid::new(first, 1, n)
    }

    /// TSS with explicit first/last chunk sizes for a loop of `n`
    /// iterations.
    pub fn new(first: u64, last: u64, n: u64) -> Self {
        let first = first.max(1);
        let last = last.clamp(1, first);
        // Number of dispatches C = ⌈2n / (f + l)⌉; per-dispatch decrement
        // δ = (f − l)/(C − 1).
        let c = (2 * n).div_ceil(first + last).max(1);
        let step_fp = if c > 1 {
            ((first - last) * 1024) / (c - 1)
        } else {
            0
        };
        Trapezoid {
            first,
            last,
            step_fp,
            current_fp: first * 1024,
            started: false,
        }
    }
}

impl ChunkPolicy for Trapezoid {
    fn next_chunk_size(&mut self, remaining: u64, _p: usize) -> u64 {
        if self.started {
            self.current_fp = self.current_fp.saturating_sub(self.step_fp);
        }
        self.started = true;
        let size = (self.current_fp / 1024).clamp(self.last, self.first);
        size.max(1).min(remaining)
    }
    fn name(&self) -> String {
        format!("TSS({},{})", self.first, self.last)
    }
}

/// Factoring: iterations are handed out in batches of `p` equal chunks,
/// each batch taking half of what remains at batch start.
#[derive(Debug, Clone, Copy, Default)]
pub struct Factoring {
    in_batch: usize,
    batch_chunk: u64,
}

impl ChunkPolicy for Factoring {
    fn next_chunk_size(&mut self, remaining: u64, p: usize) -> u64 {
        let p = p.max(1);
        if self.in_batch == 0 {
            self.batch_chunk = (remaining.div_ceil(2)).div_ceil(p as u64).max(1);
            self.in_batch = p;
        }
        self.in_batch -= 1;
        self.batch_chunk.min(remaining)
    }
    fn name(&self) -> String {
        "FAC".into()
    }
}

/// Static pre-assignment shapes (no shared counter at run time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticKind {
    /// Processor `q` gets the contiguous block `q·⌈n/p⌉ …`.
    Block,
    /// Processor `q` gets iterations `q, q+p, q+2p, …`.
    Cyclic,
}

/// Compute the static assignment of `n` iterations to `p` workers. Returns
/// one chunk list per worker (cyclic assignments have length-1 chunks).
pub fn static_assignment(n: u64, p: usize, kind: StaticKind) -> Vec<Vec<Chunk>> {
    let p = p.max(1);
    let mut out = vec![Vec::new(); p];
    match kind {
        StaticKind::Block => {
            let b = n.div_ceil(p as u64);
            for (q, chunks) in out.iter_mut().enumerate() {
                let start = (q as u64) * b;
                if start >= n {
                    break;
                }
                chunks.push(Chunk {
                    start,
                    len: b.min(n - start),
                });
            }
        }
        StaticKind::Cyclic => {
            for i in 0..n {
                out[(i % p as u64) as usize].push(Chunk { start: i, len: 1 });
            }
        }
    }
    out
}

/// Enumerable policy descriptor, convertible into a fresh policy instance.
/// (Policies are stateful; a new instance is needed per loop execution.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Pure self-scheduling.
    SelfSched,
    /// Chunked self-scheduling with the given chunk size.
    Chunked(u64),
    /// Guided self-scheduling (min chunk 1).
    Guided,
    /// Trapezoid self-scheduling with classic parameters for `(n, p)`.
    Trapezoid,
    /// Factoring.
    Factoring,
}

impl PolicyKind {
    /// Instantiate a fresh policy for a loop of `n` iterations on `p`
    /// processors.
    pub fn instantiate(self, n: u64, p: usize) -> Box<dyn ChunkPolicy> {
        match self {
            PolicyKind::SelfSched => Box::new(SelfSched),
            PolicyKind::Chunked(k) => Box::new(Chunked(k)),
            PolicyKind::Guided => Box::new(Guided::default()),
            PolicyKind::Trapezoid => Box::new(Trapezoid::classic(n, p)),
            PolicyKind::Factoring => Box::new(Factoring::default()),
        }
    }

    /// Short display name.
    pub fn name(self) -> String {
        match self {
            PolicyKind::SelfSched => "SS".into(),
            PolicyKind::Chunked(k) => format!("CSS({k})"),
            PolicyKind::Guided => "GSS".into(),
            PolicyKind::Trapezoid => "TSS".into(),
            PolicyKind::Factoring => "FAC".into(),
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// The shared iteration counter: each [`Dispenser::grab`] models one
/// synchronized fetch&add on the loop's dispatch variable.
pub struct Dispenser {
    next: u64,
    n: u64,
    p: usize,
    policy: Box<dyn ChunkPolicy>,
    fetch_ops: u64,
}

impl Dispenser {
    /// A dispenser over `n` iterations shared by `p` processors.
    pub fn new(n: u64, p: usize, policy: Box<dyn ChunkPolicy>) -> Self {
        Dispenser {
            next: 0,
            n,
            p,
            policy,
            fetch_ops: 0,
        }
    }

    /// Convenience constructor from a [`PolicyKind`].
    pub fn with_kind(n: u64, p: usize, kind: PolicyKind) -> Self {
        Dispenser::new(n, p, kind.instantiate(n, p))
    }

    /// Take the next chunk. Every call — including the final empty one each
    /// processor uses to discover exhaustion — counts as one fetch&add.
    pub fn grab(&mut self) -> Option<Chunk> {
        self.fetch_ops += 1;
        if self.next >= self.n {
            return None;
        }
        let remaining = self.n - self.next;
        let len = self
            .policy
            .next_chunk_size(remaining, self.p)
            .clamp(1, remaining);
        let c = Chunk {
            start: self.next,
            len,
        };
        self.next += len;
        Some(c)
    }

    /// Number of synchronized fetch&add operations performed so far.
    pub fn fetch_ops(&self) -> u64 {
        self.fetch_ops
    }

    /// Iterations not yet dispatched.
    pub fn remaining(&self) -> u64 {
        self.n - self.next
    }

    /// Drain the dispenser, returning the full chunk sequence (as a single
    /// consumer would see it).
    pub fn drain(mut self) -> Vec<Chunk> {
        let mut out = Vec::new();
        while let Some(c) = self.grab() {
            out.push(c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk_sizes(n: u64, p: usize, kind: PolicyKind) -> Vec<u64> {
        Dispenser::with_kind(n, p, kind)
            .drain()
            .iter()
            .map(|c| c.len)
            .collect()
    }

    fn check_covers(n: u64, p: usize, kind: PolicyKind) {
        let chunks = Dispenser::with_kind(n, p, kind).drain();
        let mut expected_start = 0;
        for c in &chunks {
            assert_eq!(c.start, expected_start, "{kind:?} left a gap");
            assert!(c.len >= 1);
            expected_start = c.end();
        }
        assert_eq!(expected_start, n, "{kind:?} did not cover 0..{n}");
    }

    #[test]
    fn all_policies_cover_the_iteration_space() {
        for kind in [
            PolicyKind::SelfSched,
            PolicyKind::Chunked(1),
            PolicyKind::Chunked(7),
            PolicyKind::Chunked(1000),
            PolicyKind::Guided,
            PolicyKind::Trapezoid,
            PolicyKind::Factoring,
        ] {
            for n in [1u64, 2, 10, 100, 1000, 12345] {
                for p in [1usize, 2, 7, 16, 64] {
                    check_covers(n, p, kind);
                }
            }
        }
    }

    #[test]
    fn self_sched_hands_out_singles() {
        assert_eq!(
            chunk_sizes(5, 4, PolicyKind::SelfSched),
            vec![1, 1, 1, 1, 1]
        );
    }

    #[test]
    fn chunked_hands_out_fixed_blocks_with_ragged_tail() {
        assert_eq!(chunk_sizes(10, 4, PolicyKind::Chunked(4)), vec![4, 4, 2]);
    }

    #[test]
    fn guided_chunks_decay_geometrically() {
        let sizes = chunk_sizes(100, 4, PolicyKind::Guided);
        // First chunk is ceil(100/4) = 25; sizes never increase; tail is 1s.
        assert_eq!(sizes[0], 25);
        for w in sizes.windows(2) {
            assert!(w[0] >= w[1], "GSS sizes must be non-increasing: {sizes:?}");
        }
        assert_eq!(*sizes.last().unwrap(), 1);
        // The classic bound: roughly p·ln(n/p) + p dispatches — far fewer
        // than n.
        assert!(sizes.len() < 30, "{}", sizes.len());
    }

    #[test]
    fn gss_first_chunk_formula() {
        for (n, p) in [(1000u64, 8usize), (37, 5), (64, 64), (5, 16)] {
            let sizes = chunk_sizes(n, p, PolicyKind::Guided);
            assert_eq!(sizes[0], n.div_ceil(p as u64));
        }
    }

    #[test]
    fn trapezoid_decreases_linearly() {
        let sizes = chunk_sizes(1000, 4, PolicyKind::Trapezoid);
        assert_eq!(sizes[0], 125); // ceil(1000 / (2*4))
        for w in sizes.windows(2) {
            assert!(w[0] >= w[1], "TSS sizes must be non-increasing: {sizes:?}");
        }
    }

    #[test]
    fn factoring_produces_equal_batches() {
        let sizes = chunk_sizes(100, 4, PolicyKind::Factoring);
        // First batch: 4 chunks of ceil(50/4)=13.
        assert_eq!(&sizes[..4], &[13, 13, 13, 13]);
        // Second batch: remaining 48 → 4 chunks of ceil(24/4)=6.
        assert_eq!(&sizes[4..8], &[6, 6, 6, 6]);
    }

    #[test]
    fn dispenser_counts_fetch_ops_including_empty_grab() {
        let mut d = Dispenser::with_kind(3, 2, PolicyKind::SelfSched);
        let mut grabbed = 0;
        while d.grab().is_some() {
            grabbed += 1;
        }
        assert_eq!(grabbed, 3);
        assert_eq!(d.fetch_ops(), 4); // 3 successful + 1 empty
    }

    #[test]
    fn static_block_assignment_covers_and_balances() {
        let a = static_assignment(10, 4, StaticKind::Block);
        let sizes: Vec<u64> = a
            .iter()
            .map(|cs| cs.iter().map(|c| c.len).sum::<u64>())
            .collect();
        assert_eq!(sizes.iter().sum::<u64>(), 10);
        assert_eq!(sizes, vec![3, 3, 3, 1]);
    }

    #[test]
    fn static_cyclic_assignment_interleaves() {
        let a = static_assignment(7, 3, StaticKind::Cyclic);
        assert_eq!(
            a[0].iter().map(|c| c.start).collect::<Vec<_>>(),
            vec![0, 3, 6]
        );
        assert_eq!(a[1].iter().map(|c| c.start).collect::<Vec<_>>(), vec![1, 4]);
        assert_eq!(a[2].iter().map(|c| c.start).collect::<Vec<_>>(), vec![2, 5]);
    }

    #[test]
    fn static_block_with_more_processors_than_iterations() {
        let a = static_assignment(3, 8, StaticKind::Block);
        let total: u64 = a.iter().flatten().map(|c| c.len).sum();
        assert_eq!(total, 3);
        assert!(a[3].is_empty());
    }

    #[test]
    fn zero_iteration_loop_dispenses_nothing() {
        let mut d = Dispenser::with_kind(0, 4, PolicyKind::Guided);
        assert!(d.grab().is_none());
        assert_eq!(d.fetch_ops(), 1);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(PolicyKind::SelfSched.name(), "SS");
        assert_eq!(PolicyKind::Chunked(8).name(), "CSS(8)");
        assert_eq!(PolicyKind::Guided.name(), "GSS");
        assert_eq!(PolicyKind::Trapezoid.to_string(), "TSS");
        assert_eq!(PolicyKind::Factoring.name(), "FAC");
    }
}
