//! Property tests over the scheduling policies: exact coverage, size
//! bounds, and the structural guarantees the simulator and runtime rely
//! on, for randomized `(n, p, policy)` combinations.

use proptest::prelude::*;

use lc_sched::bounds::coalesced_block_length;
use lc_sched::dispatch::single_loop_dispatch;
use lc_sched::policy::{static_assignment, Dispenser, PolicyKind, StaticKind};

fn any_policy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::SelfSched),
        (1u64..200).prop_map(PolicyKind::Chunked),
        Just(PolicyKind::Guided),
        Just(PolicyKind::Trapezoid),
        Just(PolicyKind::Factoring),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn chunks_partition_the_space_exactly(
        n in 0u64..5000,
        p in 1usize..64,
        kind in any_policy(),
    ) {
        let chunks = Dispenser::with_kind(n, p, kind).drain();
        let mut next = 0u64;
        for c in &chunks {
            prop_assert_eq!(c.start, next, "{:?} left a gap", kind);
            prop_assert!(c.len >= 1);
            next = c.end();
        }
        prop_assert_eq!(next, n, "{:?} did not cover", kind);
    }

    #[test]
    fn gss_first_chunk_and_monotone_decay(
        n in 1u64..100_000,
        p in 1usize..64,
    ) {
        let sizes: Vec<u64> = Dispenser::with_kind(n, p, PolicyKind::Guided)
            .drain()
            .iter()
            .map(|c| c.len)
            .collect();
        prop_assert_eq!(sizes[0], n.div_ceil(p as u64));
        prop_assert!(sizes.windows(2).all(|w| w[0] >= w[1]), "{:?}", sizes);
        // Dispatch count is O(p · ln(n/p) + p), far below n for large n.
        if n > 100 * p as u64 {
            let bound = (p as f64) * ((n as f64 / p as f64).ln() + 2.0) + p as f64;
            prop_assert!(
                (sizes.len() as f64) < bound * 1.5,
                "{} chunks vs bound {bound:.0}",
                sizes.len()
            );
        }
    }

    #[test]
    fn static_block_matches_the_analytic_bound(
        n in 1u64..10_000,
        p in 1usize..64,
    ) {
        let assignment = static_assignment(n, p, StaticKind::Block);
        let max_share = assignment
            .iter()
            .map(|cs| cs.iter().map(|c| c.len).sum::<u64>())
            .max()
            .unwrap();
        prop_assert_eq!(max_share, coalesced_block_length(n, p as u64));
    }

    #[test]
    fn static_assignments_partition_without_overlap(
        n in 0u64..3000,
        p in 1usize..32,
        cyclic in proptest::bool::ANY,
    ) {
        let kind = if cyclic { StaticKind::Cyclic } else { StaticKind::Block };
        let mut seen = vec![false; n as usize];
        for cs in static_assignment(n, p, kind) {
            for c in cs {
                for i in c.start..c.end() {
                    prop_assert!(!seen[i as usize], "iteration {i} assigned twice");
                    seen[i as usize] = true;
                }
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn dispatch_accounting_is_consistent(
        n in 0u64..5000,
        p in 1usize..64,
        kind in any_policy(),
    ) {
        let stats = single_loop_dispatch(n, p, kind);
        prop_assert_eq!(stats.iterations, n);
        // One successful fetch per chunk plus one exhaustion fetch per
        // processor.
        prop_assert_eq!(stats.fetch_adds, stats.chunks + p as u64);
        prop_assert!(stats.chunks <= n);
        if n > 0 {
            prop_assert!(stats.chunks >= 1);
        }
    }

    #[test]
    fn trapezoid_sizes_never_increase(
        n in 1u64..50_000,
        p in 1usize..64,
    ) {
        let sizes: Vec<u64> = Dispenser::with_kind(n, p, PolicyKind::Trapezoid)
            .drain()
            .iter()
            .map(|c| c.len)
            .collect();
        prop_assert!(
            sizes.windows(2).all(|w| w[0] >= w[1]),
            "TSS increased a chunk: {:?}",
            &sizes[..sizes.len().min(20)]
        );
    }
}
