//! `lc-fuzz` — differential fuzzing for the loop-coalescing pipeline.
//!
//! The coalescer's input space (nest shapes × pass pipelines × options)
//! is far larger than any hand-written corpus. This crate turns the
//! workspace's own interpreter into an execution oracle:
//!
//! * [`gen`] — a seeded, fully deterministic generator of well-formed
//!   DSL programs: rank 1..=6, constant and symbolic bounds, zero/one-
//!   trip and near-overflow trip counts, imperfect nests, reductions,
//!   bodies built through `ExprBuilder`.
//! * [`oracle`] — compiles each program under a random subset /
//!   permutation of the driver's pass order, interprets original and
//!   transformed on the same seeded store, and classifies divergences
//!   (value mismatch, spurious skip, panic, non-determinism,
//!   order-dependence).
//! * [`shrink`] — minimizes a failing program by deleting statements and
//!   loop levels and narrowing bounds while the same divergence class
//!   reproduces, emitting a self-contained regression snippet.
//! * [`service_fuzz`] — throws malformed HTTP/JSON at a loopback
//!   `lc-service` server and asserts typed 4xx answers: never a 5xx,
//!   never a hang, and the server still compiles afterwards.
//!
//! The `lc-fuzz` binary drives all of it (`--seed`, `--cases`,
//! `--max-rank`, `--out`, `--service`); its stdout is deterministic for
//! a given seed, which CI asserts by running twice and diffing.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod gen;
pub mod oracle;
pub mod rng;
pub mod service_fuzz;
pub mod shrink;
