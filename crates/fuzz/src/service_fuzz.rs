//! Malformed-input fuzzing for the `lc-service` compile server.
//!
//! Starts a real server on a loopback socket and throws broken HTTP and
//! JSON at it: truncated request lines, lying and garbage
//! `Content-Length` headers, invalid UTF-8 bodies, pathologically deep
//! JSON and DSL nesting, oversized heads, raw binary noise. The contract
//! under attack:
//!
//! * every parseable response is a **typed 4xx** (400/408/413/422) —
//!   never a 5xx and never a success for garbage;
//! * the server never hangs (client timeouts turn a hang into a
//!   violation);
//! * the process survives: after the barrage, `/healthz` still answers
//!   200 and a well-formed `/compile` still works. A stack overflow in
//!   a recursive parser would abort the whole process here, which is
//!   exactly what the depth limits in `lc-ir`'s DSL parser and
//!   `lc-driver`'s JSON parser exist to prevent.

use std::time::Duration;

use lc_service::client::{self, RawOutcome};
use lc_service::server::{Server, ServiceConfig};

use crate::rng::Rng;

/// What a service-fuzz run observed.
#[derive(Debug, Clone)]
pub struct ServiceFuzzReport {
    /// Malformed inputs sent.
    pub cases: u64,
    /// Responses parsed back (the rest were dropped connections).
    pub responses: u64,
    /// Contract violations, each human-readable. Empty means pass.
    pub violations: Vec<String>,
}

impl ServiceFuzzReport {
    /// True when the server upheld the contract on every input.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

const TIMEOUT: Duration = Duration::from_secs(5);

/// The handcrafted malformed corpus: each entry is (label, bytes,
/// close-write-after-send).
fn handcrafted() -> Vec<(&'static str, Vec<u8>, bool)> {
    let deep_json = {
        let mut b = b"{\"sources\":".to_vec();
        b.extend(std::iter::repeat_n(b'[', 20_000));
        let mut head = format!(
            "POST /batch HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            b.len()
        )
        .into_bytes();
        head.extend_from_slice(&b);
        head
    };
    let deep_dsl = {
        let mut src = b"array A[1];\nA[1] = ".to_vec();
        src.extend(std::iter::repeat_n(b'(', 30_000));
        src.push(b'1');
        src.extend(std::iter::repeat_n(b')', 30_000));
        src.push(b';');
        let mut head = format!(
            "POST /compile HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            src.len()
        )
        .into_bytes();
        head.extend_from_slice(&src);
        head
    };
    vec![
        ("empty", Vec::new(), true),
        ("truncated-request-line", b"POST /comp".to_vec(), true),
        ("missing-version", b"POST /compile\r\n\r\n".to_vec(), true),
        (
            "unknown-method",
            b"BREW /compile HTTP/1.1\r\ncontent-length: 0\r\n\r\n".to_vec(),
            false,
        ),
        (
            "garbage-content-length",
            b"POST /compile HTTP/1.1\r\ncontent-length: banana\r\n\r\n".to_vec(),
            false,
        ),
        (
            "negative-content-length",
            b"POST /compile HTTP/1.1\r\ncontent-length: -5\r\n\r\n".to_vec(),
            false,
        ),
        (
            "huge-content-length",
            b"POST /compile HTTP/1.1\r\ncontent-length: 99999999999\r\n\r\n".to_vec(),
            false,
        ),
        (
            "truncated-body",
            b"POST /compile HTTP/1.1\r\ncontent-length: 400\r\n\r\narray A[1];".to_vec(),
            true,
        ),
        (
            "invalid-utf8-body",
            b"POST /compile HTTP/1.1\r\ncontent-length: 4\r\n\r\n\xff\xfe\xfd\xfc".to_vec(),
            false,
        ),
        (
            "header-without-colon",
            b"POST /compile HTTP/1.1\r\nno-colon-here\r\ncontent-length: 0\r\n\r\n".to_vec(),
            false,
        ),
        (
            "oversized-head",
            {
                let mut b = b"POST /compile HTTP/1.1\r\nx-pad: ".to_vec();
                b.extend(std::iter::repeat_n(b'a', 64 * 1024));
                b.extend_from_slice(b"\r\n\r\n");
                b
            },
            false,
        ),
        (
            "bad-json-batch",
            b"POST /batch HTTP/1.1\r\ncontent-length: 14\r\n\r\n{\"sources\": [x".to_vec(),
            false,
        ),
        ("deep-json-batch", deep_json, false),
        ("deep-dsl-compile", deep_dsl, false),
    ]
}

/// A seeded random corruption of a valid request: truncate, flip bytes,
/// or splice noise.
fn corrupted(rng: &mut Rng) -> Vec<u8> {
    let valid = b"POST /compile HTTP/1.1\r\ncontent-length: 38\r\n\r\narray A[2];\ndoall i = 1..2 { A[i]=i; }".to_vec();
    let mut bytes = valid;
    match rng.below(3) {
        0 => {
            // Truncate somewhere.
            let cut = 1 + rng.below(bytes.len() as u64 - 1) as usize;
            bytes.truncate(cut);
        }
        1 => {
            // Flip a handful of bytes.
            for _ in 0..1 + rng.below(6) {
                let i = rng.below(bytes.len() as u64) as usize;
                bytes[i] = rng.next_u64() as u8;
            }
        }
        _ => {
            // Splice random noise into the middle.
            let at = rng.below(bytes.len() as u64) as usize;
            let noise: Vec<u8> = (0..rng.below(32)).map(|_| rng.next_u64() as u8).collect();
            bytes.splice(at..at, noise);
        }
    }
    bytes
}

/// Fuzz a fresh loopback server with the handcrafted corpus plus
/// `random_cases` seeded corruptions, then verify the server still
/// serves. Violations (5xx, garbage accepted with 2xx, post-barrage
/// health failure) are collected rather than panicking so the binary can
/// report them all.
pub fn run(seed: u64, random_cases: u64) -> ServiceFuzzReport {
    let server =
        Server::start(ServiceConfig::default(), "127.0.0.1:0").expect("loopback server must start");
    let addr = server.addr();
    let mut report = ServiceFuzzReport {
        cases: 0,
        responses: 0,
        violations: Vec::new(),
    };

    // `must_reject` holds for the handcrafted corpus, where every entry
    // is malformed by construction. Random corruptions of a valid
    // request can land on another *valid* request (flip a digit in the
    // body), so for those only the no-5xx half of the contract applies.
    let check = |label: &str,
                 bytes: &[u8],
                 close_write: bool,
                 must_reject: bool,
                 report: &mut ServiceFuzzReport| {
        report.cases += 1;
        match client::send_raw(addr, bytes, close_write, TIMEOUT) {
            Ok(RawOutcome::Response(resp)) => {
                report.responses += 1;
                if resp.status >= 500 {
                    report.violations.push(format!(
                        "{label}: got {} — malformed input must never be a server error",
                        resp.status
                    ));
                } else if must_reject && resp.status < 400 {
                    report.violations.push(format!(
                        "{label}: got {} — malformed input accepted as success",
                        resp.status
                    ));
                }
            }
            // A dropped connection is acceptable for malformed input;
            // hangs surface as Io(timeout) here, which is also a drop
            // from the client's perspective — the post-barrage health
            // check below is what catches a wedged server.
            Ok(RawOutcome::NoResponse(_)) => {}
            Err(e) => {
                report
                    .violations
                    .push(format!("{label}: could not reach server: {e}"));
            }
        }
    };

    for (label, bytes, close_write) in handcrafted() {
        check(label, &bytes, close_write, true, &mut report);
    }
    let mut rng = Rng::new(seed);
    for i in 0..random_cases {
        let bytes = corrupted(&mut rng);
        check(&format!("random-{i}"), &bytes, true, false, &mut report);
    }

    // The server must have survived all of it.
    match client::get(addr, "/healthz", TIMEOUT) {
        Ok(resp) if resp.status == 200 => {}
        Ok(resp) => report
            .violations
            .push(format!("post-barrage /healthz answered {}", resp.status)),
        Err(e) => report
            .violations
            .push(format!("post-barrage /healthz unreachable: {e}")),
    }
    let program = b"array A[3][4];\ndoall i = 1..3 { doall j = 1..4 { A[i][j] = i + j; } }";
    match client::post(addr, "/compile", program, TIMEOUT) {
        Ok(resp) if resp.status == 200 => {}
        Ok(resp) => report
            .violations
            .push(format!("post-barrage /compile answered {}", resp.status)),
        Err(e) => report
            .violations
            .push(format!("post-barrage /compile unreachable: {e}")),
    }

    server.shutdown();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_upholds_the_contract() {
        let report = run(0xF00D, 24);
        assert!(
            report.passed(),
            "violations:\n{}",
            report.violations.join("\n")
        );
        assert!(report.cases > 30);
    }
}
