//! The differential oracle: compile a generated program under a random
//! pass pipeline, interpret original and transformed on the same seeded
//! store, and classify any disagreement.
//!
//! The oracle's ground truth is the `lc-ir` interpreter. Both programs
//! run under the *same* forward `doall` order, so the comparison is
//! sound even for programs the legality analysis declines to transform;
//! when a nest actually coalesced, the transformed program additionally
//! must be insensitive to `doall` iteration order (reverse and shuffled
//! runs), since a coalesced `doall` that only works forward is wrong.
//!
//! A compile returning `Err` is *not* a finding by itself — `Overflow`
//! on a near-`i64::MAX` trip product, for example, is the designed
//! answer — with one exception: an error reporting that per-pass
//! validation observed a divergence is a real finding
//! ([`Divergence::ValidationFailed`]). Panics, non-deterministic output,
//! and interpreter disagreements are always findings.

use std::panic::{catch_unwind, AssertUnwindSafe};

use lc_driver::{Driver, DriverOptions, DEFAULT_PASS_ORDER};
use lc_ir::interp::{DoallOrder, Interp, Store};
use lc_ir::printer::print_program;
use lc_ir::program::Program;
use lc_lint::{LintCode, LintSet, Severity};
use lc_sched::advise::AdviseParams;
use lc_xform::coalesce::CoalesceOptions;
use lc_xform::recovery::RecoveryScheme;
use lc_xform::validate::seeded_store;

use crate::gen::{self, GenConfig};
use crate::rng::Rng;

/// Interpreter step budget per oracle run: far above anything a case
/// within [`gen::MAX_INTERP_COST`] iterations needs, so hitting it means
/// the transformed program loops where the original did not.
const STEP_BUDGET: u64 = 10_000_000;

/// How original and transformed disagreed. Every variant is a finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// The compiler panicked.
    Panic {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// Two identical compiles produced different output.
    NonDeterminism {
        /// First transformed source.
        first: String,
        /// Second transformed source.
        second: String,
    },
    /// The driver's own per-pass validation observed a divergence.
    ValidationFailed {
        /// The validation error message.
        message: String,
    },
    /// Interpreting the transformed program failed (or succeeded) where
    /// the original did the opposite.
    ExecutionSplit {
        /// What the original run produced (`"ok"` or the error).
        original: String,
        /// What the transformed run produced.
        transformed: String,
    },
    /// Both ran; a cell holds a different, non-initial value.
    ValueMismatch {
        /// Array holding the first differing cell.
        array: String,
        /// Flat (row-major) index of that cell.
        flat: usize,
        /// Value the original computed.
        original: i64,
        /// Value the transformed program computed.
        transformed: i64,
    },
    /// Both ran; the transformed program left a cell at its seeded
    /// initial value where the original wrote — an iteration was
    /// skipped.
    SpuriousSkip {
        /// Array holding the skipped cell.
        array: String,
        /// Flat (row-major) index of that cell.
        flat: usize,
        /// Value the original wrote there.
        original: i64,
    },
    /// The transformed program's result depends on `doall` iteration
    /// order even though a nest was coalesced.
    OrderDependence {
        /// Which order diverged from the forward run.
        order: String,
    },
    /// `lc-lint` certified the *original* program race-free, yet its
    /// result depends on `doall` iteration order — the certificate is
    /// unsound.
    LintUnsound {
        /// Which order diverged from the forward run.
        order: String,
    },
}

impl Divergence {
    /// Coarse class, stable across shrinking: the shrinker accepts a
    /// smaller program only when it reproduces the same kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Divergence::Panic { .. } => "panic",
            Divergence::NonDeterminism { .. } => "non-determinism",
            Divergence::ValidationFailed { .. } => "validation-failed",
            Divergence::ExecutionSplit { .. } => "execution-split",
            Divergence::ValueMismatch { .. } => "value-mismatch",
            Divergence::SpuriousSkip { .. } => "spurious-skip",
            Divergence::OrderDependence { .. } => "order-dependence",
            Divergence::LintUnsound { .. } => "lint-unsound",
        }
    }
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Divergence::Panic { message } => write!(f, "compiler panicked: {message}"),
            Divergence::NonDeterminism { .. } => {
                write!(f, "two identical compiles produced different output")
            }
            Divergence::ValidationFailed { message } => {
                write!(f, "per-pass validation failed: {message}")
            }
            Divergence::ExecutionSplit {
                original,
                transformed,
            } => write!(
                f,
                "original run: {original}; transformed run: {transformed}"
            ),
            Divergence::ValueMismatch {
                array,
                flat,
                original,
                transformed,
            } => write!(
                f,
                "{array}[flat {flat}]: original {original}, transformed {transformed}"
            ),
            Divergence::SpuriousSkip {
                array,
                flat,
                original,
            } => write!(
                f,
                "{array}[flat {flat}]: original wrote {original}, transformed never wrote it"
            ),
            Divergence::OrderDependence { order } => {
                write!(f, "transformed result changes under {order} doall order")
            }
            Divergence::LintUnsound { order } => {
                write!(
                    f,
                    "lint-certified program changes result under {order} doall order"
                )
            }
        }
    }
}

/// Everything one oracle invocation produced.
#[derive(Debug, Clone)]
pub struct OracleResult {
    /// The finding, if any.
    pub divergence: Option<Divergence>,
    /// Whether compilation returned `Ok`.
    pub compiled: bool,
    /// The compile error, when it returned `Err` (acceptable).
    pub compile_error: Option<String>,
    /// How many nests were coalesced.
    pub coalesced: usize,
    /// Whether the programs were actually executed and compared.
    pub interpreted: bool,
}

/// A random subset / permutation of [`DEFAULT_PASS_ORDER`]. One third of
/// the time the full default order (the configuration users actually
/// run); otherwise each pass joins with probability 3/4 and the result
/// is shuffled half the time.
pub fn random_pipeline(rng: &mut Rng) -> Vec<String> {
    if rng.chance(1, 3) {
        return DEFAULT_PASS_ORDER.iter().map(|s| s.to_string()).collect();
    }
    let mut names: Vec<String> = DEFAULT_PASS_ORDER
        .iter()
        .filter(|_| rng.chance(3, 4))
        .map(|s| s.to_string())
        .collect();
    if rng.chance(1, 2) {
        rng.shuffle(&mut names);
    }
    names
}

/// Random driver options. Legality checking stays on — the generator
/// only guarantees race-freedom for nests the checker approves — and
/// the driver's final validation stays off (the oracle does its own,
/// with control over when interpretation is affordable).
pub fn random_options(rng: &mut Rng) -> DriverOptions {
    let mut coalesce = CoalesceOptions::builder()
        .scheme(if rng.chance(1, 4) {
            RecoveryScheme::DivMod
        } else {
            RecoveryScheme::Ceiling
        })
        .check_legality(true)
        .auto_normalize(!rng.chance(1, 8))
        .strength_reduce(rng.chance(1, 4));
    if rng.chance(1, 4) {
        let start = rng.below(3) as usize;
        let end = start + 1 + rng.below(3) as usize;
        coalesce = coalesce.levels(start, end);
    }
    let mut options = DriverOptions {
        coalesce: coalesce.build(),
        enable_perfection: !rng.chance(1, 8),
        enable_interchange: !rng.chance(1, 8),
        validate: false,
        advise: None,
        pass_order: None,
        validate_each_pass: false,
        lints: random_lints(rng),
    };
    if rng.chance(1, 8) {
        options.advise = Some(AdviseParams {
            p: 1 + rng.below(64),
            ..AdviseParams::default()
        });
    }
    options
}

/// Random lint configuration: usually the default (everything warns, so
/// the analyze stage runs but never vetoes), sometimes the pre-analyzer
/// all-allow configuration, and occasionally a hard `deny` on the race
/// lint so the fuzzer exercises the veto path too.
pub fn random_lints(rng: &mut Rng) -> LintSet {
    if rng.chance(1, 4) {
        return LintSet::all_allow();
    }
    let mut set = LintSet::default();
    if rng.chance(1, 8) {
        set = set.with(LintCode::DoallRace, Severity::Deny);
    }
    set
}

/// Run the full differential check for one program under one
/// configuration. `interp` gates execution (callers pass `false` for
/// compile-only extreme cases).
pub fn run_program(
    program: &Program,
    pipeline: &[String],
    options: &DriverOptions,
    interp_seed: u64,
    interp: bool,
) -> OracleResult {
    let names: Vec<&str> = pipeline.iter().map(String::as_str).collect();
    let driver = Driver::with_pipeline(options.clone(), &names)
        .expect("pipeline names come from the registry");

    let no_finding = |compiled: bool, err: Option<String>, coalesced: usize| OracleResult {
        divergence: None,
        compiled,
        compile_error: err,
        coalesced,
        interpreted: false,
    };

    // Compile twice: a panic is a finding, and the two outputs must be
    // byte-identical (determinism is part of the compiler's contract —
    // the serving layer's cache depends on it).
    let mut outputs = Vec::with_capacity(2);
    for _ in 0..2 {
        match catch_unwind(AssertUnwindSafe(|| driver.compile_program(program))) {
            Ok(result) => outputs.push(result),
            Err(payload) => {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                return OracleResult {
                    divergence: Some(Divergence::Panic { message }),
                    compiled: false,
                    compile_error: None,
                    coalesced: 0,
                    interpreted: false,
                };
            }
        }
    }
    let second = outputs.pop().unwrap();
    let first = outputs.pop().unwrap();
    match (&first, &second) {
        (Ok(a), Ok(b)) if a.transformed_source != b.transformed_source => {
            return OracleResult {
                divergence: Some(Divergence::NonDeterminism {
                    first: a.transformed_source.clone(),
                    second: b.transformed_source.clone(),
                }),
                compiled: true,
                compile_error: None,
                coalesced: a.coalesced.len(),
                interpreted: false,
            };
        }
        (Err(a), Err(b)) if a.to_string() != b.to_string() => {
            return OracleResult {
                divergence: Some(Divergence::NonDeterminism {
                    first: a.to_string(),
                    second: b.to_string(),
                }),
                compiled: false,
                compile_error: Some(a.to_string()),
                coalesced: 0,
                interpreted: false,
            };
        }
        _ => {}
    }

    let output = match first {
        Ok(o) => o,
        Err(e) => {
            let message = e.to_string();
            // The one compile error that IS a finding: per-pass
            // validation watched a structural pass change the program's
            // meaning.
            if message.contains("diverges from original") {
                return OracleResult {
                    divergence: Some(Divergence::ValidationFailed { message }),
                    compiled: false,
                    compile_error: None,
                    coalesced: 0,
                    interpreted: false,
                };
            }
            return no_finding(false, Some(message), 0);
        }
    };

    if !interp {
        return no_finding(true, None, output.coalesced.len());
    }

    // Differential execution on the same seeded store, same order.
    let base = seeded_store(program, interp_seed);
    let run = |p: &Program, order: DoallOrder| {
        Interp::new()
            .with_order(order)
            .with_budget(STEP_BUDGET)
            .run_on(p, base.clone())
            .map(|(store, _)| store)
    };
    let original_run = run(program, DoallOrder::Forward);
    let transformed_run = run(&output.transformed, DoallOrder::Forward);
    let (want, got) = match (original_run, transformed_run) {
        (Ok(w), Ok(g)) => (w, g),
        // Identical failures are agreement: overflow in a generated
        // body happens at the same iteration in both programs.
        (Err(a), Err(b)) if a.to_string() == b.to_string() => {
            return OracleResult {
                interpreted: true,
                ..no_finding(true, None, output.coalesced.len())
            };
        }
        (a, b) => {
            let render = |r: &Result<Store, lc_ir::Error>| match r {
                Ok(_) => "ok".to_string(),
                Err(e) => e.to_string(),
            };
            return OracleResult {
                divergence: Some(Divergence::ExecutionSplit {
                    original: render(&a),
                    transformed: render(&b),
                }),
                compiled: true,
                compile_error: None,
                coalesced: output.coalesced.len(),
                interpreted: true,
            };
        }
    };

    if let Some(d) = first_difference(&want, &got, &base) {
        return OracleResult {
            divergence: Some(d),
            compiled: true,
            compile_error: None,
            coalesced: output.coalesced.len(),
            interpreted: true,
        };
    }

    // The lint layer's certificate must be sound: when `lc-lint`
    // declares the *original* program race-free, its result may not
    // depend on `doall` iteration order. This checks the analyzer
    // itself, independent of whether anything was transformed.
    if lc_lint::certifies_order_independent(program) {
        for (name, order) in [
            ("reverse", DoallOrder::Reverse),
            ("shuffled", DoallOrder::Shuffled(interp_seed ^ 0x5EED)),
        ] {
            match run(program, order) {
                Ok(store) if store.digest() == want.digest() => {}
                _ => {
                    return OracleResult {
                        divergence: Some(Divergence::LintUnsound {
                            order: name.to_string(),
                        }),
                        compiled: true,
                        compile_error: None,
                        coalesced: output.coalesced.len(),
                        interpreted: true,
                    };
                }
            }
        }
    }

    // A coalesced doall must not care about iteration order.
    if !output.coalesced.is_empty() {
        for (name, order) in [
            ("reverse", DoallOrder::Reverse),
            ("shuffled", DoallOrder::Shuffled(interp_seed ^ 0x5EED)),
        ] {
            match run(&output.transformed, order) {
                Ok(store) if store.digest() == got.digest() => {}
                _ => {
                    return OracleResult {
                        divergence: Some(Divergence::OrderDependence {
                            order: name.to_string(),
                        }),
                        compiled: true,
                        compile_error: None,
                        coalesced: output.coalesced.len(),
                        interpreted: true,
                    };
                }
            }
        }
    }

    OracleResult {
        interpreted: true,
        ..no_finding(true, None, output.coalesced.len())
    }
}

/// Parse and check one source program — the entry point minimized
/// regression snippets call. Returns the divergence, if any.
pub fn check_source(
    src: &str,
    pipeline: &[&str],
    options: &DriverOptions,
    interp_seed: u64,
    interp: bool,
) -> Option<Divergence> {
    let program = lc_ir::parser::parse_program(src).expect("regression source must parse");
    let pipeline: Vec<String> = pipeline.iter().map(|s| s.to_string()).collect();
    run_program(&program, &pipeline, options, interp_seed, interp).divergence
}

/// First cell where the two final stores disagree, classified against
/// the seeded base store: a transformed value still equal to the base is
/// a skipped write, anything else a miscomputation. Arrays are visited
/// in sorted name order so the report is deterministic.
fn first_difference(want: &Store, got: &Store, base: &Store) -> Option<Divergence> {
    let mut names: Vec<String> = want.iter().map(|(n, _)| n.to_string()).collect();
    names.sort();
    for name in names {
        let (Some(w), Some(g)) = (want.data(&name), got.data(&name)) else {
            continue;
        };
        let b = base.data(&name);
        for (flat, (wv, gv)) in w.iter().zip(g.iter()).enumerate() {
            if wv != gv {
                let base_v = b.and_then(|d| d.get(flat)).copied();
                return Some(if Some(*gv) == base_v {
                    Divergence::SpuriousSkip {
                        array: name.clone(),
                        flat,
                        original: *wv,
                    }
                } else {
                    Divergence::ValueMismatch {
                        array: name.clone(),
                        flat,
                        original: *wv,
                        transformed: *gv,
                    }
                });
            }
        }
    }
    None
}

/// One complete fuzz case: generate, pick a configuration, run the
/// oracle. Fully determined by `(root, case)`.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Case index under the root seed.
    pub case: u64,
    /// The generated program, printed.
    pub source: String,
    /// Pipeline the case compiled under.
    pub pipeline: Vec<String>,
    /// Options the case compiled under.
    pub options: DriverOptions,
    /// Interpreter seed used for the differential run.
    pub interp_seed: u64,
    /// Whether the case was executed (vs compile-only).
    pub interp: bool,
    /// What the oracle concluded.
    pub result: OracleResult,
    /// The generated program itself.
    pub program: Program,
}

/// Run case number `case` of the stream rooted at `root`.
pub fn run_case(root: &Rng, case: u64, cfg: &GenConfig) -> CaseOutcome {
    let mut rng = root.fork(case);
    let generated = gen::generate(&mut rng, cfg);
    let pipeline = random_pipeline(&mut rng);
    let mut options = random_options(&mut rng);
    let interp = generated.interp_cost.is_some();
    if interp && rng.chance(1, 8) {
        options.validate_each_pass = true;
    }
    let interp_seed = rng.next_u64();
    let result = run_program(&generated.program, &pipeline, &options, interp_seed, interp);
    CaseOutcome {
        case,
        source: print_program(&generated.program),
        pipeline,
        options,
        interp_seed,
        interp,
        result,
        program: generated.program,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_ir::parser::parse_program;

    #[test]
    fn clean_program_has_no_divergence() {
        let p = parse_program(
            "
            array A[4][5];
            doall i = 1..4 { doall j = 1..5 { A[i][j] = 10 * i + j; } }
            ",
        )
        .unwrap();
        let pipeline: Vec<String> = DEFAULT_PASS_ORDER.iter().map(|s| s.to_string()).collect();
        let r = run_program(&p, &pipeline, &DriverOptions::default(), 7, true);
        assert!(r.divergence.is_none(), "{:?}", r.divergence);
        assert!(r.compiled && r.interpreted);
        assert_eq!(r.coalesced, 1);
    }

    #[test]
    fn a_wrong_transformation_is_caught() {
        // Simulate a buggy compiler by comparing two programs that
        // really differ: the "transformed" one skips the last iteration.
        let original = parse_program("array A[6]; doall i = 1..6 { A[i] = i * 2; }").unwrap();
        let broken = parse_program("array A[6]; doall i = 1..5 { A[i] = i * 2; }").unwrap();
        let base = seeded_store(&original, 3);
        let (want, _) = Interp::new().run_on(&original, base.clone()).unwrap();
        let (got, _) = Interp::new().run_on(&broken, base.clone()).unwrap();
        let d = first_difference(&want, &got, &base).expect("must differ");
        assert_eq!(d.kind(), "spurious-skip");
    }

    #[test]
    fn identity_pipeline_is_fine() {
        let p = parse_program("array A[3]; doall i = 1..3 { A[i] = i; }").unwrap();
        let r = run_program(&p, &[], &DriverOptions::default(), 1, true);
        assert!(r.divergence.is_none());
        assert_eq!(r.coalesced, 0);
    }

    #[test]
    fn cases_are_reproducible() {
        let root = Rng::new(0xC0A1E5CE);
        let cfg = GenConfig::default();
        for case in 0..10 {
            let a = run_case(&root, case, &cfg);
            let b = run_case(&root, case, &cfg);
            assert_eq!(a.source, b.source);
            assert_eq!(a.pipeline, b.pipeline);
            assert_eq!(a.result.divergence.is_none(), b.result.divergence.is_none());
        }
    }
}
