//! `lc-fuzz` — differential fuzzer for the loop-coalescing pipeline.
//!
//! Nest mode (default) generates `--cases` seeded programs, runs each
//! through the execution oracle under a random pass pipeline, shrinks
//! any finding, and writes a report plus a ready-to-paste regression
//! test into `--out`. Stdout is fully deterministic for a given seed —
//! counts and an FNV digest of every outcome, never timing — so CI can
//! run the binary twice and `diff` the output. Timing goes to stderr.
//!
//! `--service` mode instead fuzzes a loopback `lc-service` server with
//! malformed HTTP/JSON and reports contract violations.
//!
//! Exit status: 0 when no findings, 1 on findings, 2 on usage errors.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use lc_fuzz::gen::GenConfig;
use lc_fuzz::oracle::{run_case, CaseOutcome};
use lc_fuzz::rng::Rng;
use lc_fuzz::service_fuzz;
use lc_fuzz::shrink::{regression_snippet, shrink_case};

const USAGE: &str = "usage: lc-fuzz [--seed N] [--cases N] [--max-rank N] [--out DIR] [--service]
  --seed N      root seed, decimal or 0x-hex   (default 0xC0A1E5CE)
  --cases N     number of fuzz cases           (default 200)
  --max-rank N  deepest generated nest, 1..=6  (default 6)
  --out DIR     where findings are written     (default findings)
  --service     fuzz a loopback lc-service server with malformed
                HTTP/JSON instead of fuzzing the compiler";

struct Args {
    seed: u64,
    cases: u64,
    max_rank: usize,
    out: PathBuf,
    service: bool,
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 0xC0A1E5CE,
        cases: 200,
        max_rank: 6,
        out: PathBuf::from("findings"),
        service: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--seed" => {
                let v = take("--seed")?;
                args.seed = parse_u64(&v).ok_or_else(|| format!("bad --seed {v:?}"))?;
            }
            "--cases" => {
                let v = take("--cases")?;
                args.cases = parse_u64(&v).ok_or_else(|| format!("bad --cases {v:?}"))?;
            }
            "--max-rank" => {
                let v = take("--max-rank")?;
                let rank = parse_u64(&v).ok_or_else(|| format!("bad --max-rank {v:?}"))?;
                if !(1..=6).contains(&rank) {
                    return Err("--max-rank must be in 1..=6".to_string());
                }
                args.max_rank = rank as usize;
            }
            "--out" => args.out = PathBuf::from(take("--out")?),
            "--service" => args.service = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// FNV-1a over the deterministic parts of every outcome: the digest in
/// the summary changes iff any case's program, configuration, or verdict
/// changes.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }
}

fn write_finding(out: &Path, outcome: &CaseOutcome, seed: u64) -> std::io::Result<()> {
    std::fs::create_dir_all(out)?;
    let divergence = outcome
        .result
        .divergence
        .as_ref()
        .expect("only called for findings");
    let kind = divergence.kind();

    // Shrink first — the report leads with the minimized program.
    let (small, steps) = shrink_case(
        &outcome.program,
        &outcome.pipeline,
        &outcome.options,
        outcome.interp_seed,
        outcome.interp,
        divergence,
    );
    let minimized = lc_ir::printer::print_program(&small);

    let mut report = String::new();
    let _ = writeln!(report, "lc-fuzz finding: {kind}");
    let _ = writeln!(report, "root seed: {seed:#x}, case {}", outcome.case);
    let _ = writeln!(
        report,
        "reproduce: lc-fuzz --seed {seed:#x} --cases {}",
        outcome.case + 1
    );
    let _ = writeln!(report, "pipeline: {:?}", outcome.pipeline);
    let _ = writeln!(report, "interp seed: {:#x}", outcome.interp_seed);
    let _ = writeln!(report, "divergence: {divergence}");
    let _ = writeln!(
        report,
        "\n--- minimized ({steps} shrink steps) ---\n{minimized}"
    );
    let _ = writeln!(report, "--- original ---\n{}", outcome.source);
    std::fs::write(
        out.join(format!("case-{}-{kind}.txt", outcome.case)),
        report,
    )?;

    let snippet = regression_snippet(
        &format!("seed_{seed:x}_case_{}", outcome.case),
        &small,
        &outcome.pipeline,
        &outcome.options,
        outcome.interp_seed,
        outcome.interp,
        kind,
    );
    std::fs::write(
        out.join(format!("case-{}-regression.rs", outcome.case)),
        snippet,
    )
}

fn fuzz_nests(args: &Args) -> ExitCode {
    let started = Instant::now();
    let root = Rng::new(args.seed);
    let cfg = GenConfig {
        max_rank: args.max_rank,
    };

    let mut digest = Fnv::new();
    let mut compiled = 0u64;
    let mut compile_errors = 0u64;
    let mut interpreted = 0u64;
    let mut coalesced_nests = 0u64;
    let mut findings = 0u64;
    // Per-class finding counts. Every kind is always printed (zeros
    // included) so CI can assert e.g. `lint-unsound=0` with a grep.
    const KINDS: [&str; 8] = [
        "panic",
        "non-determinism",
        "validation-failed",
        "execution-split",
        "value-mismatch",
        "spurious-skip",
        "order-dependence",
        "lint-unsound",
    ];
    let mut by_kind = [0u64; KINDS.len()];

    println!(
        "lc-fuzz: seed {:#x}, cases {}, max rank {}",
        args.seed, args.cases, args.max_rank
    );
    for case in 0..args.cases {
        let outcome = run_case(&root, case, &cfg);
        digest.eat(outcome.source.as_bytes());
        digest.eat(format!("{:?}", outcome.pipeline).as_bytes());
        digest.eat(&outcome.interp_seed.to_le_bytes());
        compiled += u64::from(outcome.result.compiled);
        compile_errors += u64::from(outcome.result.compile_error.is_some());
        interpreted += u64::from(outcome.result.interpreted);
        coalesced_nests += outcome.result.coalesced as u64;
        match &outcome.result.divergence {
            None => digest.eat(b"ok"),
            Some(d) => {
                digest.eat(d.kind().as_bytes());
                findings += 1;
                if let Some(slot) = KINDS.iter().position(|k| *k == d.kind()) {
                    by_kind[slot] += 1;
                }
                println!("FINDING case {case}: {} — {d}", d.kind());
                if let Err(e) = write_finding(&args.out, &outcome, args.seed) {
                    eprintln!("could not write finding for case {case}: {e}");
                }
            }
        }
    }

    println!("cases: {}", args.cases);
    println!("compiled: {compiled}");
    println!("compile-errors: {compile_errors}");
    println!("interpreted: {interpreted}");
    println!("coalesced-nests: {coalesced_nests}");
    println!("findings: {findings}");
    let classes: Vec<String> = KINDS
        .iter()
        .zip(by_kind)
        .map(|(kind, n)| format!("{kind}={n}"))
        .collect();
    println!("classes: {}", classes.join(" "));
    println!("digest: {:#018x}", digest.0);
    eprintln!("elapsed: {:?}", started.elapsed());

    if findings == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn fuzz_service(args: &Args) -> ExitCode {
    let started = Instant::now();
    println!(
        "lc-fuzz --service: seed {:#x}, random cases {}",
        args.seed, args.cases
    );
    let report = service_fuzz::run(args.seed, args.cases);
    // Counts (responses vs dropped connections) depend on socket timing,
    // so only the verdict and any violations go to stdout.
    for v in &report.violations {
        println!("VIOLATION: {v}");
    }
    println!("violations: {}", report.violations.len());
    eprintln!(
        "sent {} inputs, parsed {} responses, elapsed {:?}",
        report.cases,
        report.responses,
        started.elapsed()
    );
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lc-fuzz: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.service {
        fuzz_service(&args)
    } else {
        fuzz_nests(&args)
    }
}
