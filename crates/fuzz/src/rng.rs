//! The fuzzer's random number generator: splitmix64, hand-rolled.
//!
//! The workspace builds offline, so there is no `rand`. Splitmix64 is
//! tiny, fast, and — crucially for a fuzzer whose findings must be
//! reproducible from a seed printed in a CI log — completely
//! deterministic and platform-independent: nothing here depends on
//! pointer widths, hash seeds, or iteration order.

/// Deterministic splitmix64 stream.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator seeded with `seed`. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Derive an independent child stream. Used to give each fuzz case
    /// its own generator so cases stay reproducible in isolation:
    /// `Rng::new(seed).fork(case_index)` replays case `case_index`
    /// without running the cases before it.
    pub fn fork(&self, stream: u64) -> Rng {
        // Mix the stream index through one splitmix64 round so forks of
        // adjacent indices are uncorrelated.
        let mut r = Rng {
            state: self.state ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        r.next_u64();
        Rng {
            state: r.next_u64(),
        }
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift reduction; the tiny modulo bias is irrelevant
        // for fuzzing and the result stays platform-independent.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as i64
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A uniformly chosen element of `items`.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle, in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_reproducible_and_distinct() {
        let root = Rng::new(7);
        let mut f1 = root.fork(1);
        let mut f1_again = root.fork(1);
        let mut f2 = root.fork(2);
        assert_eq!(f1.next_u64(), f1_again.next_u64());
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut r = Rng::new(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_is_inclusive() {
        let mut r = Rng::new(9);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..500 {
            let v = r.range_i64(-2, 2);
            assert!((-2..=2).contains(&v));
            lo_seen |= v == -2;
            hi_seen |= v == 2;
        }
        assert!(lo_seen && hi_seen);
    }
}
