//! The shrinker: minimize a failing program while the failure
//! reproduces.
//!
//! Works on the [`Program`] itself (not the generator's choices), so it
//! can cross boundaries the generator never would — which is exactly
//! what makes minimized findings readable. The reduction steps, tried in
//! a deterministic order until a full pass changes nothing:
//!
//! * delete a statement (at any nesting depth);
//! * delete a loop *level*, substituting its variable with the lower
//!   bound into the body it leaves behind;
//! * narrow a loop's bounds (single-trip, or halve the constant upper).
//!
//! A candidate is accepted only when it still trips the same divergence
//! class ([`crate::oracle::Divergence::kind`]), so shrinking a
//! value-mismatch cannot wander off and return some unrelated panic.

use lc_driver::DriverOptions;
use lc_ir::printer::print_program;
use lc_ir::program::Program;
use lc_ir::stmt::Stmt;
use lc_ir::Expr;

use crate::oracle::{run_program, Divergence};

/// Upper bound on accepted reduction steps (each accepted step restarts
/// the candidate scan). Generated programs are small; convergence takes
/// far fewer.
pub const MAX_SHRINK_STEPS: u64 = 500;

/// One candidate reduction, addressed by a path of body indices from the
/// program root.
#[derive(Debug, Clone)]
enum Reduction {
    /// Remove the statement at `path`.
    RemoveStmt(Vec<usize>),
    /// Replace the loop at `path` with its body, substituting the loop
    /// variable with the lower bound.
    DeleteLevel(Vec<usize>),
    /// Set the loop's upper bound to its lower bound (one trip).
    OneTrip(Vec<usize>),
    /// Halve the distance between constant bounds.
    HalveUpper(Vec<usize>),
}

fn collect(stmts: &[Stmt], path: &mut Vec<usize>, out: &mut Vec<Reduction>) {
    for (i, s) in stmts.iter().enumerate() {
        path.push(i);
        // Bigger reductions first at each site: drop the whole
        // statement, then peel the level, then narrow.
        out.push(Reduction::RemoveStmt(path.clone()));
        if let Stmt::Loop(l) = s {
            out.push(Reduction::DeleteLevel(path.clone()));
            let lo = l.lower.as_const();
            let hi = l.upper.as_const();
            match (lo, hi) {
                (Some(lo), Some(hi)) if hi > lo => {
                    out.push(Reduction::OneTrip(path.clone()));
                    if hi - lo >= 2 {
                        out.push(Reduction::HalveUpper(path.clone()));
                    }
                }
                // Symbolic upper: try collapsing to a single iteration.
                (Some(_), None) => out.push(Reduction::OneTrip(path.clone())),
                _ => {}
            }
            collect(&l.body, path, out);
        }
        path.pop();
    }
}

fn apply_to(stmts: &mut Vec<Stmt>, path: &[usize], r: &Reduction) -> bool {
    let Some((&head, rest)) = path.split_first() else {
        return false;
    };
    if head >= stmts.len() {
        return false;
    }
    if rest.is_empty() {
        match r {
            Reduction::RemoveStmt(_) => {
                stmts.remove(head);
                true
            }
            Reduction::DeleteLevel(_) => {
                let Stmt::Loop(l) = stmts[head].clone() else {
                    return false;
                };
                let replacement: Vec<Stmt> = l
                    .body
                    .iter()
                    .map(|s| s.substitute(&l.var, &l.lower))
                    .collect();
                stmts.splice(head..=head, replacement);
                true
            }
            Reduction::OneTrip(_) => {
                let Stmt::Loop(l) = &mut stmts[head] else {
                    return false;
                };
                l.upper = l.lower.clone();
                true
            }
            Reduction::HalveUpper(_) => {
                let Stmt::Loop(l) = &mut stmts[head] else {
                    return false;
                };
                let (Some(lo), Some(hi)) = (l.lower.as_const(), l.upper.as_const()) else {
                    return false;
                };
                l.upper = Expr::lit(lo + (hi - lo) / 2);
                true
            }
        }
    } else {
        let Stmt::Loop(l) = &mut stmts[head] else {
            return false;
        };
        apply_to(&mut l.body, rest, r)
    }
}

/// Shrink `program` while `still_fails` holds, with a deterministic
/// greedy fixpoint. Returns the smallest accepted program and how many
/// reduction steps were taken.
pub fn shrink_with(program: &Program, still_fails: impl Fn(&Program) -> bool) -> (Program, u64) {
    let mut current = program.clone();
    let mut steps = 0u64;
    'outer: while steps < MAX_SHRINK_STEPS {
        let mut reductions = Vec::new();
        collect(&current.body, &mut Vec::new(), &mut reductions);
        for r in &reductions {
            let mut candidate = current.clone();
            let path = match r {
                Reduction::RemoveStmt(p)
                | Reduction::DeleteLevel(p)
                | Reduction::OneTrip(p)
                | Reduction::HalveUpper(p) => p.clone(),
            };
            if !apply_to(&mut candidate.body, &path, r) {
                continue;
            }
            // A reduction can orphan references (e.g. removing `n = 3;`
            // while a bound still reads `n`); such candidates are
            // ill-formed, not failing.
            if candidate.check().is_err() {
                continue;
            }
            if still_fails(&candidate) {
                current = candidate;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, steps)
}

/// Shrink a program that produced `target` under the given compile
/// configuration: a candidate reproduces when the oracle reports a
/// divergence of the same [`Divergence::kind`].
pub fn shrink_case(
    program: &Program,
    pipeline: &[String],
    options: &DriverOptions,
    interp_seed: u64,
    interp: bool,
    target: &Divergence,
) -> (Program, u64) {
    let kind = target.kind();
    shrink_with(program, |candidate| {
        run_program(candidate, pipeline, options, interp_seed, interp)
            .divergence
            .is_some_and(|d| d.kind() == kind)
    })
}

/// Render a minimized finding as a self-contained Rust regression test
/// over [`crate::oracle::check_source`]. The emitted snippet compiles
/// against `lc-fuzz` alone — paste it into `tests/fuzz_regressions.rs`.
pub fn regression_snippet(
    name: &str,
    program: &Program,
    pipeline: &[String],
    options: &DriverOptions,
    interp_seed: u64,
    interp: bool,
    kind: &str,
) -> String {
    let source = print_program(program);
    let pipeline_list = pipeline
        .iter()
        .map(|p| format!("{p:?}"))
        .collect::<Vec<_>>()
        .join(", ");
    let c = &options.coalesce;
    let lint_chain: String = lc_lint::LintCode::ALL
        .iter()
        .filter(|&&code| options.lints.level(code) != lc_lint::Severity::Allow)
        .map(|&code| {
            format!(
                "\n        .with(lc_lint::LintCode::{code:?}, lc_lint::Severity::{:?})",
                options.lints.level(code)
            )
        })
        .collect();
    format!(
        r##"// Minimized lc-fuzz finding: {kind}.
#[test]
fn fuzz_regression_{name}() {{
    let src = r#"
{source}"#;
    let coalesce = lc_xform::coalesce::CoalesceOptions::builder()
        .scheme(lc_xform::recovery::RecoveryScheme::{scheme:?})
        .check_legality({check_legality})
        .levels_opt({levels:?})
        .auto_normalize({auto_normalize})
        .strength_reduce({strength_reduce})
        .build();
    let options = lc_driver::DriverOptions {{
        coalesce,
        enable_perfection: {enable_perfection},
        enable_interchange: {enable_interchange},
        validate: false,
        advise: None,
        pass_order: None,
        validate_each_pass: {validate_each_pass},
        lints: lc_lint::LintSet::all_allow(){lint_chain},
    }};
    let divergence = lc_fuzz::oracle::check_source(
        src,
        &[{pipeline_list}],
        &options,
        {interp_seed:#x},
        {interp},
    );
    assert!(divergence.is_none(), "{{divergence:?}}");
}}
"##,
        scheme = c.scheme,
        check_legality = c.check_legality,
        levels = c.levels,
        auto_normalize = c.auto_normalize,
        strength_reduce = c.strength_reduce,
        enable_perfection = options.enable_perfection,
        enable_interchange = options.enable_interchange,
        validate_each_pass = options.validate_each_pass,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_ir::parser::parse_program;

    /// A stand-in failure: "the program still writes array W somewhere
    /// under a loop at least 2 deep". The shrinker must converge to a
    /// minimal nest without getting stuck.
    fn deep_w_write(p: &Program) -> bool {
        fn depth_to_w(stmts: &[Stmt], depth: usize) -> bool {
            stmts.iter().any(|s| match s {
                Stmt::Loop(l) => depth_to_w(&l.body, depth + 1),
                Stmt::AssignArray { target, .. } => depth >= 2 && target.array.as_str() == "W",
                _ => false,
            })
        }
        depth_to_w(&p.body, 0)
    }

    #[test]
    fn converges_to_a_minimal_program() {
        let p = parse_program(
            "
            array W[8][8][8];
            array R[4];
            q = 3;
            doall i = 1..8 {
                u1 = i * 2;
                doall j = 1..8 {
                    doall k = 1..8 {
                        W[i][j][k] = R[1] + 7;
                    }
                }
            }
            ",
        )
        .unwrap();
        assert!(deep_w_write(&p));
        let (small, steps) = shrink_with(&p, deep_w_write);
        assert!(steps > 0);
        assert!(deep_w_write(&small));
        // Everything inessential is gone: the scalar q, the temp u1, and
        // the third loop level (2 suffice), and bounds are single-trip.
        let text = print_program(&small);
        assert!(!text.contains("q ="), "{text}");
        assert!(!text.contains("u1"), "{text}");
        let loops = text.matches("doall").count();
        assert_eq!(loops, 2, "{text}");
        assert!(text.contains("1..1"), "{text}");
    }

    #[test]
    fn shrinking_is_deterministic() {
        let p = parse_program(
            "
            array W[4][4][4];
            doall i = 1..4 { doall j = 1..4 { doall k = 1..4 {
                W[i][j][k] = i + j + k;
            } } }
            ",
        )
        .unwrap();
        let (a, sa) = shrink_with(&p, deep_w_write);
        let (b, sb) = shrink_with(&p, deep_w_write);
        assert_eq!(print_program(&a), print_program(&b));
        assert_eq!(sa, sb);
    }

    #[test]
    fn never_fails_predicate_returns_input_unchanged() {
        let p = parse_program("array W[2]; doall i = 1..2 { W[i] = i; }").unwrap();
        let (same, steps) = shrink_with(&p, |_| false);
        assert_eq!(steps, 0);
        assert_eq!(print_program(&same), print_program(&p));
    }
}
