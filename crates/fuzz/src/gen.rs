//! The seeded nest generator: random well-formed DSL programs covering
//! the transformation pipeline's whole input space.
//!
//! Every program is generated from an [`Rng`] alone, so equal seeds
//! produce byte-identical programs on every platform — the determinism
//! the CI fuzz job asserts by running twice and diffing.
//!
//! The generator's contract with the oracle:
//!
//! * programs always pass [`Program::check`] (well-formed references);
//! * `doall` bodies are **race-free by construction** — each nest owns a
//!   write array indexed injectively by (a permutation of) its loop
//!   variables, reads touch only read-only arrays or temporaries written
//!   earlier in the same iteration, and scalar reductions only appear in
//!   all-serial nests. A divergence between original and transformed can
//!   therefore only be the compiler's fault;
//! * [`Generated::interp_cost`] bounds the interpreter work so the
//!   oracle can skip execution for "extreme" cases (near-overflow trip
//!   products) that exist to stress `total_iterations` overflow handling
//!   and must merely compile without panicking.
//!
//! The input space covered: rank 1..=6, constant and symbolic bounds,
//! non-unit steps and shifted lower bounds (normalization fodder), zero-
//! and one-trip levels, imperfect nests (statements between levels),
//! serial/`doacross` levels mixed into `doall` nests, scalar reductions,
//! and bodies assembled through [`ExprBuilder`] so constant folding and
//! shared-division interning run over generated code too.

use lc_ir::program::Program;
use lc_ir::stmt::{Loop, LoopKind, Stmt};
use lc_ir::{Expr, ExprBuilder, Symbol};

use crate::rng::Rng;

/// Generator knobs.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Deepest nest to generate (1..=6).
    pub max_rank: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { max_rank: 6 }
    }
}

/// A generated program plus what the generator knows about it.
#[derive(Debug, Clone)]
pub struct Generated {
    /// The program. Always passes [`Program::check`].
    pub program: Program,
    /// Total interpreter iterations across all nests, when small enough
    /// to execute. `None` marks a compile-only case (huge or
    /// near-overflow trip products).
    pub interp_cost: Option<u64>,
}

/// Interpretation budget: cases whose summed trip product exceeds this
/// are compile-only. Keeps a 1000-case run in seconds.
pub const MAX_INTERP_COST: u64 = 4096;

const VAR_NAMES: [&str; 6] = ["i", "j", "k", "l", "m", "p"];

/// One loop level, with the numeric facts the generator fixed for it.
struct Level {
    var: Symbol,
    kind: LoopKind,
    lower: Expr,
    upper: Expr,
    step: i64,
    /// Lowest value the variable takes (= constant lower bound).
    lo: i64,
    /// Iterations this level executes.
    trip: u64,
    /// Largest value the variable takes (lo when the level is empty).
    max_val: i64,
}

/// Generate one program from `rng`.
pub fn generate(rng: &mut Rng, cfg: &GenConfig) -> Generated {
    let max_rank = cfg.max_rank.clamp(1, 6);
    let mut prog = Program::new();
    let mut cost: u64 = 0;
    let mut extreme = false;

    // A read-only array every body may read from (clamped in-bounds).
    let r_dim: i64 = rng.range_i64(4, 8);
    prog.arrays
        .push(lc_ir::ArrayDecl::new("R", vec![r_dim as usize]));

    // Case flavor: mostly ordinary nests, sometimes an all-serial
    // reduction nest, rarely an extreme (compile-only) nest.
    let flavor = rng.below(12);
    if flavor == 0 {
        extreme = true;
        gen_extreme_nest(rng, &mut prog);
    } else if flavor <= 2 {
        gen_reduction_nest(rng, &mut prog, max_rank, &mut cost, r_dim);
    } else {
        gen_nest(rng, &mut prog, max_rank, &mut cost, r_dim, "W", 0);
        // Sometimes a second, shallower nest writing its own array.
        if rng.chance(1, 4) {
            let rank_cap = max_rank.min(2);
            gen_nest(rng, &mut prog, rank_cap, &mut cost, r_dim, "V", 1);
        }
    }

    debug_assert!(
        prog.check().is_ok(),
        "generator emitted an ill-formed program"
    );
    Generated {
        interp_cost: if extreme || cost > MAX_INTERP_COST {
            None
        } else {
            Some(cost)
        },
        program: prog,
    }
}

/// Pick the levels of a nest: kinds, bounds, steps.
fn gen_levels(rng: &mut Rng, rank: usize, prog: &mut Program, bound_tag: usize) -> Vec<Level> {
    let mut levels = Vec::with_capacity(rank);
    for (d, var_name) in VAR_NAMES.iter().enumerate().take(rank) {
        let kind = match rng.below(10) {
            0 => LoopKind::Serial,
            1 => LoopKind::Doacross {
                delay: rng.below(3) as u32,
            },
            _ => LoopKind::Doall,
        };
        // Bounds: mostly normalized 1..=N; sometimes shifted lower bound
        // or non-unit step (normalization fodder); sometimes a symbolic
        // upper bound via a scalar assigned just above the nest.
        let (lo, hi, step, lower, upper) = match rng.below(8) {
            // Zero-trip and one-trip extremes.
            0 => {
                let lo = 1i64;
                let hi = rng.range_i64(0, 1);
                (lo, hi, 1, Expr::lit(lo), Expr::lit(hi))
            }
            // Shifted lower bound, unit step.
            1 => {
                let lo = rng.range_i64(-2, 3);
                let hi = lo + rng.range_i64(0, 4);
                (lo, hi, 1, Expr::lit(lo), Expr::lit(hi))
            }
            // Non-unit step.
            2 => {
                let lo = rng.range_i64(0, 2);
                let step = rng.range_i64(2, 3);
                let hi = lo + rng.range_i64(0, 3) * step + rng.range_i64(0, step - 1);
                (lo, hi, step, Expr::lit(lo), Expr::lit(hi))
            }
            // Symbolic upper bound: `nX = c;` then `.. = 1..nX`.
            3 => {
                let val = rng.range_i64(0, 6);
                let name = format!("n{bound_tag}{d}");
                prog.body.push(Stmt::assign(name.as_str(), Expr::lit(val)));
                (1, val, 1, Expr::lit(1), Expr::var(name.as_str()))
            }
            // Plain normalized constant bounds.
            _ => {
                let hi = rng.range_i64(1, 6);
                (1, hi, 1, Expr::lit(1), Expr::lit(hi))
            }
        };
        let trip = if hi >= lo {
            ((hi - lo) / step) as u64 + 1
        } else {
            0
        };
        let max_val = if trip == 0 {
            lo
        } else {
            lo + (trip as i64 - 1) * step
        };
        levels.push(Level {
            var: Symbol::new(*var_name),
            kind,
            lower,
            upper,
            step,
            lo,
            trip,
            max_val,
        });
    }
    levels
}

/// Build one ordinary nest writing `write_array`, appending the nest
/// (and any symbolic-bound assignments) to `prog`.
fn gen_nest(
    rng: &mut Rng,
    prog: &mut Program,
    max_rank: usize,
    cost: &mut u64,
    r_dim: i64,
    write_array: &str,
    bound_tag: usize,
) {
    let rank = 1 + rng.below(max_rank as u64) as usize;
    let levels = gen_levels(rng, rank, prog, bound_tag);

    // The write array: one dimension per level, sized to cover the
    // level's whole (offset) iteration range; indexed by a permutation
    // of the loop variables so interchange gets exercised too.
    let mut perm: Vec<usize> = (0..rank).collect();
    if rng.chance(1, 3) {
        rng.shuffle(&mut perm);
    }
    let dims: Vec<usize> = perm
        .iter()
        .map(|&d| ((levels[d].max_val - levels[d].lo + 1).max(1)) as usize)
        .collect();
    prog.arrays.push(lc_ir::ArrayDecl::new(write_array, dims));
    let indices: Vec<Expr> = perm
        .iter()
        .map(|&d| {
            // Shift so the minimum value maps to subscript 1.
            let off = 1 - levels[d].lo;
            if off == 0 {
                Expr::var(levels[d].var.clone())
            } else {
                Expr::var(levels[d].var.clone()) + Expr::lit(off)
            }
        })
        .collect();

    // Innermost body, via ExprBuilder so generated programs flow through
    // constant folding and (sometimes) shared-division interning.
    let mut b = ExprBuilder::new();
    let in_scope: Vec<Symbol> = levels.iter().map(|l| l.var.clone()).collect();
    let mut temps: Vec<Symbol> = Vec::new();

    // Optional per-iteration temporary (safe: written before any read,
    // within the same innermost iteration).
    if rng.chance(1, 3) {
        let t = Symbol::new("t0");
        b.assign(t.clone(), gen_value_expr(rng, &in_scope, &temps, r_dim, 2));
        temps.push(t);
    }
    let value = gen_value_expr(rng, &in_scope, &temps, r_dim, 3);
    b.push(Stmt::store(write_array, indices, value));
    if rng.chance(1, 4) {
        b.intern_shared_divisions("cse");
    }
    let mut body = b.into_stmts();

    // Wrap the body in the levels, innermost first; sometimes make the
    // nest imperfect by dropping a temporary assignment between levels
    // (reads only outer variables — race-free under any inner order).
    let mut body_stmts: u64 = body.len() as u64;
    for (d, level) in levels.iter().enumerate().rev() {
        if d > 0 && rng.chance(1, 4) {
            let outer_scope: Vec<Symbol> = levels[..d].iter().map(|l| l.var.clone()).collect();
            let t = Symbol::new(format!("u{d}"));
            let imperfect = Stmt::assign(t, gen_value_expr(rng, &outer_scope, &[], r_dim, 2));
            body.insert(0, imperfect);
            body_stmts += 1;
        }
        body = vec![Stmt::Loop(Loop {
            var: level.var.clone(),
            lower: level.lower.clone(),
            upper: level.upper.clone(),
            step: Expr::lit(level.step),
            kind: level.kind,
            body,
        })];
        body_stmts = body_stmts.saturating_mul(level.trip.max(1));
    }
    *cost = cost.saturating_add(body_stmts);
    prog.body.extend(body);
}

/// An all-serial nest accumulating into a scalar — exercises the
/// `ScalarReduction` / carried-dependence skip paths. Serial semantics
/// make the accumulation order fixed, so the oracle's comparison stays
/// sound.
fn gen_reduction_nest(
    rng: &mut Rng,
    prog: &mut Program,
    max_rank: usize,
    cost: &mut u64,
    r_dim: i64,
) {
    let rank = 1 + rng.below(max_rank.min(3) as u64) as usize;
    let mut levels = gen_levels(rng, rank, prog, 2);
    for l in &mut levels {
        l.kind = LoopKind::Serial;
    }
    let dims: Vec<usize> = levels
        .iter()
        .map(|l| ((l.max_val - l.lo + 1).max(1)) as usize)
        .collect();
    prog.arrays.push(lc_ir::ArrayDecl::new("W", dims));
    prog.body.push(Stmt::assign("s", Expr::lit(0)));

    let in_scope: Vec<Symbol> = levels.iter().map(|l| l.var.clone()).collect();
    let step_expr = gen_value_expr(rng, &in_scope, &[], r_dim, 2);
    let indices: Vec<Expr> = levels
        .iter()
        .map(|l| {
            let off = 1 - l.lo;
            if off == 0 {
                Expr::var(l.var.clone())
            } else {
                Expr::var(l.var.clone()) + Expr::lit(off)
            }
        })
        .collect();
    let mut body = vec![
        Stmt::assign("s", Expr::var("s") + step_expr),
        Stmt::store("W", indices, Expr::var("s")),
    ];
    let mut body_stmts: u64 = 2;
    for level in levels.iter().rev() {
        body = vec![Stmt::Loop(Loop {
            var: level.var.clone(),
            lower: level.lower.clone(),
            upper: level.upper.clone(),
            step: Expr::lit(level.step),
            kind: level.kind,
            body,
        })];
        body_stmts = body_stmts.saturating_mul(level.trip.max(1));
    }
    *cost = cost.saturating_add(body_stmts);
    prog.body.extend(body);
}

/// A compile-only nest with a near-overflow (or overflowing) trip
/// product: `total_iterations` and the emitted recovery constants live
/// near `i64::MAX`. The compiler must either transform it or decline
/// with a typed error — never panic. The oracle never interprets these.
fn gen_extreme_nest(rng: &mut Rng, prog: &mut Program) {
    let rank = 3;
    // 2^20..2^21 per level; rank 3 puts the product in 2^60..2^63.
    let mut dims = Vec::with_capacity(rank);
    let mut body: Vec<Stmt> = Vec::new();
    let mut bounds = Vec::with_capacity(rank);
    for _ in 0..rank {
        let hi = 1i64 << rng.range_i64(20, 21);
        bounds.push(hi);
        dims.push(hi as usize);
    }
    let indices: Vec<Expr> = VAR_NAMES.iter().take(rank).map(|v| Expr::var(*v)).collect();
    prog.arrays.push(lc_ir::ArrayDecl::new("W", dims));
    body.push(Stmt::store(
        "W",
        indices,
        Expr::var("i") + Expr::var("j") * Expr::lit(3),
    ));
    for d in (0..rank).rev() {
        body = vec![Stmt::Loop(Loop {
            var: Symbol::new(VAR_NAMES[d]),
            lower: Expr::lit(1),
            upper: Expr::lit(bounds[d]),
            step: Expr::lit(1),
            kind: LoopKind::Doall,
            body,
        })];
    }
    prog.body.extend(body);
}

/// A random value expression over the in-scope variables, temporaries,
/// and clamped reads of the read-only array `R`. `depth` bounds the
/// tree; multiplication is restricted to small constant factors so
/// interpreted values stay far from `i64` overflow.
fn gen_value_expr(
    rng: &mut Rng,
    vars: &[Symbol],
    temps: &[Symbol],
    r_dim: i64,
    depth: u32,
) -> Expr {
    if depth == 0 || rng.chance(1, 3) {
        // Leaf.
        return match rng.below(4) {
            0 => Expr::lit(rng.range_i64(-9, 9)),
            1 if !vars.is_empty() => Expr::var(rng.pick(vars).clone()),
            2 if !temps.is_empty() => Expr::var(rng.pick(temps).clone()),
            _ => {
                // R[min(max(e, 1), r_dim)] — always in bounds.
                let inner = if vars.is_empty() {
                    Expr::lit(rng.range_i64(1, r_dim))
                } else {
                    Expr::var(rng.pick(vars).clone()) + Expr::lit(rng.range_i64(-2, 2))
                };
                Expr::read("R", vec![inner.max(Expr::lit(1)).min(Expr::lit(r_dim))])
            }
        };
    }
    let lhs = gen_value_expr(rng, vars, temps, r_dim, depth - 1);
    match rng.below(7) {
        0 => lhs + gen_value_expr(rng, vars, temps, r_dim, depth - 1),
        1 => lhs - gen_value_expr(rng, vars, temps, r_dim, depth - 1),
        // Multiplication only by a small constant: generated reads are
        // in [-1000, 1000], so value magnitudes stay bounded by
        // ~1000 * 4^depth — nowhere near i64.
        2 => lhs * Expr::lit(rng.range_i64(-4, 4)),
        3 => lhs.min(gen_value_expr(rng, vars, temps, r_dim, depth - 1)),
        4 => lhs.max(gen_value_expr(rng, vars, temps, r_dim, depth - 1)),
        5 => lhs.floor_div(Expr::lit(rng.range_i64(2, 4))),
        _ => lhs.ceil_div(Expr::lit(rng.range_i64(2, 4))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_ir::printer::print_program;

    #[test]
    fn same_seed_means_byte_identical_programs() {
        for seed in 0..50u64 {
            let a = generate(&mut Rng::new(seed), &GenConfig::default());
            let b = generate(&mut Rng::new(seed), &GenConfig::default());
            assert_eq!(
                print_program(&a.program),
                print_program(&b.program),
                "seed {seed} diverged"
            );
            assert_eq!(a.interp_cost, b.interp_cost);
        }
    }

    #[test]
    fn generated_programs_are_well_formed_and_parse_back() {
        for seed in 0..200u64 {
            let g = generate(&mut Rng::new(seed), &GenConfig::default());
            g.program.check().unwrap();
            let text = print_program(&g.program);
            let reparsed = lc_ir::parser::parse_program(&text)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
            assert_eq!(print_program(&reparsed), text);
        }
    }

    #[test]
    fn interpretable_cases_execute_within_budget() {
        use lc_xform::validate::seeded_store;
        let mut interpreted = 0;
        for seed in 0..100u64 {
            let g = generate(&mut Rng::new(seed), &GenConfig::default());
            let Some(cost) = g.interp_cost else { continue };
            assert!(cost <= MAX_INTERP_COST);
            let store = seeded_store(&g.program, seed);
            // Body expressions are overflow-safe by construction, and
            // every subscript is in bounds: execution must succeed.
            lc_ir::interp::Interp::new()
                .run_on(&g.program, store)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", print_program(&g.program)));
            interpreted += 1;
        }
        assert!(interpreted > 50, "most cases should be interpretable");
    }

    #[test]
    fn rank_respects_the_config_cap() {
        for seed in 0..50u64 {
            let g = generate(&mut Rng::new(seed), &GenConfig { max_rank: 1 });
            for stmt in &g.program.body {
                if let Stmt::Loop(l) = stmt {
                    // Reduction/extreme nests may exceed 1? No: reduction
                    // caps at max_rank too; extreme is fixed rank 3 and
                    // allowed — skip it (it has 2^20 bounds).
                    if l.upper.as_const().is_some_and(|c| c >= 1 << 20) {
                        continue;
                    }
                    assert!(depth_of(l) <= 1, "seed {seed} exceeded rank cap");
                }
            }
        }
    }

    fn depth_of(l: &lc_ir::Loop) -> usize {
        1 + l
            .body
            .iter()
            .filter_map(|s| match s {
                Stmt::Loop(inner) => Some(depth_of(inner)),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }
}
