//! Parallel reduction over a coalesced iteration space.
//!
//! The coalescing legality rules reject scalar reductions inside a
//! `doall` (`s = s + …` carries a dependence). The era's answer — and the
//! thesis's `calculate_pi` example — is *partial sums*: each worker
//! accumulates privately and the partials are folded after the join.
//! [`parallel_reduce`] packages that pattern over the same fetch&add
//! dispatch as [`crate::parallel_for`].

use std::time::Instant;

use crate::grabber::make_grabber;
use crate::parallel::RuntimeOptions;
use crate::stats::{RunStats, WorkerStats};

/// Reduce `map(0) ⊕ map(1) ⊕ … ⊕ map(n-1)` in parallel.
///
/// `map` computes one iteration's contribution; `fold` combines two
/// partial results and must be associative (commutativity is also
/// required unless the policy hands out chunks in order to a single
/// worker — partials are folded in worker order, not iteration order).
/// Returns the reduced value and run statistics.
pub fn parallel_reduce<T, M, F>(
    n: u64,
    opts: &RuntimeOptions,
    identity: T,
    map: M,
    fold: F,
) -> (T, RunStats)
where
    T: Clone + Send,
    M: Fn(u64) -> T + Sync,
    F: Fn(T, T) -> T + Sync + Send,
{
    let threads = opts.resolved_threads();
    let grabber = make_grabber(n, threads, opts.policy);
    let started = Instant::now();

    let results: Vec<(WorkerStats, T)> = crossbeam::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let grabber = &grabber;
                let map = &map;
                let fold = &fold;
                let mut acc = identity.clone();
                s.spawn(move |_| {
                    let mut ws = WorkerStats::default();
                    let t0 = Instant::now();
                    while let Some(chunk) = grabber.grab() {
                        ws.chunks += 1;
                        ws.iterations += chunk.len;
                        for i in chunk.start..chunk.end() {
                            acc = fold(acc, map(i));
                        }
                    }
                    ws.busy = t0.elapsed();
                    (ws, acc)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("scope failed");

    let mut workers = Vec::with_capacity(threads);
    let mut total = identity;
    for (ws, partial) in results {
        workers.push(ws);
        total = fold(total, partial);
    }
    (
        total,
        RunStats {
            elapsed: started.elapsed(),
            threads,
            policy: opts.policy.name(),
            workers,
        },
    )
}

/// Convenience: integer sum of `map(i)` over `0..n`.
pub fn parallel_sum<M>(n: u64, opts: &RuntimeOptions, map: M) -> (i64, RunStats)
where
    M: Fn(u64) -> i64 + Sync,
{
    parallel_reduce(n, opts, 0i64, map, |a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_sched::policy::PolicyKind;

    fn opts(threads: usize, policy: PolicyKind) -> RuntimeOptions {
        RuntimeOptions { threads, policy }
    }

    #[test]
    fn sum_matches_closed_form_under_all_policies() {
        let n = 100_000u64;
        let want = (n as i64 - 1) * n as i64 / 2;
        for policy in [
            PolicyKind::SelfSched,
            PolicyKind::Chunked(64),
            PolicyKind::Guided,
            PolicyKind::Trapezoid,
            PolicyKind::Factoring,
        ] {
            let (got, stats) = parallel_sum(n, &opts(4, policy), |i| i as i64);
            assert_eq!(got, want, "{policy:?}");
            assert_eq!(stats.total_iterations(), n);
        }
    }

    #[test]
    fn reduce_with_min_operator() {
        let data: Vec<i64> = (0..5000)
            .map(|i| ((i * 2654435761u64) % 99991) as i64)
            .collect();
        let want = *data.iter().min().unwrap();
        let (got, _) = parallel_reduce(
            data.len() as u64,
            &opts(4, PolicyKind::Guided),
            i64::MAX,
            |i| data[i as usize],
            |a, b| a.min(b),
        );
        assert_eq!(got, want);
    }

    #[test]
    fn pi_by_partial_sums() {
        // The thesis's calculate_pi, on the runtime: integrate 4/(1+x^2)
        // over [0,1] with 1e6 intervals, fixed-point contributions.
        let n = 1_000_000u64;
        let (sum, _) = parallel_sum(n, &opts(4, PolicyKind::Guided), |c| {
            let x = (c as f64 + 0.5) / n as f64;
            (4.0 / (1.0 + x * x) * 1e9 / n as f64) as i64
        });
        let pi = sum as f64 / 1e9;
        assert!((pi - std::f64::consts::PI).abs() < 1e-3, "pi ≈ {pi}");
    }

    #[test]
    fn empty_reduction_returns_identity() {
        let (got, stats) = parallel_sum(0, &opts(4, PolicyKind::SelfSched), |_| panic!());
        assert_eq!(got, 0);
        assert_eq!(stats.total_iterations(), 0);
    }

    #[test]
    fn single_iteration_reduction() {
        let (got, _) = parallel_sum(1, &opts(8, PolicyKind::Guided), |_| 42);
        assert_eq!(got, 42);
    }

    #[test]
    fn coalesced_reduction_over_2d_space() {
        // Sum of i*j over a 100x50 grid via the linear index: recover the
        // pair inside map.
        let dims = [100u64, 50];
        let n: u64 = dims.iter().product();
        let (got, _) = parallel_sum(n, &opts(4, PolicyKind::Guided), |q| {
            let iv = lc_space::recover_divmod(q as i64 + 1, &dims);
            iv[0] * iv[1]
        });
        let si: i64 = (1..=100).sum();
        let sj: i64 = (1..=50).sum();
        assert_eq!(got, si * sj);
    }
}
