//! The worker loop: scoped threads pulling chunks from a shared grabber.

use std::time::Instant;

use lc_sched::policy::{Chunk, PolicyKind};

use crate::grabber::make_grabber;
use crate::stats::{RunStats, WorkerStats};

/// Options for a runtime execution.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeOptions {
    /// Worker threads; `0` means one per available core.
    pub threads: usize,
    /// Chunking policy for dynamic dispatch.
    pub policy: PolicyKind,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            threads: 0,
            policy: PolicyKind::Guided,
        }
    }
}

impl RuntimeOptions {
    /// Resolve `threads == 0` to the host's available parallelism.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Chunk-level parallel execution: every claimed [`Chunk`] is handed to
/// `handler` exactly once, from whichever worker claimed it. This is the
/// primitive `parallel_for` and the nest executors build on.
pub fn parallel_for_chunks<H>(n: u64, opts: &RuntimeOptions, handler: H) -> RunStats
where
    H: Fn(Chunk) + Sync,
{
    let threads = opts.resolved_threads();
    let grabber = make_grabber(n, threads, opts.policy);
    let started = Instant::now();

    let workers: Vec<WorkerStats> = crossbeam::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let grabber = &grabber;
                let handler = &handler;
                s.spawn(move |_| {
                    let mut ws = WorkerStats::default();
                    let t0 = Instant::now();
                    while let Some(chunk) = grabber.grab() {
                        ws.chunks += 1;
                        ws.iterations += chunk.len;
                        handler(chunk);
                    }
                    ws.busy = t0.elapsed();
                    ws
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("scope failed");

    RunStats {
        elapsed: started.elapsed(),
        threads,
        policy: opts.policy.name(),
        workers,
    }
}

/// Parallel loop over `0..n`: `body(i)` is called exactly once per index,
/// from some worker thread. Iterations within a chunk run consecutively
/// on one worker.
pub fn parallel_for<F>(n: u64, opts: &RuntimeOptions, body: F) -> RunStats
where
    F: Fn(u64) + Sync,
{
    parallel_for_chunks(n, opts, |chunk| {
        for i in chunk.start..chunk.end() {
            body(i);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn opts(threads: usize, policy: PolicyKind) -> RuntimeOptions {
        RuntimeOptions { threads, policy }
    }

    #[test]
    fn every_index_visited_exactly_once() {
        for policy in [
            PolicyKind::SelfSched,
            PolicyKind::Chunked(16),
            PolicyKind::Guided,
            PolicyKind::Trapezoid,
            PolicyKind::Factoring,
        ] {
            let n = 10_000u64;
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            let stats = parallel_for(n, &opts(4, policy), |i| {
                hits[i as usize].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "{policy:?} missed or duplicated an index"
            );
            assert_eq!(stats.total_iterations(), n, "{policy:?}");
        }
    }

    #[test]
    fn sum_reduction_via_atomics_is_correct() {
        let n = 100_000u64;
        let acc = AtomicU64::new(0);
        parallel_for(n, &opts(8, PolicyKind::Guided), |i| {
            acc.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(acc.load(Ordering::Relaxed), n * (n - 1) / 2);
    }

    #[test]
    fn zero_iterations_is_a_noop() {
        let stats = parallel_for(0, &opts(4, PolicyKind::SelfSched), |_| {
            panic!("body must not run")
        });
        assert_eq!(stats.total_iterations(), 0);
        assert_eq!(stats.threads, 4);
    }

    #[test]
    fn single_thread_executes_in_order_within_chunks() {
        // With one thread and CSS(10), chunks arrive in order and each
        // chunk's iterations are consecutive.
        let seen = std::sync::Mutex::new(Vec::new());
        parallel_for(100, &opts(1, PolicyKind::Chunked(10)), |i| {
            seen.lock().unwrap().push(i);
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chunk_handler_sees_whole_chunks() {
        let stats = parallel_for_chunks(1000, &opts(4, PolicyKind::Chunked(64)), |c| {
            assert!(c.len == 64 || c.len == 1000 % 64);
        });
        assert_eq!(stats.total_chunks(), 1000_u64.div_ceil(64));
    }

    #[test]
    fn thread_zero_resolves_to_host_parallelism() {
        let o = RuntimeOptions {
            threads: 0,
            policy: PolicyKind::Guided,
        };
        assert!(o.resolved_threads() >= 1);
    }

    #[test]
    fn worker_stats_account_all_chunks() {
        let stats = parallel_for(5000, &opts(3, PolicyKind::Guided), |_| {});
        assert_eq!(stats.workers.len(), 3);
        assert_eq!(stats.total_iterations(), 5000);
        assert!(stats.total_chunks() > 0);
    }
}
