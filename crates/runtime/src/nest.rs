//! Nest-level executors: the runtime analogues of the simulator's
//! execution modes, run on real threads.

use lc_space::{total_iterations, Odometer};

use crate::parallel::{parallel_for, parallel_for_chunks, RuntimeOptions};
use crate::stats::RunStats;

/// Execute a rectangular nest as a single **coalesced** parallel loop.
///
/// Workers claim chunks of the linear space through the shared counter;
/// within a chunk the index vector is recovered once (div/mod) and then
/// advanced incrementally (odometer) — the paper's recommended scheme for
/// chunked dispatch. `body` receives the 1-based index vector.
pub fn coalesced_for<F>(dims: &[u64], opts: &RuntimeOptions, body: F) -> RunStats
where
    F: Fn(&[i64]) + Sync,
{
    let n = total_iterations(dims).expect("iteration count overflows");
    parallel_for_chunks(n, opts, |chunk| {
        let mut odo = Odometer::from_linear(chunk.start as i64 + 1, dims);
        for _ in 0..chunk.len {
            body(odo.indices());
            odo.advance();
        }
    })
}

/// Execute the nest with only the **outermost** loop parallel; each
/// claimed outer iteration runs the inner subnest serially on its worker.
pub fn outer_for<F>(dims: &[u64], opts: &RuntimeOptions, body: F) -> RunStats
where
    F: Fn(&[i64]) + Sync,
{
    assert!(!dims.is_empty());
    let inner_dims = &dims[1..];
    let inner_n = total_iterations(inner_dims).expect("iteration count overflows");
    parallel_for(dims[0], opts, |i0| {
        // The empty product is 1, so a depth-1 nest runs the body once per
        // outer iteration with just `[i0]` as the index vector.
        let mut iv = Vec::with_capacity(dims.len());
        let mut odo = Odometer::new(inner_dims);
        for _ in 0..inner_n {
            iv.clear();
            iv.push(i0 as i64 + 1);
            iv.extend_from_slice(odo.indices());
            body(&iv);
            odo.advance();
        }
    })
}

/// Execute the nest with the **innermost** loop parallel and everything
/// above it serial: a real thread-team fork and join is paid for every
/// inner-loop instance. This is the configuration whose overhead the
/// paper's transformation eliminates — expect it to lose badly once the
/// outer product grows.
pub fn inner_sweep_for<F>(dims: &[u64], opts: &RuntimeOptions, body: F) -> RunStats
where
    F: Fn(&[i64]) + Sync,
{
    assert!(!dims.is_empty());
    let (outer_dims, inner_n) = (&dims[..dims.len() - 1], dims[dims.len() - 1]);
    let outer_total = total_iterations(outer_dims).expect("iteration count overflows");

    let mut acc = RunStats::default();
    let mut odo = Odometer::new(outer_dims);
    for _ in 0..outer_total.max(1) {
        let prefix: Vec<i64> = odo.indices().to_vec();
        let run = parallel_for(inner_n, opts, |ik| {
            let mut iv = Vec::with_capacity(dims.len());
            iv.extend_from_slice(&prefix);
            iv.push(ik as i64 + 1);
            body(&iv);
        });
        acc.accumulate(&run);
        odo.advance();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_sched::policy::PolicyKind;
    use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

    fn opts(threads: usize, policy: PolicyKind) -> RuntimeOptions {
        RuntimeOptions { threads, policy }
    }

    /// Run a mode and record each visited cell exactly once in a flat grid.
    fn check_visits_all(dims: &[u64], run: impl FnOnce(&(dyn Fn(&[i64]) + Sync))) {
        let n = total_iterations(dims).unwrap();
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let strides = lc_space::strides(dims);
        let body = |iv: &[i64]| {
            let mut flat = 0u64;
            for (k, &ix) in iv.iter().enumerate() {
                flat += (ix as u64 - 1) * strides[k];
            }
            hits[flat as usize].fetch_add(1, Ordering::Relaxed);
        };
        run(&body);
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "cell {i} visited wrongly");
        }
    }

    #[test]
    fn coalesced_visits_every_cell_once() {
        for policy in [
            PolicyKind::SelfSched,
            PolicyKind::Guided,
            PolicyKind::Chunked(13),
        ] {
            check_visits_all(&[7, 9, 5], |body| {
                coalesced_for(&[7, 9, 5], &opts(4, policy), body);
            });
        }
    }

    #[test]
    fn outer_visits_every_cell_once() {
        check_visits_all(&[12, 8], |body| {
            outer_for(&[12, 8], &opts(4, PolicyKind::SelfSched), body);
        });
    }

    #[test]
    fn inner_sweep_visits_every_cell_once() {
        check_visits_all(&[6, 10], |body| {
            inner_sweep_for(&[6, 10], &opts(4, PolicyKind::SelfSched), body);
        });
    }

    #[test]
    fn coalesced_depth_one_works() {
        check_visits_all(&[50], |body| {
            coalesced_for(&[50], &opts(2, PolicyKind::Guided), body);
        });
    }

    #[test]
    fn outer_depth_one_works() {
        check_visits_all(&[50], |body| {
            outer_for(&[50], &opts(2, PolicyKind::Guided), body);
        });
    }

    #[test]
    fn coalesced_matmul_matches_serial() {
        // C = A * B over i64, output via atomics (disjoint writes).
        let (n, m, k) = (9usize, 7usize, 8usize);
        let a: Vec<i64> = (0..n * k).map(|x| (x % 5) as i64 - 2).collect();
        let b: Vec<i64> = (0..k * m).map(|x| (x % 7) as i64 - 3).collect();
        let c: Vec<AtomicI64> = (0..n * m).map(|_| AtomicI64::new(0)).collect();

        coalesced_for(&[n as u64, m as u64], &opts(4, PolicyKind::Guided), |iv| {
            let (i, j) = (iv[0] as usize - 1, iv[1] as usize - 1);
            let mut acc = 0i64;
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * m + j];
            }
            c[i * m + j].store(acc, Ordering::Relaxed);
        });

        for i in 0..n {
            for j in 0..m {
                let want: i64 = (0..k).map(|kk| a[i * k + kk] * b[kk * m + j]).sum();
                assert_eq!(c[i * m + j].load(Ordering::Relaxed), want);
            }
        }
    }

    #[test]
    fn inner_sweep_accumulates_stats_across_instances() {
        let stats = inner_sweep_for(&[5, 100], &opts(2, PolicyKind::SelfSched), |_| {});
        assert_eq!(stats.total_iterations(), 500);
        // One parallel loop per outer iteration.
        assert!(stats.elapsed.as_nanos() > 0);
    }

    #[test]
    fn stats_report_policy_and_threads() {
        let stats = coalesced_for(&[8, 8], &opts(3, PolicyKind::Chunked(4)), |_| {});
        assert_eq!(stats.threads, 3);
        assert_eq!(stats.policy, "CSS(4)");
        assert_eq!(stats.total_iterations(), 64);
    }
}
