//! Per-worker and per-run execution statistics.

use std::time::Duration;

/// Counters one worker accumulates over a parallel loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Iterations this worker executed.
    pub iterations: u64,
    /// Chunks this worker claimed.
    pub chunks: u64,
    /// Wall time this worker spent executing chunks (excludes the time
    /// waiting to be spawned/joined).
    pub busy: Duration,
}

impl WorkerStats {
    /// Merge another worker's counters into this one (used when a worker
    /// participates in several loop instances).
    pub fn merge(&mut self, other: &WorkerStats) {
        self.iterations += other.iterations;
        self.chunks += other.chunks;
        self.busy += other.busy;
    }
}

/// Aggregate result of one parallel-loop run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// End-to-end wall time, including thread fork and join.
    pub elapsed: Duration,
    /// Number of worker threads.
    pub threads: usize,
    /// Display name of the scheduling policy.
    pub policy: String,
    /// Per-worker counters.
    pub workers: Vec<WorkerStats>,
}

impl RunStats {
    /// Sum of iterations executed by every worker.
    pub fn total_iterations(&self) -> u64 {
        self.workers.iter().map(|w| w.iterations).sum()
    }

    /// Sum of chunks claimed by every worker.
    pub fn total_chunks(&self) -> u64 {
        self.workers.iter().map(|w| w.chunks).sum()
    }

    /// `(max busy − min busy) / max busy` across workers; 0.0 when
    /// perfectly balanced or trivially small.
    pub fn imbalance(&self) -> f64 {
        let max = self
            .workers
            .iter()
            .map(|w| w.busy)
            .max()
            .unwrap_or_default();
        let min = self
            .workers
            .iter()
            .map(|w| w.busy)
            .min()
            .unwrap_or_default();
        if max.is_zero() {
            0.0
        } else {
            (max - min).as_secs_f64() / max.as_secs_f64()
        }
    }

    /// Merge the workers of another run into this one position-wise
    /// (panics if thread counts differ) and add its elapsed time.
    pub fn accumulate(&mut self, other: &RunStats) {
        if self.workers.is_empty() {
            self.workers = vec![WorkerStats::default(); other.workers.len()];
            self.threads = other.threads;
            self.policy = other.policy.clone();
        }
        assert_eq!(self.workers.len(), other.workers.len());
        for (a, b) in self.workers.iter_mut().zip(&other.workers) {
            a.merge(b);
        }
        self.elapsed += other.elapsed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_over_workers() {
        let stats = RunStats {
            elapsed: Duration::from_millis(5),
            threads: 2,
            policy: "SS".into(),
            workers: vec![
                WorkerStats {
                    iterations: 10,
                    chunks: 3,
                    busy: Duration::from_millis(4),
                },
                WorkerStats {
                    iterations: 6,
                    chunks: 2,
                    busy: Duration::from_millis(2),
                },
            ],
        };
        assert_eq!(stats.total_iterations(), 16);
        assert_eq!(stats.total_chunks(), 5);
        assert!((stats.imbalance() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn imbalance_of_empty_or_idle_run_is_zero() {
        assert_eq!(RunStats::default().imbalance(), 0.0);
        let idle = RunStats {
            workers: vec![WorkerStats::default(); 3],
            ..Default::default()
        };
        assert_eq!(idle.imbalance(), 0.0);
    }

    #[test]
    fn accumulate_merges_positionwise() {
        let one = RunStats {
            elapsed: Duration::from_millis(1),
            threads: 2,
            policy: "SS".into(),
            workers: vec![
                WorkerStats {
                    iterations: 1,
                    chunks: 1,
                    busy: Duration::from_micros(10),
                },
                WorkerStats::default(),
            ],
        };
        let mut acc = RunStats::default();
        acc.accumulate(&one);
        acc.accumulate(&one);
        assert_eq!(acc.total_iterations(), 2);
        assert_eq!(acc.elapsed, Duration::from_millis(2));
        assert_eq!(acc.threads, 2);
    }
}
