//! A persistent worker team: one thread spawn for a whole *series* of
//! parallel loops, with a barrier between consecutive loops.
//!
//! This is the execution model the paper's machines actually used:
//! processors join a team once, then sweep a sequence of parallel loop
//! instances separated by barriers. Comparing [`team_sweep_for`] against
//! [`crate::inner_sweep_for`] (a real thread fork per instance) and
//! [`crate::coalesced_for`] (one instance total) separates the two
//! overheads the transformation removes: thread management (team reuse
//! fixes that too) and per-instance dispatch + barrier (only coalescing
//! fixes that).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

use lc_space::{total_iterations, Odometer};

use crate::parallel::RuntimeOptions;
use crate::stats::{RunStats, WorkerStats};

/// Execute the nest with the innermost loop parallel and the outer levels
/// serial — like [`crate::inner_sweep_for`], but with one persistent
/// thread team and a barrier between instances instead of a fork/join per
/// instance. Dispatch within each instance is pure self-scheduling on a
/// per-instance `fetch_add` counter (`opts.policy` is ignored; the
/// instance trip counts are typically too small for chunking to matter).
pub fn team_sweep_for<F>(dims: &[u64], opts: &RuntimeOptions, body: F) -> RunStats
where
    F: Fn(&[i64]) + Sync,
{
    assert!(!dims.is_empty());
    let (outer_dims, inner_n) = (&dims[..dims.len() - 1], dims[dims.len() - 1]);
    let outer_total = total_iterations(outer_dims)
        .expect("iteration count overflows")
        .max(1);
    let threads = opts.resolved_threads();

    // One dispatch counter per instance, pre-allocated so workers never
    // race on counter reset.
    let counters: Vec<AtomicU64> = (0..outer_total).map(|_| AtomicU64::new(0)).collect();
    // Pre-compute the outer index vectors once.
    let prefixes: Vec<Vec<i64>> = {
        let mut odo = Odometer::new(outer_dims);
        (0..outer_total)
            .map(|_| {
                let v = odo.indices().to_vec();
                odo.advance();
                v
            })
            .collect()
    };
    let barrier = Barrier::new(threads);
    let started = Instant::now();

    let workers: Vec<WorkerStats> = crossbeam::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let counters = &counters;
                let prefixes = &prefixes;
                let barrier = &barrier;
                let body = &body;
                s.spawn(move |_| {
                    let mut ws = WorkerStats::default();
                    let t0 = Instant::now();
                    let mut iv: Vec<i64> = Vec::with_capacity(prefixes[0].len() + 1);
                    for (inst, prefix) in prefixes.iter().enumerate() {
                        loop {
                            let i = counters[inst].fetch_add(1, Ordering::Relaxed);
                            if i >= inner_n {
                                break;
                            }
                            ws.chunks += 1;
                            ws.iterations += 1;
                            iv.clear();
                            iv.extend_from_slice(prefix);
                            iv.push(i as i64 + 1);
                            body(&iv);
                        }
                        barrier.wait();
                    }
                    ws.busy = t0.elapsed();
                    ws
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("scope failed");

    RunStats {
        elapsed: started.elapsed(),
        threads,
        policy: "TEAM/SS".into(),
        workers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_sched::policy::PolicyKind;
    use std::sync::atomic::AtomicU64 as Cell;

    fn opts(threads: usize) -> RuntimeOptions {
        RuntimeOptions {
            threads,
            policy: PolicyKind::SelfSched,
        }
    }

    #[test]
    fn team_sweep_visits_every_cell_once() {
        let dims = [6u64, 10];
        let n: u64 = dims.iter().product();
        let hits: Vec<Cell> = (0..n).map(|_| Cell::new(0)).collect();
        let strides = lc_space::strides(&dims);
        let stats = team_sweep_for(&dims, &opts(4), |iv| {
            let flat: u64 = iv
                .iter()
                .enumerate()
                .map(|(k, &ix)| (ix as u64 - 1) * strides[k])
                .sum();
            hits[flat as usize].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(stats.total_iterations(), n);
        assert_eq!(stats.policy, "TEAM/SS");
    }

    #[test]
    fn team_sweep_depth_three() {
        let dims = [3u64, 4, 5];
        let n: u64 = dims.iter().product();
        let count = Cell::new(0);
        let stats = team_sweep_for(&dims, &opts(3), |iv| {
            assert_eq!(iv.len(), 3);
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), n);
        assert_eq!(stats.total_iterations(), n);
    }

    #[test]
    fn team_sweep_depth_one_behaves_like_single_parallel_loop() {
        let dims = [40u64];
        let count = Cell::new(0);
        team_sweep_for(&dims, &opts(2), |iv| {
            assert_eq!(iv.len(), 1);
            count.fetch_add(iv[0] as u64, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 40 * 41 / 2);
    }

    #[test]
    fn barrier_orders_instances() {
        // Writes of instance k must all happen before any write of
        // instance k+1: record a max-so-far and assert monotonicity.
        let dims = [8u64, 16];
        let max_seen = Cell::new(0);
        team_sweep_for(&dims, &opts(4), |iv| {
            let inst = iv[0] as u64;
            let prev = max_seen.fetch_max(inst, Ordering::SeqCst);
            // An earlier instance may never appear after a later one has
            // fully completed. With the barrier, prev is at most inst
            // (instances in flight are never more than one).
            assert!(
                prev <= inst,
                "instance {inst} observed after instance {prev}"
            );
        });
    }

    #[test]
    fn single_thread_team_works() {
        let dims = [5u64, 5];
        let count = Cell::new(0);
        team_sweep_for(&dims, &opts(1), |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 25);
    }
}
