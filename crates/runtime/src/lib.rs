//! `lc-runtime` — a real multi-threaded executor for coalesced loops.
//!
//! The paper's dispatch mechanism is a hardware fetch&add on a shared
//! counter; its exact software analogue is [`AtomicU64::fetch_add`] on a
//! shared iteration counter, which is what this crate runs — on real
//! threads (crossbeam's scoped threads), on the host machine — so the
//! transformation can be demonstrated end-to-end rather than only under
//! the simulator:
//!
//! * [`grabber`] — lock-free chunk acquisition: plain `fetch_add` for
//!   SS/CSS, a CAS loop for GSS (chunk size depends on the remaining
//!   count), and a mutex-guarded [`lc_sched::Dispenser`] for the
//!   stateful policies (TSS, factoring).
//! * [`parallel`] — the worker loop: `parallel_for` over a linear range
//!   and the chunk-level primitive it is built on.
//! * [`nest`] — nest-level entry points mirroring the simulator's
//!   execution modes: [`nest::coalesced_for`] (odometer-based index
//!   recovery per chunk), [`nest::outer_for`] (parallel outer loop,
//!   serial inner), and [`nest::inner_sweep_for`] (a real fork-join per
//!   inner-loop instance, so the overhead coalescing removes is actually
//!   paid and measurable).
//! * [`team`] — a persistent worker team sweeping a series of inner-loop
//!   instances with barriers instead of thread forks (the era's actual
//!   execution model, separating thread-management cost from
//!   dispatch/barrier cost).
//! * [`reduce`] — partial-sum parallel reduction (the legal formulation
//!   of the reductions the coalescing checker rejects inside a doall).
//! * [`stats`] — per-worker counters (iterations, chunks, busy time) and
//!   run-level aggregates.
//!
//! [`AtomicU64::fetch_add`]: std::sync::atomic::AtomicU64::fetch_add

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod grabber;
pub mod nest;
pub mod parallel;
pub mod reduce;
pub mod stats;
pub mod team;

pub use nest::{coalesced_for, inner_sweep_for, outer_for};
pub use parallel::{parallel_for, parallel_for_chunks, RuntimeOptions};
pub use reduce::{parallel_reduce, parallel_sum};
pub use stats::{RunStats, WorkerStats};
pub use team::team_sweep_for;
