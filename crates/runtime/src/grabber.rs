//! Chunk acquisition from a shared counter — the software fetch&add.

use std::sync::atomic::{AtomicU64, Ordering};

use lc_sched::policy::{Chunk, Dispenser, PolicyKind};
use parking_lot::Mutex;

/// A thread-safe source of iteration chunks.
pub trait Grabber: Sync {
    /// Claim the next chunk, or `None` when the loop is exhausted.
    fn grab(&self) -> Option<Chunk>;
}

/// Fixed-size chunks via a single `fetch_add` — pure self-scheduling when
/// `chunk == 1`, CSS(k) otherwise. This is exactly the paper's dispatch:
/// one atomic read-modify-write per chunk, no locks.
pub struct FetchAddGrabber {
    counter: AtomicU64,
    n: u64,
    chunk: u64,
}

impl FetchAddGrabber {
    /// Dispatch `n` iterations in chunks of `chunk`.
    pub fn new(n: u64, chunk: u64) -> Self {
        FetchAddGrabber {
            counter: AtomicU64::new(0),
            n,
            chunk: chunk.max(1),
        }
    }
}

impl Grabber for FetchAddGrabber {
    fn grab(&self) -> Option<Chunk> {
        let start = self.counter.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.n {
            return None;
        }
        Some(Chunk {
            start,
            len: self.chunk.min(self.n - start),
        })
    }
}

/// Guided self-scheduling: chunk size `⌈remaining/p⌉` claimed by CAS (the
/// size depends on the counter value, so a plain fetch_add cannot be
/// used).
pub struct GuidedGrabber {
    counter: AtomicU64,
    n: u64,
    p: u64,
    min_chunk: u64,
}

impl GuidedGrabber {
    /// Dispatch `n` iterations among `p` workers, never handing out fewer
    /// than `min_chunk` iterations (classic GSS uses 1).
    pub fn new(n: u64, p: usize, min_chunk: u64) -> Self {
        GuidedGrabber {
            counter: AtomicU64::new(0),
            n,
            p: p.max(1) as u64,
            min_chunk: min_chunk.max(1),
        }
    }
}

impl Grabber for GuidedGrabber {
    fn grab(&self) -> Option<Chunk> {
        let mut cur = self.counter.load(Ordering::Relaxed);
        loop {
            if cur >= self.n {
                return None;
            }
            let remaining = self.n - cur;
            let take = remaining
                .div_ceil(self.p)
                .max(self.min_chunk)
                .min(remaining);
            match self.counter.compare_exchange_weak(
                cur,
                cur + take,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Some(Chunk {
                        start: cur,
                        len: take,
                    })
                }
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Stateful policies (TSS, factoring) behind a mutex — the chunk sequence
/// depends on dispatch history, which an atomic counter cannot carry.
pub struct LockedGrabber {
    inner: Mutex<Dispenser>,
}

impl LockedGrabber {
    /// Wrap a dispenser.
    pub fn new(dispenser: Dispenser) -> Self {
        LockedGrabber {
            inner: Mutex::new(dispenser),
        }
    }
}

impl Grabber for LockedGrabber {
    fn grab(&self) -> Option<Chunk> {
        self.inner.lock().grab()
    }
}

/// Build the appropriate grabber for a policy: lock-free fast paths for
/// SS/CSS/GSS, mutex-guarded dispenser for the rest.
pub fn make_grabber(n: u64, p: usize, kind: PolicyKind) -> Box<dyn Grabber> {
    match kind {
        PolicyKind::SelfSched => Box::new(FetchAddGrabber::new(n, 1)),
        PolicyKind::Chunked(k) => Box::new(FetchAddGrabber::new(n, k)),
        PolicyKind::Guided => Box::new(GuidedGrabber::new(n, p, 1)),
        PolicyKind::Trapezoid | PolicyKind::Factoring => {
            Box::new(LockedGrabber::new(Dispenser::with_kind(n, p, kind)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex as StdMutex;

    fn drain_parallel(grabber: &dyn Grabber, threads: usize) -> Vec<Chunk> {
        let chunks = StdMutex::new(Vec::new());
        crossbeam::scope(|s| {
            for _ in 0..threads {
                s.spawn(|_| {
                    while let Some(c) = grabber.grab() {
                        chunks.lock().unwrap().push(c);
                    }
                });
            }
        })
        .unwrap();
        chunks.into_inner().unwrap()
    }

    fn assert_exact_cover(chunks: &[Chunk], n: u64) {
        let mut seen = HashSet::new();
        for c in chunks {
            for i in c.start..c.end() {
                assert!(seen.insert(i), "iteration {i} dispatched twice");
            }
        }
        assert_eq!(seen.len() as u64, n, "not all iterations dispatched");
    }

    #[test]
    fn fetch_add_covers_exactly_under_contention() {
        let g = FetchAddGrabber::new(100_000, 1);
        let chunks = drain_parallel(&g, 8);
        assert_exact_cover(&chunks, 100_000);
    }

    #[test]
    fn chunked_covers_exactly_with_ragged_tail() {
        let g = FetchAddGrabber::new(1003, 7);
        let chunks = drain_parallel(&g, 4);
        assert_exact_cover(&chunks, 1003);
        assert!(chunks.iter().any(|c| c.len == 7));
        assert!(chunks.iter().any(|c| c.len == 1003 % 7));
    }

    #[test]
    fn guided_covers_exactly_and_decays() {
        let g = GuidedGrabber::new(10_000, 8, 1);
        let chunks = drain_parallel(&g, 8);
        assert_exact_cover(&chunks, 10_000);
        // Far fewer chunks than iterations.
        assert!(chunks.len() < 200, "{}", chunks.len());
    }

    #[test]
    fn locked_trapezoid_covers_exactly() {
        let g = LockedGrabber::new(Dispenser::with_kind(5000, 4, PolicyKind::Trapezoid));
        let chunks = drain_parallel(&g, 4);
        assert_exact_cover(&chunks, 5000);
    }

    #[test]
    fn locked_factoring_covers_exactly() {
        let g = LockedGrabber::new(Dispenser::with_kind(777, 3, PolicyKind::Factoring));
        let chunks = drain_parallel(&g, 3);
        assert_exact_cover(&chunks, 777);
    }

    #[test]
    fn empty_loop_yields_nothing() {
        for kind in [
            PolicyKind::SelfSched,
            PolicyKind::Guided,
            PolicyKind::Trapezoid,
        ] {
            let g = make_grabber(0, 4, kind);
            assert!(g.grab().is_none(), "{kind:?}");
        }
    }

    #[test]
    fn make_grabber_single_thread_drain_matches_n() {
        for kind in [
            PolicyKind::SelfSched,
            PolicyKind::Chunked(16),
            PolicyKind::Guided,
            PolicyKind::Trapezoid,
            PolicyKind::Factoring,
        ] {
            let g = make_grabber(1234, 4, kind);
            let mut total = 0;
            while let Some(c) = g.grab() {
                total += c.len;
            }
            assert_eq!(total, 1234, "{kind:?}");
        }
    }
}
