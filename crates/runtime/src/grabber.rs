//! Chunk acquisition from a shared counter — the software fetch&add.

use std::sync::atomic::{AtomicU64, Ordering};

use lc_sched::policy::{Chunk, Dispenser, PolicyKind};
use parking_lot::Mutex;

/// A thread-safe source of iteration chunks.
pub trait Grabber: Sync {
    /// Claim the next chunk, or `None` when the loop is exhausted.
    fn grab(&self) -> Option<Chunk>;
}

/// Fixed-size chunks via a single `fetch_add` — pure self-scheduling when
/// `chunk == 1`, CSS(k) otherwise. This is exactly the paper's dispatch:
/// one atomic read-modify-write per chunk, no locks.
pub struct FetchAddGrabber {
    counter: AtomicU64,
    n: u64,
    chunk: u64,
}

impl FetchAddGrabber {
    /// Dispatch `n` iterations in chunks of `chunk`.
    pub fn new(n: u64, chunk: u64) -> Self {
        FetchAddGrabber {
            counter: AtomicU64::new(0),
            n,
            chunk: chunk.max(1),
        }
    }
}

impl Grabber for FetchAddGrabber {
    fn grab(&self) -> Option<Chunk> {
        // A plain `fetch_add` keeps incrementing after exhaustion, and
        // near `u64::MAX` the counter would wrap and re-dispatch
        // iterations that already ran. `fetch_update` with a saturating
        // add pins the counter once the range is drained; on the
        // uncontended fast path it is still a single CAS — the paper's
        // one synchronized operation per chunk.
        let start = self
            .counter
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
                (c < self.n).then(|| c.saturating_add(self.chunk))
            })
            .ok()?;
        Some(Chunk {
            start,
            len: self.chunk.min(self.n - start),
        })
    }
}

/// Guided self-scheduling: chunk size `⌈remaining/p⌉` claimed by CAS (the
/// size depends on the counter value, so a plain fetch_add cannot be
/// used).
pub struct GuidedGrabber {
    counter: AtomicU64,
    n: u64,
    p: u64,
    min_chunk: u64,
}

impl GuidedGrabber {
    /// Dispatch `n` iterations among `p` workers, never handing out fewer
    /// than `min_chunk` iterations (classic GSS uses 1).
    pub fn new(n: u64, p: usize, min_chunk: u64) -> Self {
        GuidedGrabber {
            counter: AtomicU64::new(0),
            n,
            p: p.max(1) as u64,
            min_chunk: min_chunk.max(1),
        }
    }
}

impl Grabber for GuidedGrabber {
    fn grab(&self) -> Option<Chunk> {
        let mut cur = self.counter.load(Ordering::Relaxed);
        loop {
            if cur >= self.n {
                return None;
            }
            let remaining = self.n - cur;
            let take = remaining
                .div_ceil(self.p)
                .max(self.min_chunk)
                .min(remaining);
            match self.counter.compare_exchange_weak(
                cur,
                cur + take,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Some(Chunk {
                        start: cur,
                        len: take,
                    })
                }
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Stateful policies (TSS, factoring) behind a mutex — the chunk sequence
/// depends on dispatch history, which an atomic counter cannot carry.
pub struct LockedGrabber {
    inner: Mutex<Dispenser>,
}

impl LockedGrabber {
    /// Wrap a dispenser.
    pub fn new(dispenser: Dispenser) -> Self {
        LockedGrabber {
            inner: Mutex::new(dispenser),
        }
    }
}

impl Grabber for LockedGrabber {
    fn grab(&self) -> Option<Chunk> {
        self.inner.lock().grab()
    }
}

/// Build the appropriate grabber for a policy: lock-free fast paths for
/// SS/CSS/GSS, mutex-guarded dispenser for the rest.
pub fn make_grabber(n: u64, p: usize, kind: PolicyKind) -> Box<dyn Grabber> {
    match kind {
        PolicyKind::SelfSched => Box::new(FetchAddGrabber::new(n, 1)),
        PolicyKind::Chunked(k) => Box::new(FetchAddGrabber::new(n, k)),
        PolicyKind::Guided => Box::new(GuidedGrabber::new(n, p, 1)),
        PolicyKind::Trapezoid | PolicyKind::Factoring => {
            Box::new(LockedGrabber::new(Dispenser::with_kind(n, p, kind)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex as StdMutex;

    fn drain_parallel(grabber: &dyn Grabber, threads: usize) -> Vec<Chunk> {
        let chunks = StdMutex::new(Vec::new());
        crossbeam::scope(|s| {
            for _ in 0..threads {
                s.spawn(|_| {
                    while let Some(c) = grabber.grab() {
                        chunks.lock().unwrap().push(c);
                    }
                });
            }
        })
        .unwrap();
        chunks.into_inner().unwrap()
    }

    fn assert_exact_cover(chunks: &[Chunk], n: u64) {
        let mut seen = HashSet::new();
        for c in chunks {
            for i in c.start..c.end() {
                assert!(seen.insert(i), "iteration {i} dispatched twice");
            }
        }
        assert_eq!(seen.len() as u64, n, "not all iterations dispatched");
    }

    #[test]
    fn fetch_add_covers_exactly_under_contention() {
        let g = FetchAddGrabber::new(100_000, 1);
        let chunks = drain_parallel(&g, 8);
        assert_exact_cover(&chunks, 100_000);
    }

    #[test]
    fn chunked_covers_exactly_with_ragged_tail() {
        let g = FetchAddGrabber::new(1003, 7);
        let chunks = drain_parallel(&g, 4);
        assert_exact_cover(&chunks, 1003);
        assert!(chunks.iter().any(|c| c.len == 7));
        assert!(chunks.iter().any(|c| c.len == 1003 % 7));
    }

    #[test]
    fn guided_covers_exactly_and_decays() {
        let g = GuidedGrabber::new(10_000, 8, 1);
        let chunks = drain_parallel(&g, 8);
        assert_exact_cover(&chunks, 10_000);
        // Far fewer chunks than iterations.
        assert!(chunks.len() < 200, "{}", chunks.len());
    }

    #[test]
    fn locked_trapezoid_covers_exactly() {
        let g = LockedGrabber::new(Dispenser::with_kind(5000, 4, PolicyKind::Trapezoid));
        let chunks = drain_parallel(&g, 4);
        assert_exact_cover(&chunks, 5000);
    }

    #[test]
    fn locked_factoring_covers_exactly() {
        let g = LockedGrabber::new(Dispenser::with_kind(777, 3, PolicyKind::Factoring));
        let chunks = drain_parallel(&g, 3);
        assert_exact_cover(&chunks, 777);
    }

    #[test]
    fn empty_loop_yields_nothing() {
        for kind in [
            PolicyKind::SelfSched,
            PolicyKind::Guided,
            PolicyKind::Trapezoid,
        ] {
            let g = make_grabber(0, 4, kind);
            assert!(g.grab().is_none(), "{kind:?}");
        }
    }

    #[test]
    fn empty_range_yields_nothing_for_every_grabber() {
        assert!(FetchAddGrabber::new(0, 1).grab().is_none());
        assert!(FetchAddGrabber::new(0, 64).grab().is_none());
        assert!(GuidedGrabber::new(0, 8, 1).grab().is_none());
        assert!(
            LockedGrabber::new(Dispenser::with_kind(0, 4, PolicyKind::Factoring))
                .grab()
                .is_none()
        );
        // And stays empty on repeated polls.
        let g = FetchAddGrabber::new(0, 3);
        for _ in 0..4 {
            assert!(g.grab().is_none());
        }
    }

    #[test]
    fn single_iteration_range_dispatches_exactly_once() {
        for kind in [
            PolicyKind::SelfSched,
            PolicyKind::Chunked(16),
            PolicyKind::Guided,
            PolicyKind::Trapezoid,
            PolicyKind::Factoring,
        ] {
            let g = make_grabber(1, 4, kind);
            let c = g.grab().unwrap_or_else(|| panic!("{kind:?} gave nothing"));
            assert_eq!((c.start, c.len), (0, 1), "{kind:?}");
            assert_eq!(c.end(), 1, "{kind:?}");
            assert!(g.grab().is_none(), "{kind:?} dispatched twice");
        }
    }

    #[test]
    fn fetch_add_near_u64_max_never_wraps_or_overflows() {
        // Chunk larger than half the domain: the second claim saturates
        // the counter. Before the `fetch_update` fix the third grab saw
        // a wrapped (small) counter and re-dispatched iteration 0.
        let chunk = u64::MAX / 2 + 3;
        let g = FetchAddGrabber::new(u64::MAX, chunk);
        let a = g.grab().unwrap();
        assert_eq!((a.start, a.len), (0, chunk));
        assert_eq!(a.end(), chunk);
        let b = g.grab().unwrap();
        assert_eq!(b.start, chunk);
        assert_eq!(b.len, u64::MAX - chunk);
        assert_eq!(b.end(), u64::MAX); // no overflow in Chunk::end
        for _ in 0..8 {
            assert!(g.grab().is_none(), "counter wrapped after exhaustion");
        }
    }

    #[test]
    fn chunked_tail_at_u64_max_stays_in_range() {
        // Start the last chunk 5 iterations before the end of the
        // domain: len must clamp so Chunk::end == u64::MAX exactly.
        let g = FetchAddGrabber::new(u64::MAX, 7);
        g.counter.store(u64::MAX - 5, Ordering::Relaxed);
        let c = g.grab().unwrap();
        assert_eq!((c.start, c.len), (u64::MAX - 5, 5));
        assert_eq!(c.end(), u64::MAX);
        assert!(g.grab().is_none());
    }

    #[test]
    fn guided_near_u64_max_never_overflows() {
        // remaining/p with p=1 takes the whole domain in one chunk; the
        // CAS target is exactly n, never past it.
        let g = GuidedGrabber::new(u64::MAX, 1, 1);
        let c = g.grab().unwrap();
        assert_eq!((c.start, c.len), (0, u64::MAX));
        assert_eq!(c.end(), u64::MAX);
        assert!(g.grab().is_none());

        // With many workers the first chunks stay near remaining/p and
        // every end() is in range.
        let g = GuidedGrabber::new(u64::MAX, 1024, 1);
        let mut claimed = 0u64;
        for _ in 0..64 {
            let c = g.grab().unwrap();
            assert_eq!(c.start, claimed);
            assert!(
                c.start.checked_add(c.len).is_some(),
                "end() must not overflow"
            );
            claimed = c.end();
        }
    }

    #[test]
    fn make_grabber_single_thread_drain_matches_n() {
        for kind in [
            PolicyKind::SelfSched,
            PolicyKind::Chunked(16),
            PolicyKind::Guided,
            PolicyKind::Trapezoid,
            PolicyKind::Factoring,
        ] {
            let g = make_grabber(1234, 4, kind);
            let mut total = 0;
            while let Some(c) = g.grab() {
                total += c.len;
            }
            assert_eq!(total, 1234, "{kind:?}");
        }
    }
}
