//! Kernel programs written in the `lc-ir` DSL.
//!
//! Each kernel is a complete, runnable program: inputs are materialized by
//! deterministic fill loops so the interpreter (and the equivalence
//! checker) can execute it with no external data. The [`Kernel`] record
//! points at the loop nest the transformation targets and the band of
//! levels the paper would coalesce.

use lc_ir::parser::parse_program;
use lc_ir::program::Program;
use lc_ir::stmt::Stmt;

/// A named kernel: its program, which top-level statement is the target
/// nest, and which levels to coalesce.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Kernel name for tables.
    pub name: &'static str,
    /// The full program (fills + computation).
    pub program: Program,
    /// Index into `program.body` of the loop to transform.
    pub loop_index: usize,
    /// Level band `[start, end)` to coalesce (None = whole nest).
    pub band: Option<(usize, usize)>,
    /// Trip counts of the coalesced band (for scheduling experiments).
    pub dims: Vec<u64>,
}

impl Kernel {
    /// The target loop statement.
    pub fn target_loop(&self) -> &lc_ir::stmt::Loop {
        match &self.program.body[self.loop_index] {
            Stmt::Loop(l) => l,
            other => panic!("kernel target is not a loop: {other:?}"),
        }
    }
}

fn parse(name: &'static str, src: &str) -> Program {
    parse_program(src).unwrap_or_else(|e| panic!("kernel `{name}` failed to parse: {e}"))
}

/// `C = A × B` over integers. The (i, j) product nest is the coalescing
/// target; the k loop is a serial reduction into a privatizable scalar —
/// the exact shape of the thesis's matrix-multiplication example of loop
/// coalescing.
pub fn matmul(n: u64, m: u64, k: u64) -> Kernel {
    let src = format!(
        "
        array A[{n}][{k}];
        array B[{k}][{m}];
        array C[{n}][{m}];
        doall i = 1..{n} {{
            doall l = 1..{k} {{
                A[i][l] = (i * 7 + l * 3) % 11 - 5;
            }}
        }}
        doall l = 1..{k} {{
            doall j = 1..{m} {{
                B[l][j] = (l * 5 + j * 2) % 13 - 6;
            }}
        }}
        doall i = 1..{n} {{
            doall j = 1..{m} {{
                acc = 0;
                for l = 1..{k} {{
                    acc = acc + A[i][l] * B[l][j];
                }}
                C[i][j] = acc;
            }}
        }}
        "
    );
    Kernel {
        name: "matmul",
        program: parse("matmul", &src),
        loop_index: 2,
        band: Some((0, 2)),
        dims: vec![n, m],
    }
}

/// The Gauss–Jordan *back-substitution* nest (the thesis's second phase):
/// `X[i][j] = AB[i][j + n] / AB[i][i]` — a doubly parallel nest the
/// appendix explicitly coalesces. The elimination diagonal is seeded
/// non-zero so the integer division is well defined.
pub fn gauss_jordan_backsub(n: u64, m: u64) -> Kernel {
    let nm = n + m;
    let src = format!(
        "
        array AB[{n}][{nm}];
        array X[{n}][{m}];
        doall i = 1..{n} {{
            doall j = 1..{nm} {{
                if i == j {{
                    AB[i][j] = i + 1;
                }} else {{
                    AB[i][j] = (i * 3 + j * 5) % 17 - 8;
                }}
            }}
        }}
        doall i = 1..{n} {{
            doall j = 1..{m} {{
                X[i][j] = AB[i][j + {n}] / AB[i][i];
            }}
        }}
        "
    );
    Kernel {
        name: "gauss_jordan_backsub",
        program: parse("gauss_jordan_backsub", &src),
        loop_index: 1,
        band: Some((0, 2)),
        dims: vec![n, m],
    }
}

/// A 5-point-ish 2-D stencil reading a halo array: fully parallel,
/// memory-bound, subscripts offset by ±1.
pub fn stencil2d(n: u64, m: u64) -> Kernel {
    let n2 = n + 2;
    let m2 = m + 2;
    let src = format!(
        "
        array IN[{n2}][{m2}];
        array OUT[{n}][{m}];
        doall i = 1..{n2} {{
            doall j = 1..{m2} {{
                IN[i][j] = (i * i + j * 3) % 19 - 9;
            }}
        }}
        doall i = 1..{n} {{
            doall j = 1..{m} {{
                OUT[i][j] = (IN[i][j] + IN[i + 1][j] + IN[i + 2][j]
                    + IN[i + 1][j + 1] + IN[i + 1][j + 2]) / 5;
            }}
        }}
        "
    );
    Kernel {
        name: "stencil2d",
        program: parse("stencil2d", &src),
        loop_index: 1,
        band: Some((0, 2)),
        dims: vec![n, m],
    }
}

/// A triangular-mask nest: work only happens for `j ≤ i`. Rectangular
/// bounds with a guard (the coalescable formulation of a triangular
/// computation) — the load-imbalance workload of the figures.
pub fn triangular_mask(n: u64) -> Kernel {
    let src = format!(
        "
        array A[{n}][{n}];
        doall i = 1..{n} {{
            doall j = 1..{n} {{
                if j <= i {{
                    A[i][j] = i * j + i - j;
                }} else {{
                    A[i][j] = 0 - 1;
                }}
            }}
        }}
        "
    );
    Kernel {
        name: "triangular_mask",
        program: parse("triangular_mask", &src),
        loop_index: 0,
        band: Some((0, 2)),
        dims: vec![n, n],
    }
}

/// π-integration partial sums: `tasks` workers each integrate an
/// interleaved subset of `intervals` rectangle heights into a private
/// array slot (the thesis's calculate_pi, integerized with fixed-point
/// arithmetic). The outer doall is the coalescing target (trivially — one
/// level), and the final accumulation stays serial.
pub fn pi_partial_sums(tasks: u64, intervals: u64) -> Kernel {
    // Fixed-point: heights scaled by 10^6; x = (c - 0.5)/intervals.
    let src = format!(
        "
        array SUM[{tasks}];
        array PI[1];
        doall t = 1..{tasks} {{
            local = 0;
            c = t;
            for step = 1..{intervals} {{
                if c <= {intervals} {{
                    num = 4000000 * {intervals} * {intervals};
                    den = {intervals} * {intervals} + (2 * c - 1) * (2 * c - 1) / 4;
                    local = local + num / den / {intervals};
                    c = c + {tasks};
                }}
            }}
            SUM[t] = local;
        }}
        total = 0;
        for t = 1..{tasks} {{
            total = total + SUM[t];
        }}
        PI[1] = total;
        "
    );
    Kernel {
        name: "pi_partial_sums",
        program: parse("pi_partial_sums", &src),
        loop_index: 0,
        band: Some((0, 1)),
        dims: vec![tasks],
    }
}

/// A depth-3 uniform nest (the depth-scaling workload of Figure 4).
pub fn cube_fill(n1: u64, n2: u64, n3: u64) -> Kernel {
    let src = format!(
        "
        array V[{n1}][{n2}][{n3}];
        doall i = 1..{n1} {{
            doall j = 1..{n2} {{
                doall k = 1..{n3} {{
                    V[i][j][k] = i * 100 + j * 10 + k;
                }}
            }}
        }}
        "
    );
    Kernel {
        name: "cube_fill",
        program: parse("cube_fill", &src),
        loop_index: 0,
        band: Some((0, 3)),
        dims: vec![n1, n2, n3],
    }
}

/// All kernels at smoke-test sizes (used by integration tests).
pub fn all_small() -> Vec<Kernel> {
    vec![
        matmul(6, 5, 4),
        gauss_jordan_backsub(6, 4),
        stencil2d(6, 7),
        triangular_mask(8),
        pi_partial_sums(4, 32),
        cube_fill(3, 4, 5),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_ir::interp::Interp;

    #[test]
    fn all_kernels_parse_check_and_run() {
        for k in all_small() {
            let store = Interp::new()
                .run(&k.program)
                .unwrap_or_else(|e| panic!("kernel `{}` failed: {e}", k.name));
            // Make sure the run actually produced data.
            let any_nonzero = store
                .iter()
                .any(|(_, arr)| arr.data.iter().any(|&v| v != 0));
            assert!(any_nonzero, "kernel `{}` produced all zeros", k.name);
        }
    }

    #[test]
    fn matmul_spot_check() {
        let k = matmul(3, 3, 3);
        let store = Interp::new().run(&k.program).unwrap();
        // Recompute C[2][3] by hand from the fill formulas.
        let a = |i: i64, l: i64| (i * 7 + l * 3).rem_euclid(11) - 5;
        let b = |l: i64, j: i64| (l * 5 + j * 2).rem_euclid(13) - 6;
        let want: i64 = (1..=3).map(|l| a(2, l) * b(l, 3)).sum();
        assert_eq!(store.get("C", &[2, 3]).unwrap(), want);
    }

    #[test]
    fn gauss_jordan_diagonal_is_nonzero() {
        let k = gauss_jordan_backsub(5, 3);
        let store = Interp::new().run(&k.program).unwrap();
        for i in 1..=5 {
            assert_eq!(store.get("AB", &[i, i]).unwrap(), i + 1);
        }
    }

    #[test]
    fn triangular_mask_shape() {
        let k = triangular_mask(5);
        let store = Interp::new().run(&k.program).unwrap();
        assert_eq!(store.get("A", &[3, 5]).unwrap(), -1); // outside
        assert_eq!(store.get("A", &[5, 3]).unwrap(), 17); // 15 + 5 - 3
    }

    #[test]
    fn pi_partial_sums_approximates_pi() {
        let k = pi_partial_sums(4, 256);
        let store = Interp::new().run(&k.program).unwrap();
        let fixed = store.get("PI", &[1]).unwrap();
        let pi = fixed as f64 / 1_000_000.0;
        assert!(
            (pi - std::f64::consts::PI).abs() < 0.05,
            "pi approx {pi} too far off"
        );
    }

    #[test]
    fn kernel_target_loop_accessor() {
        let k = cube_fill(2, 2, 2);
        assert_eq!(k.target_loop().var.as_str(), "i");
        assert_eq!(k.dims, vec![2, 2, 2]);
    }
}
