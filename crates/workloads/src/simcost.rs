//! IR-derived per-iteration costs: measure what one iteration of a real
//! kernel actually executes (via the interpreter's op accounting) and
//! feed that to the machine simulator.
//!
//! This closes the loop between the compiler stack and the machine model:
//! instead of synthetic `WorkModel`s, an experiment can simulate the
//! scheduling of *the matmul kernel itself*, with per-iteration costs that
//! include its data-dependent control flow.

use lc_ir::interp::{Interp, Store};
use lc_ir::program::Program;
use lc_ir::stmt::Stmt;
use lc_ir::symbol::Symbol;
use lc_ir::{Error, Expr, Result};

use crate::kernels::Kernel;

/// Per-iteration op-cost oracle for a kernel's target nest.
///
/// Construction runs the kernel's *setup* statements (everything before
/// the target loop — typically input fills) once; [`IrBodyCost::cost`]
/// then executes a single iteration of the nest body against a copy of
/// that store and returns the weighted operations it performed.
pub struct IrBodyCost {
    arrays: Program,
    prepared: Store,
    band_vars: Vec<Symbol>,
    /// The statements one coalesced iteration executes: the uncoalesced
    /// inner levels wrapped around the nest body.
    inner: Vec<Stmt>,
}

impl IrBodyCost {
    /// Build the oracle for `kernel`'s declared band (which must start at
    /// level 0 — true for every built-in kernel).
    pub fn new(kernel: &Kernel) -> Result<IrBodyCost> {
        let (start, end) = kernel.band.unwrap_or((0, usize::MAX));
        if start != 0 {
            return Err(Error::unsupported(
                "IrBodyCost requires the band to start at the outermost level",
            ));
        }
        let nest = lc_ir::analysis::nest::extract_nest(kernel.target_loop());
        let end = end.min(nest.depth());

        // Run the setup (fills) once.
        let mut setup = kernel.program.clone();
        setup.body = kernel.program.body[..kernel.loop_index].to_vec();
        let store = Store::for_program(&setup);
        let (prepared, _) = Interp::new().run_on(&setup, store)?;

        // One iteration's statements: inner levels + body.
        let mut inner = nest.body.clone();
        for h in nest.loops[end..].iter().rev() {
            inner = vec![Stmt::Loop(lc_ir::stmt::Loop {
                var: h.var.clone(),
                lower: h.lower.clone(),
                upper: h.upper.clone(),
                step: h.step.clone(),
                kind: h.kind,
                body: inner,
            })];
        }

        let mut arrays = Program::new();
        arrays.arrays = kernel.program.arrays.clone();
        Ok(IrBodyCost {
            arrays,
            prepared,
            band_vars: nest.loops[..end].iter().map(|h| h.var.clone()).collect(),
            inner,
        })
    }

    /// Weighted ops executed by the iteration at 1-based band indices `iv`.
    pub fn cost(&self, iv: &[i64]) -> u64 {
        assert_eq!(iv.len(), self.band_vars.len(), "index arity mismatch");
        let mut prog = self.arrays.clone();
        for (v, &val) in self.band_vars.iter().zip(iv) {
            prog.body.push(Stmt::AssignScalar {
                var: v.clone(),
                value: Expr::lit(val),
            });
        }
        prog.body.extend(self.inner.clone());
        let (_, stats) = Interp::new()
            .run_on(&prog, self.prepared.clone())
            .expect("kernel iteration must execute");
        // Exclude the band-index assignments themselves (1 op each) —
        // they model index recovery, which the simulator costs separately.
        stats.ops - self.band_vars.len() as u64
    }

    /// Sum of all iteration costs over the band (the sequential body work).
    pub fn total(&self, dims: &[u64]) -> u64 {
        let n: u64 = dims.iter().product();
        let mut odo = lc_space::Odometer::new(dims);
        let mut sum = 0;
        for _ in 0..n {
            sum += self.cost(odo.indices());
            odo.advance();
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    #[test]
    fn matmul_iteration_cost_scales_with_k() {
        let small = IrBodyCost::new(&kernels::matmul(4, 4, 2)).unwrap();
        let large = IrBodyCost::new(&kernels::matmul(4, 4, 8)).unwrap();
        let c_small = small.cost(&[1, 1]);
        let c_large = large.cost(&[1, 1]);
        assert!(
            c_large > 3 * c_small,
            "k=8 iteration ({c_large}) should cost ~4x k=2 ({c_small})"
        );
    }

    #[test]
    fn matmul_cost_is_uniform_across_cells() {
        let oracle = IrBodyCost::new(&kernels::matmul(5, 4, 3)).unwrap();
        let a = oracle.cost(&[1, 1]);
        let b = oracle.cost(&[5, 4]);
        assert_eq!(a, b, "matmul iterations are uniform");
    }

    #[test]
    fn triangular_kernel_cost_is_skewed() {
        // Inside the triangle the body computes i*j+i-j; outside it stores
        // a constant — costs must differ.
        let oracle = IrBodyCost::new(&kernels::triangular_mask(8)).unwrap();
        let inside = oracle.cost(&[8, 1]);
        let outside = oracle.cost(&[1, 8]);
        assert!(
            inside > outside,
            "triangle cell ({inside}) should out-cost masked cell ({outside})"
        );
    }

    #[test]
    fn totals_match_full_program_ops_for_fill_kernel() {
        // cube_fill has no setup; total over the band must equal the whole
        // program's op count minus loop-index bookkeeping (which `cost`
        // excludes by construction but the full run never counts anyway —
        // indices are loop vars there, not assignments).
        let k = kernels::cube_fill(3, 3, 2);
        let oracle = IrBodyCost::new(&k).unwrap();
        let total = oracle.total(&k.dims);
        let store = Store::for_program(&k.program);
        let (_, stats) = Interp::new().run_on(&k.program, store).unwrap();
        assert_eq!(total, stats.ops);
    }

    #[test]
    fn gauss_jordan_uses_prepared_inputs() {
        // The back-substitution reads AB, which only exists after setup;
        // cost() must run against the prepared store without error.
        let oracle = IrBodyCost::new(&kernels::gauss_jordan_backsub(6, 4)).unwrap();
        assert!(oracle.cost(&[3, 2]) > 0);
    }
}
