//! Per-iteration cost models for the machine simulator.
//!
//! The scheduling experiments sweep both *uniform* bodies (where static
//! schedules shine) and *skewed* bodies (where dynamic policies and the
//! extra balance exposed by coalescing pay off). All models are pure
//! functions of the index vector — deterministic and platform independent.

/// A deterministic per-iteration cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkModel {
    /// Every iteration costs the same.
    Constant(u64),
    /// Cost grows linearly with the outermost index:
    /// `base + slope · (i1 − 1)`.
    LinearOuter {
        /// Cost of the first outer iteration.
        base: u64,
        /// Increment per outer index step.
        slope: u64,
    },
    /// Triangular mask: iterations with `i2 ≤ i1` are heavy, the rest
    /// light — the shape of triangular solvers and of the thesis-era
    /// Gauss–Jordan inner loops. Falls back to `heavy` for depth-1 nests.
    TriangularMask {
        /// Cost inside the triangle.
        heavy: u64,
        /// Cost outside the triangle.
        light: u64,
    },
    /// Seeded pseudo-random cost per iteration:
    /// `base + hash(iv, seed) % spread`.
    Random {
        /// Minimum cost.
        base: u64,
        /// Cost spread (exclusive upper offset).
        spread: u64,
        /// Hash seed, so experiments can draw independent workloads.
        seed: u64,
    },
    /// Every `heavy_every`-th iteration (by linearized position of the
    /// outer index) is heavy, the rest light.
    Bimodal {
        /// Common case cost.
        light: u64,
        /// Spike cost.
        heavy: u64,
        /// Spike period (≥ 1).
        heavy_every: u64,
    },
}

impl WorkModel {
    /// Cost of the iteration at 1-based index vector `iv`.
    pub fn cost(&self, iv: &[i64]) -> u64 {
        match *self {
            WorkModel::Constant(c) => c,
            WorkModel::LinearOuter { base, slope } => {
                let i1 = iv.first().copied().unwrap_or(1).max(1) as u64;
                base + slope * (i1 - 1)
            }
            WorkModel::TriangularMask { heavy, light } => {
                if iv.len() < 2 || iv[1] <= iv[0] {
                    heavy
                } else {
                    light
                }
            }
            WorkModel::Random { base, spread, seed } => {
                if spread == 0 {
                    return base;
                }
                base + hash_iv(iv, seed) % spread
            }
            WorkModel::Bimodal {
                light,
                heavy,
                heavy_every,
            } => {
                let i1 = iv.first().copied().unwrap_or(1).max(1) as u64;
                if i1.is_multiple_of(heavy_every.max(1)) {
                    heavy
                } else {
                    light
                }
            }
        }
    }

    /// Display name for experiment tables.
    pub fn name(&self) -> String {
        match self {
            WorkModel::Constant(c) => format!("const({c})"),
            WorkModel::LinearOuter { base, slope } => format!("linear({base}+{slope}·i)"),
            WorkModel::TriangularMask { heavy, light } => format!("tri({heavy}/{light})"),
            WorkModel::Random { base, spread, .. } => format!("rand({base}..{})", base + spread),
            WorkModel::Bimodal {
                light,
                heavy,
                heavy_every,
            } => format!("bimodal({light}/{heavy}@{heavy_every})"),
        }
    }

    /// Total cost over a whole rectangular space — the sequential body
    /// work, used as the speedup baseline.
    pub fn total(&self, dims: &[u64]) -> u64 {
        let mut sum = 0;
        let n: u64 = dims.iter().product();
        let mut odo = lc_space::Odometer::new(dims);
        for _ in 0..n {
            sum += self.cost(odo.indices());
            odo.advance();
        }
        sum
    }
}

/// FNV-1a over the index words mixed with the seed; cheap, deterministic,
/// and good enough to decorrelate iteration costs.
fn hash_iv(iv: &[i64], seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for &x in iv {
        h ^= x as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    // Final avalanche.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^ (h >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let m = WorkModel::Constant(7);
        assert_eq!(m.cost(&[1, 1]), 7);
        assert_eq!(m.cost(&[9, 3]), 7);
        assert_eq!(m.total(&[4, 5]), 140);
    }

    #[test]
    fn linear_grows_with_outer_index_only() {
        let m = WorkModel::LinearOuter { base: 10, slope: 3 };
        assert_eq!(m.cost(&[1, 5]), 10);
        assert_eq!(m.cost(&[4, 1]), 19);
        assert_eq!(m.cost(&[4, 9]), 19);
    }

    #[test]
    fn triangular_mask_splits_on_diagonal() {
        let m = WorkModel::TriangularMask {
            heavy: 100,
            light: 1,
        };
        assert_eq!(m.cost(&[5, 5]), 100);
        assert_eq!(m.cost(&[5, 6]), 1);
        assert_eq!(m.cost(&[6, 5]), 100);
        // Depth-1 vectors default to heavy.
        assert_eq!(m.cost(&[3]), 100);
    }

    #[test]
    fn triangular_total_counts_triangle() {
        let m = WorkModel::TriangularMask {
            heavy: 10,
            light: 0,
        };
        // 4x4: triangle (j <= i) has 10 cells.
        assert_eq!(m.total(&[4, 4]), 100);
    }

    #[test]
    fn random_is_deterministic_and_seed_dependent() {
        let a = WorkModel::Random {
            base: 5,
            spread: 100,
            seed: 1,
        };
        let b = WorkModel::Random {
            base: 5,
            spread: 100,
            seed: 2,
        };
        assert_eq!(a.cost(&[3, 4]), a.cost(&[3, 4]));
        let differs = (1..20).any(|i| a.cost(&[i, 1]) != b.cost(&[i, 1]));
        assert!(differs, "seeds must decorrelate");
        for i in 1..50 {
            let c = a.cost(&[i, i]);
            assert!((5..105).contains(&c));
        }
    }

    #[test]
    fn random_with_zero_spread_is_base() {
        let m = WorkModel::Random {
            base: 9,
            spread: 0,
            seed: 3,
        };
        assert_eq!(m.cost(&[1]), 9);
    }

    #[test]
    fn bimodal_spikes_periodically() {
        let m = WorkModel::Bimodal {
            light: 1,
            heavy: 50,
            heavy_every: 4,
        };
        assert_eq!(m.cost(&[4, 1]), 50);
        assert_eq!(m.cost(&[8, 9]), 50);
        assert_eq!(m.cost(&[5, 1]), 1);
    }

    #[test]
    fn totals_match_manual_sums() {
        let m = WorkModel::LinearOuter { base: 1, slope: 1 };
        // dims [3, 2]: costs per outer index 1,2,3 each twice = 12.
        assert_eq!(m.total(&[3, 2]), 12);
    }

    #[test]
    fn names_are_descriptive() {
        assert!(WorkModel::Constant(5).name().contains('5'));
        assert!(WorkModel::TriangularMask { heavy: 2, light: 1 }
            .name()
            .starts_with("tri"));
    }
}
