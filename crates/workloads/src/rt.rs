//! Plain-Rust kernel bodies for the real-thread runtime benchmarks.
//!
//! Outputs are atomic arrays (each cell is written by exactly one
//! iteration, so `Relaxed` stores suffice); this keeps the whole workspace
//! free of `unsafe` while still writing shared memory from many workers.

use std::sync::atomic::{AtomicI64, Ordering};

/// An `n × m` integer matrix with atomic cells.
pub struct AtomicMatrix {
    /// Rows.
    pub n: usize,
    /// Columns.
    pub m: usize,
    data: Vec<AtomicI64>,
}

impl AtomicMatrix {
    /// Zero-filled matrix.
    pub fn zeroed(n: usize, m: usize) -> Self {
        AtomicMatrix {
            n,
            m,
            data: (0..n * m).map(|_| AtomicI64::new(0)).collect(),
        }
    }

    /// Store into `(i, j)` (0-based).
    pub fn store(&self, i: usize, j: usize, v: i64) {
        self.data[i * self.m + j].store(v, Ordering::Relaxed);
    }

    /// Load from `(i, j)` (0-based).
    pub fn load(&self, i: usize, j: usize) -> i64 {
        self.data[i * self.m + j].load(Ordering::Relaxed)
    }

    /// Copy out as a plain vector (row-major).
    pub fn snapshot(&self) -> Vec<i64> {
        self.data
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

/// Deterministic input matrix A for the runtime matmul (row-major).
pub fn gen_a(n: usize, k: usize) -> Vec<i64> {
    (0..n * k).map(|x| ((x * 7 + 3) % 11) as i64 - 5).collect()
}

/// Deterministic input matrix B for the runtime matmul (row-major).
pub fn gen_b(k: usize, m: usize) -> Vec<i64> {
    (0..k * m).map(|x| ((x * 5 + 1) % 13) as i64 - 6).collect()
}

/// Serial reference matmul.
pub fn matmul_serial(a: &[i64], b: &[i64], n: usize, m: usize, k: usize) -> Vec<i64> {
    let mut c = vec![0i64; n * m];
    for i in 0..n {
        for j in 0..m {
            let mut acc = 0;
            for l in 0..k {
                acc += a[i * k + l] * b[l * m + j];
            }
            c[i * m + j] = acc;
        }
    }
    c
}

/// The matmul body for one `(i, j)` cell (1-based indices as delivered by
/// the runtime's nest executors).
pub fn matmul_cell(a: &[i64], b: &[i64], c: &AtomicMatrix, k: usize, iv: &[i64]) {
    let (i, j) = (iv[0] as usize - 1, iv[1] as usize - 1);
    let m = c.m;
    let mut acc = 0i64;
    for l in 0..k {
        acc += a[i * k + l] * b[l * m + j];
    }
    c.store(i, j, acc);
}

/// A deliberately imbalanced body: cells below the diagonal spin
/// proportionally to their row index. Returns a value derived from the
/// spin so the work cannot be optimized away.
pub fn imbalanced_cell(weight: u64, iv: &[i64]) -> i64 {
    let (i, j) = (iv[0], iv.get(1).copied().unwrap_or(1));
    let spins = if j <= i { weight * i as u64 } else { 1 };
    let mut acc = i ^ j;
    for s in 0..spins {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(s as i64);
    }
    std::hint::black_box(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_matmul_identity() {
        // A × I = A for a 3×3 identity.
        let a = vec![1, 2, 3, 4, 5, 6, 7, 8, 9];
        let eye = vec![1, 0, 0, 0, 1, 0, 0, 0, 1];
        assert_eq!(matmul_serial(&a, &eye, 3, 3, 3), a);
    }

    #[test]
    fn atomic_matrix_roundtrip() {
        let m = AtomicMatrix::zeroed(2, 3);
        m.store(1, 2, 42);
        assert_eq!(m.load(1, 2), 42);
        assert_eq!(m.snapshot(), vec![0, 0, 0, 0, 0, 42]);
    }

    #[test]
    fn matmul_cell_matches_serial() {
        let (n, m, k) = (4, 5, 3);
        let a = gen_a(n, k);
        let b = gen_b(k, m);
        let want = matmul_serial(&a, &b, n, m, k);
        let c = AtomicMatrix::zeroed(n, m);
        for i in 1..=n as i64 {
            for j in 1..=m as i64 {
                matmul_cell(&a, &b, &c, k, &[i, j]);
            }
        }
        assert_eq!(c.snapshot(), want);
    }

    #[test]
    fn imbalanced_cell_is_deterministic() {
        assert_eq!(imbalanced_cell(10, &[3, 2]), imbalanced_cell(10, &[3, 2]));
    }

    #[test]
    fn generators_are_bounded() {
        assert!(gen_a(8, 8).iter().all(|v| (-5..=5).contains(v)));
        assert!(gen_b(8, 8).iter().all(|v| (-6..=6).contains(v)));
    }
}
