//! `lc-workloads` — benchmark kernels and iteration-time models.
//!
//! Two kinds of workload feed the experiments:
//!
//! * [`kernels`] — small IR programs (written in the `lc-ir` DSL) whose
//!   loop nests are the transformation targets: matrix multiplication,
//!   the Gauss–Jordan back-substitution nest, a 2-D stencil, a triangular
//!   masked nest, and a π-integration partial-sum loop. Each kernel knows
//!   which statement holds the nest and which band of levels to coalesce.
//! * [`itertime`] — per-iteration *cost* models for the machine simulator
//!   (constant, linear-in-outer-index, triangular mask, seeded random,
//!   bimodal), reproducing the uniform and skewed workloads the
//!   scheduling figures sweep.
//! * [`rt`] — plain-Rust closures of the same kernels for the real-thread
//!   runtime benchmarks.
//! * [`simcost`] — IR-derived per-iteration costs: run one kernel
//!   iteration under the interpreter's op accounting and hand the result
//!   to the machine simulator (real kernels, not synthetic cost models).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod itertime;
pub mod kernels;
pub mod rt;
pub mod simcost;

pub use itertime::WorkModel;
pub use kernels::Kernel;
pub use simcost::IrBodyCost;
