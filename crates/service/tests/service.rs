//! End-to-end tests over a real loopback socket: every server behavior
//! the issue's acceptance criteria name — cold-compile parity with the
//! facade, cache hits observable in `/metrics`, 429 load shedding,
//! deadline expiry, graceful drain — plus the load generator run
//! in-process.

use std::time::Duration;

use lc_driver::json::Json;
use lc_driver::DriverOptions;
use lc_service::client;
use lc_service::corpus::corpus72;
use lc_service::loadgen::{run as loadgen_run, LoadTarget, LoadgenConfig};
use lc_service::metrics::scrape_counter;
use lc_service::{Server, ServiceConfig};
use lc_xform::coalesce::CoalesceOptions;

const TIMEOUT: Duration = Duration::from_secs(30);

const PROGRAM: &str = "array A[6][4];
doall i = 1..6 {
    doall j = 1..4 {
        A[i][j] = i * j;
    }
}";

/// A server in the facade-compatible configuration (what
/// `loop_coalescing::coalesce_source` runs).
fn facade_server(config: impl FnOnce(&mut ServiceConfig)) -> Server {
    let mut cfg = ServiceConfig {
        driver: DriverOptions::facade_compat(CoalesceOptions::default()),
        workers: 2,
        ..ServiceConfig::default()
    };
    config(&mut cfg);
    Server::start(cfg, "127.0.0.1:0").expect("bind loopback")
}

fn metrics_text(server: &Server) -> String {
    client::get(server.addr(), "/metrics", TIMEOUT)
        .expect("GET /metrics")
        .body_text()
}

#[test]
fn cold_compile_matches_the_facade_byte_for_byte() {
    let server = facade_server(|_| {});
    let resp = client::post(server.addr(), "/compile", PROGRAM.as_bytes(), TIMEOUT).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body_text());
    assert_eq!(resp.header("x-cache"), Some("miss"));

    let body = Json::parse(&resp.body_text()).expect("response is valid JSON");
    assert_eq!(body.get("ok"), Some(&Json::Bool(true)));
    let served = body.str_field("source").unwrap();

    let facade = loop_coalescing::coalesce_source(PROGRAM).unwrap();
    assert_eq!(
        served, facade.transformed_source,
        "served source must be byte-identical to coalesce_source"
    );
    assert!(body.get("trace").is_some(), "trace must ride along");
    server.shutdown();
}

#[test]
fn repeat_requests_hit_the_cache_and_bodies_are_identical() {
    let server = facade_server(|_| {});
    let cold = client::post(server.addr(), "/compile", PROGRAM.as_bytes(), TIMEOUT).unwrap();
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("x-cache"), Some("miss"));

    let warm = client::post(server.addr(), "/compile", PROGRAM.as_bytes(), TIMEOUT).unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-cache"), Some("hit"));
    assert_eq!(cold.body, warm.body, "hit must be byte-identical to miss");

    let text = metrics_text(&server);
    assert_eq!(scrape_counter(&text, "lc_cache_hits_total"), Some(1));
    assert_eq!(scrape_counter(&text, "lc_cache_misses_total"), Some(1));
    assert_eq!(scrape_counter(&text, "lc_cache_insertions_total"), Some(1));
    assert_eq!(scrape_counter(&text, "lc_cache_entries"), Some(1));
    // Only the miss consumed a worker.
    assert_eq!(scrape_counter(&text, "lc_jobs_enqueued_total"), Some(1));
    assert_eq!(scrape_counter(&text, "lc_jobs_completed_total"), Some(1));
    server.shutdown();
}

#[test]
fn distinct_sources_are_distinct_cache_keys() {
    let server = facade_server(|_| {});
    let other = PROGRAM.replace("i * j", "i + j");
    let a = client::post(server.addr(), "/compile", PROGRAM.as_bytes(), TIMEOUT).unwrap();
    let b = client::post(server.addr(), "/compile", other.as_bytes(), TIMEOUT).unwrap();
    assert_eq!(a.header("x-cache"), Some("miss"));
    assert_eq!(b.header("x-cache"), Some("miss"));
    assert_ne!(a.body, b.body);
    server.shutdown();
}

#[test]
fn full_queue_sheds_load_with_429() {
    // One slow worker, one queue slot: the first request occupies the
    // worker, the second fills the queue, the third must be shed.
    let server = facade_server(|cfg| {
        cfg.workers = 1;
        cfg.queue_capacity = 1;
        cfg.synthetic_delay = Some(Duration::from_millis(400));
    });
    let addr = server.addr();
    let sources: Vec<String> = (0..6)
        .map(|k| PROGRAM.replace("i * j", &format!("i * j + {k}")))
        .collect();
    let statuses: Vec<u16> = std::thread::scope(|scope| {
        let handles: Vec<_> = sources
            .iter()
            .map(|src| {
                scope.spawn(move || {
                    client::post(addr, "/compile", src.as_bytes(), TIMEOUT)
                        .map(|r| r.status)
                        .unwrap_or(0)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let shed = statuses.iter().filter(|&&s| s == 429).count();
    let ok = statuses.iter().filter(|&&s| s == 200).count();
    assert!(
        shed >= 1,
        "6 concurrent requests against 1 worker + 1 slot must shed, got {statuses:?}"
    );
    assert!(
        ok >= 1,
        "some requests must still succeed, got {statuses:?}"
    );

    let text = metrics_text(&server);
    assert_eq!(
        scrape_counter(&text, "lc_jobs_rejected_total"),
        Some(shed as u64)
    );
    server.shutdown();
}

#[test]
fn queued_past_deadline_is_answered_503_without_compiling() {
    let server = facade_server(|cfg| {
        cfg.workers = 1;
        cfg.queue_capacity = 8;
        cfg.synthetic_delay = Some(Duration::from_millis(300));
    });
    let addr = server.addr();
    // Occupy the single worker...
    let warm = std::thread::spawn(move || {
        client::post(addr, "/compile", PROGRAM.as_bytes(), TIMEOUT).map(|r| r.status)
    });
    std::thread::sleep(Duration::from_millis(50));
    // ...then submit a job that can only be reached after ~300ms but
    // allows 1ms: by the time the worker pops it, it has expired.
    let late = client::request(
        addr,
        "POST",
        "/compile",
        &[("x-deadline-ms", "1")],
        PROGRAM.replace("i * j", "i - j").as_bytes(),
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(late.status, 503, "body: {}", late.body_text());
    assert_eq!(warm.join().unwrap().unwrap(), 200);

    let text = metrics_text(&server);
    assert_eq!(scrape_counter(&text, "lc_jobs_expired_total"), Some(1));
    server.shutdown();
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let server = facade_server(|cfg| {
        cfg.workers = 1;
        cfg.queue_capacity = 8;
        cfg.synthetic_delay = Some(Duration::from_millis(300));
    });
    let addr = server.addr();
    // A slow request that will still be queued/compiling when the drain
    // begins...
    let in_flight = std::thread::spawn(move || {
        client::post(addr, "/compile", PROGRAM.as_bytes(), TIMEOUT).map(|r| r.status)
    });
    std::thread::sleep(Duration::from_millis(50));
    // ...drain...
    let bye = client::post(addr, "/shutdown", b"", TIMEOUT).unwrap();
    assert_eq!(bye.status, 200);
    // ...the in-flight request still completes with its real answer.
    assert_eq!(in_flight.join().unwrap().unwrap(), 200);
    // New work is refused (connect may also fail once the acceptor is
    // gone; both count as refusal).
    if let Ok(resp) = client::post(addr, "/compile", PROGRAM.as_bytes(), TIMEOUT) {
        assert_eq!(resp.status, 503, "draining server must refuse new work");
    }
    server.join();
}

#[test]
fn batch_reports_per_item_results_and_wall_times() {
    let server = facade_server(|_| {});
    let good = PROGRAM.replace('\n', " ");
    let bad = "this is not a program";
    let body = Json::obj(vec![(
        "sources",
        Json::Arr(vec![
            Json::Str(good.clone()),
            Json::Str(bad.to_string()),
            Json::Str(good),
        ]),
    )])
    .to_string();
    let resp = client::post(server.addr(), "/batch", body.as_bytes(), TIMEOUT).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body_text());
    let v = Json::parse(&resp.body_text()).unwrap();
    assert_eq!(v.int_field("succeeded").unwrap(), 2);
    assert_eq!(v.int_field("failed").unwrap(), 1);
    let items = v.get("items").and_then(Json::as_arr).unwrap();
    assert_eq!(items.len(), 3);
    assert_eq!(items[0].get("ok"), Some(&Json::Bool(true)));
    assert_eq!(items[1].get("ok"), Some(&Json::Bool(false)));
    assert!(items[1].str_field("error").is_ok());
    for item in items {
        assert!(
            item.int_field("nanos").unwrap() >= 1,
            "every item reports its wall time"
        );
    }
    server.shutdown();
}

#[test]
fn malformed_requests_get_typed_statuses() {
    let server = facade_server(|cfg| {
        cfg.max_body_bytes = 512;
    });
    let addr = server.addr();

    let health = client::get(addr, "/healthz", TIMEOUT).unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(
        Json::parse(&health.body_text()).unwrap().get("ok"),
        Some(&Json::Bool(true))
    );

    assert_eq!(client::get(addr, "/nope", TIMEOUT).unwrap().status, 404);
    assert_eq!(client::get(addr, "/compile", TIMEOUT).unwrap().status, 405);
    assert_eq!(
        client::post(addr, "/metrics", b"", TIMEOUT).unwrap().status,
        405
    );

    // Not-a-program source: a typed 422, not a hung worker.
    let resp = client::post(addr, "/compile", b"zzz not a program", TIMEOUT).unwrap();
    assert_eq!(resp.status, 422);
    assert!(Json::parse(&resp.body_text())
        .unwrap()
        .str_field("error")
        .is_ok());

    // Empty body.
    assert_eq!(
        client::post(addr, "/compile", b"", TIMEOUT).unwrap().status,
        422
    );

    // Bad deadline header.
    let resp = client::request(
        addr,
        "POST",
        "/compile",
        &[("x-deadline-ms", "soon")],
        PROGRAM.as_bytes(),
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(resp.status, 400);

    // Oversized body → 413 before compiling anything.
    let big = vec![b'x'; 4096];
    let resp = client::post(addr, "/compile", &big, TIMEOUT).unwrap();
    assert_eq!(resp.status, 413);

    // Bad batch bodies.
    assert_eq!(
        client::post(addr, "/batch", b"not json", TIMEOUT)
            .unwrap()
            .status,
        400
    );
    assert_eq!(
        client::post(addr, "/batch", b"{\"sources\":[]}", TIMEOUT)
            .unwrap()
            .status,
        422
    );
    server.shutdown();
}

#[test]
fn analyze_reports_lint_findings_without_compiling() {
    // Default config: all lints at `warn`, so findings are reported but
    // nothing is denied.
    let server = Server::start(ServiceConfig::default(), "127.0.0.1:0").expect("bind loopback");
    let addr = server.addr();
    let racy = "array A[8];\ndoall i = 2..8 {\n    A[i] = A[i - 1];\n}\n";

    let resp = client::post(addr, "/analyze", racy.as_bytes(), TIMEOUT).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body_text());
    let v = Json::parse(&resp.body_text()).unwrap();
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(v.int_field("denied").unwrap(), 0);
    let findings = v.get("findings").and_then(Json::as_arr).unwrap();
    let race = findings
        .iter()
        .find(|f| f.str_field("code") == Ok("LC001"))
        .expect("racy doall must trigger LC001");
    assert_eq!(race.str_field("severity"), Ok("warn"));
    assert!(
        race.str_field("message").unwrap().contains("dependence"),
        "finding carries a human-readable explanation"
    );

    // A clean program comes back with an empty findings array.
    let clean = client::post(addr, "/analyze", PROGRAM.as_bytes(), TIMEOUT).unwrap();
    assert_eq!(clean.status, 200);
    let v = Json::parse(&clean.body_text()).unwrap();
    assert_eq!(v.get("findings"), Some(&Json::Arr(Vec::new())));

    // Typed errors: garbage and empty bodies are 422, GET is 405.
    assert_eq!(
        client::post(addr, "/analyze", b"zzz not a program", TIMEOUT)
            .unwrap()
            .status,
        422
    );
    assert_eq!(
        client::post(addr, "/analyze", b"", TIMEOUT).unwrap().status,
        422
    );
    assert_eq!(client::get(addr, "/analyze", TIMEOUT).unwrap().status, 405);

    let text = metrics_text(&server);
    assert_eq!(scrape_counter(&text, "lc_analyze_requests_total"), Some(4));
    assert!(scrape_counter(&text, "lc_lint_findings_total").unwrap() >= 1);
    assert_eq!(scrape_counter(&text, "lc_lint_denied_total"), Some(0));
    server.shutdown();
}

#[test]
fn compile_envelope_carries_warned_lints_without_blocking() {
    // Default config again: the analyze stage runs in the pipeline and
    // warned findings ride along in the `/compile` envelope.
    let server = Server::start(ServiceConfig::default(), "127.0.0.1:0").expect("bind loopback");
    let racy = "array A[8];\ndoall i = 2..8 {\n    A[i] = A[i - 1];\n}\n";
    let resp = client::post(server.addr(), "/compile", racy.as_bytes(), TIMEOUT).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body_text());
    let v = Json::parse(&resp.body_text()).unwrap();
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    let lints = v.get("lints").and_then(Json::as_arr).unwrap();
    assert!(
        lints.iter().any(|f| f.str_field("code") == Ok("LC001")),
        "warned LC001 must appear in the compile envelope"
    );
    // The coalescer still skips the nest for its own legality reason
    // (carried dependence) — but a warn-level lint must never be the
    // thing that vetoed it.
    let skipped = v.get("skipped").and_then(Json::as_arr).unwrap();
    assert!(
        skipped
            .iter()
            .all(|s| s.get("reason").unwrap().str_field("kind") != Ok("lint-denied")),
        "a warn-level finding must not veto the nest: {skipped:?}"
    );
    server.shutdown();
}

#[test]
fn loadgen_runs_the_corpus_and_reports_quantiles() {
    let server = facade_server(|cfg| {
        cfg.workers = 4;
        cfg.cache_capacity = 128;
    });
    let corpus = corpus72();
    let report = loadgen_run(
        server.addr(),
        &corpus,
        &LoadgenConfig {
            concurrency: 4,
            rounds: 2,
            timeout: TIMEOUT,
            target: LoadTarget::Compile,
        },
    );
    assert_eq!(report.requests, 144);
    assert_eq!(report.ok_200, 144, "default queue must absorb this load");
    // Round two is served from the cache. In principle a round-1/round-2
    // request pair for the same program can race (both miss), so allow
    // slack below the ideal 72 — but the bulk must be hits.
    assert!(
        report.cache_hits_observed >= 36,
        "expected most of round two to hit the cache, got {} hits",
        report.cache_hits_observed
    );
    assert!(report.throughput_milli_rps > 0);
    assert!(report.p50_micros > 0);
    assert!(report.p50_micros <= report.p95_micros);
    assert!(report.p95_micros <= report.p99_micros);
    assert!(report.p99_micros <= report.max_micros);

    // The report is the BENCH_service.json payload: valid JSON with the
    // contract fields.
    let v = report.to_json();
    let parsed = Json::parse(&v.to_string()).unwrap();
    for field in [
        "throughput_milli_rps",
        "p50_micros",
        "p95_micros",
        "p99_micros",
    ] {
        assert!(parsed.get(field).is_some(), "missing {field}");
    }

    // Server-side counters line up with what the clients saw.
    let text = metrics_text(&server);
    let hits = scrape_counter(&text, "lc_cache_hits_total").unwrap();
    assert_eq!(hits, report.cache_hits_observed);
    assert_eq!(
        scrape_counter(&text, "lc_compile_requests_total"),
        Some(144)
    );
    server.shutdown();
}

/// Zero every `nanos` / `total_nanos` field so envelopes from different
/// runs are comparable; everything else must stay byte-identical.
fn normalize_envelope(v: &mut Json) {
    match v {
        Json::Arr(items) => items.iter_mut().for_each(normalize_envelope),
        Json::Obj(pairs) => {
            for (key, val) in pairs.iter_mut() {
                if key == "nanos" || key == "total_nanos" {
                    *val = Json::Int(0);
                } else {
                    normalize_envelope(val);
                }
            }
        }
        _ => {}
    }
}

/// Regression pin for the transformation-layer refactor: the `/compile`
/// envelope (coalesced source, skip diagnostics, and the full trace —
/// timings normalized) must remain byte-identical to the pre-refactor
/// facade output for the whole 72-program corpus. Regenerate the golden
/// fixture with `UPDATE_FIXTURE=1 cargo test -p lc-service` only when
/// an intentional output change is being made.
#[test]
fn compile_envelopes_match_the_pre_refactor_fixture() {
    const FIXTURE: &str = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/envelope72.jsonl"
    );
    let server = facade_server(|cfg| cfg.workers = 4);
    let mut lines = Vec::new();
    for (k, src) in corpus72().iter().enumerate() {
        let resp = client::post(server.addr(), "/compile", src.as_bytes(), TIMEOUT).unwrap();
        assert_eq!(resp.status, 200, "program {k}: {}", resp.body_text());
        let mut body = Json::parse(&resp.body_text()).expect("envelope is valid JSON");
        normalize_envelope(&mut body);
        lines.push(body.to_string());
    }
    server.shutdown();

    let got = lines.join("\n") + "\n";
    if std::env::var_os("UPDATE_FIXTURE").is_some() {
        std::fs::write(FIXTURE, &got).expect("write fixture");
        return;
    }
    let want = std::fs::read_to_string(FIXTURE)
        .expect("golden fixture missing; regenerate with UPDATE_FIXTURE=1");
    for (k, (g, w)) in got.lines().zip(want.lines()).enumerate() {
        assert_eq!(
            g, w,
            "envelope for corpus program {k} diverged from the pre-refactor fixture"
        );
    }
    assert_eq!(got, want, "envelope line count diverged from the fixture");
}
