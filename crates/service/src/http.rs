//! A hand-rolled HTTP/1.1 subset over blocking streams.
//!
//! The workspace builds offline, so the serving layer cannot pull in
//! hyper/axum; this module implements exactly the protocol surface the
//! compile server and its clients need: `Content-Length`-framed request
//! and response bodies, case-insensitive header lookup, and hard limits
//! on header and body sizes. No chunked encoding, no keep-alive — every
//! exchange is one request, one response, `Connection: close`.

use std::fmt::Write as _;
use std::io::{self, BufRead, Write};

use lc_driver::json::Json;

/// Cap on the request line + headers, to bound memory per connection.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased as received).
    pub method: String,
    /// The request target, e.g. `/compile`.
    pub target: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (names are stored lowercased).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why reading a message from the wire failed.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before sending anything.
    Closed,
    /// The socket read timed out (maps to 408 on the server side).
    Timeout,
    /// Head or body exceeded its size limit (maps to 413).
    TooLarge {
        /// The limit that was exceeded, in bytes.
        limit: usize,
    },
    /// The bytes were not a well-formed HTTP/1.1 message (maps to 400).
    Malformed(&'static str),
    /// Any other I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Closed => write!(f, "connection closed"),
            ReadError::Timeout => write!(f, "read timed out"),
            ReadError::TooLarge { limit } => write!(f, "message exceeds {limit} bytes"),
            ReadError::Malformed(what) => write!(f, "malformed message: {what}"),
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> ReadError {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ReadError::Timeout,
            io::ErrorKind::UnexpectedEof => ReadError::Malformed("truncated message"),
            _ => ReadError::Io(e),
        }
    }
}

/// Read one CRLF- (or bare-LF-) terminated line, bounding total head
/// bytes consumed so far.
fn read_line(reader: &mut impl BufRead, consumed: &mut usize) -> Result<String, ReadError> {
    let mut buf = Vec::new();
    // Read byte-wise via fill_buf to honor the head limit without
    // over-reading into the body.
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            if buf.is_empty() {
                return Err(ReadError::Closed);
            }
            return Err(ReadError::Malformed("truncated line"));
        }
        let nl = available.iter().position(|&b| b == b'\n');
        let take = nl.map(|i| i + 1).unwrap_or(available.len());
        if *consumed + buf.len() + take > MAX_HEAD_BYTES {
            return Err(ReadError::TooLarge {
                limit: MAX_HEAD_BYTES,
            });
        }
        buf.extend_from_slice(&available[..take]);
        reader.consume(take);
        if nl.is_some() {
            break;
        }
    }
    *consumed += buf.len();
    while matches!(buf.last(), Some(b'\n' | b'\r')) {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| ReadError::Malformed("non-UTF-8 header bytes"))
}

/// Read one request: request line, headers, `Content-Length` body.
pub fn read_request(
    reader: &mut impl BufRead,
    max_body_bytes: usize,
) -> Result<Request, ReadError> {
    let mut consumed = 0usize;
    let request_line = read_line(reader, &mut consumed)?;
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or(ReadError::Malformed("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or(ReadError::Malformed("missing request target"))?
        .to_string();
    let version = parts.next().unwrap_or("HTTP/1.0");
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed("unsupported HTTP version"));
    }

    let mut headers = Vec::new();
    loop {
        let line = match read_line(reader, &mut consumed) {
            Ok(l) => l,
            Err(ReadError::Closed) => return Err(ReadError::Malformed("truncated headers")),
            Err(e) => return Err(e),
        };
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ReadError::Malformed("header without `:`"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ReadError::Malformed("bad content-length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body_bytes {
        return Err(ReadError::TooLarge {
            limit: max_body_bytes,
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    Ok(Request {
        method,
        target,
        headers,
        body,
    })
}

/// An HTTP response (used on both sides: built by the server, parsed by
/// the client).
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (`Content-Length`/`Connection` are added when
    /// writing).
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with the given status and a plain-text body.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: vec![(
                "content-type".to_string(),
                "text/plain; charset=utf-8".to_string(),
            )],
            body: body.into().into_bytes(),
        }
    }

    /// A response with the given status and a JSON body.
    pub fn json(status: u16, value: &Json) -> Response {
        Response {
            status,
            headers: vec![("content-type".to_string(), "application/json".to_string())],
            body: value.to_string().into_bytes(),
        }
    }

    /// A JSON error envelope: `{"ok":false,"error":"..."}`.
    pub fn error(status: u16, message: impl Into<String>) -> Response {
        Response::json(
            status,
            &Json::obj(vec![
                ("ok", Json::Bool(false)),
                ("error", Json::Str(message.into())),
            ]),
        )
    }

    /// Add a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_ascii_lowercase(), value.into()));
        self
    }

    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Serialize onto the wire, adding framing headers.
    pub fn write_to(&self, writer: &mut impl Write) -> io::Result<()> {
        let mut head = String::new();
        let _ = write!(head, "HTTP/1.1 {} {}\r\n", self.status, reason(self.status));
        for (k, v) in &self.headers {
            let _ = write!(head, "{k}: {v}\r\n");
        }
        let _ = write!(head, "content-length: {}\r\n", self.body.len());
        let _ = write!(head, "connection: close\r\n\r\n");
        writer.write_all(head.as_bytes())?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

/// Parse one response (client side).
pub fn read_response(reader: &mut impl BufRead) -> Result<Response, ReadError> {
    let mut consumed = 0usize;
    let status_line = read_line(reader, &mut consumed)?;
    let mut parts = status_line.split_ascii_whitespace();
    let version = parts
        .next()
        .ok_or(ReadError::Malformed("empty status line"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed("unsupported HTTP version"));
    }
    let status = parts
        .next()
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or(ReadError::Malformed("bad status code"))?;

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, &mut consumed)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ReadError::Malformed("header without `:`"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let body = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => {
            let len = v
                .parse::<usize>()
                .map_err(|_| ReadError::Malformed("bad content-length"))?;
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body)?;
            body
        }
        None => {
            // `Connection: close` framing: read to EOF.
            let mut body = Vec::new();
            reader.read_to_end(&mut body)?;
            body
        }
    };

    Ok(Response {
        status,
        headers,
        body,
    })
}

/// The reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_a_post_with_body() {
        let wire = b"POST /compile HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let req = read_request(&mut BufReader::new(&wire[..]), 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/compile");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_bare_lf_lines_and_no_body() {
        let wire = b"GET /healthz HTTP/1.1\nHost: x\n\n";
        let req = read_request(&mut BufReader::new(&wire[..]), 1024).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn oversized_body_is_rejected_before_reading_it() {
        let wire = b"POST /compile HTTP/1.1\r\nContent-Length: 999999\r\n\r\n";
        match read_request(&mut BufReader::new(&wire[..]), 1024) {
            Err(ReadError::TooLarge { limit: 1024 }) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn empty_connection_reports_closed() {
        let wire: &[u8] = b"";
        assert!(matches!(
            read_request(&mut BufReader::new(wire), 1024),
            Err(ReadError::Closed)
        ));
    }

    #[test]
    fn response_round_trips_over_the_wire() {
        let resp = Response::text(200, "hi there").with_header("x-cache", "hit");
        let mut wire = Vec::new();
        resp.write_to(&mut wire).unwrap();
        let back = read_response(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(back.status, 200);
        assert_eq!(back.header("x-cache"), Some("hit"));
        assert_eq!(back.body_text(), "hi there");
    }

    #[test]
    fn error_envelope_is_json() {
        let resp = Response::error(429, "queue full");
        let v = Json::parse(&resp.body_text()).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(v.str_field("error").unwrap(), "queue full");
    }
}
