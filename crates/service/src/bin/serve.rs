//! `lc-serve` — run the loop-coalescing compile server.
//!
//! ```text
//! lc-serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
//!          [--deadline-ms N]
//! ```
//!
//! The server runs until `POST /shutdown` arrives or stdin reaches EOF
//! (pure-std builds have no signal handling; piping the process's stdin
//! from a supervisor gives the same lifecycle hook). Either way it
//! drains: queued compiles finish, new work is refused with 503.

use std::io::Read;
use std::process::ExitCode;
use std::time::Duration;

use lc_service::{Server, ServiceConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: lc-serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N] [--deadline-ms N]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut config = ServiceConfig::default();
    let mut addr = "127.0.0.1:7878".to_string();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "-h" {
            return usage();
        }
        let Some(value) = args.get(i + 1) else {
            eprintln!("lc-serve: {flag} needs a value");
            return usage();
        };
        match flag {
            "--addr" => addr = value.clone(),
            "--workers" => match value.parse() {
                Ok(n) => config.workers = n,
                Err(_) => return usage(),
            },
            "--queue" => match value.parse() {
                Ok(n) => config.queue_capacity = n,
                Err(_) => return usage(),
            },
            "--cache" => match value.parse() {
                Ok(n) => config.cache_capacity = n,
                Err(_) => return usage(),
            },
            "--deadline-ms" => match value.parse() {
                Ok(ms) => config.default_deadline = Duration::from_millis(ms),
                Err(_) => return usage(),
            },
            _ => {
                eprintln!("lc-serve: unknown flag {flag}");
                return usage();
            }
        }
        i += 2;
    }

    let workers = config.workers;
    let server = match Server::start(config, &addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lc-serve: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "lc-serve listening on http://{} ({} workers)",
        server.addr(),
        workers
    );
    println!(
        "POST /compile | POST /batch | POST /analyze | GET /metrics | GET /healthz | POST /shutdown"
    );

    // Drain when stdin closes, so `lc-serve < /dev/null` exits once idle
    // and a supervisor can stop us by closing the pipe. `POST /shutdown`
    // is the other path; either way `join` below returns once drained.
    let shutdown_addr = server.addr();
    std::thread::spawn(move || {
        let mut sink = Vec::new();
        let _ = std::io::stdin().read_to_end(&mut sink);
        eprintln!("lc-serve: stdin closed, draining");
        let _ = lc_service::client::post(shutdown_addr, "/shutdown", b"", Duration::from_secs(5));
    });
    server.join();
    eprintln!("lc-serve: drained, bye");
    ExitCode::SUCCESS
}
