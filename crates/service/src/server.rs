//! The compile server: acceptor, connection threads, and a fixed pool
//! of compile workers behind a bounded queue.
//!
//! ```text
//!             ┌────────────┐  try_push   ┌──────────────┐   pop
//!  TCP ──────▶│ connection │────────────▶│ BoundedQueue │────────▶ workers
//!             │  threads   │◀────────────│  (backpress) │          (N fixed)
//!             └────────────┘  reply chan └──────────────┘
//!                    │  ▲
//!             cache get  cache insert (workers)
//! ```
//!
//! * Cache hits are answered directly on the connection thread — they
//!   never consume a queue slot or a worker.
//! * A full queue is answered `429` immediately (load shedding), a
//!   closed queue `503` (draining).
//! * Every job carries a deadline; a worker that pops an expired job
//!   answers `503` without compiling it.
//! * `POST /shutdown` closes the queue, stops the acceptor, and lets
//!   in-flight work finish — [`Server::join`] returns once drained.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lc_driver::json::Json;
use lc_driver::trace::finding_to_json;
use lc_driver::{Driver, DriverOptions, DriverOutput};

use crate::cache::{fnv1a, ShardedLru};
use crate::http::{read_request, ReadError, Request, Response};
use crate::metrics::Metrics;
use crate::queue::{BoundedQueue, PushError};

/// Everything tunable about a server instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Compile worker threads (minimum 1).
    pub workers: usize,
    /// Pending-job slots before `429` load shedding kicks in.
    pub queue_capacity: usize,
    /// Total compile-cache entries.
    pub cache_capacity: usize,
    /// Cache shards (lock granularity).
    pub cache_shards: usize,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Deadline applied when the client sends no `X-Deadline-Ms`.
    pub default_deadline: Duration,
    /// Socket read timeout (maps to `408`).
    pub read_timeout: Duration,
    /// Driver configuration; part of the cache key via
    /// [`DriverOptions::fingerprint`].
    pub driver: DriverOptions,
    /// Test hook: make every worker sleep this long per job, so tests
    /// can fill the queue and expire deadlines deterministically.
    pub synthetic_delay: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 256,
            cache_shards: 8,
            max_body_bytes: 1024 * 1024,
            default_deadline: Duration::from_secs(10),
            read_timeout: Duration::from_secs(10),
            driver: DriverOptions::default(),
            synthetic_delay: None,
        }
    }
}

enum JobKind {
    Compile { key: u64, source: String },
    Batch { sources: Vec<String> },
}

struct Job {
    kind: JobKind,
    reply: SyncSender<Response>,
    deadline: Instant,
}

struct Shared {
    config: ServiceConfig,
    driver: Driver,
    fingerprint: String,
    cache: ShardedLru<Vec<u8>>,
    queue: BoundedQueue<Job>,
    metrics: Metrics,
    draining: AtomicBool,
    active_conns: AtomicUsize,
    addr: SocketAddr,
}

/// A running compile server bound to a local address.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `bind_addr` (e.g. `127.0.0.1:0`), spawn the worker pool and
    /// the acceptor, and return immediately.
    pub fn start(config: ServiceConfig, bind_addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let driver = Driver::new(config.driver.clone());
        let fingerprint = config.driver.fingerprint();
        let shared = Arc::new(Shared {
            cache: ShardedLru::new(config.cache_capacity, config.cache_shards),
            queue: BoundedQueue::new(config.queue_capacity),
            metrics: Metrics::default(),
            draining: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
            addr,
            driver,
            fingerprint,
            config,
        });

        let workers = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lc-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("lc-acceptor".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn acceptor")
        };

        Ok(Server {
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Begin draining as if `POST /shutdown` had arrived.
    pub fn begin_shutdown(&self) {
        begin_drain(&self.shared);
    }

    /// Wait until the server has fully drained: acceptor stopped, queue
    /// empty, workers exited, in-flight connections answered.
    pub fn join(mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Connection threads detach; wait (bounded) for the last replies
        // to flush.
        let gone = Instant::now() + Duration::from_secs(10);
        while self.shared.active_conns.load(Ordering::Acquire) > 0 && Instant::now() < gone {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Convenience: trigger drain and wait for it to finish.
    pub fn shutdown(self) {
        self.begin_shutdown();
        self.join();
    }
}

fn begin_drain(shared: &Shared) {
    if shared.draining.swap(true, Ordering::SeqCst) {
        return; // already draining
    }
    shared.queue.close();
    // Poke the blocking `accept` so the acceptor observes `draining`.
    let _ = TcpStream::connect(shared.addr);
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.active_conns.fetch_add(1, Ordering::AcqRel);
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("lc-conn".to_string())
            .spawn(move || {
                handle_connection(stream, &shared);
                shared.active_conns.fetch_sub(1, Ordering::AcqRel);
            });
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let started = Instant::now();
    let response = match read_request(&mut reader, shared.config.max_body_bytes) {
        Ok(req) => {
            shared
                .metrics
                .requests_total
                .fetch_add(1, Ordering::Relaxed);
            route(shared, req)
        }
        Err(ReadError::Closed) => return, // e.g. the drain poke
        Err(ReadError::Timeout) => Response::error(408, "timed out reading the request"),
        Err(ReadError::TooLarge { limit }) => {
            Response::error(413, format!("request exceeds {limit} bytes"))
        }
        Err(ReadError::Malformed(what)) => Response::error(400, format!("bad request: {what}")),
        Err(ReadError::Io(e)) => Response::error(500, format!("i/o error: {e}")),
    };
    shared.metrics.observe_status(response.status);
    shared
        .metrics
        .latency
        .record_micros(started.elapsed().as_micros() as u64);
    let mut stream = stream;
    let _ = response.write_to(&mut stream);
    // Drain whatever the client already sent (we may have answered
    // without reading the body, e.g. 413): closing with unread bytes in
    // the receive buffer would RST the response off the wire. Bounded by
    // the body cap and the socket read timeout.
    let mut reader = reader;
    let _ = std::io::copy(
        &mut std::io::Read::take(&mut reader, shared.config.max_body_bytes as u64),
        &mut std::io::sink(),
    );
}

fn route(shared: &Shared, req: Request) -> Response {
    match (req.method.as_str(), req.target.as_str()) {
        ("GET", "/healthz") => Response::json(
            200,
            &Json::obj(vec![
                ("ok", Json::Bool(true)),
                (
                    "draining",
                    Json::Bool(shared.draining.load(Ordering::SeqCst)),
                ),
            ]),
        ),
        ("GET", "/metrics") => Response::text(
            200,
            shared.metrics.render(
                shared.cache.counters(),
                shared.queue.len(),
                shared.config.workers.max(1),
            ),
        ),
        ("POST", "/compile") => handle_compile(shared, req),
        ("POST", "/batch") => handle_batch(shared, req),
        ("POST", "/analyze") => handle_analyze(shared, req),
        ("POST", "/shutdown") => {
            begin_drain(shared);
            Response::json(
                200,
                &Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("draining", Json::Bool(true)),
                ]),
            )
        }
        (_, "/compile" | "/batch" | "/analyze" | "/shutdown") => Response::error(
            405,
            format!("{} requires POST, got {}", req.target, req.method),
        ),
        (_, "/metrics" | "/healthz") => Response::error(
            405,
            format!("{} requires GET, got {}", req.target, req.method),
        ),
        _ => Response::error(404, format!("no such endpoint: {}", req.target)),
    }
}

/// Deadline for a request: `X-Deadline-Ms` when present and sane,
/// otherwise the configured default.
fn request_deadline(shared: &Shared, req: &Request) -> Result<Duration, Response> {
    match req.header("x-deadline-ms") {
        None => Ok(shared.config.default_deadline),
        Some(v) => match v.parse::<u64>() {
            Ok(ms) if ms > 0 => Ok(Duration::from_millis(ms)),
            _ => Err(Response::error(
                400,
                "x-deadline-ms must be a positive integer of milliseconds",
            )),
        },
    }
}

/// Enqueue a job and wait for the worker's reply. Shared by `/compile`
/// and `/batch`.
fn run_job(shared: &Shared, kind: JobKind, deadline: Duration) -> Response {
    let (reply, result) = sync_channel(1);
    let job = Job {
        kind,
        reply,
        deadline: Instant::now() + deadline,
    };
    match shared.queue.try_push(job) {
        Ok(()) => {
            shared.metrics.jobs_enqueued.fetch_add(1, Ordering::Relaxed);
        }
        Err(PushError::Full) => {
            shared.metrics.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            return Response::error(429, "compile queue is full, retry later")
                .with_header("retry-after", "1");
        }
        Err(PushError::Closed) => {
            return Response::error(503, "server is draining, not accepting work");
        }
    }
    // Workers always reply (even for expired jobs); the grace period only
    // guards against a worker dying mid-job.
    match result.recv_timeout(deadline + Duration::from_secs(30)) {
        Ok(resp) => resp,
        Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
            Response::error(503, "compile worker did not reply")
        }
    }
}

fn handle_compile(shared: &Shared, req: Request) -> Response {
    shared
        .metrics
        .compile_requests
        .fetch_add(1, Ordering::Relaxed);
    let deadline = match request_deadline(shared, &req) {
        Ok(d) => d,
        Err(resp) => return resp,
    };
    let Ok(source) = String::from_utf8(req.body) else {
        return Response::error(400, "request body is not UTF-8");
    };
    if source.trim().is_empty() {
        return Response::error(422, "empty program");
    }
    let key = cache_key(&shared.fingerprint, &source);
    if let Some(body) = shared.cache.get(key) {
        // Byte-identical to the miss path: the cached value *is* the
        // body the worker rendered.
        return Response {
            status: 200,
            headers: vec![("content-type".to_string(), "application/json".to_string())],
            body: body.as_ref().clone(),
        }
        .with_header("x-cache", "hit");
    }
    run_job(shared, JobKind::Compile { key, source }, deadline)
}

fn handle_batch(shared: &Shared, req: Request) -> Response {
    shared
        .metrics
        .batch_requests
        .fetch_add(1, Ordering::Relaxed);
    let deadline = match request_deadline(shared, &req) {
        Ok(d) => d,
        Err(resp) => return resp,
    };
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return Response::error(400, "request body is not UTF-8");
    };
    let parsed = match Json::parse(text) {
        Ok(v) => v,
        Err(e) => return Response::error(400, format!("bad JSON body: {e}")),
    };
    let Some(sources) = parsed.get("sources").and_then(Json::as_arr) else {
        return Response::error(422, "body must be {\"sources\": [\"...\", ...]}");
    };
    let mut list = Vec::with_capacity(sources.len());
    for s in sources {
        match s.as_str() {
            Some(text) => list.push(text.to_string()),
            None => return Response::error(422, "every source must be a string"),
        }
    }
    if list.is_empty() {
        return Response::error(422, "sources is empty");
    }
    run_job(shared, JobKind::Batch { sources: list }, deadline)
}

/// `POST /analyze`: run the static analyzer only. Linting is orders of
/// magnitude cheaper than a full compile (no rewrite, no interpreter
/// validation), so it is answered directly on the connection thread —
/// it never consumes a queue slot or a worker, and keeps working while
/// the compile queue is saturated or draining. The lint severities are
/// the configured driver's ([`DriverOptions::lints`]).
fn handle_analyze(shared: &Shared, req: Request) -> Response {
    shared
        .metrics
        .analyze_requests
        .fetch_add(1, Ordering::Relaxed);
    let Ok(source) = String::from_utf8(req.body) else {
        return Response::error(400, "request body is not UTF-8");
    };
    if source.trim().is_empty() {
        return Response::error(422, "empty program");
    }
    let set = &shared.config.driver.lints;
    match catch_unwind(AssertUnwindSafe(|| lc_lint::lint_source(&source, set))) {
        Ok(Ok(findings)) => {
            let denied = findings
                .iter()
                .filter(|f| f.severity == lc_lint::Severity::Deny)
                .count();
            shared
                .metrics
                .lint_findings
                .fetch_add(findings.len() as u64, Ordering::Relaxed);
            shared
                .metrics
                .lint_denied
                .fetch_add(denied as u64, Ordering::Relaxed);
            Response::json(
                200,
                &Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    (
                        "findings",
                        Json::Arr(findings.iter().map(finding_to_json).collect()),
                    ),
                    ("denied", Json::Int(denied as i64)),
                ]),
            )
        }
        Ok(Err(e)) => Response::error(422, e.to_string()),
        Err(_) => Response::error(500, "analyze panicked"),
    }
}

/// FNV key over the driver fingerprint and the source text, with a
/// separator byte that cannot occur inside UTF-8 text so the two parts
/// cannot alias.
fn cache_key(fingerprint: &str, source: &str) -> u64 {
    let mut bytes = Vec::with_capacity(fingerprint.len() + source.len() + 1);
    bytes.extend_from_slice(fingerprint.as_bytes());
    bytes.push(0xFF);
    bytes.extend_from_slice(source.as_bytes());
    fnv1a(&bytes)
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        if Instant::now() > job.deadline {
            shared.metrics.jobs_expired.fetch_add(1, Ordering::Relaxed);
            let _ = job.reply.send(Response::error(
                503,
                "deadline exceeded before a worker was free",
            ));
            continue;
        }
        if let Some(delay) = shared.config.synthetic_delay {
            std::thread::sleep(delay);
        }
        shared.metrics.workers_busy.fetch_add(1, Ordering::Relaxed);
        let response = match job.kind {
            JobKind::Compile { key, source } => compile_job(shared, key, &source),
            JobKind::Batch { sources } => batch_job(shared, &sources),
        };
        shared.metrics.workers_busy.fetch_sub(1, Ordering::Relaxed);
        shared
            .metrics
            .jobs_completed
            .fetch_add(1, Ordering::Relaxed);
        let _ = job.reply.send(response);
    }
}

fn compile_job(shared: &Shared, key: u64, source: &str) -> Response {
    match catch_unwind(AssertUnwindSafe(|| shared.driver.compile(source))) {
        Ok(Ok(out)) => {
            let body = output_json(&out).to_string().into_bytes();
            shared.cache.insert(key, body.clone());
            Response {
                status: 200,
                headers: vec![("content-type".to_string(), "application/json".to_string())],
                body,
            }
            .with_header("x-cache", "miss")
        }
        Ok(Err(e)) => Response::error(422, e.to_string()),
        Err(_) => {
            shared.metrics.jobs_panicked.fetch_add(1, Ordering::Relaxed);
            Response::error(500, "compile panicked")
        }
    }
}

fn batch_job(shared: &Shared, sources: &[String]) -> Response {
    // `compile_batch` already converts per-item panics into per-item
    // errors and times each item.
    let items = shared.driver.compile_batch(sources);
    let rendered: Vec<Json> = items
        .iter()
        .map(|item| match &item.result {
            Ok(out) => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("source", Json::Str(out.transformed_source.clone())),
                ("coalesced_nests", Json::Int(out.coalesced.len() as i64)),
                ("nanos", Json::Int(item.nanos.min(i64::MAX as u64) as i64)),
            ]),
            Err(e) => Json::obj(vec![
                ("ok", Json::Bool(false)),
                ("error", Json::Str(e.to_string())),
                ("nanos", Json::Int(item.nanos.min(i64::MAX as u64) as i64)),
            ]),
        })
        .collect();
    let ok_count = items.iter().filter(|i| i.result.is_ok()).count();
    Response::json(
        200,
        &Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("items", Json::Arr(rendered)),
            ("succeeded", Json::Int(ok_count as i64)),
            ("failed", Json::Int((items.len() - ok_count) as i64)),
        ]),
    )
}

/// The `/compile` success payload: transformed source, coalesce/skip
/// summaries, lint findings, and the full pipeline trace.
fn output_json(out: &DriverOutput) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("source", Json::Str(out.transformed_source.clone())),
        ("coalesced_nests", Json::Int(out.coalesced.len() as i64)),
        (
            "skipped",
            Json::Arr(out.skipped.iter().map(|s| s.to_json()).collect()),
        ),
        (
            "lints",
            Json::Arr(out.lints.iter().map(finding_to_json).collect()),
        ),
        ("trace", out.trace.to_json()),
    ])
}
