//! The 72-program benchmark corpus the load generator replays.
//!
//! Mirrors the batch corpus in the driver's tests: three program shapes
//! cycling by index — a plain coalescible `doall` pair, a
//! carried-dependence `for` loop ahead of a `doall` pair, and a
//! symbolic-bound nest — with bounds varying by index so nearly every
//! program is a distinct cache key.

/// The corpus: 72 distinct, parseable DSL programs.
pub fn corpus72() -> Vec<String> {
    (0..72)
        .map(|k| {
            let n = 2 + (k % 7);
            let m = 3 + (k % 5);
            match k % 3 {
                0 => format!(
                    "array A[{n}][{m}];
                     doall i = 1..{n} {{
                         doall j = 1..{m} {{
                             A[i][j] = i * {k} + j;
                         }}
                     }}"
                ),
                1 => format!(
                    "array A[{n}][{m}];
                     array B[{n}];
                     for i = 2..{n} {{
                         B[i] = B[i - 1] + {k};
                     }}
                     doall i = 1..{n} {{
                         doall j = 1..{m} {{
                             A[i][j] = i + j;
                         }}
                     }}"
                ),
                _ => format!(
                    "array A[{n}][{m}];
                     u = {n};
                     v = {m};
                     doall i = 1..u {{
                         doall j = 1..v {{
                             A[i][j] = i * j + {k};
                         }}
                     }}"
                ),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_72_distinct_programs() {
        let corpus = corpus72();
        assert_eq!(corpus.len(), 72);
        let unique: std::collections::HashSet<&str> = corpus.iter().map(|s| s.as_str()).collect();
        assert_eq!(
            unique.len(),
            72,
            "every program must be a distinct cache key"
        );
    }

    #[test]
    fn every_corpus_program_compiles() {
        let driver = lc_driver::Driver::default();
        for (k, src) in corpus72().iter().enumerate() {
            assert!(driver.compile(src).is_ok(), "program {k} failed");
        }
    }
}
