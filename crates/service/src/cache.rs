//! A sharded, content-addressed LRU cache for compile results.
//!
//! Keys are FNV-1a hashes of the request source text mixed with the
//! driver-options fingerprint ([`lc_driver::DriverOptions::fingerprint`]),
//! so two servers configured differently never share entries and a
//! config change invalidates the whole cache by construction.
//!
//! The map is split into shards, each behind its own mutex, so compile
//! workers and connection threads touching different shards never
//! contend. Within a shard, recency is a monotonic tick per entry;
//! eviction scans the (small, bounded) shard for the minimum tick — an
//! exact LRU without the linked-list bookkeeping, O(shard size) only on
//! insertion over capacity.
//!
//! Hit / miss / insertion / eviction counts are global atomics, exported
//! by `/metrics` and asserted on by the integration tests.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::sync::lock_recovering;

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A snapshot of the cache's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
}

struct Entry<V> {
    value: Arc<V>,
    tick: u64,
}

struct Shard<V> {
    map: HashMap<u64, Entry<V>>,
    clock: u64,
}

/// The sharded LRU. Values are handed out as `Arc<V>` so a hit never
/// copies the cached payload.
pub struct ShardedLru<V> {
    shards: Vec<Mutex<Shard<V>>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    entries: AtomicU64,
}

impl<V> ShardedLru<V> {
    /// A cache of ~`capacity` total entries spread over `shards` shards
    /// (each shard gets `ceil(capacity / shards)`, minimum 1). `shards`
    /// is rounded up to 1.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let capacity_per_shard = capacity.div_ceil(shards).max(1);
        ShardedLru {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        clock: 0,
                    })
                })
                .collect(),
            capacity_per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            entries: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard<V>> {
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    /// Look up `key`, refreshing its recency on a hit. Poisoned shards
    /// are recovered: no critical section below leaves a shard
    /// structurally broken mid-update, so a panicked worker must not
    /// disable the cache for everyone else.
    pub fn get(&self, key: u64) -> Option<Arc<V>> {
        let mut shard = lock_recovering(self.shard(key));
        shard.clock += 1;
        let now = shard.clock;
        match shard.map.get_mut(&key) {
            Some(entry) => {
                entry.tick = now;
                let value = Arc::clone(&entry.value);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) `key`, evicting the shard's least-recently
    /// used entry when the shard is at capacity.
    pub fn insert(&self, key: u64, value: V) {
        let mut shard = lock_recovering(self.shard(key));
        shard.clock += 1;
        let tick = shard.clock;
        let is_new = !shard.map.contains_key(&key);
        if is_new && shard.map.len() >= self.capacity_per_shard {
            if let Some((&victim, _)) = shard.map.iter().min_by_key(|(_, e)| e.tick) {
                shard.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.entries.fetch_sub(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(
            key,
            Entry {
                value: Arc::new(value),
                tick,
            },
        );
        drop(shard);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if is_new {
            self.entries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counter snapshot.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_insert_counting() {
        let cache: ShardedLru<String> = ShardedLru::new(8, 2);
        assert!(cache.get(1).is_none());
        cache.insert(1, "one".to_string());
        assert_eq!(cache.get(1).as_deref(), Some(&"one".to_string()));
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.insertions, c.entries), (1, 1, 1, 1));
    }

    #[test]
    fn evicts_the_least_recently_used_entry_per_shard() {
        // One shard, capacity 2: inserting a third key evicts the LRU.
        let cache: ShardedLru<u32> = ShardedLru::new(2, 1);
        cache.insert(10, 10);
        cache.insert(20, 20);
        // Touch 10 so 20 becomes the LRU.
        assert!(cache.get(10).is_some());
        cache.insert(30, 30);
        assert!(cache.get(20).is_none(), "LRU entry should be gone");
        assert!(cache.get(10).is_some());
        assert!(cache.get(30).is_some());
        assert_eq!(cache.counters().evictions, 1);
        assert_eq!(cache.counters().entries, 2);
    }

    #[test]
    fn reinserting_a_key_does_not_evict() {
        let cache: ShardedLru<u32> = ShardedLru::new(2, 1);
        cache.insert(1, 1);
        cache.insert(2, 2);
        cache.insert(1, 100); // refresh, not a new entry
        assert_eq!(cache.counters().evictions, 0);
        assert_eq!(*cache.get(1).unwrap(), 100);
        assert!(cache.get(2).is_some());
    }

    #[test]
    fn keys_spread_across_shards() {
        let cache: ShardedLru<u64> = ShardedLru::new(64, 8);
        for k in 0..64u64 {
            cache.insert(fnv1a(&k.to_le_bytes()), k);
        }
        assert_eq!(cache.counters().entries, 64);
        assert_eq!(cache.counters().evictions, 0);
        let populated = cache
            .shards
            .iter()
            .filter(|s| !s.lock().unwrap().map.is_empty())
            .count();
        assert!(populated >= 4, "FNV keys should hit most shards");
    }

    #[test]
    fn survives_a_panicked_lock_holder() {
        use std::sync::Arc;
        let cache: Arc<ShardedLru<u32>> = Arc::new(ShardedLru::new(8, 1));
        cache.insert(1, 11);
        let c2 = Arc::clone(&cache);
        let _ = std::thread::spawn(move || {
            let _guard = c2.shards[0].lock().unwrap();
            panic!("worker died holding the shard");
        })
        .join();
        // The shard mutex is now poisoned; the cache must keep working.
        assert_eq!(cache.get(1).as_deref(), Some(&11));
        cache.insert(2, 22);
        assert_eq!(cache.get(2).as_deref(), Some(&22));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Reference values for FNV-1a 64-bit.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
