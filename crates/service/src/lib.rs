//! `lc-service` — a compile server for the loop-coalescing pipeline.
//!
//! The workspace builds fully offline, so the serving layer is built
//! from the standard library up: a hand-rolled HTTP/1.1 subset
//! ([`http`]), a bounded job queue with explicit load shedding
//! ([`queue`]), a sharded content-addressed LRU compile cache
//! ([`cache`]), lock-free metrics with a log-linear latency histogram
//! ([`metrics`]), and the server itself ([`server`]) — a fixed pool of
//! compile workers sharing one [`lc_driver::Driver`].
//!
//! # Endpoints
//!
//! | Endpoint         | Meaning                                             |
//! |------------------|-----------------------------------------------------|
//! | `POST /compile`  | DSL source in, coalesced source + lints + pipeline trace out |
//! | `POST /batch`    | `{"sources": [...]}` in, per-item results + wall times out |
//! | `POST /analyze`  | DSL source in, `lc-lint` findings out (lint-only, no rewrite) |
//! | `GET /metrics`   | Prometheus-style counters, gauges, latency quantiles |
//! | `GET /healthz`   | liveness + drain state                              |
//! | `POST /shutdown` | begin graceful drain                                |
//!
//! # Semantics worth knowing
//!
//! * **Caching** — `/compile` responses are cached by FNV-1a over the
//!   driver-options fingerprint and the source text. Hits are answered
//!   on the connection thread (never touching queue or workers) and are
//!   byte-identical to the originally rendered body; `X-Cache: hit|miss`
//!   says which path a response took.
//! * **Backpressure** — the job queue is bounded; when it is full the
//!   server answers `429` immediately rather than queueing unboundedly.
//!   `/analyze` is exempt: linting is cheap enough to answer on the
//!   connection thread, so it keeps working under compile saturation.
//! * **Deadlines** — every job carries a deadline (`X-Deadline-Ms` or
//!   the configured default). A job still queued past its deadline is
//!   answered `503` without being compiled.
//! * **Drain** — `POST /shutdown` (or [`server::Server::begin_shutdown`])
//!   closes the queue: queued jobs still complete, new work gets `503`,
//!   and [`server::Server::join`] returns once in-flight requests are
//!   answered.
//!
//! # Quick example
//!
//! ```
//! use lc_service::server::{Server, ServiceConfig};
//! use lc_service::client;
//! use std::time::Duration;
//!
//! let server = Server::start(ServiceConfig::default(), "127.0.0.1:0").unwrap();
//! let addr = server.addr();
//! let resp = client::post(
//!     addr,
//!     "/compile",
//!     b"array A[4][5];
//!       doall i = 1..4 { doall j = 1..5 { A[i][j] = i + j; } }",
//!     Duration::from_secs(5),
//! )
//! .unwrap();
//! assert_eq!(resp.status, 200);
//! assert_eq!(resp.header("x-cache"), Some("miss"));
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod client;
pub mod corpus;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod queue;
pub mod server;
pub mod sync;

pub use server::{Server, ServiceConfig};
