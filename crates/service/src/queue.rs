//! A bounded MPMC job queue with explicit overload signalling.
//!
//! Connection threads `try_push`; when the queue is at capacity they get
//! [`PushError::Full`] back immediately and the server answers 429
//! instead of letting latency balloon. Compile workers block in `pop`
//! until a job arrives or the queue is closed for drain.
//!
//! Built on `std::sync::{Mutex, Condvar}` rather than the vendored
//! `parking_lot` shim, which deliberately omits condition variables.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::sync::{lock_recovering, wait_recovering};

/// Why a `try_push` was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; the caller should shed load.
    Full,
    /// The queue has been closed for shutdown; no new work is accepted.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Fixed-capacity FIFO shared between connection threads and workers.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` pending jobs (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue without blocking; refuse when full or closed. The inner
    /// mutex recovers from poisoning: the queue is structurally
    /// consistent between statements, so a panicked worker must not turn
    /// every later push into a panic.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut inner = lock_recovering(&self.inner);
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Block until a job is available or the queue is closed *and*
    /// drained. `None` means "no more work, ever" — the worker exits.
    pub fn pop(&self) -> Option<T> {
        let mut inner = lock_recovering(&self.inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = wait_recovering(&self.not_empty, inner);
        }
    }

    /// Close the queue: pending jobs still drain, new pushes fail, and
    /// blocked workers wake to observe closure.
    pub fn close(&self) {
        let mut inner = lock_recovering(&self.inner);
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
    }

    /// Jobs currently waiting (diagnostic; racy by nature).
    pub fn len(&self) -> usize {
        lock_recovering(&self.inner).items.len()
    }

    /// Whether no jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn refuses_pushes_beyond_capacity() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(()));
    }

    #[test]
    fn close_drains_pending_then_signals_exit() {
        let q = BoundedQueue::new(4);
        q.try_push('a').unwrap();
        q.try_push('b').unwrap();
        q.close();
        assert_eq!(q.try_push('c'), Err(PushError::Closed));
        assert_eq!(q.pop(), Some('a'));
        assert_eq!(q.pop(), Some('b'));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_workers_wake_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        // Give the workers a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn keeps_serving_after_a_panicked_lock_holder() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        q.try_push(1).unwrap();
        let q2 = Arc::clone(&q);
        let _ = std::thread::spawn(move || {
            let _guard = q2.inner.lock().unwrap();
            panic!("holder died");
        })
        .join();
        // Poisoned mutex; pushes and pops must still work.
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.len(), 0);
        q.close();
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn items_flow_from_many_producers_to_many_consumers() {
        let q = Arc::new(BoundedQueue::<u64>::new(1024));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Some(v) = q.pop() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        loop {
                            match q.try_push(p * 1000 + i) {
                                Ok(()) => break,
                                Err(PushError::Full) => std::thread::yield_now(),
                                Err(PushError::Closed) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        let expected: u64 = (0..4u64)
            .map(|p| (0..100u64).map(|i| p * 1000 + i).sum::<u64>())
            .sum();
        assert_eq!(total, expected);
    }
}
