//! The load generator: replay a corpus against a running server at a
//! fixed concurrency and report throughput and latency quantiles.
//!
//! The core lives here (in-process, testable over a loopback server);
//! the `lc-loadgen` binary in `crates/bench` is a thin CLI over
//! [`run`] that writes `BENCH_service.json`.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use lc_driver::json::Json;

use crate::client;
use crate::sync::{into_inner_recovering, lock_recovering};

/// Which endpoint the generator drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadTarget {
    /// `POST /compile` — the full pipeline (queued, cached).
    #[default]
    Compile,
    /// `POST /analyze` — lint-only, answered on the connection thread.
    Analyze,
}

impl LoadTarget {
    /// The request path this target hits.
    pub fn path(self) -> &'static str {
        match self {
            LoadTarget::Compile => "/compile",
            LoadTarget::Analyze => "/analyze",
        }
    }
}

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent client threads.
    pub concurrency: usize,
    /// How many times the whole corpus is replayed.
    pub rounds: usize,
    /// Per-request client timeout.
    pub timeout: Duration,
    /// Endpoint to drive.
    pub target: LoadTarget,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            concurrency: 8,
            rounds: 3,
            timeout: Duration::from_secs(30),
            target: LoadTarget::default(),
        }
    }
}

/// What a load-generation run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Client threads used.
    pub concurrency: usize,
    /// Corpus replays.
    pub rounds: usize,
    /// Programs per replay.
    pub corpus_size: usize,
    /// Requests issued.
    pub requests: u64,
    /// 200 responses.
    pub ok_200: u64,
    /// 429 (load-shed) responses.
    pub shed_429: u64,
    /// Any other status or transport failure.
    pub other: u64,
    /// Responses served from the compile cache (`X-Cache: hit`).
    pub cache_hits_observed: u64,
    /// Wall time for the whole run, microseconds.
    pub elapsed_micros: u64,
    /// Completed requests per second, scaled by 1000 (the trace JSON
    /// format is integer-only by design).
    pub throughput_milli_rps: u64,
    /// Median request latency, microseconds.
    pub p50_micros: u64,
    /// 95th-percentile latency, microseconds.
    pub p95_micros: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_micros: u64,
    /// Worst latency, microseconds.
    pub max_micros: u64,
}

impl LoadgenReport {
    /// The `BENCH_service.json` payload.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("bench", Json::Str("lc-service loadgen".to_string())),
            ("concurrency", Json::Int(self.concurrency as i64)),
            ("rounds", Json::Int(self.rounds as i64)),
            ("corpus_size", Json::Int(self.corpus_size as i64)),
            ("requests", Json::Int(self.requests as i64)),
            ("ok_200", Json::Int(self.ok_200 as i64)),
            ("shed_429", Json::Int(self.shed_429 as i64)),
            ("other", Json::Int(self.other as i64)),
            (
                "cache_hits_observed",
                Json::Int(self.cache_hits_observed as i64),
            ),
            ("elapsed_micros", Json::Int(self.elapsed_micros as i64)),
            (
                "throughput_milli_rps",
                Json::Int(self.throughput_milli_rps as i64),
            ),
            ("p50_micros", Json::Int(self.p50_micros as i64)),
            ("p95_micros", Json::Int(self.p95_micros as i64)),
            ("p99_micros", Json::Int(self.p99_micros as i64)),
            ("max_micros", Json::Int(self.max_micros as i64)),
        ])
    }
}

/// The bench-regression gate: fail when the measured p95 latency
/// exceeds the committed baseline's by more than `max_regress_pct`
/// percent. The budget is computed in 128-bit math so no baseline can
/// overflow it, and a zero baseline — an empty or failed baseline run —
/// gates nothing rather than everything.
///
/// Returns `Err` with a human-readable verdict for the CI log.
pub fn check_p95_regression(
    current_p95: u64,
    baseline_p95: u64,
    max_regress_pct: u64,
) -> Result<(), String> {
    if baseline_p95 == 0 {
        return Ok(());
    }
    let allowed = u128::from(baseline_p95) * u128::from(100 + max_regress_pct) / 100;
    if u128::from(current_p95) > allowed {
        return Err(format!(
            "p95 latency regressed: {current_p95} us vs baseline {baseline_p95} us \
             (budget {allowed} us = baseline + {max_regress_pct}%)"
        ));
    }
    Ok(())
}

/// Exact quantile over a sorted sample (nearest-rank). Returns 0 for an
/// empty sample.
pub fn percentile(sorted: &[u64], q: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 * q).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

struct Tally {
    latencies: Vec<u64>,
    ok_200: u64,
    shed_429: u64,
    other: u64,
    cache_hits: u64,
}

/// Replay `corpus` against the server at `addr`, `config.rounds` times
/// over, from `config.concurrency` threads.
pub fn run(addr: SocketAddr, corpus: &[String], config: &LoadgenConfig) -> LoadgenReport {
    let total = corpus.len() * config.rounds.max(1);
    let next = AtomicUsize::new(0);
    let merged = Mutex::new(Tally {
        latencies: Vec::with_capacity(total),
        ok_200: 0,
        shed_429: 0,
        other: 0,
        cache_hits: 0,
    });

    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..config.concurrency.max(1) {
            scope.spawn(|| {
                let mut local = Tally {
                    latencies: Vec::new(),
                    ok_200: 0,
                    shed_429: 0,
                    other: 0,
                    cache_hits: 0,
                };
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let source = &corpus[i % corpus.len()];
                    let t0 = Instant::now();
                    let outcome = client::post(
                        addr,
                        config.target.path(),
                        source.as_bytes(),
                        config.timeout,
                    );
                    local.latencies.push(t0.elapsed().as_micros() as u64);
                    match outcome {
                        Ok(resp) => {
                            match resp.status {
                                200 => local.ok_200 += 1,
                                429 => local.shed_429 += 1,
                                _ => local.other += 1,
                            }
                            if resp.header("x-cache") == Some("hit") {
                                local.cache_hits += 1;
                            }
                        }
                        Err(_) => local.other += 1,
                    }
                }
                let mut m = lock_recovering(&merged);
                m.latencies.extend_from_slice(&local.latencies);
                m.ok_200 += local.ok_200;
                m.shed_429 += local.shed_429;
                m.other += local.other;
                m.cache_hits += local.cache_hits;
            });
        }
    });
    let elapsed_micros = (started.elapsed().as_micros() as u64).max(1);

    // Poison recovery: a panicked client thread must not lose the whole
    // run's tallies.
    let mut tally = into_inner_recovering(merged);
    tally.latencies.sort_unstable();
    let requests = tally.latencies.len() as u64;
    LoadgenReport {
        concurrency: config.concurrency.max(1),
        rounds: config.rounds.max(1),
        corpus_size: corpus.len(),
        requests,
        ok_200: tally.ok_200,
        shed_429: tally.shed_429,
        other: tally.other,
        cache_hits_observed: tally.cache_hits,
        elapsed_micros,
        throughput_milli_rps: ((requests as u128 * 1_000_000_000) / elapsed_micros as u128) as u64,
        p50_micros: percentile(&tally.latencies, 50),
        p95_micros: percentile(&tally.latencies, 95),
        p99_micros: percentile(&tally.latencies, 99),
        max_micros: tally.latencies.last().copied().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let sample: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sample, 50), 50);
        assert_eq!(percentile(&sample, 95), 95);
        assert_eq!(percentile(&sample, 99), 99);
        assert_eq!(percentile(&sample, 100), 100);
        assert_eq!(percentile(&[42], 50), 42);
        assert_eq!(percentile(&[], 99), 0);
    }

    #[test]
    fn regression_gate_allows_the_budget_and_rejects_beyond_it() {
        // 25% over a 1000us baseline: 1250 is within budget, 1251 not.
        assert!(check_p95_regression(1250, 1000, 25).is_ok());
        assert!(check_p95_regression(1251, 1000, 25).is_err());
        // Improvements always pass.
        assert!(check_p95_regression(1, 1000, 25).is_ok());
        // A zero baseline (empty run) gates nothing.
        assert!(check_p95_regression(u64::MAX, 0, 25).is_ok());
        // Huge baselines must not overflow the budget computation: a
        // current p95 equal to a near-max baseline is not a regression.
        assert!(check_p95_regression(u64::MAX, u64::MAX, 25).is_ok());
    }

    #[test]
    fn report_json_has_the_contract_fields() {
        let report = LoadgenReport {
            concurrency: 4,
            rounds: 2,
            corpus_size: 72,
            requests: 144,
            ok_200: 140,
            shed_429: 4,
            other: 0,
            cache_hits_observed: 70,
            elapsed_micros: 1_000_000,
            throughput_milli_rps: 144_000,
            p50_micros: 800,
            p95_micros: 2_000,
            p99_micros: 3_000,
            max_micros: 5_000,
        };
        let v = report.to_json();
        for field in [
            "throughput_milli_rps",
            "p50_micros",
            "p95_micros",
            "p99_micros",
            "requests",
        ] {
            assert!(v.get(field).is_some(), "missing {field}");
        }
        // Round-trips through the driver's JSON printer/parser.
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }
}
