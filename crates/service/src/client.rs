//! A minimal blocking HTTP client for the compile server: one
//! connection per request (the server speaks `Connection: close`),
//! shared by the integration tests, the load generator, and the demo
//! example.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::http::{read_response, ReadError, Response};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect.
    Connect(std::io::Error),
    /// Connected but could not complete the exchange.
    Exchange(ReadError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect failed: {e}"),
            ClientError::Exchange(e) => write!(f, "exchange failed: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Issue one request and read the response. `headers` are sent as
/// given; `Content-Length` and `Connection: close` are added.
pub fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    timeout: Duration,
) -> Result<Response, ClientError> {
    let stream = TcpStream::connect_timeout(&addr, timeout).map_err(ClientError::Connect)?;
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let _ = stream.set_nodelay(true);

    let mut head = format!("{method} {target} HTTP/1.1\r\nhost: {addr}\r\n");
    for (k, v) in headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str(&format!(
        "content-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    ));

    let mut stream = stream;
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .and_then(|()| stream.flush())
        .map_err(|e| ClientError::Exchange(ReadError::Io(e)))?;

    read_response(&mut BufReader::new(stream)).map_err(ClientError::Exchange)
}

/// What came back from a [`send_raw`] exchange.
#[derive(Debug)]
pub enum RawOutcome {
    /// The server answered with a parseable HTTP response.
    Response(Response),
    /// The server closed the connection (or answered garbage) without a
    /// parseable response. For malformed input this is an acceptable
    /// server behavior; a transport-level hang is not (the read timeout
    /// turns a hang into `ReadError::Io`, reported here too).
    NoResponse(ReadError),
}

/// Write arbitrary bytes to the server and try to read back one HTTP
/// response. This is the fuzzing hook: unlike [`request`] it adds no
/// framing — truncated heads, lying `Content-Length`s, and invalid
/// UTF-8 go over the wire exactly as given, which is the point.
/// `shutdown_write` controls whether the write half is closed after
/// sending (a truncated-body fuzz case wants the server to see EOF
/// mid-message rather than waiting out its read timeout).
pub fn send_raw(
    addr: SocketAddr,
    bytes: &[u8],
    shutdown_write: bool,
    timeout: Duration,
) -> Result<RawOutcome, ClientError> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout).map_err(ClientError::Connect)?;
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let _ = stream.set_nodelay(true);

    // A server already answering (and closing) mid-write makes write_all
    // fail with a broken pipe; that's a response-shaped outcome, not a
    // client error, so fall through to the read in that case.
    let write_result = stream.write_all(bytes).and_then(|()| stream.flush());
    if shutdown_write {
        let _ = stream.shutdown(std::net::Shutdown::Write);
    }
    match read_response(&mut BufReader::new(stream)) {
        Ok(resp) => Ok(RawOutcome::Response(resp)),
        Err(e) => {
            if let Err(we) = write_result {
                return Ok(RawOutcome::NoResponse(ReadError::Io(we)));
            }
            Ok(RawOutcome::NoResponse(e))
        }
    }
}

/// `GET target`.
pub fn get(addr: SocketAddr, target: &str, timeout: Duration) -> Result<Response, ClientError> {
    request(addr, "GET", target, &[], &[], timeout)
}

/// `POST target` with a body.
pub fn post(
    addr: SocketAddr,
    target: &str,
    body: &[u8],
    timeout: Duration,
) -> Result<Response, ClientError> {
    request(addr, "POST", target, &[], body, timeout)
}
