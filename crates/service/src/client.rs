//! A minimal blocking HTTP client for the compile server: one
//! connection per request (the server speaks `Connection: close`),
//! shared by the integration tests, the load generator, and the demo
//! example.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::http::{read_response, ReadError, Response};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect.
    Connect(std::io::Error),
    /// Connected but could not complete the exchange.
    Exchange(ReadError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect failed: {e}"),
            ClientError::Exchange(e) => write!(f, "exchange failed: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Issue one request and read the response. `headers` are sent as
/// given; `Content-Length` and `Connection: close` are added.
pub fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    timeout: Duration,
) -> Result<Response, ClientError> {
    let stream = TcpStream::connect_timeout(&addr, timeout).map_err(ClientError::Connect)?;
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let _ = stream.set_nodelay(true);

    let mut head = format!("{method} {target} HTTP/1.1\r\nhost: {addr}\r\n");
    for (k, v) in headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str(&format!(
        "content-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    ));

    let mut stream = stream;
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .and_then(|()| stream.flush())
        .map_err(|e| ClientError::Exchange(ReadError::Io(e)))?;

    read_response(&mut BufReader::new(stream)).map_err(ClientError::Exchange)
}

/// `GET target`.
pub fn get(addr: SocketAddr, target: &str, timeout: Duration) -> Result<Response, ClientError> {
    request(addr, "GET", target, &[], &[], timeout)
}

/// `POST target` with a body.
pub fn post(
    addr: SocketAddr,
    target: &str,
    body: &[u8],
    timeout: Duration,
) -> Result<Response, ClientError> {
    request(addr, "POST", target, &[], body, timeout)
}
