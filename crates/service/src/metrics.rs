//! Service metrics: request/job counters, a busy-worker gauge, and a
//! log-linear latency histogram with percentile estimation.
//!
//! Everything is lock-free atomics so the hot path never blocks, and
//! `render` produces a Prometheus-style text exposition for `/metrics`
//! that the integration tests (and any real scrape) parse line-by-line.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::cache::CacheCounters;

/// Log-linear histogram: 4 linear sub-buckets per power of two, covering
/// 1µs .. ~68s of latency. Good enough for p50/p95/p99 at ~19% error.
const SUBBUCKETS: usize = 4;
const OCTAVES: usize = 26;
const BUCKETS: usize = SUBBUCKETS * OCTAVES;

/// Concurrent latency histogram; see the module docs for the bucket
/// layout.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }

    fn bucket_index(micros: u64) -> usize {
        let v = micros.max(1);
        let octave = (63 - v.leading_zeros()) as usize;
        if octave >= OCTAVES {
            return BUCKETS - 1;
        }
        // Position within the octave, split into SUBBUCKETS linear steps.
        let base = 1u64 << octave;
        let sub = ((v - base) * SUBBUCKETS as u64 / base) as usize;
        (octave * SUBBUCKETS + sub).min(BUCKETS - 1)
    }

    /// Representative (upper-edge) value of a bucket, in microseconds.
    fn bucket_upper(index: usize) -> u64 {
        let octave = index / SUBBUCKETS;
        let sub = (index % SUBBUCKETS) as u64 + 1;
        let base = 1u64 << octave;
        base + base * sub / SUBBUCKETS as u64
    }

    /// Record one observation.
    pub fn record_micros(&self, micros: u64) {
        self.buckets[Self::bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, microseconds.
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros.load(Ordering::Relaxed)
    }

    /// Estimate the latency at quantile `q` (0..=100), in microseconds.
    /// Returns 0 when empty.
    pub fn quantile_micros(&self, q: u64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        // Rank of the target observation, 1-based, ceiling.
        let rank = (total * q).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_upper(i);
            }
        }
        Self::bucket_upper(BUCKETS - 1)
    }
}

/// All service counters. One instance lives in the shared server state.
#[derive(Default)]
pub struct Metrics {
    /// HTTP requests successfully parsed off the wire.
    pub requests_total: AtomicU64,
    /// Responses with a 2xx status.
    pub responses_2xx: AtomicU64,
    /// Responses with a 4xx status.
    pub responses_4xx: AtomicU64,
    /// Responses with any other status (5xx in practice).
    pub responses_5xx: AtomicU64,
    /// `POST /compile` requests.
    pub compile_requests: AtomicU64,
    /// `POST /batch` requests.
    pub batch_requests: AtomicU64,
    /// `POST /analyze` requests.
    pub analyze_requests: AtomicU64,
    /// Lint findings reported by `/analyze` (all severities).
    pub lint_findings: AtomicU64,
    /// `deny`-severity findings reported by `/analyze`.
    pub lint_denied: AtomicU64,
    /// Jobs accepted into the queue.
    pub jobs_enqueued: AtomicU64,
    /// Jobs shed with 429 because the queue was full.
    pub jobs_rejected: AtomicU64,
    /// Jobs whose deadline passed while still queued.
    pub jobs_expired: AtomicU64,
    /// Jobs a worker finished (successfully or not).
    pub jobs_completed: AtomicU64,
    /// Jobs whose compile panicked.
    pub jobs_panicked: AtomicU64,
    /// Workers currently compiling (gauge).
    pub workers_busy: AtomicU64,
    /// End-to-end request latency.
    pub latency: LatencyHistogram,
}

fn add(out: &mut String, name: &str, help: &str, kind: &str, value: u64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
    ));
}

impl Metrics {
    /// Bump the status-class counter for a response.
    pub fn observe_status(&self, status: u16) {
        match status {
            200..=299 => self.responses_2xx.fetch_add(1, Ordering::Relaxed),
            400..=499 => self.responses_4xx.fetch_add(1, Ordering::Relaxed),
            _ => self.responses_5xx.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Prometheus text exposition, including the cache counters.
    pub fn render(&self, cache: CacheCounters, queue_depth: usize, workers: usize) -> String {
        let mut out = String::new();
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        add(
            &mut out,
            "lc_requests_total",
            "HTTP requests accepted",
            "counter",
            g(&self.requests_total),
        );
        add(
            &mut out,
            "lc_responses_2xx_total",
            "Responses with 2xx status",
            "counter",
            g(&self.responses_2xx),
        );
        add(
            &mut out,
            "lc_responses_4xx_total",
            "Responses with 4xx status",
            "counter",
            g(&self.responses_4xx),
        );
        add(
            &mut out,
            "lc_responses_5xx_total",
            "Responses with 5xx status",
            "counter",
            g(&self.responses_5xx),
        );
        add(
            &mut out,
            "lc_compile_requests_total",
            "POST /compile requests",
            "counter",
            g(&self.compile_requests),
        );
        add(
            &mut out,
            "lc_batch_requests_total",
            "POST /batch requests",
            "counter",
            g(&self.batch_requests),
        );
        add(
            &mut out,
            "lc_analyze_requests_total",
            "POST /analyze requests",
            "counter",
            g(&self.analyze_requests),
        );
        add(
            &mut out,
            "lc_lint_findings_total",
            "Lint findings reported by /analyze",
            "counter",
            g(&self.lint_findings),
        );
        add(
            &mut out,
            "lc_lint_denied_total",
            "Deny-severity lint findings reported by /analyze",
            "counter",
            g(&self.lint_denied),
        );
        add(
            &mut out,
            "lc_jobs_enqueued_total",
            "Jobs accepted into the compile queue",
            "counter",
            g(&self.jobs_enqueued),
        );
        add(
            &mut out,
            "lc_jobs_rejected_total",
            "Jobs shed with 429 because the queue was full",
            "counter",
            g(&self.jobs_rejected),
        );
        add(
            &mut out,
            "lc_jobs_expired_total",
            "Jobs that missed their deadline",
            "counter",
            g(&self.jobs_expired),
        );
        add(
            &mut out,
            "lc_jobs_completed_total",
            "Jobs fully compiled by a worker",
            "counter",
            g(&self.jobs_completed),
        );
        add(
            &mut out,
            "lc_jobs_panicked_total",
            "Jobs whose compile panicked (answered 500)",
            "counter",
            g(&self.jobs_panicked),
        );
        add(
            &mut out,
            "lc_cache_hits_total",
            "Compile cache hits",
            "counter",
            cache.hits,
        );
        add(
            &mut out,
            "lc_cache_misses_total",
            "Compile cache misses",
            "counter",
            cache.misses,
        );
        add(
            &mut out,
            "lc_cache_insertions_total",
            "Compile cache insertions",
            "counter",
            cache.insertions,
        );
        add(
            &mut out,
            "lc_cache_evictions_total",
            "Compile cache evictions",
            "counter",
            cache.evictions,
        );
        add(
            &mut out,
            "lc_cache_entries",
            "Compile cache resident entries",
            "gauge",
            cache.entries,
        );
        add(
            &mut out,
            "lc_queue_depth",
            "Jobs waiting in the compile queue",
            "gauge",
            queue_depth as u64,
        );
        add(
            &mut out,
            "lc_workers_busy",
            "Workers currently compiling",
            "gauge",
            g(&self.workers_busy),
        );
        add(
            &mut out,
            "lc_workers_total",
            "Size of the compile worker pool",
            "gauge",
            workers as u64,
        );
        add(
            &mut out,
            "lc_request_latency_count",
            "Requests measured by the latency histogram",
            "counter",
            self.latency.count(),
        );
        add(
            &mut out,
            "lc_request_latency_sum_micros",
            "Total measured latency in microseconds",
            "counter",
            self.latency.sum_micros(),
        );
        for (q, name) in [(50, "p50"), (95, "p95"), (99, "p99")] {
            add(
                &mut out,
                &format!("lc_request_latency_{name}_micros"),
                "Latency quantile estimate in microseconds",
                "gauge",
                self.latency.quantile_micros(q),
            );
        }
        out
    }
}

/// Pull `name <integer>` out of a Prometheus text exposition. Used by the
/// integration tests and the load generator; exact-match on the metric
/// name (labels are not used by this service).
pub fn scrape_counter(text: &str, name: &str) -> Option<u64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse().ok()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let h = LatencyHistogram::new();
        for micros in 1..=1000u64 {
            h.record_micros(micros);
        }
        let p50 = h.quantile_micros(50);
        let p99 = h.quantile_micros(99);
        // Log-linear buckets give ~19% resolution; generous brackets.
        assert!((300..=800).contains(&p50), "p50 was {p50}");
        assert!((800..=1600).contains(&p99), "p99 was {p99}");
        assert!(p50 <= p99);
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_micros(50), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn extreme_latencies_clamp_to_the_last_bucket() {
        let h = LatencyHistogram::new();
        h.record_micros(u64::MAX);
        h.record_micros(0);
        assert_eq!(h.count(), 2);
        assert!(h.quantile_micros(99) > 0);
    }

    #[test]
    fn render_and_scrape_round_trip() {
        let m = Metrics::default();
        m.requests_total.fetch_add(7, Ordering::Relaxed);
        m.observe_status(200);
        m.observe_status(429);
        m.observe_status(503);
        let cache = CacheCounters {
            hits: 3,
            misses: 4,
            insertions: 4,
            evictions: 1,
            entries: 3,
        };
        let text = m.render(cache, 5, 2);
        assert_eq!(scrape_counter(&text, "lc_requests_total"), Some(7));
        assert_eq!(scrape_counter(&text, "lc_responses_2xx_total"), Some(1));
        assert_eq!(scrape_counter(&text, "lc_responses_4xx_total"), Some(1));
        assert_eq!(scrape_counter(&text, "lc_responses_5xx_total"), Some(1));
        assert_eq!(scrape_counter(&text, "lc_cache_hits_total"), Some(3));
        assert_eq!(scrape_counter(&text, "lc_queue_depth"), Some(5));
        assert_eq!(scrape_counter(&text, "lc_workers_total"), Some(2));
        // Every metric line should be parseable Prometheus text.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split(' ').count() == 2,
                "bad line: {line}"
            );
        }
    }
}
