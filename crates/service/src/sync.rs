//! Poison-recovering lock helpers.
//!
//! `Mutex::lock().unwrap()` turns one panicked thread into a cascade:
//! the mutex is poisoned, every later `lock()` returns `Err`, and the
//! `unwrap` re-panics — so a single panicking compile worker would wedge
//! the shared cache and queue and turn every subsequent request into a
//! 500. None of the service's critical sections leave their data in a
//! broken state on panic (counters are atomics; the cache map and queue
//! are structurally consistent between statements), so the right policy
//! is to *recover*: take the guard out of the [`std::sync::PoisonError`]
//! and keep
//! serving. The fuzzer's service mode leans on this — a malformed
//! request must never take the server down with it.

use std::sync::{Condvar, Mutex, MutexGuard};

/// Lock `m`, recovering the guard if a previous holder panicked.
pub fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Wait on `cv`, recovering the guard if the mutex was poisoned while
/// waiting.
pub fn wait_recovering<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn recovers_a_poisoned_mutex() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        // A plain `.lock().unwrap()` would panic here; recovery hands
        // back the guard with the data intact.
        assert_eq!(*lock_recovering(&m), 7);
        *lock_recovering(&m) = 8;
        assert_eq!(*lock_recovering(&m), 8);
    }
}
