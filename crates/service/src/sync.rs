//! Poison-recovering lock helpers.
//!
//! These helpers started here, but the driver's parallel batch compiler
//! needed the same policy, so their home is now [`lc_driver::sync`] (the
//! lowest crate with a worker pool). This module re-exports them
//! unchanged — see the driver module's docs for why *recovering* from a
//! [`std::sync::PoisonError`] is the right call for every critical
//! section in this workspace: a panicking compile worker must never
//! wedge the shared cache or queue and turn every later request into an
//! error.

pub use lc_driver::sync::{into_inner_recovering, lock_recovering, wait_recovering};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    // The behaviour contract the service relies on, exercised through
    // the re-export so a future re-home can't silently drop it.
    #[test]
    fn recovers_a_poisoned_mutex() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        // A plain `.lock().unwrap()` would panic here; recovery hands
        // back the guard with the data intact.
        assert_eq!(*lock_recovering(&m), 7);
        *lock_recovering(&m) = 8;
        assert_eq!(*lock_recovering(&m), 8);
        let m = Arc::try_unwrap(m).expect("sole owner");
        assert_eq!(into_inner_recovering(m), 8);
    }
}
