//! Top-level programs: array declarations plus a statement list.

use crate::error::{Error, Result};
use crate::stmt::Stmt;
use crate::symbol::Symbol;

/// A declared array with fixed extents. Subscripts at runtime are 1-based
/// (`1..=extent`), matching the Fortran-flavoured loops of the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Array name.
    pub name: Symbol,
    /// Extent of each dimension (row-major storage).
    pub dims: Vec<usize>,
}

impl ArrayDecl {
    /// Construct a declaration.
    pub fn new(name: impl Into<Symbol>, dims: Vec<usize>) -> Self {
        ArrayDecl {
            name: name.into(),
            dims,
        }
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True when the array has zero elements (some extent is 0).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A whole program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Declared arrays.
    pub arrays: Vec<ArrayDecl>,
    /// Top-level statements, executed in order.
    pub body: Vec<Stmt>,
}

impl Program {
    /// Empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Add an array declaration (builder style).
    pub fn with_array(mut self, name: impl Into<Symbol>, dims: Vec<usize>) -> Self {
        self.arrays.push(ArrayDecl::new(name, dims));
        self
    }

    /// Add a statement (builder style).
    pub fn with_stmt(mut self, stmt: Stmt) -> Self {
        self.body.push(stmt);
        self
    }

    /// Add several statements (builder style).
    pub fn with_stmt_all(mut self, stmts: Vec<Stmt>) -> Self {
        self.body.extend(stmts);
        self
    }

    /// Find a declaration by name.
    pub fn array(&self, name: &str) -> Option<&ArrayDecl> {
        self.arrays.iter().find(|a| a.name.as_str() == name)
    }

    /// Validate that array declarations are unique and that every array
    /// reference in the body names a declared array with the right rank.
    /// (Bounds are checked at runtime by the interpreter.)
    pub fn check(&self) -> Result<()> {
        for (i, a) in self.arrays.iter().enumerate() {
            if self.arrays[..i].iter().any(|b| b.name == a.name) {
                return Err(Error::DuplicateArray(a.name.clone()));
            }
        }
        check_stmts(self, &self.body)
    }
}

fn check_ref(prog: &Program, array: &Symbol, rank: usize) -> Result<()> {
    match prog.array(array.as_str()) {
        None => Err(Error::UnknownArray(array.clone())),
        Some(decl) if decl.dims.len() != rank => Err(Error::RankMismatch {
            array: array.clone(),
            expected: decl.dims.len(),
            got: rank,
        }),
        Some(_) => Ok(()),
    }
}

fn check_expr(prog: &Program, e: &crate::expr::Expr) -> Result<()> {
    use crate::expr::Expr;
    match e {
        Expr::Const(_) | Expr::Var(_) => Ok(()),
        Expr::Read(r) => {
            check_ref(prog, &r.array, r.indices.len())?;
            r.indices.iter().try_for_each(|ix| check_expr(prog, ix))
        }
        Expr::Unary(_, a) => check_expr(prog, a),
        Expr::Binary(_, a, b) => {
            check_expr(prog, a)?;
            check_expr(prog, b)
        }
    }
}

fn check_cond(prog: &Program, c: &crate::expr::Cond) -> Result<()> {
    use crate::expr::Cond;
    match c {
        Cond::Cmp(_, a, b) => {
            check_expr(prog, a)?;
            check_expr(prog, b)
        }
        Cond::Not(x) => check_cond(prog, x),
        Cond::And(a, b) | Cond::Or(a, b) => {
            check_cond(prog, a)?;
            check_cond(prog, b)
        }
    }
}

fn check_stmts(prog: &Program, stmts: &[Stmt]) -> Result<()> {
    for s in stmts {
        match s {
            Stmt::AssignScalar { value, .. } => check_expr(prog, value)?,
            Stmt::AssignArray { target, value } => {
                check_ref(prog, &target.array, target.indices.len())?;
                target
                    .indices
                    .iter()
                    .try_for_each(|ix| check_expr(prog, ix))?;
                check_expr(prog, value)?;
            }
            Stmt::Loop(l) => {
                check_expr(prog, &l.lower)?;
                check_expr(prog, &l.upper)?;
                check_expr(prog, &l.step)?;
                check_stmts(prog, &l.body)?;
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                check_cond(prog, cond)?;
                check_stmts(prog, then_body)?;
                check_stmts(prog, else_body)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn check_accepts_wellformed_program() {
        let p = Program::new()
            .with_array("A", vec![4, 4])
            .with_stmt(Stmt::store(
                "A",
                vec![Expr::lit(1), Expr::lit(2)],
                Expr::lit(5),
            ));
        assert!(p.check().is_ok());
    }

    #[test]
    fn check_rejects_unknown_array() {
        let p = Program::new().with_stmt(Stmt::store("B", vec![Expr::lit(1)], Expr::lit(0)));
        assert_eq!(p.check(), Err(Error::UnknownArray(Symbol::new("B"))));
    }

    #[test]
    fn check_rejects_rank_mismatch() {
        let p = Program::new()
            .with_array("A", vec![4, 4])
            .with_stmt(Stmt::store("A", vec![Expr::lit(1)], Expr::lit(0)));
        assert!(matches!(p.check(), Err(Error::RankMismatch { .. })));
    }

    #[test]
    fn check_rejects_duplicate_array() {
        let p = Program::new()
            .with_array("A", vec![4])
            .with_array("A", vec![8]);
        assert_eq!(p.check(), Err(Error::DuplicateArray(Symbol::new("A"))));
    }

    #[test]
    fn check_descends_into_reads_inside_conditions() {
        use crate::expr::{CmpOp, Cond};
        let p = Program::new().with_stmt(Stmt::If {
            cond: Cond::cmp(CmpOp::Lt, Expr::read("M", vec![Expr::lit(1)]), Expr::lit(0)),
            then_body: vec![],
            else_body: vec![],
        });
        assert_eq!(p.check(), Err(Error::UnknownArray(Symbol::new("M"))));
    }

    #[test]
    fn array_len() {
        let d = ArrayDecl::new("A", vec![3, 4, 5]);
        assert_eq!(d.len(), 60);
        assert!(!d.is_empty());
        assert!(ArrayDecl::new("Z", vec![0, 9]).is_empty());
    }
}
