//! Exact integer arithmetic helpers shared by the interpreter and the
//! index-recovery machinery.
//!
//! The paper's index-recovery formulas are stated with mathematical
//! (floor/ceiling) division, which differs from Rust's truncating `/` for
//! negative operands. Everything in this crate — and in `lc-xform`'s
//! recovery code — goes through these helpers so the semantics are pinned
//! down in exactly one place.

use crate::error::{Error, Result};

/// Floor division: largest `q` with `q * b <= a`. Errors on `b == 0`.
pub fn floor_div(a: i64, b: i64) -> Result<i64> {
    if b == 0 {
        return Err(Error::DivisionByZero);
    }
    Ok(floor_div_unchecked(a, b))
}

/// Floor division without the zero check (callers guarantee `b != 0`).
#[inline]
pub fn floor_div_unchecked(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Ceiling division: smallest `q` with `q * b >= a`. Errors on `b == 0`.
pub fn ceil_div(a: i64, b: i64) -> Result<i64> {
    if b == 0 {
        return Err(Error::DivisionByZero);
    }
    Ok(ceil_div_unchecked(a, b))
}

/// Ceiling division without the zero check (callers guarantee `b != 0`).
#[inline]
pub fn ceil_div_unchecked(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

/// Mathematical modulus with the sign of the divisor's magnitude:
/// `a - floor_div(a, b) * b`, always in `0..|b|` for positive `b`.
pub fn floor_mod(a: i64, b: i64) -> Result<i64> {
    if b == 0 {
        return Err(Error::DivisionByZero);
    }
    Ok(a - floor_div_unchecked(a, b) * b)
}

/// Greatest common divisor (non-negative; `gcd(0, 0) == 0`).
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a as i64
}

/// Checked product of a slice of trip counts, guarding against overflow
/// when computing `N = N1 * N2 * ... * Nm`.
pub fn checked_product(dims: &[u64]) -> Option<u64> {
    dims.iter().try_fold(1u64, |acc, &d| acc.checked_mul(d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_div_matches_mathematical_definition() {
        for a in -20..=20 {
            for b in [-7, -3, -1, 1, 2, 5] {
                let q = floor_div(a, b).unwrap();
                // Definitive check: q == floor(a/b) in rationals.
                let expected = (a as f64 / b as f64).floor() as i64;
                assert_eq!(q, expected, "floor_div({a},{b})");
            }
        }
    }

    #[test]
    fn ceil_div_matches_mathematical_definition() {
        for a in -20..=20 {
            for b in [-7, -3, -1, 1, 2, 5] {
                let q = ceil_div(a, b).unwrap();
                let expected = (a as f64 / b as f64).ceil() as i64;
                assert_eq!(q, expected, "ceil_div({a},{b})");
            }
        }
    }

    #[test]
    fn floor_mod_in_range_for_positive_divisor() {
        for a in -20..=20 {
            for b in [1, 2, 3, 7] {
                let r = floor_mod(a, b).unwrap();
                assert!((0..b).contains(&r), "floor_mod({a},{b})={r}");
                assert_eq!(floor_div_unchecked(a, b) * b + r, a);
            }
        }
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert!(floor_div(5, 0).is_err());
        assert!(ceil_div(5, 0).is_err());
        assert!(floor_mod(5, 0).is_err());
    }

    #[test]
    fn ceil_floor_duality() {
        // ceil(a/b) == -floor(-a/b) for b > 0.
        for a in -30..=30 {
            for b in 1..=9 {
                assert_eq!(
                    ceil_div_unchecked(a, b),
                    -floor_div_unchecked(-a, b),
                    "a={a} b={b}"
                );
            }
        }
    }

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(17, 13), 1);
    }

    #[test]
    fn checked_product_detects_overflow() {
        assert_eq!(checked_product(&[3, 4, 5]), Some(60));
        assert_eq!(checked_product(&[]), Some(1));
        assert_eq!(checked_product(&[u64::MAX, 2]), None);
    }
}
