//! Perfect-nest extraction.
//!
//! A *perfect nest* is a chain of loops in which each loop's body consists
//! of exactly one statement — the next loop — until the innermost loop,
//! whose body is arbitrary. Loop coalescing (and interchange) operate on
//! this shape; [`extract_nest`] carves it out of a [`Loop`] and
//! [`Nest::to_loop`] rebuilds it.

use crate::expr::Expr;
use crate::stmt::{Loop, LoopKind, Stmt};
use crate::symbol::Symbol;

/// One level of a nest: a loop minus its body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopHeader {
    /// Index variable.
    pub var: Symbol,
    /// Inclusive lower bound.
    pub lower: Expr,
    /// Inclusive upper bound.
    pub upper: Expr,
    /// Step.
    pub step: Expr,
    /// Serial / doall / doacross.
    pub kind: LoopKind,
}

impl LoopHeader {
    fn from_loop(l: &Loop) -> Self {
        LoopHeader {
            var: l.var.clone(),
            lower: l.lower.clone(),
            upper: l.upper.clone(),
            step: l.step.clone(),
            kind: l.kind,
        }
    }

    /// Constant trip count if bounds and step are literals (see
    /// [`Loop::const_trip_count`]).
    pub fn const_trip_count(&self) -> Option<u64> {
        Loop {
            var: self.var.clone(),
            lower: self.lower.clone(),
            upper: self.upper.clone(),
            step: self.step.clone(),
            kind: self.kind,
            body: vec![],
        }
        .const_trip_count()
    }

    /// True when bounds are `1..=N` with unit step, `N` constant.
    pub fn is_normalized(&self) -> bool {
        self.lower.as_const() == Some(1)
            && self.step.as_const() == Some(1)
            && self.upper.as_const().is_some()
    }
}

/// A perfect nest: the chain of loop headers (outermost first) plus the
/// innermost body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nest {
    /// Loop headers, outermost first.
    pub loops: Vec<LoopHeader>,
    /// The innermost loop's body.
    pub body: Vec<Stmt>,
}

impl Nest {
    /// Nest depth (number of loops).
    pub fn depth(&self) -> usize {
        self.loops.len()
    }

    /// Trip count of every level, if all bounds are constant.
    pub fn trip_counts(&self) -> Option<Vec<u64>> {
        self.loops
            .iter()
            .map(LoopHeader::const_trip_count)
            .collect()
    }

    /// Product of all trip counts (the coalesced loop's length), guarding
    /// against overflow.
    pub fn total_iterations(&self) -> Option<u64> {
        let counts = self.trip_counts()?;
        crate::arith::checked_product(&counts)
    }

    /// True when every level is a `doall`.
    pub fn all_doall(&self) -> bool {
        self.loops.iter().all(|h| h.kind.is_doall())
    }

    /// True when every level is normalized (`1..=N`, unit step).
    pub fn is_normalized(&self) -> bool {
        self.loops.iter().all(LoopHeader::is_normalized)
    }

    /// Rebuild the nest as a single [`Loop`] statement tree.
    pub fn to_loop(&self) -> Loop {
        assert!(!self.loops.is_empty(), "empty nest");
        let mut body = self.body.clone();
        for h in self.loops.iter().skip(1).rev() {
            body = vec![Stmt::Loop(Loop {
                var: h.var.clone(),
                lower: h.lower.clone(),
                upper: h.upper.clone(),
                step: h.step.clone(),
                kind: h.kind,
                body,
            })];
        }
        let h = &self.loops[0];
        Loop {
            var: h.var.clone(),
            lower: h.lower.clone(),
            upper: h.upper.clone(),
            step: h.step.clone(),
            kind: h.kind,
            body,
        }
    }
}

/// Extract the maximal perfect nest rooted at `l`: descend while the body
/// is exactly one loop statement.
pub fn extract_nest(l: &Loop) -> Nest {
    let mut loops = vec![LoopHeader::from_loop(l)];
    let mut body = &l.body;
    while let [Stmt::Loop(inner)] = body.as_slice() {
        loops.push(LoopHeader::from_loop(inner));
        body = &inner.body;
    }
    Nest {
        loops,
        body: body.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn first_loop(src: &str) -> Loop {
        let p = parse_program(src).unwrap();
        match &p.body[0] {
            Stmt::Loop(l) => l.clone(),
            other => panic!("expected loop, got {other:?}"),
        }
    }

    #[test]
    fn extracts_triple_nest() {
        let l = first_loop(
            "
            array A[2][3][4];
            doall i = 1..2 {
                doall j = 1..3 {
                    doall k = 1..4 {
                        A[i][j][k] = i + j + k;
                    }
                }
            }
            ",
        );
        let nest = extract_nest(&l);
        assert_eq!(nest.depth(), 3);
        assert_eq!(nest.trip_counts(), Some(vec![2, 3, 4]));
        assert_eq!(nest.total_iterations(), Some(24));
        assert!(nest.all_doall());
        assert!(nest.is_normalized());
        assert_eq!(nest.body.len(), 1);
    }

    #[test]
    fn imperfect_nest_stops_at_extra_statement() {
        let l = first_loop(
            "
            array A[2][3];
            doall i = 1..2 {
                s = 0;
                doall j = 1..3 {
                    A[i][j] = s;
                }
            }
            ",
        );
        let nest = extract_nest(&l);
        assert_eq!(nest.depth(), 1);
        assert_eq!(nest.body.len(), 2);
    }

    #[test]
    fn to_loop_round_trips() {
        let l = first_loop(
            "
            array A[5][6];
            doall i = 1..5 {
                for j = 1..6 {
                    A[i][j] = i * j;
                }
            }
            ",
        );
        let nest = extract_nest(&l);
        assert_eq!(nest.to_loop(), l);
    }

    #[test]
    fn mixed_kinds_not_all_doall() {
        let l = first_loop(
            "
            array A[5][6];
            doall i = 1..5 {
                for j = 1..6 {
                    A[i][j] = i;
                }
            }
            ",
        );
        let nest = extract_nest(&l);
        assert!(!nest.all_doall());
        assert_eq!(nest.loops[0].kind, LoopKind::Doall);
        assert_eq!(nest.loops[1].kind, LoopKind::Serial);
    }

    #[test]
    fn symbolic_bounds_have_no_trip_counts() {
        let p = parse_program(
            "
            array A[9];
            n = 9;
            doall i = 1..n {
                A[i] = i;
            }
            ",
        )
        .unwrap();
        let l = match &p.body[1] {
            Stmt::Loop(l) => l.clone(),
            other => panic!("{other:?}"),
        };
        let nest = extract_nest(&l);
        assert_eq!(nest.trip_counts(), None);
        assert!(!nest.is_normalized());
    }

    #[test]
    fn non_unit_step_not_normalized() {
        let l = first_loop(
            "
            array A[10];
            doall i = 1..10 step 2 {
                A[i] = i;
            }
            ",
        );
        let nest = extract_nest(&l);
        assert!(!nest.is_normalized());
        assert_eq!(nest.trip_counts(), Some(vec![5]));
    }
}
