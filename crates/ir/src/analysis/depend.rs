//! Data-dependence testing for perfect nests: GCD test + Banerjee bounds
//! with hierarchical direction-vector refinement.
//!
//! The tester is *conservative*: it may report a dependence that cannot
//! actually occur (over-approximation is safe — the transformation will
//! refuse to parallelize), but it never misses a real dependence on affine
//! subscripts. Non-affine subscripts are treated as conflicting with
//! everything in the same array.
//!
//! A dependence is **carried at level k** when it can occur between two
//! iterations that agree on levels `1..k` and differ at level `k` (the
//! first non-`=` entry of its direction vector). Level `k` of a nest is
//! DOALL-legal exactly when no dependence is carried at `k`.

use std::collections::BTreeSet;

use crate::analysis::affine::Affine;
use crate::analysis::nest::Nest;
use crate::arith::gcd;
use crate::error::Result;
use crate::expr::{Cond, Expr};
use crate::stmt::Stmt;
use crate::symbol::Symbol;

/// Direction of `i_k` (source iteration) relative to `i'_k` (sink
/// iteration) at one nest level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Dir {
    /// `i_k < i'_k`
    Lt,
    /// `i_k = i'_k`
    Eq,
    /// `i_k > i'_k`
    Gt,
}

impl Dir {
    /// Conventional one-character rendering: `<`, `=`, or `>`.
    pub fn symbol(self) -> &'static str {
        match self {
            Dir::Lt => "<",
            Dir::Eq => "=",
            Dir::Gt => ">",
        }
    }
}

/// Render a direction vector in the conventional `(<, =, >)` notation.
pub fn format_direction(dv: &[Dir]) -> String {
    let inner: Vec<&str> = dv.iter().map(|d| d.symbol()).collect();
    format!("({})", inner.join(", "))
}

/// Classification of a dependence by the access kinds of its endpoints,
/// in textual order within the loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// Write then read (true/flow dependence).
    Flow,
    /// Read then write (anti dependence).
    Anti,
    /// Write then write (output dependence).
    Output,
}

impl DepKind {
    /// Lower-case noun used in diagnostics: `flow`, `anti`, or `output`.
    pub fn name(self) -> &'static str {
        match self {
            DepKind::Flow => "flow",
            DepKind::Anti => "anti",
            DepKind::Output => "output",
        }
    }
}

/// One (possibly spurious) dependence between two references of the same
/// array, with every direction vector under which it may hold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dependence {
    /// Array involved.
    pub array: Symbol,
    /// Flow / anti / output.
    pub kind: DepKind,
    /// All feasible direction vectors (each of length `depth`). The
    /// all-`Eq` vector denotes a loop-independent dependence.
    pub directions: Vec<Vec<Dir>>,
    /// Index (into the analyzed body's top-level statement list) of the
    /// statement containing the dependence *source* (the endpoint whose
    /// iteration executes first under the normalized orientation).
    pub src_stmt: usize,
    /// Top-level statement index of the dependence *sink*.
    pub dst_stmt: usize,
}

impl Dependence {
    /// The levels (0-based) at which this dependence is carried.
    pub fn carried_levels(&self) -> BTreeSet<usize> {
        self.directions
            .iter()
            .filter_map(|dv| dv.iter().position(|d| *d != Dir::Eq))
            .collect()
    }
}

/// The result of analyzing a nest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NestDeps {
    /// Nest depth the direction vectors refer to.
    pub depth: usize,
    /// All detected (possibly conservative) dependences.
    pub deps: Vec<Dependence>,
}

impl NestDeps {
    /// True when some dependence is carried at `level` (0-based).
    pub fn carried_at(&self, level: usize) -> bool {
        self.deps
            .iter()
            .any(|d| d.carried_levels().contains(&level))
    }

    /// Per-level DOALL legality: `true` means no dependence carried there.
    pub fn parallelizable_levels(&self) -> Vec<bool> {
        (0..self.depth).map(|l| !self.carried_at(l)).collect()
    }

    /// True when no level carries a dependence — the entire nest may be
    /// coalesced into one DOALL.
    pub fn fully_parallel(&self) -> bool {
        (0..self.depth).all(|l| !self.carried_at(l))
    }

    /// The concrete dependence blocking DOALL execution of `level`
    /// (0-based), or `None` when the level is dependence-free.
    ///
    /// Returns the first dependence (in `deps` order) carried at the
    /// level together with the first of its direction vectors whose
    /// leading non-`=` entry sits at `level` — enough for a diagnostic
    /// to name the dependence kind, the direction vector, and both
    /// access sites instead of reporting a bare `carried_at: true`.
    pub fn explain(&self, level: usize) -> Option<BlockingDep<'_>> {
        for dep in &self.deps {
            for dv in &dep.directions {
                if dv.iter().position(|d| *d != Dir::Eq) == Some(level) {
                    return Some(BlockingDep { dep, direction: dv });
                }
            }
        }
        None
    }
}

/// The concrete dependence blocking DOALL execution of a level, as
/// returned by [`NestDeps::explain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockingDep<'a> {
    /// The dependence carried at the queried level.
    pub dep: &'a Dependence,
    /// The specific direction vector of `dep` carried there.
    pub direction: &'a [Dir],
}

/// Analyze a perfect nest for loop-carried dependences.
pub fn analyze_nest(nest: &Nest) -> Result<NestDeps> {
    let levels: Vec<LevelInfo> = nest
        .loops
        .iter()
        .map(|h| {
            let lo = h.lower.as_const().unwrap_or(1);
            let hi = h.upper.as_const().unwrap_or(WIDE_BOUND);
            LevelInfo {
                var: h.var.clone(),
                lo,
                hi,
            }
        })
        .collect();

    let mut refs = Vec::new();
    collect_stmts(&nest.body, &mut refs);

    let mut deps = Vec::new();
    for a in 0..refs.len() {
        for b in a..refs.len() {
            let (ra, rb) = (&refs[a], &refs[b]);
            if ra.array != rb.array {
                continue;
            }
            if !ra.is_write && !rb.is_write {
                continue; // read-read is irrelevant
            }
            let self_pair = a == b;
            let directions = test_pair(&levels, ra, rb, self_pair);
            if directions.is_empty() {
                continue;
            }
            let textual_kind = match (ra.is_write, rb.is_write) {
                (true, true) => DepKind::Output,
                (true, false) => DepKind::Flow,
                (false, true) => DepKind::Anti,
                (false, false) => unreachable!(),
            };
            // Normalize orientation: a vector whose first non-Eq entry is
            // `>` describes a dependence whose *source* is the later
            // reference; flip it (reverse every entry, swap endpoint roles)
            // so the source iteration always executes first. Flipping swaps
            // flow and anti.
            let mut keep = Vec::new();
            let mut flipped = Vec::new();
            for v in directions {
                match v.iter().find(|d| **d != Dir::Eq) {
                    Some(Dir::Gt) => flipped.push(
                        v.iter()
                            .map(|d| match d {
                                Dir::Lt => Dir::Gt,
                                Dir::Eq => Dir::Eq,
                                Dir::Gt => Dir::Lt,
                            })
                            .collect(),
                    ),
                    _ => keep.push(v),
                }
            }
            if !keep.is_empty() {
                deps.push(Dependence {
                    array: ra.array.clone(),
                    kind: textual_kind,
                    directions: keep,
                    src_stmt: ra.stmt,
                    dst_stmt: rb.stmt,
                });
            }
            if !flipped.is_empty() {
                let kind = match textual_kind {
                    DepKind::Flow => DepKind::Anti,
                    DepKind::Anti => DepKind::Flow,
                    DepKind::Output => DepKind::Output,
                };
                deps.push(Dependence {
                    array: ra.array.clone(),
                    kind,
                    directions: flipped,
                    src_stmt: rb.stmt,
                    dst_stmt: ra.stmt,
                });
            }
        }
    }
    Ok(NestDeps {
        depth: levels.len(),
        deps,
    })
}

/// Upper bound used for symbolic loop bounds and free variables: wide
/// enough that any feasible iteration distance is covered (conservative).
const WIDE_BOUND: i64 = 1_000_000_000;

struct LevelInfo {
    var: Symbol,
    lo: i64,
    hi: i64,
}

struct RefInfo {
    array: Symbol,
    is_write: bool,
    /// Affine form per subscript position; `None` = non-affine.
    subs: Vec<Option<Affine>>,
    /// Which top-level statement of the analyzed body this ref sits in.
    stmt: usize,
    /// Variables pinned to a constant by enclosing `if v == c` guards
    /// (guard-aware analysis: a ref under `if j == 1 { … }` can only
    /// execute in iterations with `j = 1`).
    pins: std::collections::BTreeMap<Symbol, i64>,
}

type Pins = std::collections::BTreeMap<Symbol, i64>;

fn collect_stmts(stmts: &[Stmt], out: &mut Vec<RefInfo>) {
    for (i, s) in stmts.iter().enumerate() {
        collect_stmts_at(std::slice::from_ref(s), i, &Pins::new(), out);
    }
}

/// Extract `v == c` equalities implied by a guard condition (only the
/// plain conjunctive forms; anything else pins nothing — conservative).
fn guard_pins(c: &Cond, out: &mut Pins) {
    match c {
        Cond::Cmp(crate::expr::CmpOp::Eq, a, b) => {
            if let (Expr::Var(v), Some(k)) = (a, b.as_const()) {
                out.insert(v.clone(), k);
            } else if let (Some(k), Expr::Var(v)) = (a.as_const(), b) {
                out.insert(v.clone(), k);
            }
        }
        Cond::And(a, b) => {
            guard_pins(a, out);
            guard_pins(b, out);
        }
        _ => {}
    }
}

fn collect_stmts_at(stmts: &[Stmt], idx: usize, pins: &Pins, out: &mut Vec<RefInfo>) {
    for s in stmts {
        match s {
            Stmt::AssignScalar { value, .. } => collect_expr(value, idx, pins, out),
            Stmt::AssignArray { target, value } => {
                collect_expr(value, idx, pins, out);
                for ix in &target.indices {
                    collect_expr(ix, idx, pins, out);
                }
                out.push(RefInfo {
                    array: target.array.clone(),
                    is_write: true,
                    subs: target.indices.iter().map(Affine::from_expr).collect(),
                    stmt: idx,
                    pins: pins.clone(),
                });
            }
            Stmt::Loop(l) => {
                collect_expr(&l.lower, idx, pins, out);
                collect_expr(&l.upper, idx, pins, out);
                collect_expr(&l.step, idx, pins, out);
                // The loop rebinds its variable: any pin on it no longer
                // applies inside.
                let mut inner = pins.clone();
                inner.remove(&l.var);
                collect_stmts_at(&l.body, idx, &inner, out);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                collect_cond(cond, idx, pins, out);
                let mut then_pins = pins.clone();
                guard_pins(cond, &mut then_pins);
                collect_stmts_at(then_body, idx, &then_pins, out);
                collect_stmts_at(else_body, idx, pins, out);
            }
        }
    }
}

fn collect_expr(e: &Expr, idx: usize, pins: &Pins, out: &mut Vec<RefInfo>) {
    match e {
        Expr::Const(_) | Expr::Var(_) => {}
        Expr::Read(r) => {
            for ix in &r.indices {
                collect_expr(ix, idx, pins, out);
            }
            out.push(RefInfo {
                array: r.array.clone(),
                is_write: false,
                subs: r.indices.iter().map(Affine::from_expr).collect(),
                stmt: idx,
                pins: pins.clone(),
            });
        }
        Expr::Unary(_, a) => collect_expr(a, idx, pins, out),
        Expr::Binary(_, a, b) => {
            collect_expr(a, idx, pins, out);
            collect_expr(b, idx, pins, out);
        }
    }
}

fn collect_cond(c: &Cond, idx: usize, pins: &Pins, out: &mut Vec<RefInfo>) {
    match c {
        Cond::Cmp(_, a, b) => {
            collect_expr(a, idx, pins, out);
            collect_expr(b, idx, pins, out);
        }
        Cond::Not(x) => collect_cond(x, idx, pins, out),
        Cond::And(a, b) | Cond::Or(a, b) => {
            collect_cond(a, idx, pins, out);
            collect_cond(b, idx, pins, out);
        }
    }
}

/// Closed interval over `i128`. A single `coeff × bound` product cannot
/// overflow `i128` (both factors are `i64`), but a long chain of
/// accumulated terms could; [`Ival::add`] therefore *saturates* at the
/// `i128` limits. Saturation only ever widens the interval, which keeps
/// the test conservative (a wider interval can only make `contains_zero`
/// more likely, i.e. report more dependences, never fewer).
#[derive(Debug, Clone, Copy)]
struct Ival {
    lo: i128,
    hi: i128,
}

impl Ival {
    fn point(v: i128) -> Ival {
        Ival { lo: v, hi: v }
    }

    fn scaled(coeff: i64, lo: i64, hi: i64) -> Ival {
        let a = coeff as i128 * lo as i128;
        let b = coeff as i128 * hi as i128;
        Ival {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    fn add(self, other: Ival) -> Ival {
        Ival {
            lo: self.lo.saturating_add(other.lo),
            hi: self.hi.saturating_add(other.hi),
        }
    }

    fn contains_zero(self) -> bool {
        self.lo <= 0 && self.hi >= 0
    }
}

/// Internal direction including the unconstrained wildcard used during
/// hierarchical refinement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DirX {
    Lt,
    Eq,
    Gt,
    Any,
}

/// Enumerate feasible direction vectors for the pair, pruning whole
/// subtrees with `Any`-suffixed tests.
fn test_pair(levels: &[LevelInfo], ra: &RefInfo, rb: &RefInfo, self_pair: bool) -> Vec<Vec<Dir>> {
    // Rank mismatch cannot happen (Program::check), but be defensive.
    if ra.subs.len() != rb.subs.len() {
        return vec![all_dirs_any(levels.len())];
    }
    let mut found = Vec::new();
    let mut dirs = vec![DirX::Any; levels.len()];
    search(levels, ra, rb, self_pair, 0, &mut dirs, &mut found);
    found
}

fn all_dirs_any(depth: usize) -> Vec<Dir> {
    // When we must give up, report every direction as possibly carried at
    // the outermost level (most conservative single vector: `<` carried at
    // level 0 plus all-Eq handled separately). We enumerate Lt at level 0
    // with Eq elsewhere; callers treat presence of any non-Eq as carried.
    let mut v = vec![Dir::Eq; depth];
    if depth > 0 {
        v[0] = Dir::Lt;
    }
    v
}

fn search(
    levels: &[LevelInfo],
    ra: &RefInfo,
    rb: &RefInfo,
    self_pair: bool,
    level: usize,
    dirs: &mut Vec<DirX>,
    found: &mut Vec<Vec<Dir>>,
) {
    if !feasible(levels, ra, rb, dirs) {
        return;
    }
    if level == levels.len() {
        let concrete: Vec<Dir> = dirs
            .iter()
            .map(|d| match d {
                DirX::Lt => Dir::Lt,
                DirX::Eq => Dir::Eq,
                DirX::Gt => Dir::Gt,
                DirX::Any => unreachable!("fully refined"),
            })
            .collect();
        let all_eq = concrete.iter().all(|d| *d == Dir::Eq);
        if self_pair && all_eq {
            return; // same access in the same iteration: trivial
        }
        if self_pair && concrete.iter().find(|d| **d != Dir::Eq) == Some(&Dir::Gt) {
            // For a self-pair the (I, I') relation is symmetric; keep only
            // the Lt-leading representative to avoid duplicates.
            return;
        }
        found.push(concrete);
        return;
    }
    for d in [DirX::Lt, DirX::Eq, DirX::Gt] {
        dirs[level] = d;
        search(levels, ra, rb, self_pair, level + 1, dirs, found);
    }
    dirs[level] = DirX::Any;
}

/// Banerjee + GCD feasibility of a dependence `f(I) = g(I')` under the
/// (partial) direction constraints.
fn feasible(levels: &[LevelInfo], ra: &RefInfo, rb: &RefInfo, dirs: &[DirX]) -> bool {
    for (fa, fb) in ra.subs.iter().zip(&rb.subs) {
        let (fa, fb) = match (fa, fb) {
            (Some(a), Some(b)) => (a, b),
            // A non-affine subscript may collide with anything.
            _ => continue,
        };
        if !dim_feasible(levels, fa, fb, dirs, &ra.pins, &rb.pins) {
            return false;
        }
    }
    true
}

fn dim_feasible(
    levels: &[LevelInfo],
    f: &Affine,
    g: &Affine,
    dirs: &[DirX],
    pins_a: &Pins,
    pins_b: &Pins,
) -> bool {
    // h = f(I) - g(I') must be able to equal 0.
    let mut ival = Ival::point(f.constant as i128 - g.constant as i128);
    let mut gcd_acc: i64 = 0;
    // Pinned levels use a decoupled range test that does not feed the GCD
    // accumulator; disable the GCD refinement when one is seen.
    let mut gcd_valid = true;

    let level_vars: BTreeSet<&Symbol> = levels.iter().map(|l| &l.var).collect();

    for (k, lv) in levels.iter().enumerate() {
        let a = f.coeff(&lv.var);
        let b = g.coeff(&lv.var);
        let (lo, hi) = (lv.lo, lv.hi);
        let trip = hi - lo + 1;

        let pa = pins_a.get(&lv.var).copied();
        let pb = pins_b.get(&lv.var).copied();
        if pa.is_some() || pb.is_some() {
            // Guard-aware path: each side's index ranges over a point (if
            // pinned) or the whole level, constrained by the direction.
            gcd_valid = false;
            let (la, ua) = pa.map(|v| (v, v)).unwrap_or((lo, hi));
            let (lb, ub) = pb.map(|v| (v, v)).unwrap_or((lo, hi));
            match dirs[k] {
                DirX::Eq => {
                    let l = la.max(lb);
                    let u = ua.min(ub);
                    if l > u {
                        return false; // pinned to different values
                    }
                    ival = ival.add(Ival::scaled(a - b, l, u));
                }
                DirX::Any => {
                    ival = ival.add(Ival::scaled(a, la, ua));
                    ival = ival.add(Ival::scaled(-b, lb, ub));
                }
                DirX::Lt => {
                    // x in [la,ua], y in [lb,ub], x < y.
                    let xu = ua.min(ub - 1);
                    let yl = lb.max(la + 1);
                    if la > xu || yl > ub {
                        return false;
                    }
                    ival = ival.add(Ival::scaled(a, la, xu));
                    ival = ival.add(Ival::scaled(-b, yl, ub));
                }
                DirX::Gt => {
                    let xl = la.max(lb + 1);
                    let yu = ub.min(ua - 1);
                    if xl > ua || lb > yu {
                        return false;
                    }
                    ival = ival.add(Ival::scaled(a, xl, ua));
                    ival = ival.add(Ival::scaled(-b, lb, yu));
                }
            }
            continue;
        }

        match dirs[k] {
            DirX::Eq => {
                ival = ival.add(Ival::scaled(a - b, lo, hi));
                gcd_acc = gcd(gcd_acc, a - b);
            }
            DirX::Any => {
                ival = ival.add(Ival::scaled(a, lo, hi));
                ival = ival.add(Ival::scaled(-b, lo, hi));
                gcd_acc = gcd(gcd_acc, a);
                gcd_acc = gcd(gcd_acc, b);
            }
            DirX::Lt => {
                if trip < 2 {
                    return false; // cannot have i_k < i'_k in a 1-trip loop
                }
                // i'_k = i_k + d, d in [1, hi-lo], i_k in [lo, hi-1]:
                // a*i_k - b*(i_k + d) = (a-b)*i_k - b*d
                ival = ival.add(Ival::scaled(a - b, lo, hi - 1));
                ival = ival.add(Ival::scaled(-b, 1, hi - lo));
                gcd_acc = gcd(gcd_acc, a - b);
                gcd_acc = gcd(gcd_acc, b);
            }
            DirX::Gt => {
                if trip < 2 {
                    return false;
                }
                // i'_k = i_k - d, d in [1, hi-lo], i_k in [lo+1, hi]:
                // a*i_k - b*(i_k - d) = (a-b)*i_k + b*d
                ival = ival.add(Ival::scaled(a - b, lo + 1, hi));
                ival = ival.add(Ival::scaled(b, 1, hi - lo));
                gcd_acc = gcd(gcd_acc, a - b);
                gcd_acc = gcd(gcd_acc, b);
            }
        }
    }

    // Free (non-level) variables: distinct unknown instances on each side,
    // wide bounds — conservative.
    for (v, &c) in f.terms.iter() {
        if !level_vars.contains(v) {
            ival = ival.add(Ival::scaled(c, -WIDE_BOUND, WIDE_BOUND));
            gcd_acc = gcd(gcd_acc, c);
        }
    }
    for (v, &c) in g.terms.iter() {
        if !level_vars.contains(v) {
            ival = ival.add(Ival::scaled(-c, -WIDE_BOUND, WIDE_BOUND));
            gcd_acc = gcd(gcd_acc, c);
        }
    }

    if !ival.contains_zero() {
        return false;
    }
    if !gcd_valid {
        return true; // interval test only when pins were involved
    }
    // GCD test: sum of var terms is a multiple of gcd_acc, so h can only be
    // zero if gcd_acc divides the constant difference. Widen to i128 so the
    // subtraction cannot overflow for extreme constants.
    let c0 = f.constant as i128 - g.constant as i128;
    if gcd_acc == 0 {
        c0 == 0
    } else {
        c0 % gcd_acc as i128 == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::nest::extract_nest;
    use crate::parser::parse_program;

    fn deps_of(src: &str) -> NestDeps {
        let p = parse_program(src).unwrap();
        let l = p
            .body
            .iter()
            .find_map(|s| match s {
                Stmt::Loop(l) => Some(l.clone()),
                _ => None,
            })
            .expect("program must contain a loop");
        analyze_nest(&extract_nest(&l)).unwrap()
    }

    #[test]
    fn independent_fill_is_fully_parallel() {
        let d = deps_of(
            "
            array A[8][8];
            doall i = 1..8 {
                doall j = 1..8 {
                    A[i][j] = i + j;
                }
            }
            ",
        );
        assert!(d.fully_parallel(), "{d:?}");
    }

    #[test]
    fn recurrence_carried_at_outer_level() {
        let d = deps_of(
            "
            array A[8];
            for i = 2..8 {
                A[i] = A[i - 1] + 1;
            }
            ",
        );
        assert!(d.carried_at(0));
        assert!(!d.fully_parallel());
        // Flow dependence at distance 1: direction `<` only.
        let flow = d.deps.iter().find(|x| x.kind == DepKind::Flow).unwrap();
        assert!(flow.directions.contains(&vec![Dir::Lt]));
        assert!(!flow.directions.contains(&vec![Dir::Gt]));
    }

    #[test]
    fn inner_recurrence_leaves_outer_parallel() {
        let d = deps_of(
            "
            array A[8][8];
            for i = 1..8 {
                for j = 2..8 {
                    A[i][j] = A[i][j - 1] + 1;
                }
            }
            ",
        );
        let par = d.parallelizable_levels();
        assert_eq!(par, vec![true, false], "{d:?}");
    }

    #[test]
    fn outer_recurrence_leaves_inner_parallel() {
        let d = deps_of(
            "
            array A[8][8];
            for i = 2..8 {
                for j = 1..8 {
                    A[i][j] = A[i - 1][j] + 1;
                }
            }
            ",
        );
        let par = d.parallelizable_levels();
        assert_eq!(par, vec![false, true], "{d:?}");
    }

    #[test]
    fn read_modify_write_same_element_is_parallel() {
        // A[i][j] = A[i][j] * 2 — only a loop-independent dependence.
        let d = deps_of(
            "
            array A[4][4];
            doall i = 1..4 {
                doall j = 1..4 {
                    A[i][j] = A[i][j] * 2;
                }
            }
            ",
        );
        assert!(d.fully_parallel(), "{d:?}");
        // The loop-independent (all-Eq) flow dependence is still recorded.
        assert!(d
            .deps
            .iter()
            .any(|x| x.directions.contains(&vec![Dir::Eq, Dir::Eq])));
    }

    #[test]
    fn constant_subscript_write_is_carried_everywhere_reachable() {
        // Every iteration writes A[1]: output dependence carried at level 0.
        let d = deps_of(
            "
            array A[4];
            doall i = 1..4 {
                A[1] = i;
            }
            ",
        );
        assert!(d.carried_at(0), "{d:?}");
        assert!(d.deps.iter().any(|x| x.kind == DepKind::Output));
    }

    #[test]
    fn gcd_test_disproves_stride_mismatch() {
        // Writes touch even elements 2i, reads touch odd elements 2i-7…
        // 2i = 2i' - 7 has no integer solution (gcd 2 does not divide 7).
        let d = deps_of(
            "
            array A[40];
            doall i = 1..8 {
                A[2 * i] = A[2 * i - 7] + 1;
            }
            ",
        );
        assert!(d.fully_parallel(), "{d:?}");
    }

    #[test]
    fn banerjee_disproves_out_of_range_distance() {
        // A[i] and A[i + 100] can never alias within i in 1..8.
        let d = deps_of(
            "
            array A[200];
            doall i = 1..8 {
                A[i] = A[i + 100] + 1;
            }
            ",
        );
        assert!(d.fully_parallel(), "{d:?}");
    }

    #[test]
    fn anti_dependence_detected() {
        // read A[i+1] before write A[i]: anti dependence carried at level 0.
        let d = deps_of(
            "
            array A[9];
            for i = 1..8 {
                A[i] = A[i + 1] + 1;
            }
            ",
        );
        assert!(!d.fully_parallel());
        assert!(d.deps.iter().any(|x| x.kind == DepKind::Anti));
    }

    #[test]
    fn different_arrays_do_not_conflict() {
        let d = deps_of(
            "
            array A[8];
            array B[8];
            doall i = 1..8 {
                A[i] = B[i] + 1;
            }
            ",
        );
        assert!(d.fully_parallel(), "{d:?}");
        assert!(d.deps.is_empty());
    }

    #[test]
    fn nonaffine_subscript_is_conservative() {
        // A[i*i] is non-affine: must conservatively conflict.
        let d = deps_of(
            "
            array A[100];
            doall i = 1..8 {
                A[i * i] = i;
            }
            ",
        );
        assert!(!d.fully_parallel(), "{d:?}");
    }

    #[test]
    fn diagonal_dependence_in_2d() {
        // A[i][j] = A[i-1][j-1]: carried at the outer level with (<, <).
        let d = deps_of(
            "
            array A[8][8];
            for i = 2..8 {
                for j = 2..8 {
                    A[i][j] = A[i - 1][j - 1] + 1;
                }
            }
            ",
        );
        assert!(d.carried_at(0));
        assert!(!d.carried_at(1), "{d:?}");
        let flow = d.deps.iter().find(|x| x.kind == DepKind::Flow).unwrap();
        assert!(flow.directions.contains(&vec![Dir::Lt, Dir::Lt]));
        assert!(!flow.directions.contains(&vec![Dir::Lt, Dir::Gt]));
    }

    #[test]
    fn reduction_scalar_does_not_create_array_dependence() {
        // s = s + A[i] reads A only; no array dependence. (Scalar
        // dependences are out of scope for the array tester; the nest is
        // still not a valid doall, which scalar analysis in lc-xform
        // handles separately.)
        let d = deps_of(
            "
            array A[8];
            for i = 1..8 {
                s = s + A[i];
            }
            ",
        );
        assert!(d.deps.is_empty());
    }

    #[test]
    fn guard_pinned_write_does_not_self_conflict() {
        // D[i] is written only when j == 1: two instances would need two
        // different j values, but the guard pins both to 1 — no carried
        // output dependence at j.
        let d = deps_of(
            "
            array D[6];
            array M[6][7];
            doall i = 1..6 {
                doall j = 1..7 {
                    if j == 1 {
                        D[i] = i * i;
                    }
                    M[i][j] = i + j;
                }
            }
            ",
        );
        assert!(d.fully_parallel(), "{d:?}");
    }

    #[test]
    fn guard_pinned_write_still_conflicts_with_unguarded_reads() {
        // The j==1 write of D[i] feeds reads of D[i] in every other j
        // iteration: genuinely carried at j.
        let d = deps_of(
            "
            array D[6];
            array M[6][7];
            doall i = 1..6 {
                doall j = 1..7 {
                    if j == 1 {
                        D[i] = i * i;
                    }
                    M[i][j] = D[i] + j;
                }
            }
            ",
        );
        assert!(d.carried_at(1), "{d:?}");
        assert!(!d.carried_at(0), "{d:?}");
    }

    #[test]
    fn two_different_guards_on_same_cell_conflict() {
        // Writes at j == 1 and j == 7 touch the same D[i]: carried output
        // dependence at j (both instances execute, at different j).
        let d = deps_of(
            "
            array D[6];
            doall i = 1..6 {
                doall j = 1..7 {
                    if j == 1 {
                        D[i] = 1;
                    }
                    if j == 7 {
                        D[i] = 2;
                    }
                }
            }
            ",
        );
        assert!(d.carried_at(1), "{d:?}");
    }

    #[test]
    fn conjunctive_guards_pin_multiple_levels() {
        // Written only at (i==1 && j==1): a single dynamic instance — no
        // carried dependence anywhere.
        let d = deps_of(
            "
            array S[1];
            doall i = 1..6 {
                doall j = 1..7 {
                    if i == 1 && j == 1 {
                        S[1] = 42;
                    }
                }
            }
            ",
        );
        assert!(d.fully_parallel(), "{d:?}");
    }

    #[test]
    fn non_equality_guards_pin_nothing() {
        // `j <= 1` is not an equality pin: the analysis must stay
        // conservative and report the carried output dependence.
        let d = deps_of(
            "
            array D[6];
            doall i = 1..6 {
                doall j = 1..7 {
                    if j <= 1 {
                        D[i] = i;
                    }
                }
            }
            ",
        );
        assert!(d.carried_at(1), "{d:?}");
    }

    #[test]
    fn statement_provenance_identifies_source_and_sink() {
        // S0 writes A[i]; S1 reads A[i-1] (value written by S0 in the
        // previous iteration): flow dependence with src = 0, dst = 1.
        let d = deps_of(
            "
            array A[8];
            array B[8];
            for i = 2..8 {
                A[i] = i;
                B[i] = A[i - 1];
            }
            ",
        );
        let flow = d
            .deps
            .iter()
            .find(|x| x.kind == DepKind::Flow && x.carried_levels().contains(&0))
            .expect("carried flow dependence");
        assert_eq!((flow.src_stmt, flow.dst_stmt), (0, 1));
    }

    #[test]
    fn backward_textual_dependence_normalizes_source_first() {
        // S0 reads A[i+1]; S1 writes A[i]. The write in iteration i is
        // the *source* feeding the read in iteration i+1? No — the read
        // of A[i+1] at iteration i happens before the write of A[i+1] at
        // iteration i+1: anti dependence, src = 0 (the read), dst = 1.
        // There is also the orientation where the write at iteration i
        // feeds nothing (A[i] is never read later). Check we recorded the
        // anti dependence with textual statements preserved.
        let d = deps_of(
            "
            array A[9];
            array B[9];
            for i = 1..8 {
                B[i] = A[i + 1];
                A[i] = i;
            }
            ",
        );
        let anti = d
            .deps
            .iter()
            .find(|x| x.kind == DepKind::Anti)
            .expect("anti dependence");
        assert_eq!((anti.src_stmt, anti.dst_stmt), (0, 1));
    }

    #[test]
    fn explain_names_the_blocking_dependence() {
        let d = deps_of(
            "
            array A[8][8];
            for i = 1..8 {
                for j = 2..8 {
                    A[i][j] = A[i][j - 1] + 1;
                }
            }
            ",
        );
        assert!(d.explain(0).is_none(), "outer level is clean: {d:?}");
        let b = d.explain(1).expect("inner level carries a dependence");
        assert_eq!(b.dep.kind, DepKind::Flow);
        assert_eq!(b.dep.array.to_string(), "A");
        assert_eq!(b.direction, &[Dir::Eq, Dir::Lt]);
        assert_eq!(format_direction(b.direction), "(=, <)");
        assert_eq!((b.dep.src_stmt, b.dep.dst_stmt), (0, 0));
    }

    #[test]
    fn symbolic_bound_still_finds_recurrence() {
        let d = deps_of(
            "
            array A[100];
            n = 50;
            for i = 2..n {
                A[i] = A[i - 1] + 1;
            }
            ",
        );
        assert!(d.carried_at(0));
    }
}
