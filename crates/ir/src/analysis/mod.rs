//! Static analyses over the IR: perfect-nest extraction, affine subscript
//! forms, and dependence testing for DOALL legality.
//!
//! The loop-coalescing transformation has two preconditions that these
//! analyses establish:
//!
//! 1. the candidate loops form a **perfect nest** with known (or
//!    normalizable) rectangular bounds ([`nest`]);
//! 2. every coalesced level is **DOALL-legal** — it carries no data
//!    dependence ([`depend`], built on the affine machinery of
//!    [`affine`]).

pub mod affine;
pub mod depend;
pub mod nest;

pub use affine::Affine;
pub use depend::{analyze_nest, DepKind, Dependence, Dir, NestDeps};
pub use nest::{extract_nest, LoopHeader, Nest};
