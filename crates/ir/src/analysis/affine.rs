//! Affine (linear + constant) forms of subscript expressions.
//!
//! Dependence testing only handles subscripts of the shape
//! `c0 + c1*i1 + c2*i2 + …`; this module extracts that shape from an
//! [`Expr`] when possible.

use std::collections::BTreeMap;

use crate::expr::{BinOp, Expr, UnOp};
use crate::symbol::Symbol;

/// `constant + Σ coeff(var) · var` over `i64` coefficients.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Affine {
    /// The constant term.
    pub constant: i64,
    /// Per-variable coefficients (zero coefficients are not stored).
    pub terms: BTreeMap<Symbol, i64>,
}

impl Affine {
    /// The constant affine form `c`.
    pub fn constant(c: i64) -> Affine {
        Affine {
            constant: c,
            terms: BTreeMap::new(),
        }
    }

    /// The single-variable form `1 · var`.
    pub fn var(v: impl Into<Symbol>) -> Affine {
        let mut terms = BTreeMap::new();
        terms.insert(v.into(), 1);
        Affine { constant: 0, terms }
    }

    /// Coefficient of `var` (zero if absent).
    pub fn coeff(&self, var: &Symbol) -> i64 {
        self.terms.get(var).copied().unwrap_or(0)
    }

    /// True when the form has no variable terms.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    fn insert(&mut self, var: Symbol, coeff: i64) -> Option<()> {
        if coeff == 0 {
            return Some(());
        }
        let slot = self.terms.entry(var).or_insert(0);
        *slot = slot.checked_add(coeff)?;
        if *slot == 0 {
            // Keep the invariant that zero coefficients are absent.
            let zero_keys: Vec<Symbol> = self
                .terms
                .iter()
                .filter(|(_, &c)| c == 0)
                .map(|(k, _)| k.clone())
                .collect();
            for k in zero_keys {
                self.terms.remove(&k);
            }
        }
        Some(())
    }

    /// `self + other`, `None` on coefficient overflow.
    pub fn add(&self, other: &Affine) -> Option<Affine> {
        let mut out = self.clone();
        out.constant = out.constant.checked_add(other.constant)?;
        for (v, &c) in &other.terms {
            out.insert(v.clone(), c)?;
        }
        Some(out)
    }

    /// `self - other`, `None` on coefficient overflow.
    pub fn sub(&self, other: &Affine) -> Option<Affine> {
        self.add(&other.scale(-1)?)
    }

    /// `k · self`, `None` on coefficient overflow. (Infallible for `k = ±1`
    /// except at `i64::MIN`.)
    pub fn scale(&self, k: i64) -> Option<Affine> {
        let mut out = Affine::constant(self.constant.checked_mul(k)?);
        for (v, &c) in &self.terms {
            out.insert(v.clone(), c.checked_mul(k)?)?;
        }
        Some(out)
    }

    /// Evaluate the form given a variable valuation; variables missing from
    /// `lookup` make the evaluation fail.
    pub fn eval(&self, lookup: impl Fn(&Symbol) -> Option<i64>) -> Option<i64> {
        let mut acc = self.constant;
        for (v, &c) in &self.terms {
            acc = acc.checked_add(c.checked_mul(lookup(v)?)?)?;
        }
        Some(acc)
    }

    /// Extract an affine form from an expression. Returns `None` when the
    /// expression is not affine (products of variables, division, array
    /// reads, min/max, …).
    pub fn from_expr(e: &Expr) -> Option<Affine> {
        match e {
            Expr::Const(v) => Some(Affine::constant(*v)),
            Expr::Var(s) => Some(Affine::var(s.clone())),
            Expr::Read(_) => None,
            Expr::Unary(UnOp::Neg, a) => Affine::from_expr(a)?.scale(-1),
            Expr::Binary(op, a, b) => {
                let fa = Affine::from_expr(a);
                let fb = Affine::from_expr(b);
                match op {
                    BinOp::Add => fa?.add(&fb?),
                    BinOp::Sub => fa?.sub(&fb?),
                    BinOp::Mul => {
                        let fa = fa?;
                        let fb = fb?;
                        if fa.is_constant() {
                            fb.scale(fa.constant)
                        } else if fb.is_constant() {
                            fa.scale(fb.constant)
                        } else {
                            None
                        }
                    }
                    BinOp::Div | BinOp::Mod | BinOp::CeilDiv | BinOp::Min | BinOp::Max => None,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn affine(src: &str) -> Option<Affine> {
        Affine::from_expr(&parse_expr(src).unwrap())
    }

    #[test]
    fn extracts_linear_subscript() {
        let a = affine("2 * i + 3 * j - 4").unwrap();
        assert_eq!(a.constant, -4);
        assert_eq!(a.coeff(&Symbol::new("i")), 2);
        assert_eq!(a.coeff(&Symbol::new("j")), 3);
        assert_eq!(a.coeff(&Symbol::new("k")), 0);
    }

    #[test]
    fn extracts_nested_scaling() {
        // 3 * (i - 2) == 3i - 6
        let a = affine("3 * (i - 2)").unwrap();
        assert_eq!(a.constant, -6);
        assert_eq!(a.coeff(&Symbol::new("i")), 3);
    }

    #[test]
    fn coefficient_cancellation_removes_term() {
        let a = affine("i - i + 5").unwrap();
        assert!(a.is_constant());
        assert_eq!(a.constant, 5);
    }

    #[test]
    fn rejects_products_of_variables() {
        assert!(affine("i * j").is_none());
    }

    #[test]
    fn rejects_division_and_reads() {
        assert!(affine("i / 2").is_none());
        assert!(affine("min(i, j)").is_none());
    }

    #[test]
    fn negation_scales_by_minus_one() {
        let a = affine("-(2 * i + 1)").unwrap();
        assert_eq!(a.constant, -1);
        assert_eq!(a.coeff(&Symbol::new("i")), -2);
    }

    #[test]
    fn eval_matches_interpreter_semantics() {
        let a = affine("2 * i + 3 * j - 4").unwrap();
        let v = a
            .eval(|s| match s.as_str() {
                "i" => Some(5),
                "j" => Some(7),
                _ => None,
            })
            .unwrap();
        assert_eq!(v, 2 * 5 + 3 * 7 - 4);
    }

    #[test]
    fn eval_fails_on_missing_variable() {
        let a = affine("i + j").unwrap();
        assert_eq!(a.eval(|_| None), None);
    }
}
