//! Recovery-expression construction: a simplifying statement builder and
//! a typed operation-count model.
//!
//! Every transformation that emits index-recovery code (constant-trip
//! coalescing, symbolic coalescing, strength reduction) used to build and
//! cost its expressions independently. [`ExprBuilder`] is the one shared
//! path: assignments are constant-folded and identity-simplified as they
//! are pushed, repeated division subterms can be interned into
//! temporaries, and the accumulated block reports its cost as a typed
//! [`RecoveryCost`] instead of a bare weighted integer — so the analytic
//! tables (bench T1), the collapse-band advisor (`lc-sched`), and the
//! rewrite itself all read the same numbers.

use std::collections::HashMap;
use std::ops::{Add, AddAssign};

use crate::expr::{BinOp, Expr};
use crate::stmt::Stmt;
use crate::symbol::Symbol;

/// A typed count of the operations a recovery block (or expression)
/// performs, broken out by kind. The weighted scalar view
/// ([`RecoveryCost::units`]) reproduces the abstract op-cost model of
/// [`Expr::op_cost`] exactly: adds/subs weigh 1, min/max 2, multiplies 3,
/// divisions (including `mod` and `ceildiv`) 8, array reads and stores 1
/// each.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCost {
    /// Additions, subtractions, and unary operations (weight 1).
    pub adds: u64,
    /// `min` / `max` operations (weight 2).
    pub minmax: u64,
    /// Multiplications (weight 3).
    pub muls: u64,
    /// Divisions, modulos, and ceiling divisions (weight 8).
    pub divs: u64,
    /// Array element reads (weight 1 each, excluding index arithmetic).
    pub reads: u64,
    /// Scalar and array stores (weight 1 each).
    pub stores: u64,
}

impl RecoveryCost {
    /// The weighted single-number cost, on the same scale as
    /// [`Expr::op_cost`] plus one unit per store.
    pub fn units(&self) -> u64 {
        self.adds + 2 * self.minmax + 3 * self.muls + 8 * self.divs + self.reads + self.stores
    }

    /// Count the operations in one expression.
    pub fn of_expr(e: &Expr) -> RecoveryCost {
        let mut c = RecoveryCost::default();
        c.add_expr(e);
        c
    }

    /// Count the operations a block of statements performs per
    /// execution: each scalar or array assignment costs its value (plus
    /// indices) and one store. Loops and conditionals contribute nothing
    /// themselves — recovery blocks are straight-line code.
    pub fn of_stmts(stmts: &[Stmt]) -> RecoveryCost {
        let mut c = RecoveryCost::default();
        for s in stmts {
            match s {
                Stmt::AssignScalar { value, .. } => {
                    c.add_expr(value);
                    c.stores += 1;
                }
                Stmt::AssignArray { target, value } => {
                    for ix in &target.indices {
                        c.add_expr(ix);
                    }
                    c.add_expr(value);
                    c.stores += 1;
                }
                _ => {}
            }
        }
        c
    }

    fn add_expr(&mut self, e: &Expr) {
        match e {
            Expr::Const(_) | Expr::Var(_) => {}
            Expr::Read(r) => {
                self.reads += 1;
                for ix in &r.indices {
                    self.add_expr(ix);
                }
            }
            Expr::Unary(_, a) => {
                self.adds += 1;
                self.add_expr(a);
            }
            Expr::Binary(op, a, b) => {
                match op {
                    BinOp::Add | BinOp::Sub => self.adds += 1,
                    BinOp::Min | BinOp::Max => self.minmax += 1,
                    BinOp::Mul => self.muls += 1,
                    BinOp::Div | BinOp::Mod | BinOp::CeilDiv => self.divs += 1,
                }
                self.add_expr(a);
                self.add_expr(b);
            }
        }
    }
}

impl Add for RecoveryCost {
    type Output = RecoveryCost;
    fn add(mut self, rhs: RecoveryCost) -> RecoveryCost {
        self += rhs;
        self
    }
}

impl AddAssign for RecoveryCost {
    fn add_assign(&mut self, rhs: RecoveryCost) {
        self.adds += rhs.adds;
        self.minmax += rhs.minmax;
        self.muls += rhs.muls;
        self.divs += rhs.divs;
        self.reads += rhs.reads;
        self.stores += rhs.stores;
    }
}

/// A builder for straight-line recovery blocks. Values pushed through
/// [`ExprBuilder::assign`] are simplified ([`Expr::fold`]: constant
/// folding plus the algebraic identities `x+0`, `x-0`, `1*x`, `x*1`,
/// `x/1`, `⌈x/1⌉`, `0*x`), and repeated division subterms can be
/// interned into dependency-ordered temporaries.
#[derive(Debug, Clone, Default)]
pub struct ExprBuilder {
    stmts: Vec<Stmt>,
}

impl ExprBuilder {
    /// An empty builder.
    pub fn new() -> ExprBuilder {
        ExprBuilder::default()
    }

    /// Wrap an existing block (statements are taken as-is, unfolded).
    pub fn from_stmts(stmts: Vec<Stmt>) -> ExprBuilder {
        ExprBuilder { stmts }
    }

    /// Append `var = value`, simplifying the value first.
    pub fn assign(&mut self, var: impl Into<Symbol>, value: Expr) {
        self.stmts.push(Stmt::AssignScalar {
            var: var.into(),
            value: value.fold(),
        });
    }

    /// Append a statement unchanged.
    pub fn push(&mut self, s: Stmt) {
        self.stmts.push(s);
    }

    /// The block built so far.
    pub fn stmts(&self) -> &[Stmt] {
        &self.stmts
    }

    /// Whether nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// Consume the builder, yielding the block.
    pub fn into_stmts(self) -> Vec<Stmt> {
        self.stmts
    }

    /// The typed per-execution cost of the current block.
    pub fn cost(&self) -> RecoveryCost {
        RecoveryCost::of_stmts(&self.stmts)
    }

    /// Hoist repeated division-bearing subexpressions (`/`, `%`,
    /// `ceildiv`) into temporaries named `{prefix}0`, `{prefix}1`, …,
    /// most profitable first, until no subterm occurs twice. Temporaries
    /// are emitted in dependency order ahead of the original statements.
    /// Returns the number of temporaries introduced.
    ///
    /// This is the paper's recovery strength reduction: adjacent ceiling
    /// formulas share their `⌈j/P⌉` terms, and interning each shared
    /// division roughly halves the per-iteration division count for deep
    /// nests.
    pub fn intern_shared_divisions(&mut self, prefix: &str) -> usize {
        let mut temps: Vec<Stmt> = Vec::new();
        let work = &mut self.stmts;
        let mut hoisted = 0usize;

        loop {
            // Count division-bearing subexpressions across all current
            // values (including already-hoisted temps, enabling nested
            // sharing).
            let mut counts: HashMap<Expr, usize> = HashMap::new();
            let mut scan = |e: &Expr| collect_divisions(e, &mut counts);
            for s in temps.iter().chain(work.iter()) {
                match s {
                    Stmt::AssignScalar { value, .. } => scan(value),
                    Stmt::AssignArray { target, value } => {
                        for ix in &target.indices {
                            scan(ix);
                        }
                        scan(value);
                    }
                    _ => {}
                }
            }
            // Most profitable candidate: highest (count-1) * cost; ties
            // broken toward smaller expressions so inner divisions hoist
            // first, then by printed form — `max_by_key` keeps the last
            // maximum it sees, and iterating the HashMap directly would
            // let the per-instance hash seed decide equal-profit ties,
            // making temp numbering differ between identical compiles.
            let mut candidates: Vec<(Expr, usize)> =
                counts.into_iter().filter(|(_, c)| *c >= 2).collect();
            candidates.sort_by_cached_key(|(e, _)| crate::printer::print_expr(e));
            let best = candidates.into_iter().max_by_key(|(e, c)| {
                (
                    (*c as u64 - 1) * e.op_cost(),
                    std::cmp::Reverse(e.op_cost()),
                )
            });
            let Some((pat, _)) = best else { break };

            let temp = Symbol::new(format!("{prefix}{hoisted}"));
            let rep = Expr::Var(temp.clone());
            for s in temps.iter_mut().chain(work.iter_mut()) {
                rewrite_stmt(s, &pat, &rep);
            }
            temps.push(Stmt::AssignScalar {
                var: temp,
                value: pat,
            });
            hoisted += 1;
        }

        // Temporaries must precede their uses; they were appended in
        // hoist order, but a later temp can be *used by* an earlier one
        // (earlier temps were rewritten too). Order by dependency: a temp
        // that mentions another temp must come after it. Hoisting order
        // guarantees acyclicity; repeatedly emit temps whose operands are
        // all available.
        let mut out = order_temps(temps);
        out.append(work);
        self.stmts = out;
        hoisted
    }
}

fn order_temps(temps: Vec<Stmt>) -> Vec<Stmt> {
    let names: Vec<Symbol> = temps
        .iter()
        .map(|s| match s {
            Stmt::AssignScalar { var, .. } => var.clone(),
            _ => unreachable!("temps are scalar assigns"),
        })
        .collect();
    let mut emitted = vec![false; temps.len()];
    let mut out = Vec::with_capacity(temps.len());
    while out.len() < temps.len() {
        let mut progressed = false;
        for (i, t) in temps.iter().enumerate() {
            if emitted[i] {
                continue;
            }
            let Stmt::AssignScalar { value, .. } = t else {
                unreachable!()
            };
            let mut vars = Vec::new();
            value.variables(&mut vars);
            let ready = vars.iter().all(|v| {
                names
                    .iter()
                    .position(|n| n == v)
                    .map(|j| emitted[j])
                    .unwrap_or(true)
            });
            if ready {
                out.push(t.clone());
                emitted[i] = true;
                progressed = true;
            }
        }
        assert!(progressed, "cyclic temp dependencies cannot occur");
    }
    out
}

fn collect_divisions(e: &Expr, counts: &mut HashMap<Expr, usize>) {
    match e {
        Expr::Const(_) | Expr::Var(_) => {}
        Expr::Read(r) => {
            for ix in &r.indices {
                collect_divisions(ix, counts);
            }
        }
        Expr::Unary(_, a) => collect_divisions(a, counts),
        Expr::Binary(op, a, b) => {
            if matches!(op, BinOp::Div | BinOp::Mod | BinOp::CeilDiv) {
                *counts.entry(e.clone()).or_insert(0) += 1;
            }
            collect_divisions(a, counts);
            collect_divisions(b, counts);
        }
    }
}

fn rewrite_stmt(s: &mut Stmt, pat: &Expr, rep: &Expr) {
    match s {
        Stmt::AssignScalar { value, .. } => *value = replace(value, pat, rep),
        Stmt::AssignArray { target, value } => {
            for ix in &mut target.indices {
                *ix = replace(ix, pat, rep);
            }
            *value = replace(value, pat, rep);
        }
        _ => {}
    }
}

/// Replace every occurrence of the subtree `pat` in `e` with `rep`.
fn replace(e: &Expr, pat: &Expr, rep: &Expr) -> Expr {
    if e == pat {
        return rep.clone();
    }
    match e {
        Expr::Const(_) | Expr::Var(_) => e.clone(),
        Expr::Read(r) => Expr::Read(crate::expr::ArrayRef {
            array: r.array.clone(),
            indices: r.indices.iter().map(|ix| replace(ix, pat, rep)).collect(),
        }),
        Expr::Unary(op, a) => Expr::Unary(*op, Box::new(replace(a, pat, rep))),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(replace(a, pat, rep)),
            Box::new(replace(b, pat, rep)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_reproduce_op_cost_plus_store() {
        let value = Expr::var("j").ceil_div(Expr::lit(12)) * Expr::lit(3) + Expr::var("k");
        let stmts = vec![Stmt::assign("x", value.clone())];
        assert_eq!(
            RecoveryCost::of_stmts(&stmts).units(),
            value.op_cost() + 1,
            "typed cost must match the legacy weighted model"
        );
    }

    #[test]
    fn typed_counts_break_out_by_kind() {
        // x = ceildiv(j, 8) - 4 * (ceildiv(j, 32) - 1)
        let v = Expr::var("j").ceil_div(Expr::lit(8))
            - Expr::lit(4) * (Expr::var("j").ceil_div(Expr::lit(32)) - Expr::lit(1));
        let c = RecoveryCost::of_expr(&v);
        assert_eq!(c.divs, 2);
        assert_eq!(c.muls, 1);
        assert_eq!(c.adds, 2);
        assert_eq!(c.stores, 0);
        assert_eq!(c.units(), v.op_cost());
    }

    #[test]
    fn assign_folds_and_simplifies() {
        let mut b = ExprBuilder::new();
        b.assign("i", Expr::var("jc").ceil_div(Expr::lit(1)));
        b.assign("t", Expr::lit(6) * Expr::lit(7));
        assert_eq!(
            b.stmts(),
            &[
                Stmt::assign("i", Expr::var("jc")),
                Stmt::assign("t", Expr::lit(42)),
            ]
        );
        // Both simplified assigns cost exactly one store.
        assert_eq!(b.cost().units(), 2);
    }

    #[test]
    fn interning_hoists_shared_divisions_in_dependency_order() {
        let inner = Expr::var("a").floor_div(Expr::lit(3));
        let outer = inner.clone().floor_div(Expr::lit(5));
        let mut b = ExprBuilder::new();
        b.assign("x", outer.clone() + inner.clone());
        b.assign("y", outer + inner);
        let before = b.cost().units();
        let hoisted = b.intern_shared_divisions("t");
        assert!(hoisted >= 2);
        assert!(b.cost().units() < before);
        // Every temp's operands are defined before use.
        let mut defined: Vec<&str> = Vec::new();
        for s in b.stmts() {
            if let Stmt::AssignScalar { var, value } = s {
                let mut vars = Vec::new();
                value.variables(&mut vars);
                for v in vars {
                    if v.as_str().starts_with('t') {
                        assert!(defined.contains(&v.as_str()), "{v:?} used before defined");
                    }
                }
                defined.push(var.as_str());
            }
        }
    }

    #[test]
    fn interning_breaks_profit_ties_deterministically() {
        // Two shared divisions with identical profit: which becomes t0
        // must not depend on HashMap iteration order. Found by lc-fuzz
        // (seed 0xc0a1e5ce): equal-profit ties used to be resolved by
        // the per-HashMap hash seed, so identical compiles could number
        // their temps differently.
        let build = || {
            let mut b = ExprBuilder::new();
            let d2 = Expr::var("jc").ceil_div(Expr::lit(2));
            let d4 = Expr::var("jc").ceil_div(Expr::lit(4));
            b.assign("i", d4.clone());
            b.assign("j", d2.clone() - Expr::lit(2) * (d4 - Expr::lit(1)));
            b.assign("k", Expr::var("jc") - Expr::lit(2) * (d2 - Expr::lit(1)));
            b.intern_shared_divisions("t");
            format!("{:?}", b.stmts())
        };
        let first = build();
        for _ in 0..32 {
            assert_eq!(build(), first);
        }
    }

    #[test]
    fn cost_addition_is_componentwise() {
        let a = RecoveryCost {
            adds: 1,
            divs: 2,
            ..RecoveryCost::default()
        };
        let b = RecoveryCost {
            muls: 3,
            stores: 4,
            ..RecoveryCost::default()
        };
        let c = a + b;
        assert_eq!(c.adds, 1);
        assert_eq!(c.divs, 2);
        assert_eq!(c.muls, 3);
        assert_eq!(c.stores, 4);
        assert_eq!(c.units(), 1 + 16 + 9 + 4);
    }
}
