//! Error type shared across the IR crates.

use std::fmt;

use crate::symbol::Symbol;

/// Convenient alias used throughout `lc-ir` and `lc-xform`.
pub type Result<T> = std::result::Result<T, Error>;

/// Everything that can go wrong while parsing, analyzing, transforming, or
/// executing an IR program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Integer division or modulus by zero during evaluation.
    DivisionByZero,
    /// Arithmetic overflowed `i64` during evaluation.
    Overflow,
    /// A scalar variable was read before being assigned.
    UnboundVariable(Symbol),
    /// An array was referenced but never declared.
    UnknownArray(Symbol),
    /// An array was declared twice.
    DuplicateArray(Symbol),
    /// An array access used the wrong number of subscripts.
    RankMismatch {
        /// The array involved.
        array: Symbol,
        /// Declared rank.
        expected: usize,
        /// Number of subscripts supplied.
        got: usize,
    },
    /// A subscript evaluated outside the declared extent.
    OutOfBounds {
        /// The array involved.
        array: Symbol,
        /// Which subscript position (0-based).
        dim: usize,
        /// The offending value.
        index: i64,
        /// The declared extent of that dimension.
        extent: usize,
    },
    /// The interpreter exceeded its configured step budget.
    StepBudgetExceeded {
        /// The configured budget.
        budget: u64,
    },
    /// A loop has a zero step expression.
    ZeroStep(Symbol),
    /// Parse error with a human-readable message and 1-based line number.
    Parse {
        /// 1-based line where the error was detected.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An analysis or transformation precondition failed.
    Unsupported(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DivisionByZero => write!(f, "division by zero"),
            Error::Overflow => write!(f, "integer overflow"),
            Error::UnboundVariable(s) => write!(f, "unbound variable `{s}`"),
            Error::UnknownArray(s) => write!(f, "unknown array `{s}`"),
            Error::DuplicateArray(s) => write!(f, "array `{s}` declared twice"),
            Error::RankMismatch {
                array,
                expected,
                got,
            } => write!(
                f,
                "array `{array}` has rank {expected} but was accessed with {got} subscripts"
            ),
            Error::OutOfBounds {
                array,
                dim,
                index,
                extent,
            } => write!(
                f,
                "subscript {index} out of bounds for dimension {dim} of `{array}` (extent {extent}, valid 1..={extent})"
            ),
            Error::StepBudgetExceeded { budget } => {
                write!(f, "interpreter exceeded step budget of {budget}")
            }
            Error::ZeroStep(s) => write!(f, "loop over `{s}` has step 0"),
            Error::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::OutOfBounds {
            array: Symbol::new("A"),
            dim: 1,
            index: 9,
            extent: 8,
        };
        let msg = e.to_string();
        assert!(msg.contains("A") && msg.contains("9") && msg.contains("8"));

        let e = Error::Parse {
            line: 3,
            message: "expected `..`".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn error_implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::DivisionByZero);
    }
}
