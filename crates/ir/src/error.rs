//! Error type shared across the IR crates.

use std::fmt;

use crate::symbol::Symbol;

/// Convenient alias used throughout `lc-ir` and `lc-xform`.
pub type Result<T> = std::result::Result<T, Error>;

/// Everything that can go wrong while parsing, analyzing, transforming, or
/// executing an IR program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Integer division or modulus by zero during evaluation.
    DivisionByZero,
    /// Arithmetic overflowed `i64` during evaluation.
    Overflow,
    /// A scalar variable was read before being assigned.
    UnboundVariable(Symbol),
    /// An array was referenced but never declared.
    UnknownArray(Symbol),
    /// An array was declared twice.
    DuplicateArray(Symbol),
    /// An array access used the wrong number of subscripts.
    RankMismatch {
        /// The array involved.
        array: Symbol,
        /// Declared rank.
        expected: usize,
        /// Number of subscripts supplied.
        got: usize,
    },
    /// A subscript evaluated outside the declared extent.
    OutOfBounds {
        /// The array involved.
        array: Symbol,
        /// Which subscript position (0-based).
        dim: usize,
        /// The offending value.
        index: i64,
        /// The declared extent of that dimension.
        extent: usize,
    },
    /// The interpreter exceeded its configured step budget.
    StepBudgetExceeded {
        /// The configured budget.
        budget: u64,
    },
    /// A loop has a zero step expression.
    ZeroStep(Symbol),
    /// Parse error with a human-readable message and 1-based line number.
    Parse {
        /// 1-based line where the error was detected.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An analysis or transformation precondition failed; the payload
    /// says which one, in a form callers can match on without string
    /// inspection.
    Unsupported(SkipReason),
}

impl Error {
    /// Free-form [`Error::Unsupported`] for preconditions that have no
    /// dedicated [`SkipReason`] variant.
    pub fn unsupported(message: impl Into<String>) -> Error {
        Error::Unsupported(SkipReason::Other(message.into()))
    }
}

/// Which part of a loop header a diagnostic refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundPart {
    /// The lower bound expression.
    Lower,
    /// The upper bound expression.
    Upper,
    /// The step expression.
    Step,
}

/// Typed diagnostic explaining why a transformation skipped (or refused)
/// a nest. Replaces the former free-form `Unsupported(String)`: callers
/// match on variants instead of substring-testing messages, while
/// `Display` reproduces the exact messages the string era produced.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SkipReason {
    /// The requested level band does not fit the nest.
    BandOutOfRange {
        /// Band start (0-based, inclusive).
        start: usize,
        /// Band end (exclusive).
        end: usize,
        /// Actual nest depth.
        depth: usize,
    },
    /// A dependence is carried at a level inside the band.
    CarriedDependence {
        /// 0-based nest level carrying the dependence.
        level: usize,
        /// Loop variable of that level.
        var: Symbol,
    },
    /// A banded level is not a `doall` and legality checking is off.
    NotDoall {
        /// Loop variable of the offending level.
        var: Symbol,
    },
    /// Symbolic path: legality checking is off and some level is serial.
    NotDoallUnchecked,
    /// A scalar may carry a value across iterations (e.g. a reduction),
    /// so it cannot be privatized.
    ScalarReduction {
        /// The scalar variable.
        var: Symbol,
    },
    /// One loop header has a symbolic (non-constant) bound or step.
    SymbolicBound {
        /// Loop variable of the offending header.
        var: Symbol,
        /// Which part of the header is symbolic.
        part: BoundPart,
    },
    /// The nest as a whole has symbolic trip counts.
    SymbolicBounds,
    /// A header is not in normalized `1..=N step 1` form.
    NotNormalized {
        /// Loop variable of the offending header.
        var: Symbol,
    },
    /// Symbolic coalescing needs `1..=U step 1` headers and this one
    /// is not.
    NotUnitNormalized {
        /// Loop variable of the offending header.
        var: Symbol,
    },
    /// An upper bound depends on a variable the nest itself writes.
    VariantBound {
        /// Loop variable whose bound is variant.
        var: Symbol,
        /// The variable the bound depends on.
        dep: Symbol,
    },
    /// Interchange asked for a level at or beyond the nest depth.
    InterchangeOutOfRange {
        /// The requested (outer) level.
        level: usize,
        /// Actual nest depth.
        depth: usize,
    },
    /// Loop bounds of adjacent levels reference each other's variables.
    NotRectangular {
        /// Loop variable whose bounds are dependent.
        var: Symbol,
        /// The variable those bounds mention.
        other: Symbol,
    },
    /// A `(<, >)` direction vector forbids interchanging two levels.
    InterchangeIllegal {
        /// The outer of the two levels being swapped.
        level: usize,
        /// Array carrying the blocking dependence.
        array: Symbol,
    },
    /// Nest perfection found a body with other than exactly one
    /// inner loop.
    ImperfectNest {
        /// How many inner loops the body actually contains.
        found: usize,
    },
    /// Every level carries a dependence; no band is legal.
    NothingLegal,
    /// A static-analysis lint configured at `deny` severity fired on the
    /// nest, so the pipeline refused to transform it.
    LintDenied {
        /// Stable lint code (e.g. `"LC001"`).
        code: String,
        /// The lint's human-readable message.
        message: String,
    },
    /// Free-form reason with no dedicated variant.
    Other(String),
}

impl SkipReason {
    /// True when the reason is a symbolic-bound limitation, i.e. the
    /// constant-trip-count pipeline cannot proceed but the symbolic
    /// coalescer might. Replaces the old `message.contains("symbolic")`
    /// dispatch in the facade.
    pub fn is_symbolic(&self) -> bool {
        matches!(
            self,
            SkipReason::SymbolicBound { .. } | SkipReason::SymbolicBounds
        )
    }
}

impl fmt::Display for SkipReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkipReason::BandOutOfRange { start, end, depth } => write!(
                f,
                "invalid level band [{start}, {end}) for nest of depth {depth}"
            ),
            SkipReason::CarriedDependence { var, .. } => {
                write!(f, "dependence carried at level `{var}` forbids coalescing")
            }
            SkipReason::NotDoall { var } => write!(
                f,
                "level `{var}` is not a doall and legality checking is disabled"
            ),
            SkipReason::NotDoallUnchecked => write!(
                f,
                "legality checking disabled and some level is not a doall"
            ),
            SkipReason::ScalarReduction { var } => write!(
                f,
                "scalar `{var}` may be read before it is written within an \
                 iteration (cross-iteration scalar dependence, e.g. a \
                 reduction); cannot privatize"
            ),
            SkipReason::SymbolicBound { var, part } => {
                let part = match part {
                    BoundPart::Lower => "symbolic lower bound",
                    BoundPart::Upper => "symbolic upper bound",
                    BoundPart::Step => "symbolic step",
                };
                write!(f, "loop `{var}` has {part}")
            }
            SkipReason::SymbolicBounds => write!(f, "nest has symbolic bounds"),
            SkipReason::NotNormalized { var } => write!(
                f,
                "loop `{var}` is not normalized (run normalize_nest first)"
            ),
            SkipReason::NotUnitNormalized { var } => write!(
                f,
                "symbolic coalescing requires `1..=U step 1` loops; `{var}` is not"
            ),
            SkipReason::VariantBound { var, dep } => write!(
                f,
                "bound of `{var}` depends on `{dep}`, which the nest modifies"
            ),
            SkipReason::InterchangeOutOfRange { level, depth } => write!(
                f,
                "cannot interchange level {level} of a depth-{depth} nest"
            ),
            SkipReason::NotRectangular { var, other } => write!(
                f,
                "bounds of `{var}` depend on `{other}`: nest is not rectangular"
            ),
            SkipReason::InterchangeIllegal { level, array } => write!(
                f,
                "interchange of levels {level} and {} is illegal: \
                 dependence with direction (<, >) on `{array}`",
                level + 1
            ),
            SkipReason::ImperfectNest { found } => {
                write!(f, "perfection needs exactly one inner loop, found {found}")
            }
            SkipReason::NothingLegal => {
                write!(f, "every level carries a dependence; nothing to coalesce")
            }
            SkipReason::LintDenied { code, message } => {
                write!(f, "denied by lint {code}: {message}")
            }
            SkipReason::Other(m) => f.write_str(m),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DivisionByZero => write!(f, "division by zero"),
            Error::Overflow => write!(f, "integer overflow"),
            Error::UnboundVariable(s) => write!(f, "unbound variable `{s}`"),
            Error::UnknownArray(s) => write!(f, "unknown array `{s}`"),
            Error::DuplicateArray(s) => write!(f, "array `{s}` declared twice"),
            Error::RankMismatch {
                array,
                expected,
                got,
            } => write!(
                f,
                "array `{array}` has rank {expected} but was accessed with {got} subscripts"
            ),
            Error::OutOfBounds {
                array,
                dim,
                index,
                extent,
            } => write!(
                f,
                "subscript {index} out of bounds for dimension {dim} of `{array}` (extent {extent}, valid 1..={extent})"
            ),
            Error::StepBudgetExceeded { budget } => {
                write!(f, "interpreter exceeded step budget of {budget}")
            }
            Error::ZeroStep(s) => write!(f, "loop over `{s}` has step 0"),
            Error::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            Error::Unsupported(reason) => write!(f, "unsupported: {reason}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::OutOfBounds {
            array: Symbol::new("A"),
            dim: 1,
            index: 9,
            extent: 8,
        };
        let msg = e.to_string();
        assert!(msg.contains("A") && msg.contains("9") && msg.contains("8"));

        let e = Error::Parse {
            line: 3,
            message: "expected `..`".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn error_implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::DivisionByZero);
    }
}
