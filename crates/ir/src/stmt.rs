//! Statements and loops.

use crate::expr::{ArrayRef, Cond, Expr};
use crate::symbol::Symbol;

/// How a loop's iterations may legally be executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopKind {
    /// Iterations must run in order (the default `for`).
    Serial,
    /// Iterations are independent and may run in any order or in parallel.
    Doall,
    /// Iterations may be pipelined: iteration `i` may begin once iteration
    /// `i - delay` has finished the statements it depends on. Carried along
    /// in the IR for completeness; coalescing only applies to `Doall`.
    Doacross {
        /// Minimum iteration distance that must be respected.
        delay: u32,
    },
}

impl LoopKind {
    /// True for `doall` loops.
    pub fn is_doall(self) -> bool {
        matches!(self, LoopKind::Doall)
    }

    /// Keyword used by the DSL and pretty-printer.
    pub fn keyword(self) -> &'static str {
        match self {
            LoopKind::Serial => "for",
            LoopKind::Doall => "doall",
            LoopKind::Doacross { .. } => "doacross",
        }
    }
}

/// A counted loop `kind var = lower..upper step s { body }`.
///
/// Bounds are *inclusive* on both ends (Fortran-style, matching the paper's
/// `DO I = 1, N`), and the step must evaluate to a non-zero integer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Loop {
    /// The loop index variable.
    pub var: Symbol,
    /// Inclusive lower bound.
    pub lower: Expr,
    /// Inclusive upper bound.
    pub upper: Expr,
    /// Step (defaults to 1 in the DSL).
    pub step: Expr,
    /// Execution semantics.
    pub kind: LoopKind,
    /// Loop body.
    pub body: Vec<Stmt>,
}

impl Loop {
    /// Convenience constructor for a unit-step loop.
    pub fn new(
        kind: LoopKind,
        var: impl Into<Symbol>,
        lower: impl Into<Expr>,
        upper: impl Into<Expr>,
        body: Vec<Stmt>,
    ) -> Self {
        Loop {
            var: var.into(),
            lower: lower.into(),
            upper: upper.into(),
            step: Expr::lit(1),
            kind,
            body,
        }
    }

    /// A `doall` loop from 1 to `n` with unit step.
    pub fn doall(var: impl Into<Symbol>, n: impl Into<Expr>, body: Vec<Stmt>) -> Self {
        Loop::new(LoopKind::Doall, var, 1, n, body)
    }

    /// A serial loop from 1 to `n` with unit step.
    pub fn serial(var: impl Into<Symbol>, n: impl Into<Expr>, body: Vec<Stmt>) -> Self {
        Loop::new(LoopKind::Serial, var, 1, n, body)
    }

    /// True when bounds are the constants `1..=N` (some `N`) and step is 1 —
    /// the *normalized* form the coalescing transformation requires.
    pub fn is_normalized(&self) -> bool {
        self.lower.as_const() == Some(1)
            && self.step.as_const() == Some(1)
            && self.upper.as_const().is_some()
    }

    /// Constant trip count if bounds and step are literals.
    ///
    /// Returns `None` for symbolic bounds or zero step. A negative-trip
    /// (empty) loop reports `Some(0)`.
    pub fn const_trip_count(&self) -> Option<u64> {
        let lo = self.lower.as_const()?;
        let hi = self.upper.as_const()?;
        let st = self.step.as_const()?;
        if st == 0 {
            return None;
        }
        let span = if st > 0 { hi - lo } else { lo - hi };
        if span < 0 {
            return Some(0);
        }
        Some((span / st.abs()) as u64 + 1)
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Stmt {
    /// `var = expr;` — scalar assignment.
    AssignScalar {
        /// Target variable.
        var: Symbol,
        /// Right-hand side.
        value: Expr,
    },
    /// `A[i][j] = expr;` — array element assignment.
    AssignArray {
        /// Target element.
        target: ArrayRef,
        /// Right-hand side.
        value: Expr,
    },
    /// A counted loop.
    Loop(Loop),
    /// Two-armed conditional (the `else` arm may be empty).
    If {
        /// Branch condition.
        cond: Cond,
        /// Statements executed when the condition holds.
        then_body: Vec<Stmt>,
        /// Statements executed otherwise.
        else_body: Vec<Stmt>,
    },
}

impl Stmt {
    /// Scalar-assignment shorthand.
    pub fn assign(var: impl Into<Symbol>, value: impl Into<Expr>) -> Stmt {
        Stmt::AssignScalar {
            var: var.into(),
            value: value.into(),
        }
    }

    /// Array-assignment shorthand.
    pub fn store(array: impl Into<Symbol>, indices: Vec<Expr>, value: impl Into<Expr>) -> Stmt {
        Stmt::AssignArray {
            target: ArrayRef::new(array, indices),
            value: value.into(),
        }
    }

    /// Substitute a variable in every expression of this statement tree.
    /// Loop-variable shadowing is respected: substitution does not descend
    /// into a loop that rebinds `var` (its bounds are still rewritten, since
    /// they are evaluated in the enclosing scope).
    pub fn substitute(&self, var: &Symbol, replacement: &Expr) -> Stmt {
        match self {
            Stmt::AssignScalar { var: v, value } => Stmt::AssignScalar {
                var: v.clone(),
                value: value.substitute(var, replacement),
            },
            Stmt::AssignArray { target, value } => Stmt::AssignArray {
                target: ArrayRef {
                    array: target.array.clone(),
                    indices: target
                        .indices
                        .iter()
                        .map(|ix| ix.substitute(var, replacement))
                        .collect(),
                },
                value: value.substitute(var, replacement),
            },
            Stmt::Loop(l) => {
                let lower = l.lower.substitute(var, replacement);
                let upper = l.upper.substitute(var, replacement);
                let step = l.step.substitute(var, replacement);
                let body = if &l.var == var {
                    l.body.clone()
                } else {
                    l.body
                        .iter()
                        .map(|s| s.substitute(var, replacement))
                        .collect()
                };
                Stmt::Loop(Loop {
                    var: l.var.clone(),
                    lower,
                    upper,
                    step,
                    kind: l.kind,
                    body,
                })
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => Stmt::If {
                cond: cond.substitute(var, replacement),
                then_body: then_body
                    .iter()
                    .map(|s| s.substitute(var, replacement))
                    .collect(),
                else_body: else_body
                    .iter()
                    .map(|s| s.substitute(var, replacement))
                    .collect(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn trip_count_unit_step() {
        let l = Loop::doall("i", 10, vec![]);
        assert_eq!(l.const_trip_count(), Some(10));
        assert!(l.is_normalized());
    }

    #[test]
    fn trip_count_general_step() {
        let mut l = Loop::new(LoopKind::Serial, "i", 3, 11, vec![]);
        l.step = Expr::lit(4);
        // 3, 7, 11
        assert_eq!(l.const_trip_count(), Some(3));
        assert!(!l.is_normalized());
    }

    #[test]
    fn trip_count_negative_step() {
        let mut l = Loop::new(LoopKind::Serial, "i", 10, 1, vec![]);
        l.step = Expr::lit(-3);
        // 10, 7, 4, 1
        assert_eq!(l.const_trip_count(), Some(4));
    }

    #[test]
    fn trip_count_empty_loop() {
        let l = Loop::new(LoopKind::Serial, "i", 5, 4, vec![]);
        assert_eq!(l.const_trip_count(), Some(0));
    }

    #[test]
    fn trip_count_symbolic_is_none() {
        let l = Loop::new(LoopKind::Doall, "i", 1, Expr::var("n"), vec![]);
        assert_eq!(l.const_trip_count(), None);
        assert!(!l.is_normalized());
    }

    #[test]
    fn trip_count_zero_step_is_none() {
        let mut l = Loop::new(LoopKind::Serial, "i", 1, 5, vec![]);
        l.step = Expr::lit(0);
        assert_eq!(l.const_trip_count(), None);
    }

    #[test]
    fn substitute_respects_shadowing() {
        // for j = 1..i { A[j] = i; }  — substituting i must rewrite the
        // bound and body, but substituting j must leave the body alone.
        let inner = Stmt::store("A", vec![Expr::var("j")], Expr::var("i"));
        let l = Stmt::Loop(Loop::new(
            LoopKind::Serial,
            "j",
            1,
            Expr::var("i"),
            vec![inner],
        ));

        let after_i = l.substitute(&Symbol::new("i"), &Expr::lit(9));
        if let Stmt::Loop(lp) = &after_i {
            assert_eq!(lp.upper, Expr::lit(9));
            match &lp.body[0] {
                Stmt::AssignArray { value, .. } => assert_eq!(*value, Expr::lit(9)),
                other => panic!("unexpected: {other:?}"),
            }
        } else {
            panic!("expected loop");
        }

        let after_j = l.substitute(&Symbol::new("j"), &Expr::lit(3));
        if let Stmt::Loop(lp) = &after_j {
            // Body must be untouched: j is rebound by the loop.
            match &lp.body[0] {
                Stmt::AssignArray { target, .. } => {
                    assert_eq!(target.indices[0], Expr::var("j"));
                }
                other => panic!("unexpected: {other:?}"),
            }
        } else {
            panic!("expected loop");
        }
    }

    #[test]
    fn loopkind_keywords() {
        assert_eq!(LoopKind::Serial.keyword(), "for");
        assert_eq!(LoopKind::Doall.keyword(), "doall");
        assert_eq!(LoopKind::Doacross { delay: 1 }.keyword(), "doacross");
        assert!(LoopKind::Doall.is_doall());
        assert!(!LoopKind::Serial.is_doall());
    }
}
