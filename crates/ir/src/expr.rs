//! Integer expressions, array references, and boolean conditions.

use std::ops;

use crate::symbol::Symbol;

/// Binary integer operators.
///
/// `Div` and `Mod` use *floor* semantics (see [`crate::arith`]); `CeilDiv`
/// is a first-class operator because the paper's index-recovery formulas
/// are expressed entirely with ceiling division.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Floor division.
    Div,
    /// Floor modulus.
    Mod,
    /// Ceiling division (`⌈a/b⌉`).
    CeilDiv,
    /// Minimum of two values.
    Min,
    /// Maximum of two values.
    Max,
}

impl BinOp {
    /// Abstract cost of the operator in machine "instructions", used by the
    /// cost model when counting index-recovery overhead (matching the
    /// paper's unit of measure).
    pub fn op_cost(self) -> u64 {
        match self {
            BinOp::Add | BinOp::Sub => 1,
            BinOp::Min | BinOp::Max => 2,
            BinOp::Mul => 3,
            BinOp::Div | BinOp::Mod | BinOp::CeilDiv => 8,
        }
    }
}

/// Unary integer operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
}

/// A subscripted array reference, e.g. `A[i][j+1]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArrayRef {
    /// The array's name.
    pub array: Symbol,
    /// One subscript expression per dimension (1-based at runtime).
    pub indices: Vec<Expr>,
}

impl ArrayRef {
    /// Construct an array reference.
    pub fn new(array: impl Into<Symbol>, indices: Vec<Expr>) -> Self {
        ArrayRef {
            array: array.into(),
            indices,
        }
    }
}

/// An integer-valued expression tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// Scalar variable or loop index read.
    Var(Symbol),
    /// Array element read.
    Read(ArrayRef),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Integer literal shorthand.
    pub fn lit(v: i64) -> Expr {
        Expr::Const(v)
    }

    /// Variable-read shorthand.
    pub fn var(name: impl Into<Symbol>) -> Expr {
        Expr::Var(name.into())
    }

    /// Array-read shorthand.
    pub fn read(array: impl Into<Symbol>, indices: Vec<Expr>) -> Expr {
        Expr::Read(ArrayRef::new(array, indices))
    }

    /// Build a binary node.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Ceiling division node (`⌈self / rhs⌉`).
    pub fn ceil_div(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::CeilDiv, self, rhs)
    }

    /// Floor division node.
    pub fn floor_div(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Div, self, rhs)
    }

    /// Floor modulus node.
    pub fn floor_mod(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mod, self, rhs)
    }

    /// Minimum node.
    pub fn min(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Min, self, rhs)
    }

    /// Maximum node.
    pub fn max(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Max, self, rhs)
    }

    /// If the expression is a literal, return its value.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            Expr::Const(v) => Some(*v),
            _ => None,
        }
    }

    /// Total number of operator nodes (unary + binary) in the tree — the
    /// abstract "instruction count" of evaluating the expression once,
    /// weighted by per-operator cost.
    pub fn op_cost(&self) -> u64 {
        match self {
            Expr::Const(_) | Expr::Var(_) => 0,
            Expr::Read(r) => 1 + r.indices.iter().map(Expr::op_cost).sum::<u64>(),
            Expr::Unary(_, e) => 1 + e.op_cost(),
            Expr::Binary(op, a, b) => op.op_cost() + a.op_cost() + b.op_cost(),
        }
    }

    /// Collect every variable mentioned in the expression into `out`
    /// (with duplicates; callers dedup if needed).
    pub fn variables(&self, out: &mut Vec<Symbol>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(s) => out.push(s.clone()),
            Expr::Read(r) => {
                for ix in &r.indices {
                    ix.variables(out);
                }
            }
            Expr::Unary(_, e) => e.variables(out),
            Expr::Binary(_, a, b) => {
                a.variables(out);
                b.variables(out);
            }
        }
    }

    /// Structurally substitute every occurrence of variable `var` with
    /// `replacement`, returning the rewritten tree.
    pub fn substitute(&self, var: &Symbol, replacement: &Expr) -> Expr {
        match self {
            Expr::Const(_) => self.clone(),
            Expr::Var(s) => {
                if s == var {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            Expr::Read(r) => Expr::Read(ArrayRef {
                array: r.array.clone(),
                indices: r
                    .indices
                    .iter()
                    .map(|ix| ix.substitute(var, replacement))
                    .collect(),
            }),
            Expr::Unary(op, e) => Expr::Unary(*op, Box::new(e.substitute(var, replacement))),
            Expr::Binary(op, a, b) => Expr::Binary(
                *op,
                Box::new(a.substitute(var, replacement)),
                Box::new(b.substitute(var, replacement)),
            ),
        }
    }

    /// Constant-fold the expression bottom-up. Operations that would trap
    /// (division by zero, overflow) are left un-folded so the interpreter
    /// reports them at runtime with context.
    pub fn fold(&self) -> Expr {
        use crate::arith;
        match self {
            Expr::Const(_) | Expr::Var(_) => self.clone(),
            Expr::Read(r) => Expr::Read(ArrayRef {
                array: r.array.clone(),
                indices: r.indices.iter().map(Expr::fold).collect(),
            }),
            Expr::Unary(op, e) => {
                let e = e.fold();
                if let (UnOp::Neg, Some(v)) = (op, e.as_const()) {
                    if let Some(n) = v.checked_neg() {
                        return Expr::Const(n);
                    }
                }
                Expr::Unary(*op, Box::new(e))
            }
            Expr::Binary(op, a, b) => {
                let a = a.fold();
                let b = b.fold();
                if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
                    let v = match op {
                        BinOp::Add => x.checked_add(y),
                        BinOp::Sub => x.checked_sub(y),
                        BinOp::Mul => x.checked_mul(y),
                        BinOp::Div => (y != 0).then(|| arith::floor_div_unchecked(x, y)),
                        BinOp::Mod => (y != 0).then(|| x - arith::floor_div_unchecked(x, y) * y),
                        BinOp::CeilDiv => (y != 0).then(|| arith::ceil_div_unchecked(x, y)),
                        BinOp::Min => Some(x.min(y)),
                        BinOp::Max => Some(x.max(y)),
                    };
                    if let Some(v) = v {
                        return Expr::Const(v);
                    }
                }
                // Algebraic identities that keep generated recovery code tidy.
                match (op, a.as_const(), b.as_const()) {
                    (BinOp::Add, Some(0), _) => return b,
                    (BinOp::Add, _, Some(0)) | (BinOp::Sub, _, Some(0)) => return a,
                    (BinOp::Mul, Some(1), _) => return b,
                    (BinOp::Mul, _, Some(1))
                    | (BinOp::Div, _, Some(1))
                    | (BinOp::CeilDiv, _, Some(1)) => return a,
                    (BinOp::Mul, Some(0), _) | (BinOp::Mul, _, Some(0)) => {
                        return Expr::Const(0);
                    }
                    _ => {}
                }
                Expr::Binary(*op, Box::new(a), Box::new(b))
            }
        }
    }
}

impl From<i64> for Expr {
    fn from(v: i64) -> Self {
        Expr::Const(v)
    }
}

impl From<&str> for Expr {
    fn from(name: &str) -> Self {
        Expr::var(name)
    }
}

impl From<Symbol> for Expr {
    fn from(s: Symbol) -> Self {
        Expr::Var(s)
    }
}

impl ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, self, rhs)
    }
}

impl ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, self, rhs)
    }
}

impl ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mul, self, rhs)
    }
}

impl ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Unary(UnOp::Neg, Box::new(self))
    }
}

/// Comparison operators for conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply the comparison to two values.
    pub fn apply(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// Boolean conditions for `if` statements.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Cond {
    /// A comparison of two integer expressions.
    Cmp(CmpOp, Expr, Expr),
    /// Logical negation.
    Not(Box<Cond>),
    /// Logical conjunction (short-circuit).
    And(Box<Cond>, Box<Cond>),
    /// Logical disjunction (short-circuit).
    Or(Box<Cond>, Box<Cond>),
}

impl Cond {
    /// Comparison shorthand.
    pub fn cmp(op: CmpOp, lhs: Expr, rhs: Expr) -> Cond {
        Cond::Cmp(op, lhs, rhs)
    }

    /// Substitute a variable in every embedded expression.
    pub fn substitute(&self, var: &Symbol, replacement: &Expr) -> Cond {
        match self {
            Cond::Cmp(op, a, b) => Cond::Cmp(
                *op,
                a.substitute(var, replacement),
                b.substitute(var, replacement),
            ),
            Cond::Not(c) => Cond::Not(Box::new(c.substitute(var, replacement))),
            Cond::And(a, b) => Cond::And(
                Box::new(a.substitute(var, replacement)),
                Box::new(b.substitute(var, replacement)),
            ),
            Cond::Or(a, b) => Cond::Or(
                Box::new(a.substitute(var, replacement)),
                Box::new(b.substitute(var, replacement)),
            ),
        }
    }

    /// Collect every variable mentioned in the condition.
    pub fn variables(&self, out: &mut Vec<Symbol>) {
        match self {
            Cond::Cmp(_, a, b) => {
                a.variables(out);
                b.variables(out);
            }
            Cond::Not(c) => c.variables(out),
            Cond::And(a, b) | Cond::Or(a, b) => {
                a.variables(out);
                b.variables(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> Expr {
        Expr::var(name)
    }

    #[test]
    fn builder_operators_produce_expected_trees() {
        let e = v("i") * Expr::lit(10) + v("j");
        match &e {
            Expr::Binary(BinOp::Add, lhs, rhs) => {
                assert!(matches!(**lhs, Expr::Binary(BinOp::Mul, _, _)));
                assert!(matches!(**rhs, Expr::Var(_)));
            }
            other => panic!("unexpected tree: {other:?}"),
        }
    }

    #[test]
    fn substitute_replaces_all_occurrences() {
        let e = v("i") + v("i") * v("j");
        let r = e.substitute(&Symbol::new("i"), &Expr::lit(3));
        let mut vars = Vec::new();
        r.variables(&mut vars);
        assert_eq!(vars, vec![Symbol::new("j")]);
    }

    #[test]
    fn substitute_descends_into_array_subscripts() {
        let e = Expr::read("A", vec![v("i") + Expr::lit(1), v("k")]);
        let r = e.substitute(&Symbol::new("i"), &v("t"));
        let mut vars = Vec::new();
        r.variables(&mut vars);
        assert!(vars.contains(&Symbol::new("t")));
        assert!(!vars.contains(&Symbol::new("i")));
    }

    #[test]
    fn fold_constant_arithmetic() {
        let e = (Expr::lit(6) * Expr::lit(7) + Expr::lit(-2)).fold();
        assert_eq!(e, Expr::Const(40));
    }

    #[test]
    fn fold_identities() {
        assert_eq!((v("x") + Expr::lit(0)).fold(), v("x"));
        assert_eq!((Expr::lit(1) * v("x")).fold(), v("x"));
        assert_eq!((v("x") * Expr::lit(0)).fold(), Expr::Const(0));
        assert_eq!(v("x").ceil_div(Expr::lit(1)).fold(), v("x"));
    }

    #[test]
    fn fold_does_not_hide_division_by_zero() {
        let e = Expr::lit(5).floor_div(Expr::lit(0)).fold();
        assert!(matches!(e, Expr::Binary(BinOp::Div, _, _)));
    }

    #[test]
    fn fold_ceil_div_uses_ceiling_semantics() {
        assert_eq!(Expr::lit(7).ceil_div(Expr::lit(2)).fold(), Expr::Const(4));
        assert_eq!(Expr::lit(-7).ceil_div(Expr::lit(2)).fold(), Expr::Const(-3));
    }

    #[test]
    fn op_cost_weights_division_heavier() {
        let cheap = (v("i") + v("j")).op_cost();
        let pricey = v("i").ceil_div(v("j")).op_cost();
        assert!(pricey > cheap);
    }

    #[test]
    fn cmp_apply() {
        assert!(CmpOp::Le.apply(3, 3));
        assert!(CmpOp::Lt.apply(2, 3));
        assert!(!CmpOp::Gt.apply(2, 3));
        assert!(CmpOp::Ne.apply(2, 3));
    }

    #[test]
    fn cond_substitute_and_variables() {
        let c = Cond::And(
            Box::new(Cond::cmp(CmpOp::Lt, v("i"), v("n"))),
            Box::new(Cond::Not(Box::new(Cond::cmp(
                CmpOp::Eq,
                v("i"),
                Expr::lit(0),
            )))),
        );
        let c2 = c.substitute(&Symbol::new("i"), &Expr::lit(5));
        let mut vars = Vec::new();
        c2.variables(&mut vars);
        assert_eq!(vars, vec![Symbol::new("n")]);
    }
}
