//! Pretty-printer producing DSL text that re-parses to the same program.

use std::fmt::Write as _;

use crate::expr::{ArrayRef, BinOp, CmpOp, Cond, Expr, UnOp};
use crate::program::Program;
use crate::stmt::{Loop, LoopKind, Stmt};

/// Render a whole program as DSL source.
pub fn print_program(prog: &Program) -> String {
    let mut out = String::new();
    for a in &prog.arrays {
        let _ = write!(out, "array {}", a.name);
        for d in &a.dims {
            let _ = write!(out, "[{d}]");
        }
        out.push_str(";\n");
    }
    for s in &prog.body {
        print_stmt(&mut out, s, 0);
    }
    out
}

/// Render a single statement (with trailing newline).
pub fn print_stmt_str(s: &Stmt) -> String {
    let mut out = String::new();
    print_stmt(&mut out, s, 0);
    out
}

/// Render an expression.
pub fn print_expr(e: &Expr) -> String {
    let mut out = String::new();
    expr(&mut out, e, 0);
    out
}

/// Render a condition.
pub fn print_cond(c: &Cond) -> String {
    let mut out = String::new();
    cond(&mut out, c, 0);
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_stmt(out: &mut String, s: &Stmt, level: usize) {
    match s {
        Stmt::AssignScalar { var, value } => {
            indent(out, level);
            let _ = writeln!(out, "{var} = {};", print_expr(value));
        }
        Stmt::AssignArray { target, value } => {
            indent(out, level);
            array_ref(out, target);
            let _ = writeln!(out, " = {};", print_expr(value));
        }
        Stmt::Loop(l) => print_loop(out, l, level),
        Stmt::If {
            cond: c,
            then_body,
            else_body,
        } => {
            indent(out, level);
            let _ = writeln!(out, "if {} {{", print_cond(c));
            for s in then_body {
                print_stmt(out, s, level + 1);
            }
            indent(out, level);
            if else_body.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                for s in else_body {
                    print_stmt(out, s, level + 1);
                }
                indent(out, level);
                out.push_str("}\n");
            }
        }
    }
}

fn print_loop(out: &mut String, l: &Loop, level: usize) {
    indent(out, level);
    match l.kind {
        LoopKind::Doacross { delay } => {
            let _ = write!(out, "doacross({delay}) ");
        }
        k => {
            let _ = write!(out, "{} ", k.keyword());
        }
    }
    let _ = write!(
        out,
        "{} = {}..{}",
        l.var,
        print_expr(&l.lower),
        print_expr(&l.upper)
    );
    if l.step.as_const() != Some(1) {
        let _ = write!(out, " step {}", print_expr(&l.step));
    }
    out.push_str(" {\n");
    for s in &l.body {
        print_stmt(out, s, level + 1);
    }
    indent(out, level);
    out.push_str("}\n");
}

fn array_ref(out: &mut String, r: &ArrayRef) {
    let _ = write!(out, "{}", r.array);
    for ix in &r.indices {
        let _ = write!(out, "[{}]", print_expr(ix));
    }
}

/// Binding power of the operator context; used to decide parenthesization.
fn prec(op: BinOp) -> u8 {
    match op {
        BinOp::Add | BinOp::Sub => 1,
        BinOp::Mul | BinOp::Div | BinOp::Mod => 2,
        // Rendered as calls, so precedence never matters:
        BinOp::Min | BinOp::Max | BinOp::CeilDiv => 3,
    }
}

fn expr(out: &mut String, e: &Expr, min_prec: u8) {
    match e {
        Expr::Const(v) => {
            if *v < 0 {
                // The lexer has no negative literals, but the parser folds
                // a parenthesized unary minus over a literal back into a
                // constant, so `(-k)` round-trips to exactly this node.
                let _ = write!(out, "(-{})", v.unsigned_abs());
            } else {
                let _ = write!(out, "{v}");
            }
        }
        Expr::Var(s) => {
            let _ = write!(out, "{s}");
        }
        Expr::Read(r) => array_ref(out, r),
        Expr::Unary(UnOp::Neg, a) => {
            out.push_str("(-");
            expr(out, a, 3);
            out.push(')');
        }
        Expr::Binary(op @ (BinOp::Min | BinOp::Max | BinOp::CeilDiv), a, b) => {
            let name = match op {
                BinOp::Min => "min",
                BinOp::Max => "max",
                _ => "ceildiv",
            };
            let _ = write!(out, "{name}(");
            expr(out, a, 0);
            out.push_str(", ");
            expr(out, b, 0);
            out.push(')');
        }
        Expr::Binary(op, a, b) => {
            let p = prec(*op);
            let needs_parens = p < min_prec;
            if needs_parens {
                out.push('(');
            }
            expr(out, a, p);
            let sym = match op {
                BinOp::Add => " + ",
                BinOp::Sub => " - ",
                BinOp::Mul => " * ",
                BinOp::Div => " / ",
                BinOp::Mod => " % ",
                _ => unreachable!(),
            };
            out.push_str(sym);
            // Right operand needs one more level for non-associative ops.
            expr(out, b, p + 1);
            if needs_parens {
                out.push(')');
            }
        }
    }
}

fn cond(out: &mut String, c: &Cond, min_prec: u8) {
    match c {
        Cond::Cmp(op, a, b) => {
            let sym = match op {
                CmpOp::Eq => "==",
                CmpOp::Ne => "!=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            let _ = write!(out, "{} {sym} {}", print_expr(a), print_expr(b));
        }
        Cond::Not(inner) => {
            out.push_str("!(");
            cond(out, inner, 0);
            out.push(')');
        }
        Cond::And(a, b) => {
            let needs = min_prec > 2;
            if needs {
                out.push('(');
            }
            cond(out, a, 2);
            out.push_str(" && ");
            // The parser is left-associative: a right-nested And/Or must
            // keep its parentheses or reparse with flipped grouping.
            cond(out, b, 3);
            if needs {
                out.push(')');
            }
        }
        Cond::Or(a, b) => {
            let needs = min_prec > 1;
            if needs {
                out.push('(');
            }
            cond(out, a, 1);
            out.push_str(" || ");
            cond(out, b, 2);
            if needs {
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    fn roundtrip_program(src: &str) {
        let p1 = parse_program(src).unwrap();
        let printed = print_program(&p1);
        let p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reprint failed to parse: {e}\n---\n{printed}"));
        assert_eq!(p1, p2, "round trip changed the program:\n{printed}");
    }

    #[test]
    fn roundtrip_nest() {
        roundtrip_program(
            "
            array A[4][8];
            doall i = 1..4 {
                doall j = 1..8 {
                    A[i][j] = 10 * i + j;
                }
            }
            ",
        );
    }

    #[test]
    fn roundtrip_if_and_step() {
        roundtrip_program(
            "
            array A[9];
            for i = 1..9 step 2 {
                if i % 3 == 0 || i == 1 {
                    A[i] = min(i, 5);
                } else {
                    A[i] = ceildiv(i, 2);
                }
            }
            ",
        );
    }

    #[test]
    fn roundtrip_doacross_and_scalar() {
        roundtrip_program(
            "
            array A[5];
            t = 3;
            doacross(1) i = 1..5 {
                A[i] = t;
            }
            ",
        );
    }

    #[test]
    fn expr_parenthesization_preserves_value() {
        for src in [
            "1 + 2 * 3",
            "(1 + 2) * 3",
            "10 - (3 - 2)",
            "10 - 3 - 2",
            "20 / 3 / 2",
            "20 / (3 / 2)",
            "ceildiv(7, 2) * max(1, 2)",
        ] {
            let e1 = parse_expr(src).unwrap();
            let printed = print_expr(&e1);
            let e2 = parse_expr(&printed).unwrap();
            assert_eq!(
                e1.fold(),
                e2.fold(),
                "value changed: `{src}` -> `{printed}`"
            );
        }
    }

    #[test]
    fn negative_constants_roundtrip() {
        let e = Expr::Const(-7) + Expr::var("x");
        let printed = print_expr(&e);
        let e2 = parse_expr(&printed).unwrap();
        assert_eq!(e2.fold(), (Expr::Const(-7) + Expr::var("x")).fold());
    }

    #[test]
    fn subtraction_right_operand_parenthesized() {
        // 10 - (3 - 2) must not print as 10 - 3 - 2.
        let e = Expr::lit(10) - (Expr::lit(3) - Expr::lit(2));
        let printed = print_expr(&e);
        let reparsed = parse_expr(&printed).unwrap();
        assert_eq!(reparsed.fold(), Expr::Const(9));
    }
}
