//! A reference interpreter for IR programs.
//!
//! The interpreter is the ground truth against which transformations are
//! validated: `lc-xform` runs the original and the coalesced program on the
//! same initial [`Store`] and requires bit-identical final stores. For
//! `doall` loops the iteration order is configurable ([`DoallOrder`]) so
//! validation can additionally check order-*independence* — a coalesced
//! `doall` must produce the same store under forward, reverse, and shuffled
//! execution.

use std::collections::HashMap;

use crate::arith;
use crate::error::{Error, Result};
use crate::expr::{ArrayRef, BinOp, Cond, Expr, UnOp};
use crate::program::Program;
use crate::stmt::{Loop, Stmt};
use crate::symbol::Symbol;

/// A dense, row-major, 1-based integer array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Array {
    /// Extent of each dimension.
    pub dims: Vec<usize>,
    /// Row-major element storage.
    pub data: Vec<i64>,
}

impl Array {
    /// A zero-filled array with the given extents.
    pub fn zeroed(dims: Vec<usize>) -> Self {
        let len = dims.iter().product();
        Array {
            dims,
            data: vec![0; len],
        }
    }

    /// Convert 1-based subscripts to a flat row-major offset, bounds-checked.
    pub fn flat_index(&self, name: &Symbol, indices: &[i64]) -> Result<usize> {
        if indices.len() != self.dims.len() {
            return Err(Error::RankMismatch {
                array: name.clone(),
                expected: self.dims.len(),
                got: indices.len(),
            });
        }
        let mut flat = 0usize;
        for (d, (&ix, &extent)) in indices.iter().zip(&self.dims).enumerate() {
            if ix < 1 || ix as u64 > extent as u64 {
                return Err(Error::OutOfBounds {
                    array: name.clone(),
                    dim: d,
                    index: ix,
                    extent,
                });
            }
            flat = flat * extent + (ix as usize - 1);
        }
        Ok(flat)
    }
}

/// The memory image of a program run: every declared array.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Store {
    arrays: HashMap<Symbol, Array>,
}

impl Store {
    /// Build a zero-initialized store for a program's declarations.
    pub fn for_program(prog: &Program) -> Store {
        let mut arrays = HashMap::new();
        for decl in &prog.arrays {
            arrays.insert(decl.name.clone(), Array::zeroed(decl.dims.clone()));
        }
        Store { arrays }
    }

    /// Read one element with 1-based subscripts.
    pub fn get(&self, name: &str, indices: &[i64]) -> Result<i64> {
        let sym = Symbol::new(name);
        let arr = self
            .arrays
            .get(name)
            .ok_or_else(|| Error::UnknownArray(sym.clone()))?;
        let flat = arr.flat_index(&sym, indices)?;
        Ok(arr.data[flat])
    }

    /// Write one element with 1-based subscripts.
    pub fn set(&mut self, name: &str, indices: &[i64], value: i64) -> Result<()> {
        let sym = Symbol::new(name);
        let arr = self
            .arrays
            .get_mut(name)
            .ok_or_else(|| Error::UnknownArray(sym.clone()))?;
        let flat = arr.flat_index(&sym, indices)?;
        arr.data[flat] = value;
        Ok(())
    }

    /// Borrow an array's raw row-major data (e.g. to seed inputs in bulk).
    pub fn data(&self, name: &str) -> Option<&[i64]> {
        self.arrays.get(name).map(|a| a.data.as_slice())
    }

    /// Mutably borrow an array's raw row-major data.
    pub fn data_mut(&mut self, name: &str) -> Option<&mut [i64]> {
        self.arrays.get_mut(name).map(|a| a.data.as_mut_slice())
    }

    /// Iterate over `(name, array)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Symbol, &Array)> {
        self.arrays.iter()
    }

    /// A 64-bit FNV-1a digest over every array's name, extents, and
    /// contents, independent of internal map order. Two stores with
    /// equal digests are byte-identical for all practical purposes, so
    /// differential testers can compare whole final stores by one `u64`
    /// instead of cloning and diffing them.
    pub fn digest(&self) -> u64 {
        let mut names: Vec<&Symbol> = self.arrays.keys().collect();
        names.sort_by(|a, b| a.as_str().cmp(b.as_str()));
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for name in names {
            let arr = &self.arrays[name];
            mix(name.as_str().as_bytes());
            mix(&[0xFF]); // separator: names cannot contain 0xFF
            for d in &arr.dims {
                mix(&(*d as u64).to_le_bytes());
            }
            for v in &arr.data {
                mix(&v.to_le_bytes());
            }
        }
        h
    }

    /// Deterministically sample up to `count` elements across all arrays
    /// (a splitmix64 stream over `seed` picks them), returning
    /// `(array, flat offset, value)` triples in a stable order.
    ///
    /// This is the sampled-evaluation entry point differential testers
    /// use to report *witness points*: after [`Store::digest`] says two
    /// final stores diverge, sampling both stores with the same seed
    /// yields directly comparable element sets without materializing a
    /// full diff.
    pub fn sample(&self, seed: u64, count: usize) -> Vec<(Symbol, usize, i64)> {
        let mut names: Vec<&Symbol> = self.arrays.keys().collect();
        names.sort_by(|a, b| a.as_str().cmp(b.as_str()));
        let nonempty: Vec<&Symbol> = names
            .into_iter()
            .filter(|n| !self.arrays[*n].data.is_empty())
            .collect();
        if nonempty.is_empty() {
            return Vec::new();
        }
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let name = nonempty[(next() % nonempty.len() as u64) as usize];
            let arr = &self.arrays[name];
            let flat = (next() % arr.data.len() as u64) as usize;
            out.push((name.clone(), flat, arr.data[flat]));
        }
        out
    }
}

/// Iteration order used for `doall` loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DoallOrder {
    /// Ascending index order (same as a serial loop).
    Forward,
    /// Descending index order.
    Reverse,
    /// A deterministic pseudo-random permutation seeded by the given value.
    Shuffled(u64),
}

/// What kind of memory access a trace event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Array element read.
    Read,
    /// Array element write.
    Write,
}

/// One recorded array access (only collected when tracing is enabled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    /// Read or write.
    pub kind: AccessKind,
    /// Which array.
    pub array: Symbol,
    /// Flat row-major element offset.
    pub flat: usize,
    /// Snapshot of the active loop indices, outermost first.
    pub iteration: Vec<(Symbol, i64)>,
}

/// Statistics and optional trace returned by [`Interp::run_on`].
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Number of statements executed (loop iterations count each body
    /// statement; loop headers count once per iteration).
    pub steps: u64,
    /// Weighted abstract operations executed (see
    /// [`crate::expr::BinOp::op_cost`]): every evaluated operator adds its
    /// cost, every array access and store adds one. This is the dynamic
    /// counterpart of [`crate::expr::Expr::op_cost`] and feeds the machine
    /// simulator with per-iteration body costs derived from real IR.
    pub ops: u64,
    /// Recorded accesses, empty unless tracing was enabled.
    pub trace: Vec<Access>,
}

/// The interpreter configuration.
#[derive(Debug, Clone)]
pub struct Interp {
    /// Maximum number of steps before aborting with
    /// [`Error::StepBudgetExceeded`]. Defaults to 100 million.
    pub step_budget: u64,
    /// Iteration order for `doall` loops. Defaults to forward.
    pub doall_order: DoallOrder,
    /// Whether to record the memory-access trace.
    pub trace: bool,
}

impl Default for Interp {
    fn default() -> Self {
        Interp {
            step_budget: 100_000_000,
            doall_order: DoallOrder::Forward,
            trace: false,
        }
    }
}

struct Frame {
    store: Store,
    scalars: HashMap<Symbol, i64>,
    loop_stack: Vec<(Symbol, i64)>,
    stats: ExecStats,
    budget: u64,
    order: DoallOrder,
    trace: bool,
}

impl Interp {
    /// Default configuration.
    pub fn new() -> Self {
        Interp::default()
    }

    /// Set the `doall` iteration order (builder style).
    pub fn with_order(mut self, order: DoallOrder) -> Self {
        self.doall_order = order;
        self
    }

    /// Enable access tracing (builder style).
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Set the step budget (builder style).
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.step_budget = budget;
        self
    }

    /// Run a program on a fresh zero-initialized store and return the final
    /// store.
    pub fn run(&self, prog: &Program) -> Result<Store> {
        let store = Store::for_program(prog);
        let (store, _) = self.run_on(prog, store)?;
        Ok(store)
    }

    /// Run a program starting from the supplied store (which must already
    /// contain the program's arrays, e.g. via [`Store::for_program`] plus
    /// bulk initialization). Returns the final store and execution stats.
    pub fn run_on(&self, prog: &Program, store: Store) -> Result<(Store, ExecStats)> {
        prog.check()?;
        let mut frame = Frame {
            store,
            scalars: HashMap::new(),
            loop_stack: Vec::new(),
            stats: ExecStats::default(),
            budget: self.step_budget,
            order: self.doall_order,
            trace: self.trace,
        };
        exec_stmts(&mut frame, &prog.body)?;
        Ok((frame.store, frame.stats))
    }
}

fn tick(frame: &mut Frame) -> Result<()> {
    frame.stats.steps += 1;
    if frame.stats.steps > frame.budget {
        Err(Error::StepBudgetExceeded {
            budget: frame.budget,
        })
    } else {
        Ok(())
    }
}

fn eval(frame: &mut Frame, e: &Expr) -> Result<i64> {
    match e {
        Expr::Const(v) => Ok(*v),
        Expr::Var(s) => frame
            .scalars
            .get(s)
            .copied()
            .ok_or_else(|| Error::UnboundVariable(s.clone())),
        Expr::Read(r) => {
            let flat = resolve_ref(frame, r)?;
            frame.stats.ops += 1; // memory load
            if frame.trace {
                let iteration = frame.loop_stack.clone();
                frame.stats.trace.push(Access {
                    kind: AccessKind::Read,
                    array: r.array.clone(),
                    flat,
                    iteration,
                });
            }
            Ok(frame.store.arrays[&r.array].data[flat])
        }
        Expr::Unary(UnOp::Neg, a) => {
            let v = eval(frame, a)?;
            frame.stats.ops += 1;
            v.checked_neg().ok_or(Error::Overflow)
        }
        Expr::Binary(op, a, b) => {
            let x = eval(frame, a)?;
            let y = eval(frame, b)?;
            frame.stats.ops += op.op_cost();
            match op {
                BinOp::Add => x.checked_add(y).ok_or(Error::Overflow),
                BinOp::Sub => x.checked_sub(y).ok_or(Error::Overflow),
                BinOp::Mul => x.checked_mul(y).ok_or(Error::Overflow),
                BinOp::Div => arith::floor_div(x, y),
                BinOp::Mod => arith::floor_mod(x, y),
                BinOp::CeilDiv => arith::ceil_div(x, y),
                BinOp::Min => Ok(x.min(y)),
                BinOp::Max => Ok(x.max(y)),
            }
        }
    }
}

fn resolve_ref(frame: &mut Frame, r: &ArrayRef) -> Result<usize> {
    let mut indices = Vec::with_capacity(r.indices.len());
    for ix in &r.indices {
        indices.push(eval(frame, ix)?);
    }
    let arr = frame
        .store
        .arrays
        .get(&r.array)
        .ok_or_else(|| Error::UnknownArray(r.array.clone()))?;
    arr.flat_index(&r.array, &indices)
}

fn eval_cond(frame: &mut Frame, c: &Cond) -> Result<bool> {
    match c {
        Cond::Cmp(op, a, b) => {
            let x = eval(frame, a)?;
            let y = eval(frame, b)?;
            Ok(op.apply(x, y))
        }
        Cond::Not(c) => Ok(!eval_cond(frame, c)?),
        Cond::And(a, b) => Ok(eval_cond(frame, a)? && eval_cond(frame, b)?),
        Cond::Or(a, b) => Ok(eval_cond(frame, a)? || eval_cond(frame, b)?),
    }
}

fn exec_stmts(frame: &mut Frame, stmts: &[Stmt]) -> Result<()> {
    for s in stmts {
        exec_stmt(frame, s)?;
    }
    Ok(())
}

fn exec_stmt(frame: &mut Frame, s: &Stmt) -> Result<()> {
    tick(frame)?;
    match s {
        Stmt::AssignScalar { var, value } => {
            let v = eval(frame, value)?;
            frame.stats.ops += 1; // scalar store
            frame.scalars.insert(var.clone(), v);
            Ok(())
        }
        Stmt::AssignArray { target, value } => {
            let v = eval(frame, value)?;
            let flat = resolve_ref(frame, target)?;
            frame.stats.ops += 1; // memory store
            if frame.trace {
                let iteration = frame.loop_stack.clone();
                frame.stats.trace.push(Access {
                    kind: AccessKind::Write,
                    array: target.array.clone(),
                    flat,
                    iteration,
                });
            }
            frame
                .store
                .arrays
                .get_mut(&target.array)
                .expect("checked by resolve_ref")
                .data[flat] = v;
            Ok(())
        }
        Stmt::Loop(l) => exec_loop(frame, l),
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            if eval_cond(frame, cond)? {
                exec_stmts(frame, then_body)
            } else {
                exec_stmts(frame, else_body)
            }
        }
    }
}

fn exec_loop(frame: &mut Frame, l: &Loop) -> Result<()> {
    let lo = eval(frame, &l.lower)?;
    let hi = eval(frame, &l.upper)?;
    let step = eval(frame, &l.step)?;
    if step == 0 {
        return Err(Error::ZeroStep(l.var.clone()));
    }

    // Materialize the index sequence. Loops in this IR are counted and
    // bounded by the step budget, so this is fine for test-scale programs.
    let mut indices = Vec::new();
    let mut i = lo;
    loop {
        if (step > 0 && i > hi) || (step < 0 && i < hi) {
            break;
        }
        indices.push(i);
        i = match i.checked_add(step) {
            Some(n) => n,
            None => break,
        };
        if indices.len() as u64 > frame.budget {
            return Err(Error::StepBudgetExceeded {
                budget: frame.budget,
            });
        }
    }

    if l.kind.is_doall() {
        apply_order(&mut indices, frame.order);
    }

    let saved = frame.scalars.get(&l.var).copied();
    for ix in indices {
        tick(frame)?;
        frame.scalars.insert(l.var.clone(), ix);
        frame.loop_stack.push((l.var.clone(), ix));
        let r = exec_stmts(frame, &l.body);
        frame.loop_stack.pop();
        r?;
    }
    // Restore shadowed binding (the loop variable goes out of scope).
    match saved {
        Some(v) => {
            frame.scalars.insert(l.var.clone(), v);
        }
        None => {
            frame.scalars.remove(&l.var);
        }
    }
    Ok(())
}

fn apply_order(indices: &mut [i64], order: DoallOrder) {
    match order {
        DoallOrder::Forward => {}
        DoallOrder::Reverse => indices.reverse(),
        DoallOrder::Shuffled(seed) => {
            // Fisher–Yates with a xorshift64* generator: deterministic, no
            // external dependency in the library crate.
            let mut state = seed | 1;
            let mut next = || {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                state.wrapping_mul(0x2545_F491_4F6C_DD1D)
            };
            for i in (1..indices.len()).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                indices.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::stmt::{Loop, Stmt};

    fn fill_program() -> Program {
        // doall i=1..4 { doall j=1..8 { A[i][j] = 10*i + j; } }
        let body = Stmt::store(
            "A",
            vec![Expr::var("i"), Expr::var("j")],
            Expr::lit(10) * Expr::var("i") + Expr::var("j"),
        );
        Program::new()
            .with_array("A", vec![4, 8])
            .with_stmt(Stmt::Loop(Loop::doall(
                "i",
                4,
                vec![Stmt::Loop(Loop::doall("j", 8, vec![body]))],
            )))
    }

    #[test]
    fn fill_produces_expected_values() {
        let store = Interp::new().run(&fill_program()).unwrap();
        assert_eq!(store.get("A", &[1, 1]).unwrap(), 11);
        assert_eq!(store.get("A", &[4, 8]).unwrap(), 48);
        assert_eq!(store.get("A", &[3, 5]).unwrap(), 35);
    }

    #[test]
    fn doall_order_does_not_change_independent_loop() {
        let p = fill_program();
        let fwd = Interp::new().run(&p).unwrap();
        let rev = Interp::new()
            .with_order(DoallOrder::Reverse)
            .run(&p)
            .unwrap();
        let shuf = Interp::new()
            .with_order(DoallOrder::Shuffled(42))
            .run(&p)
            .unwrap();
        assert_eq!(fwd, rev);
        assert_eq!(fwd, shuf);
    }

    #[test]
    fn doall_order_exposes_dependent_loop() {
        // A[i] = A[i-1] + 1 carried dependence: order matters. Written as a
        // doall (incorrectly), forward and reverse orders must disagree.
        let body = Stmt::store(
            "A",
            vec![Expr::var("i")],
            Expr::read("A", vec![Expr::var("i") - Expr::lit(1)]) + Expr::lit(1),
        );
        let p = Program::new()
            .with_array("A", vec![8])
            .with_stmt(Stmt::store("A", vec![Expr::lit(1)], Expr::lit(100)))
            .with_stmt(Stmt::Loop(Loop::new(
                crate::stmt::LoopKind::Doall,
                "i",
                2,
                8,
                vec![body],
            )));
        let fwd = Interp::new().run(&p).unwrap();
        let rev = Interp::new()
            .with_order(DoallOrder::Reverse)
            .run(&p)
            .unwrap();
        assert_ne!(fwd, rev);
    }

    #[test]
    fn serial_loop_with_accumulator() {
        // s = 0; for i=1..10 { s = s + i; } A[1] = s;
        let p = Program::new()
            .with_array("A", vec![1])
            .with_stmt(Stmt::assign("s", Expr::lit(0)))
            .with_stmt(Stmt::Loop(Loop::serial(
                "i",
                10,
                vec![Stmt::assign("s", Expr::var("s") + Expr::var("i"))],
            )))
            .with_stmt(Stmt::store("A", vec![Expr::lit(1)], Expr::var("s")));
        let store = Interp::new().run(&p).unwrap();
        assert_eq!(store.get("A", &[1]).unwrap(), 55);
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let p = Program::new()
            .with_array("A", vec![4])
            .with_stmt(Stmt::store("A", vec![Expr::lit(5)], Expr::lit(1)));
        assert!(matches!(
            Interp::new().run(&p),
            Err(Error::OutOfBounds { .. })
        ));
    }

    #[test]
    fn zero_based_subscript_is_out_of_bounds() {
        let p = Program::new()
            .with_array("A", vec![4])
            .with_stmt(Stmt::store("A", vec![Expr::lit(0)], Expr::lit(1)));
        assert!(matches!(
            Interp::new().run(&p),
            Err(Error::OutOfBounds { .. })
        ));
    }

    #[test]
    fn unbound_variable_is_reported() {
        let p = Program::new()
            .with_array("A", vec![1])
            .with_stmt(Stmt::store("A", vec![Expr::lit(1)], Expr::var("ghost")));
        assert_eq!(
            Interp::new().run(&p),
            Err(Error::UnboundVariable(Symbol::new("ghost")))
        );
    }

    #[test]
    fn loop_variable_scoping_restores_outer_binding() {
        // i = 99; for i=1..3 {} A[1] = i;  — after the loop, i must be 99.
        let p = Program::new()
            .with_array("A", vec![1])
            .with_stmt(Stmt::assign("i", Expr::lit(99)))
            .with_stmt(Stmt::Loop(Loop::serial("i", 3, vec![])))
            .with_stmt(Stmt::store("A", vec![Expr::lit(1)], Expr::var("i")));
        let store = Interp::new().run(&p).unwrap();
        assert_eq!(store.get("A", &[1]).unwrap(), 99);
    }

    #[test]
    fn step_budget_stops_runaway_loops() {
        let p = Program::new().with_stmt(Stmt::Loop(Loop::serial(
            "i",
            1_000_000,
            vec![Stmt::assign("x", Expr::lit(0))],
        )));
        let r = Interp::new().with_budget(1000).run(&p);
        assert!(matches!(r, Err(Error::StepBudgetExceeded { .. })));
    }

    #[test]
    fn negative_step_loop_descends() {
        // for i = 3..1 step -1 { A[i] = i }
        let mut l = Loop::new(
            crate::stmt::LoopKind::Serial,
            "i",
            3,
            1,
            vec![Stmt::store("A", vec![Expr::var("i")], Expr::var("i"))],
        );
        l.step = Expr::lit(-1);
        let p = Program::new()
            .with_array("A", vec![3])
            .with_stmt(Stmt::Loop(l));
        let store = Interp::new().run(&p).unwrap();
        assert_eq!(store.get("A", &[2]).unwrap(), 2);
    }

    #[test]
    fn ops_accounting_matches_hand_count() {
        // A[1] = 2 * 3 + 4: mul(3) + add(1) + store(1) = 5 ops.
        let p = Program::new()
            .with_array("A", vec![1])
            .with_stmt(Stmt::store(
                "A",
                vec![Expr::lit(1)],
                Expr::lit(2) * Expr::lit(3) + Expr::lit(4),
            ));
        let store = Store::for_program(&p);
        let (_, stats) = Interp::new().run_on(&p, store).unwrap();
        assert_eq!(stats.ops, 5);
    }

    #[test]
    fn ops_scale_with_iterations() {
        let p = fill_program(); // 32 iterations storing `10*i + j`
        let store = Store::for_program(&p);
        let (_, stats) = Interp::new().run_on(&p, store).unwrap();
        // Per iteration: mul(3) + add(1) + store(1) = 5.
        assert_eq!(stats.ops, 32 * 5);
    }

    #[test]
    fn trace_records_reads_and_writes_with_iteration() {
        let p = fill_program();
        let store = Store::for_program(&p);
        let (_, stats) = Interp::new().with_trace().run_on(&p, store).unwrap();
        assert_eq!(stats.trace.len(), 32); // 4*8 writes, no array reads
        let w = &stats.trace[0];
        assert_eq!(w.kind, AccessKind::Write);
        assert_eq!(w.iteration.len(), 2);
        assert_eq!(w.iteration[0].0, Symbol::new("i"));
    }

    #[test]
    fn if_statement_branches() {
        use crate::expr::{CmpOp, Cond};
        // doall i=1..4 { if i <= 2 { A[i] = 1; } else { A[i] = 2; } }
        let p = Program::new()
            .with_array("A", vec![4])
            .with_stmt(Stmt::Loop(Loop::doall(
                "i",
                4,
                vec![Stmt::If {
                    cond: Cond::cmp(CmpOp::Le, Expr::var("i"), Expr::lit(2)),
                    then_body: vec![Stmt::store("A", vec![Expr::var("i")], Expr::lit(1))],
                    else_body: vec![Stmt::store("A", vec![Expr::var("i")], Expr::lit(2))],
                }],
            )));
        let store = Interp::new().run(&p).unwrap();
        assert_eq!(store.get("A", &[2]).unwrap(), 1);
        assert_eq!(store.get("A", &[3]).unwrap(), 2);
    }

    #[test]
    fn digest_is_order_free_and_content_sensitive() {
        let p = fill_program();
        let a = Interp::new().run(&p).unwrap();
        let b = Interp::new()
            .with_order(DoallOrder::Shuffled(7))
            .run(&p)
            .unwrap();
        assert_eq!(a.digest(), b.digest(), "same contents, same digest");
        let mut c = Interp::new().run(&p).unwrap();
        c.set("A", &[1, 1], 999).unwrap();
        assert_ne!(a.digest(), c.digest(), "one element flips the digest");
    }

    #[test]
    fn sample_is_deterministic_and_in_bounds() {
        let store = Interp::new().run(&fill_program()).unwrap();
        let s1 = store.sample(42, 16);
        let s2 = store.sample(42, 16);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 16);
        for (name, flat, value) in &s1 {
            assert_eq!(name.as_str(), "A");
            assert!(*flat < 32);
            assert_eq!(store.data("A").unwrap()[*flat], *value);
        }
        assert_ne!(store.sample(43, 16), s1, "seed changes the sample");
    }

    #[test]
    fn sample_of_empty_store_is_empty() {
        let p = Program::new().with_array("Z", vec![0]);
        let store = Store::for_program(&p);
        assert!(store.sample(1, 8).is_empty());
    }

    #[test]
    fn overflow_is_reported() {
        let p = Program::new()
            .with_array("A", vec![1])
            .with_stmt(Stmt::store(
                "A",
                vec![Expr::lit(1)],
                Expr::lit(i64::MAX) + Expr::lit(1),
            ));
        assert_eq!(Interp::new().run(&p), Err(Error::Overflow));
    }
}
