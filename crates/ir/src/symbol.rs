//! Cheap-to-clone identifiers for variables and arrays.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// An interned-style identifier.
///
/// Symbols are reference-counted strings: cloning a `Symbol` is a pointer
/// copy, which matters because the transformation passes clone loop
/// variables freely while rewriting bodies.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(Arc<str>);

impl Symbol {
    /// Create a symbol from anything string-like.
    pub fn new(name: impl AsRef<str>) -> Self {
        Symbol(Arc::from(name.as_ref()))
    }

    /// View the symbol as a `&str`.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol::new(s)
    }
}

impl Borrow<str> for Symbol {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn equality_and_display() {
        let a = Symbol::new("i");
        let b: Symbol = "i".into();
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "i");
        assert_eq!(a, *"i");
    }

    #[test]
    fn clone_is_same_pointer() {
        let a = Symbol::new("long_variable_name");
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.0, &b.0));
    }

    #[test]
    fn usable_as_map_key_via_str_borrow() {
        let mut m: HashMap<Symbol, i64> = HashMap::new();
        m.insert(Symbol::new("n"), 7);
        assert_eq!(m.get("n"), Some(&7));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = [Symbol::new("j"), Symbol::new("i"), Symbol::new("k")];
        v.sort();
        let names: Vec<&str> = v.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, ["i", "j", "k"]);
    }
}
