//! `lc-ir` — a miniature compiler IR for rectangular loop nests.
//!
//! This crate supplies the substrate on which the loop-coalescing
//! transformation (crate `lc-xform`) operates:
//!
//! * [`expr`] / [`stmt`] / [`program`] — the IR itself: integer expressions,
//!   array reads/writes, `serial` / `doall` / `doacross` loops.
//! * [`parser`] — a small text DSL so tests and examples can write nests as
//!   source code rather than constructing trees by hand.
//! * [`printer`] — pretty-printer producing round-trippable DSL text.
//! * [`interp`] — a reference interpreter over an array store, with an
//!   optional memory-access trace and configurable `doall` iteration order
//!   (used to validate that transformed programs are order-independent).
//! * [`analysis`] — perfect-nest extraction, trip-count/normalization
//!   checks, affine subscript extraction, and GCD + Banerjee dependence
//!   testing with direction vectors (DOALL legality).
//!
//! The IR is deliberately integer-only: the transformation and its legality
//! conditions are about index arithmetic and memory disambiguation, not
//! about element types, so `i64` elements keep the interpreter exact and
//! the tests deterministic.
//!
//! # Quick example
//!
//! ```
//! use lc_ir::parser::parse_program;
//! use lc_ir::interp::Interp;
//!
//! let src = "
//!     array A[4][8];
//!     doall i = 1..4 {
//!         doall j = 1..8 {
//!             A[i][j] = i * 10 + j;
//!         }
//!     }
//! ";
//! let prog = parse_program(src).unwrap();
//! let store = Interp::new().run(&prog).unwrap();
//! assert_eq!(store.get("A", &[2, 3]).unwrap(), 23);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod arith;
pub mod build;
pub mod error;
pub mod expr;
pub mod interp;
pub mod parser;
pub mod printer;
pub mod program;
pub mod stmt;
pub mod symbol;

pub use build::{ExprBuilder, RecoveryCost};
pub use error::{BoundPart, Error, Result, SkipReason};
pub use expr::{ArrayRef, BinOp, CmpOp, Cond, Expr, UnOp};
pub use program::{ArrayDecl, Program};
pub use stmt::{Loop, LoopKind, Stmt};
pub use symbol::Symbol;
