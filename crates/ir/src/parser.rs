//! A small text DSL for writing loop-nest programs.
//!
//! Grammar (informal):
//!
//! ```text
//! program  := item*
//! item     := "array" IDENT ("[" INT "]")+ ";"  |  stmt
//! stmt     := loop | if | assign
//! loop     := ("for" | "doall" | "doacross" "(" INT ")") IDENT "=" expr ".." expr
//!             ("step" expr)? block
//! if       := "if" cond block ("else" block)?
//! assign   := IDENT ("[" expr "]")* "=" expr ";"
//! block    := "{" stmt* "}"
//! expr     := term (("+" | "-") term)*
//! term     := factor (("*" | "/" | "%") factor)*
//! factor   := INT | "-" factor | "(" expr ")" | call | IDENT ("[" expr "]")*
//! call     := ("min" | "max" | "ceildiv") "(" expr "," expr ")"
//! cond     := orcond;  orcond := andcond ("||" andcond)*
//! andcond  := atom ("&&" atom)*
//! atom     := "!" atom | "(" cond ")" | expr cmpop expr
//! cmpop    := "==" | "!=" | "<=" | "<" | ">=" | ">"
//! ```
//!
//! `/` is floor division and `%` floor modulus (see [`crate::arith`]).
//! Comments run from `//` to end of line.

use crate::error::{Error, Result};
use crate::expr::{ArrayRef, BinOp, CmpOp, Cond, Expr};
use crate::program::{ArrayDecl, Program};
use crate::stmt::{Loop, LoopKind, Stmt};
use crate::symbol::Symbol;

/// Maximum syntactic nesting (blocks, parentheses, subscripts) the
/// parser accepts. The parser is recursive-descent, so unbounded nesting
/// in adversarial input would otherwise exhaust the thread stack — and a
/// stack overflow aborts the whole process, which a serving deployment
/// cannot tolerate. Beyond this depth the parser reports an ordinary
/// [`Error::Parse`]. Real programs nest a handful of levels; 200 is far
/// above anything legitimate and far below stack exhaustion.
pub const MAX_NEST_DEPTH: usize = 200;

/// Parse a complete program (declarations + statements).
pub fn parse_program(src: &str) -> Result<Program> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let mut prog = Program::new();
    while !p.at_end() {
        if p.peek_is_kw("array") {
            prog.arrays.push(p.array_decl()?);
        } else {
            prog.body.push(p.stmt()?);
        }
    }
    prog.check()?;
    Ok(prog)
}

/// Parse a single expression (handy in tests).
pub fn parse_expr(src: &str) -> Result<Expr> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let e = p.expr()?;
    if !p.at_end() {
        return Err(p.err("trailing input after expression"));
    }
    Ok(e)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Punct(&'static str),
}

#[derive(Debug, Clone)]
struct SpannedTok {
    tok: Tok,
    line: usize,
}

fn lex(src: &str) -> Result<Vec<SpannedTok>> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(SpannedTok {
                    tok: Tok::Ident(src[start..i].to_string()),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let v: i64 = text.parse().map_err(|_| Error::Parse {
                    line,
                    message: format!("integer literal `{text}` out of range"),
                })?;
                out.push(SpannedTok {
                    tok: Tok::Int(v),
                    line,
                });
            }
            _ => {
                let two = if i + 1 < bytes.len() {
                    &src[i..i + 2]
                } else {
                    ""
                };
                let punct2 = ["..", "==", "!=", "<=", ">=", "&&", "||"]
                    .iter()
                    .find(|p| **p == two)
                    .copied();
                if let Some(p2) = punct2 {
                    out.push(SpannedTok {
                        tok: Tok::Punct(p2),
                        line,
                    });
                    i += 2;
                } else {
                    let one = [
                        "[", "]", "{", "}", "(", ")", "=", ";", "+", "-", "*", "/", "%", "<", ">",
                        "!", ",",
                    ]
                    .iter()
                    .find(|p| p.as_bytes()[0] == bytes[i])
                    .copied();
                    match one {
                        Some(p1) => {
                            out.push(SpannedTok {
                                tok: Tok::Punct(p1),
                                line,
                            });
                            i += 1;
                        }
                        None => {
                            return Err(Error::Parse {
                                line,
                                message: format!("unexpected character `{c}`"),
                            })
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<SpannedTok>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Bump the nesting depth around a recursive production, rejecting
    /// input nested beyond [`MAX_NEST_DEPTH`].
    fn nested<T>(&mut self, f: impl FnOnce(&mut Self) -> Result<T>) -> Result<T> {
        self.depth += 1;
        let r = if self.depth > MAX_NEST_DEPTH {
            Err(self.err(format!(
                "nesting deeper than {MAX_NEST_DEPTH} levels is not supported"
            )))
        } else {
            f(self)
        };
        self.depth -= 1;
        r
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(1)
    }

    fn err(&self, message: impl Into<String>) -> Error {
        Error::Parse {
            line: self.line(),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn peek_is_punct(&self, p: &str) -> bool {
        matches!(self.peek(), Some(Tok::Punct(q)) if *q == p)
    }

    fn peek_is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<()> {
        match self.bump() {
            Some(Tok::Punct(q)) if q == p => Ok(()),
            Some(other) => Err(self.err(format!("expected `{p}`, found {other:?}"))),
            None => Err(self.err(format!("expected `{p}`, found end of input"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(other) => Err(self.err(format!("expected identifier, found {other:?}"))),
            None => Err(self.err("expected identifier, found end of input")),
        }
    }

    fn expect_int(&mut self) -> Result<i64> {
        match self.bump() {
            Some(Tok::Int(v)) => Ok(v),
            Some(other) => Err(self.err(format!("expected integer, found {other:?}"))),
            None => Err(self.err("expected integer, found end of input")),
        }
    }

    fn array_decl(&mut self) -> Result<ArrayDecl> {
        let _ = self.bump(); // "array"
        let name = self.expect_ident()?;
        let mut dims = Vec::new();
        while self.peek_is_punct("[") {
            self.expect_punct("[")?;
            let v = self.expect_int()?;
            if v < 0 {
                return Err(self.err("array extent must be non-negative"));
            }
            dims.push(v as usize);
            self.expect_punct("]")?;
        }
        if dims.is_empty() {
            return Err(self.err("array declaration needs at least one `[extent]`"));
        }
        self.expect_punct(";")?;
        Ok(ArrayDecl::new(name, dims))
    }

    fn block(&mut self) -> Result<Vec<Stmt>> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.peek_is_punct("}") {
            if self.at_end() {
                return Err(self.err("unterminated block: expected `}`"));
            }
            stmts.push(self.stmt()?);
        }
        self.expect_punct("}")?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt> {
        self.nested(|p| {
            if p.peek_is_kw("for") || p.peek_is_kw("doall") || p.peek_is_kw("doacross") {
                return p.loop_stmt();
            }
            if p.peek_is_kw("if") {
                return p.if_stmt();
            }
            p.assign_stmt()
        })
    }

    fn loop_stmt(&mut self) -> Result<Stmt> {
        let kw = self.expect_ident()?;
        let kind = match kw.as_str() {
            "for" => LoopKind::Serial,
            "doall" => LoopKind::Doall,
            "doacross" => {
                self.expect_punct("(")?;
                let d = self.expect_int()?;
                if d < 0 || d > u32::MAX as i64 {
                    return Err(self.err("doacross delay out of range"));
                }
                self.expect_punct(")")?;
                LoopKind::Doacross { delay: d as u32 }
            }
            other => return Err(self.err(format!("unknown loop keyword `{other}`"))),
        };
        let var = self.expect_ident()?;
        self.expect_punct("=")?;
        let lower = self.expr()?;
        self.expect_punct("..")?;
        let upper = self.expr()?;
        let step = if self.peek_is_kw("step") {
            let _ = self.bump();
            self.expr()?
        } else {
            Expr::lit(1)
        };
        let body = self.block()?;
        Ok(Stmt::Loop(Loop {
            var: Symbol::new(var),
            lower,
            upper,
            step,
            kind,
            body,
        }))
    }

    fn if_stmt(&mut self) -> Result<Stmt> {
        let _ = self.bump(); // "if"
        let cond = self.cond()?;
        let then_body = self.block()?;
        let else_body = if self.peek_is_kw("else") {
            let _ = self.bump();
            self.block()?
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
        })
    }

    fn assign_stmt(&mut self) -> Result<Stmt> {
        let name = self.expect_ident()?;
        let mut indices = Vec::new();
        while self.peek_is_punct("[") {
            self.expect_punct("[")?;
            indices.push(self.expr()?);
            self.expect_punct("]")?;
        }
        self.expect_punct("=")?;
        let value = self.expr()?;
        self.expect_punct(";")?;
        if indices.is_empty() {
            Ok(Stmt::AssignScalar {
                var: Symbol::new(name),
                value,
            })
        } else {
            Ok(Stmt::AssignArray {
                target: ArrayRef::new(name, indices),
                value,
            })
        }
    }

    fn expr(&mut self) -> Result<Expr> {
        let mut lhs = self.term()?;
        loop {
            let op = if self.peek_is_punct("+") {
                BinOp::Add
            } else if self.peek_is_punct("-") {
                BinOp::Sub
            } else {
                break;
            };
            let _ = self.bump();
            let rhs = self.term()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr> {
        let mut lhs = self.factor()?;
        loop {
            let op = if self.peek_is_punct("*") {
                BinOp::Mul
            } else if self.peek_is_punct("/") {
                BinOp::Div
            } else if self.peek_is_punct("%") {
                BinOp::Mod
            } else {
                break;
            };
            let _ = self.bump();
            let rhs = self.factor()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Expr> {
        self.nested(Self::factor_inner)
    }

    fn factor_inner(&mut self) -> Result<Expr> {
        if self.peek_is_punct("-") {
            let _ = self.bump();
            let inner = self.factor()?;
            // Fold `-<literal>` immediately so negative constants are
            // ordinary `Const` nodes (bounds/steps rely on `as_const`).
            if let Some(v) = inner.as_const() {
                if let Some(n) = v.checked_neg() {
                    return Ok(Expr::Const(n));
                }
            }
            return Ok(-inner);
        }
        if self.peek_is_punct("(") {
            let _ = self.bump();
            let e = self.expr()?;
            self.expect_punct(")")?;
            return Ok(e);
        }
        match self.bump() {
            Some(Tok::Int(v)) => Ok(Expr::Const(v)),
            Some(Tok::Ident(name)) => {
                let builtin = match name.as_str() {
                    "min" => Some(BinOp::Min),
                    "max" => Some(BinOp::Max),
                    "ceildiv" => Some(BinOp::CeilDiv),
                    _ => None,
                };
                if let Some(op) = builtin {
                    if self.peek_is_punct("(") {
                        self.expect_punct("(")?;
                        let a = self.expr()?;
                        self.expect_punct(",")?;
                        let b = self.expr()?;
                        self.expect_punct(")")?;
                        return Ok(Expr::bin(op, a, b));
                    }
                }
                if self.peek_is_punct("[") {
                    let mut indices = Vec::new();
                    while self.peek_is_punct("[") {
                        self.expect_punct("[")?;
                        indices.push(self.expr()?);
                        self.expect_punct("]")?;
                    }
                    Ok(Expr::Read(ArrayRef::new(name, indices)))
                } else {
                    Ok(Expr::var(name))
                }
            }
            Some(other) => Err(self.err(format!("expected expression, found {other:?}"))),
            None => Err(self.err("expected expression, found end of input")),
        }
    }

    fn cond(&mut self) -> Result<Cond> {
        let mut lhs = self.and_cond()?;
        while self.peek_is_punct("||") {
            let _ = self.bump();
            let rhs = self.and_cond()?;
            lhs = Cond::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_cond(&mut self) -> Result<Cond> {
        let mut lhs = self.cond_atom()?;
        while self.peek_is_punct("&&") {
            let _ = self.bump();
            let rhs = self.cond_atom()?;
            lhs = Cond::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cond_atom(&mut self) -> Result<Cond> {
        self.nested(Self::cond_atom_inner)
    }

    fn cond_atom_inner(&mut self) -> Result<Cond> {
        if self.peek_is_punct("!") {
            let _ = self.bump();
            let inner = self.cond_atom()?;
            return Ok(Cond::Not(Box::new(inner)));
        }
        if self.peek_is_punct("(") {
            // Could be a parenthesized condition or a parenthesized
            // arithmetic expression starting a comparison; try condition
            // first with backtracking.
            let save = self.pos;
            let _ = self.bump();
            if let Ok(c) = self.cond() {
                if self.peek_is_punct(")") {
                    let _ = self.bump();
                    return Ok(c);
                }
            }
            self.pos = save;
        }
        let lhs = self.expr()?;
        let op = match self.bump() {
            Some(Tok::Punct("==")) => CmpOp::Eq,
            Some(Tok::Punct("!=")) => CmpOp::Ne,
            Some(Tok::Punct("<=")) => CmpOp::Le,
            Some(Tok::Punct("<")) => CmpOp::Lt,
            Some(Tok::Punct(">=")) => CmpOp::Ge,
            Some(Tok::Punct(">")) => CmpOp::Gt,
            Some(other) => {
                return Err(self.err(format!("expected comparison operator, found {other:?}")))
            }
            None => return Err(self.err("expected comparison operator, found end of input")),
        };
        let rhs = self.expr()?;
        Ok(Cond::Cmp(op, lhs, rhs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;

    #[test]
    fn parse_simple_program() {
        let p = parse_program(
            "
            array A[4][8];
            doall i = 1..4 {
                doall j = 1..8 {
                    A[i][j] = 10 * i + j;
                }
            }
            ",
        )
        .unwrap();
        assert_eq!(p.arrays.len(), 1);
        let store = Interp::new().run(&p).unwrap();
        assert_eq!(store.get("A", &[4, 8]).unwrap(), 48);
    }

    #[test]
    fn parse_expr_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(e.fold(), Expr::Const(7));
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert_eq!(e.fold(), Expr::Const(9));
    }

    #[test]
    fn parse_floor_div_and_mod() {
        assert_eq!(parse_expr("7 / 2").unwrap().fold(), Expr::Const(3));
        assert_eq!(parse_expr("0 - 7 / 2").unwrap().fold(), Expr::Const(-3));
        assert_eq!(parse_expr("(0-7) / 2").unwrap().fold(), Expr::Const(-4));
        assert_eq!(parse_expr("7 % 3").unwrap().fold(), Expr::Const(1));
    }

    #[test]
    fn parse_builtins() {
        assert_eq!(parse_expr("min(3, 5)").unwrap().fold(), Expr::Const(3));
        assert_eq!(parse_expr("max(3, 5)").unwrap().fold(), Expr::Const(5));
        assert_eq!(parse_expr("ceildiv(7, 2)").unwrap().fold(), Expr::Const(4));
    }

    #[test]
    fn builtin_names_usable_as_variables() {
        // `min` without a call is an ordinary identifier.
        let e = parse_expr("min + 1").unwrap();
        let mut vars = Vec::new();
        e.variables(&mut vars);
        assert_eq!(vars, vec![Symbol::new("min")]);
    }

    #[test]
    fn parse_loop_with_step_and_bounds_exprs() {
        let p = parse_program(
            "
            array A[20];
            n = 19;
            for i = 1..n step 2 {
                A[i] = i;
            }
            ",
        )
        .unwrap();
        let store = Interp::new().run(&p).unwrap();
        assert_eq!(store.get("A", &[19]).unwrap(), 19);
        assert_eq!(store.get("A", &[2]).unwrap(), 0);
    }

    #[test]
    fn parse_if_else_and_conditions() {
        let p = parse_program(
            "
            array A[6];
            doall i = 1..6 {
                if i % 2 == 0 && i != 4 {
                    A[i] = 1;
                } else {
                    A[i] = 2;
                }
            }
            ",
        )
        .unwrap();
        let store = Interp::new().run(&p).unwrap();
        assert_eq!(store.get("A", &[2]).unwrap(), 1);
        assert_eq!(store.get("A", &[4]).unwrap(), 2);
        assert_eq!(store.get("A", &[5]).unwrap(), 2);
    }

    #[test]
    fn parse_parenthesized_condition() {
        let p = parse_program(
            "
            array A[4];
            doall i = 1..4 {
                if (i == 1 || i == 4) && !(i == 4) {
                    A[i] = 7;
                }
            }
            ",
        )
        .unwrap();
        let store = Interp::new().run(&p).unwrap();
        assert_eq!(store.get("A", &[1]).unwrap(), 7);
        assert_eq!(store.get("A", &[4]).unwrap(), 0);
    }

    #[test]
    fn parse_doacross() {
        let p = parse_program(
            "
            array A[4];
            doacross(2) i = 1..4 {
                A[i] = i;
            }
            ",
        )
        .unwrap();
        match &p.body[0] {
            Stmt::Loop(l) => assert_eq!(l.kind, LoopKind::Doacross { delay: 2 }),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comments_are_skipped() {
        let p = parse_program(
            "
            // a comment
            array A[1]; // trailing
            A[1] = 3;
            ",
        )
        .unwrap();
        let store = Interp::new().run(&p).unwrap();
        assert_eq!(store.get("A", &[1]).unwrap(), 3);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_program("array A[4];\nA[1] = @;").unwrap_err();
        match err {
            Error::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_array_rejected_at_parse_time() {
        let err = parse_program("B[1] = 0;").unwrap_err();
        assert!(matches!(err, Error::UnknownArray(_)));
    }

    #[test]
    fn unterminated_block_is_an_error() {
        let err = parse_program("doall i = 1..4 { x = 1;").unwrap_err();
        assert!(matches!(err, Error::Parse { .. }));
    }

    #[test]
    fn negative_literals_via_unary_minus() {
        assert_eq!(parse_expr("-5 + 2").unwrap().fold(), Expr::Const(-3));
    }

    #[test]
    fn deeply_nested_parens_are_rejected_not_overflowed() {
        let depth = 50_000;
        let src = format!("{}1{}", "(".repeat(depth), ")".repeat(depth));
        let err = parse_expr(&src).unwrap_err();
        assert!(matches!(err, Error::Parse { .. }));
        assert!(err.to_string().contains("nesting"));
    }

    #[test]
    fn deeply_nested_blocks_are_rejected_not_overflowed() {
        let depth = 50_000;
        let mut src = String::from("array A[1];\n");
        for _ in 0..depth {
            src.push_str("if 1 == 1 { ");
        }
        src.push_str("A[1] = 0;");
        for _ in 0..depth {
            src.push_str(" }");
        }
        let err = parse_program(&src).unwrap_err();
        assert!(matches!(err, Error::Parse { .. }));
    }

    #[test]
    fn nesting_at_modest_depth_still_parses() {
        let depth = 40;
        let src = format!("{}7{}", "(".repeat(depth), ")".repeat(depth));
        assert_eq!(parse_expr(&src).unwrap().fold(), Expr::Const(7));
    }
}
