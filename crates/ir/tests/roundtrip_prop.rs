//! Property test: `parse(print(p))` preserves every program, for randomly
//! generated programs covering the whole statement and expression grammar.
//!
//! Comparison is modulo constant folding: the printer renders negative
//! literals as `(0 - k)` (the DSL has no negative literals), which
//! re-parses as a subtraction node; folding both sides removes exactly
//! that difference and nothing else.

use proptest::prelude::*;

use lc_ir::expr::{ArrayRef, BinOp, CmpOp, Cond, Expr, UnOp};
use lc_ir::parser::parse_program;
use lc_ir::printer::print_program;
use lc_ir::program::Program;
use lc_ir::stmt::{Loop, LoopKind, Stmt};
use lc_ir::Symbol;

// ---------------------------------------------------------------- strategies

const SCALARS: &[&str] = &["i", "j", "k", "x", "y", "tmp"];

fn var_name() -> impl Strategy<Value = Symbol> {
    proptest::sample::select(SCALARS).prop_map(Symbol::new)
}

/// Subscript count: A has rank 1, B rank 2 (fixed by the program shell).
fn array_pick() -> impl Strategy<Value = (Symbol, usize)> {
    prop_oneof![
        Just((Symbol::new("A"), 1usize)),
        Just((Symbol::new("B"), 2usize)),
    ]
}

fn expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (-30i64..=30).prop_map(Expr::Const),
        var_name().prop_map(Expr::Var),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            (
                proptest::sample::select(
                    &[
                        BinOp::Add,
                        BinOp::Sub,
                        BinOp::Mul,
                        BinOp::Div,
                        BinOp::Mod,
                        BinOp::CeilDiv,
                        BinOp::Min,
                        BinOp::Max,
                    ][..]
                ),
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| Expr::bin(op, a, b)),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(UnOp::Neg, Box::new(e))),
            (array_pick(), proptest::collection::vec(inner, 2)).prop_map(|((name, rank), subs)| {
                Expr::Read(ArrayRef::new(name, subs.into_iter().take(rank).collect()))
            }),
        ]
    })
    .boxed()
}

fn cond(depth: u32) -> BoxedStrategy<Cond> {
    let leaf = (
        proptest::sample::select(
            &[
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
            ][..],
        ),
        expr(2),
        expr(2),
    )
        .prop_map(|(op, a, b)| Cond::Cmp(op, a, b));
    leaf.prop_recursive(depth, 8, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|c| Cond::Not(Box::new(c))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Cond::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Cond::Or(Box::new(a), Box::new(b))),
        ]
    })
    .boxed()
}

fn stmt(depth: u32) -> BoxedStrategy<Stmt> {
    let assign = prop_oneof![
        (var_name(), expr(3)).prop_map(|(v, e)| Stmt::AssignScalar { var: v, value: e }),
        (array_pick(), proptest::collection::vec(expr(2), 2), expr(3)).prop_map(
            |((name, rank), subs, value)| Stmt::AssignArray {
                target: ArrayRef::new(name, subs.into_iter().take(rank).collect()),
                value,
            }
        ),
    ];
    assign
        .prop_recursive(depth, 16, 3, |inner| {
            let body = proptest::collection::vec(inner.clone(), 1..3);
            prop_oneof![
                (
                    var_name(),
                    -5i64..=5,
                    1i64..=8,
                    prop_oneof![
                        Just(LoopKind::Serial),
                        Just(LoopKind::Doall),
                        (0u32..3).prop_map(|d| LoopKind::Doacross { delay: d }),
                    ],
                    proptest::sample::select(&[1i64, 2, 3, -1][..]),
                    body.clone()
                )
                    .prop_map(|(v, lo, span, kind, step, body)| {
                        // Bounds consistent with the step sign so printing
                        // round-trips an executable-looking loop.
                        let (lower, upper) = if step > 0 {
                            (lo, lo + span)
                        } else {
                            (lo + span, lo)
                        };
                        Stmt::Loop(Loop {
                            var: v,
                            lower: Expr::lit(lower),
                            upper: Expr::lit(upper),
                            step: Expr::lit(step),
                            kind,
                            body,
                        })
                    }),
                (
                    cond(2),
                    body.clone(),
                    proptest::collection::vec(inner, 0..2)
                )
                    .prop_map(|(c, t, e)| Stmt::If {
                        cond: c,
                        then_body: t,
                        else_body: e,
                    }),
            ]
        })
        .boxed()
}

fn program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(stmt(3), 1..4).prop_map(|body| {
        let mut p = Program::new()
            .with_array("A", vec![10])
            .with_array("B", vec![6, 6]);
        p.body = body;
        p
    })
}

// ------------------------------------------------------------- normalization

fn norm_expr(e: &Expr) -> Expr {
    e.fold()
}

fn norm_cond(c: &Cond) -> Cond {
    match c {
        Cond::Cmp(op, a, b) => Cond::Cmp(*op, norm_expr(a), norm_expr(b)),
        Cond::Not(x) => Cond::Not(Box::new(norm_cond(x))),
        Cond::And(a, b) => Cond::And(Box::new(norm_cond(a)), Box::new(norm_cond(b))),
        Cond::Or(a, b) => Cond::Or(Box::new(norm_cond(a)), Box::new(norm_cond(b))),
    }
}

fn norm_stmt(s: &Stmt) -> Stmt {
    match s {
        Stmt::AssignScalar { var, value } => Stmt::AssignScalar {
            var: var.clone(),
            value: norm_expr(value),
        },
        Stmt::AssignArray { target, value } => Stmt::AssignArray {
            target: ArrayRef {
                array: target.array.clone(),
                indices: target.indices.iter().map(norm_expr).collect(),
            },
            value: norm_expr(value),
        },
        Stmt::Loop(l) => Stmt::Loop(Loop {
            var: l.var.clone(),
            lower: norm_expr(&l.lower),
            upper: norm_expr(&l.upper),
            step: norm_expr(&l.step),
            kind: l.kind,
            body: l.body.iter().map(norm_stmt).collect(),
        }),
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => Stmt::If {
            cond: norm_cond(cond),
            then_body: then_body.iter().map(norm_stmt).collect(),
            else_body: else_body.iter().map(norm_stmt).collect(),
        },
    }
}

fn norm_program(p: &Program) -> Program {
    let mut out = p.clone();
    out.body = p.body.iter().map(norm_stmt).collect();
    out
}

// -------------------------------------------------------------------- tests

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_roundtrip(p in program()) {
        let printed = print_program(&p);
        let reparsed = parse_program(&printed)
            .map_err(|e| TestCaseError::fail(format!("reparse failed: {e}\n---\n{printed}")))?;
        prop_assert_eq!(
            norm_program(&p),
            norm_program(&reparsed),
            "round trip changed the program:\n{}",
            printed
        );
    }

    #[test]
    fn printing_is_deterministic_and_idempotent(p in program()) {
        let once = print_program(&p);
        let twice = print_program(&parse_program(&once).unwrap());
        prop_assert_eq!(&once, &print_program(&p));
        // Printing a reparsed program reproduces the same text exactly
        // (the printer is a normal form for parsed programs).
        let thrice = print_program(&parse_program(&twice).unwrap());
        prop_assert_eq!(twice, thrice);
    }
}
