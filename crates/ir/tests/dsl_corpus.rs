//! A corpus of DSL programs covering the grammar's corners, each executed
//! and checked against hand-computed results — the parser/interpreter
//! contract, pinned.

use lc_ir::interp::Interp;
use lc_ir::parser::parse_program;

fn run(src: &str) -> lc_ir::interp::Store {
    let p = parse_program(src).unwrap_or_else(|e| panic!("parse failed: {e}\n---\n{src}"));
    Interp::new()
        .run(&p)
        .unwrap_or_else(|e| panic!("execution failed: {e}\n---\n{src}"))
}

#[test]
fn fibonacci_via_recurrence() {
    let store = run("
        array F[12];
        F[1] = 1;
        F[2] = 1;
        for i = 3..12 {
            F[i] = F[i - 1] + F[i - 2];
        }
    ");
    assert_eq!(store.get("F", &[12]).unwrap(), 144);
}

#[test]
fn nested_triangular_guard() {
    // Count cells at or below the diagonal of an 8x8 grid.
    let store = run("
        array C[1];
        c = 0;
        for i = 1..8 {
            for j = 1..8 {
                if j <= i {
                    c = c + 1;
                }
            }
        }
        C[1] = c;
    ");
    assert_eq!(store.get("C", &[1]).unwrap(), 36);
}

#[test]
fn strided_descending_loop() {
    let store = run("
        array A[20];
        for i = 19..1 step -2 {
            A[i] = i * i;
        }
    ");
    assert_eq!(store.get("A", &[19]).unwrap(), 361);
    assert_eq!(store.get("A", &[1]).unwrap(), 1);
    assert_eq!(store.get("A", &[2]).unwrap(), 0); // untouched
}

#[test]
fn builtins_compose() {
    let store = run("
        array R[4];
        R[1] = min(3 * 4, ceildiv(25, 2));
        R[2] = max(-5, -2);
        R[3] = ceildiv(min(9, 10), max(2, 3));
        R[4] = min(1, 2) + max(1, 2) * ceildiv(5, 5);
    ");
    assert_eq!(store.get("R", &[1]).unwrap(), 12); // min(12, 13)
    assert_eq!(store.get("R", &[2]).unwrap(), -2);
    assert_eq!(store.get("R", &[3]).unwrap(), 3); // ceildiv(9, 3)
    assert_eq!(store.get("R", &[4]).unwrap(), 3);
}

#[test]
fn floor_semantics_for_negatives() {
    let store = run("
        array R[4];
        R[1] = (-7) / 2;
        R[2] = (-7) % 2;
        R[3] = 7 / -2;
        R[4] = ceildiv(-7, 2);
    ");
    assert_eq!(store.get("R", &[1]).unwrap(), -4); // floor
    assert_eq!(store.get("R", &[2]).unwrap(), 1); // floor mod
    assert_eq!(store.get("R", &[3]).unwrap(), -4);
    assert_eq!(store.get("R", &[4]).unwrap(), -3); // ceiling
}

#[test]
fn matrix_transpose_roundtrip() {
    let store = run("
        array M[5][7];
        array T[7][5];
        array D[5][7];
        doall i = 1..5 {
            doall j = 1..7 {
                M[i][j] = i * 10 + j;
            }
        }
        doall i = 1..5 {
            doall j = 1..7 {
                T[j][i] = M[i][j];
            }
        }
        doall i = 1..5 {
            doall j = 1..7 {
                D[i][j] = T[j][i] - M[i][j];
            }
        }
    ");
    for i in 1..=5 {
        for j in 1..=7 {
            assert_eq!(store.get("D", &[i, j]).unwrap(), 0);
        }
    }
}

#[test]
fn condition_precedence_and_not() {
    // `a || b && c` must parse as a || (b && c).
    let store = run("
        array R[2];
        doall i = 1..2 {
            if i == 1 || i == 2 && i == 3 {
                R[i] = 1;
            } else {
                R[i] = 0;
            }
        }
    ");
    assert_eq!(store.get("R", &[1]).unwrap(), 1);
    assert_eq!(store.get("R", &[2]).unwrap(), 0);
}

#[test]
fn deeply_nested_five_levels() {
    let store = run("
        array C[1];
        c = 0;
        for a = 1..2 {
            for b = 1..2 {
                for d = 1..2 {
                    for e = 1..2 {
                        for f = 1..2 {
                            c = c + 1;
                        }
                    }
                }
            }
        }
        C[1] = c;
    ");
    assert_eq!(store.get("C", &[1]).unwrap(), 32);
}

#[test]
fn loop_bounds_from_array_elements() {
    let store = run("
        array N[1];
        array A[10];
        N[1] = 6;
        for i = 1..N[1] {
            A[i] = i;
        }
    ");
    assert_eq!(store.get("A", &[6]).unwrap(), 6);
    assert_eq!(store.get("A", &[7]).unwrap(), 0);
}

#[test]
fn doacross_executes_like_serial_in_the_interpreter() {
    let store = run("
        array A[6];
        A[1] = 1;
        doacross(1) i = 2..6 {
            A[i] = A[i - 1] * 2;
        }
    ");
    assert_eq!(store.get("A", &[6]).unwrap(), 32); // 2^5
}

#[test]
fn comments_everywhere() {
    let store = run("
        // leading comment
        array A[2]; // trailing
        // between statements
        A[1] = 1; // after a statement
        A[2] = A[1] // inside an expression? no — before the semicolon
            + 1;
    ");
    assert_eq!(store.get("A", &[2]).unwrap(), 2);
}

#[test]
fn shadowed_loop_variable_in_inner_scope() {
    let store = run("
        array A[3][3];
        for i = 1..3 {
            for i = 1..3 {
                A[i][i] = A[i][i] + 1;
            }
        }
    ");
    // The inner loop runs 3 times per outer iteration; A[k][k] += 1 each
    // inner pass, 3 outer passes → diagonal = 3.
    assert_eq!(store.get("A", &[2, 2]).unwrap(), 3);
    assert_eq!(store.get("A", &[1, 2]).unwrap(), 0);
}

#[test]
fn whitespace_insensitivity() {
    let a = run("array A[3];doall i=1..3{A[i]=i*2;}");
    let b = run("array A[3];\n\n  doall   i = 1 .. 3 {\n\tA[ i ] = i * 2 ;\n}\n");
    assert_eq!(a, b);
}
