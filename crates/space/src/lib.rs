//! `lc-space` — pure iteration-space arithmetic shared by the compiler
//! pass (`lc-xform`), the machine simulator (`lc-machine`), and the real
//! runtime (`lc-runtime`).
//!
//! A rectangular nest with trip counts `dims = [N_1, …, N_m]` defines an
//! iteration space of `N = Π N_k` points. Coalescing traverses that space
//! with a single 1-based index `j ∈ 1..=N` in lexicographic (row-major)
//! order; this crate provides the bijections between `j` and the index
//! vector `(i_1, …, i_m)`:
//!
//! * [`recover_ceiling`] — the paper's formula, ceiling divisions only:
//!   `i_k = ⌈j / P_{k+1}⌉ − N_k · (⌈j / P_k⌉ − 1)` with
//!   `P_k = N_k·…·N_m`;
//! * [`recover_divmod`] — conventional division + modulus on `j − 1`;
//! * [`Odometer`] — incremental recovery for consecutive `j` (amortized
//!   O(1) additions per step);
//! * [`linearize`] — the inverse mapping.
//!
//! All indices are 1-based (Fortran-style, matching the paper); all
//! quantities are non-negative, so plain integer division suffices.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Ceiling division of positive quantities.
#[inline]
fn cdiv(a: i64, b: i64) -> i64 {
    debug_assert!(a >= 0 && b > 0);
    (a + b - 1) / b
}

/// `stride_k = Π_{l>k} dims[l]` for each level (the innermost stride is 1).
pub fn strides(dims: &[u64]) -> Vec<u64> {
    let mut out = vec![1u64; dims.len()];
    for k in (0..dims.len().saturating_sub(1)).rev() {
        out[k] = out[k + 1].saturating_mul(dims[k + 1]);
    }
    out
}

/// Total iteration count `N = Π dims[k]`; `None` if it exceeds `i64::MAX`.
pub fn total_iterations(dims: &[u64]) -> Option<u64> {
    let n = dims.iter().try_fold(1u64, |acc, &d| acc.checked_mul(d))?;
    (n <= i64::MAX as u64).then_some(n)
}

/// Map a 1-based index vector to the 1-based coalesced index `j`.
pub fn linearize(indices: &[i64], dims: &[u64]) -> i64 {
    debug_assert_eq!(indices.len(), dims.len());
    let mut q: i64 = 0;
    for (&ix, &d) in indices.iter().zip(dims) {
        debug_assert!(ix >= 1 && ix as u64 <= d);
        q = q * d as i64 + (ix - 1);
    }
    q + 1
}

/// Recover the index vector from `j` using the paper's ceiling formula.
pub fn recover_ceiling(j: i64, dims: &[u64]) -> Vec<i64> {
    let mut out = vec![0i64; dims.len()];
    recover_ceiling_into(j, dims, &mut out);
    out
}

/// Allocation-free variant of [`recover_ceiling`].
pub fn recover_ceiling_into(j: i64, dims: &[u64], out: &mut Vec<i64>) {
    let st = strides(dims);
    out.clear();
    for k in 0..dims.len() {
        let inner = st[k] as i64; // P_{k+1}
        let outer = (st[k] * dims[k]) as i64; // P_k
        out.push(cdiv(j, inner) - dims[k] as i64 * (cdiv(j, outer) - 1));
    }
}

/// Recover the index vector from `j` using floor division and modulus.
pub fn recover_divmod(j: i64, dims: &[u64]) -> Vec<i64> {
    let mut out = vec![0i64; dims.len()];
    recover_divmod_into(j, dims, &mut out);
    out
}

/// Allocation-free variant of [`recover_divmod`].
pub fn recover_divmod_into(j: i64, dims: &[u64], out: &mut Vec<i64>) {
    debug_assert!(j >= 1);
    let mut q = (j - 1) as u64;
    out.clear();
    out.resize(dims.len(), 1);
    for k in (0..dims.len()).rev() {
        let d = dims[k].max(1);
        out[k] = (q % d) as i64 + 1;
        q /= d;
    }
}

/// Counters describing the work an [`Odometer`] has done, used by the
/// recovery-cost experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OdometerStats {
    /// Calls to [`Odometer::advance`].
    pub advances: u64,
    /// Digit increments performed (≥ `advances`; the excess is carries).
    pub digit_updates: u64,
}

/// Incremental index recovery: an odometer over the iteration space.
///
/// Within a chunk of consecutive `j` values a worker calls
/// [`Odometer::advance`] once per iteration — an add and a compare per
/// touched digit, amortized `O(1)` — instead of re-running a
/// division-based recovery.
#[derive(Debug, Clone)]
pub struct Odometer {
    dims: Vec<u64>,
    current: Vec<i64>,
    exhausted: bool,
    stats: OdometerStats,
}

impl Odometer {
    /// Position the odometer at the first iteration (`j = 1`).
    pub fn new(dims: &[u64]) -> Self {
        Odometer {
            current: vec![1; dims.len()],
            exhausted: dims.contains(&0),
            dims: dims.to_vec(),
            stats: OdometerStats::default(),
        }
    }

    /// Position the odometer at coalesced index `j` (1-based), paying one
    /// div/mod recovery.
    pub fn from_linear(j: i64, dims: &[u64]) -> Self {
        Odometer {
            current: recover_divmod(j, dims),
            exhausted: dims.contains(&0),
            dims: dims.to_vec(),
            stats: OdometerStats::default(),
        }
    }

    /// The current 1-based index vector.
    pub fn indices(&self) -> &[i64] {
        &self.current
    }

    /// True once the odometer has stepped past the last iteration.
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Step to the next iteration. Returns `false` (and marks the odometer
    /// exhausted) when the last iteration has been passed.
    pub fn advance(&mut self) -> bool {
        if self.exhausted {
            return false;
        }
        self.stats.advances += 1;
        for k in (0..self.dims.len()).rev() {
            self.stats.digit_updates += 1;
            if (self.current[k] as u64) < self.dims[k] {
                self.current[k] += 1;
                return true;
            }
            self.current[k] = 1; // carry into the next digit
        }
        self.exhausted = true;
        false
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> OdometerStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn strides_suffix_products() {
        assert_eq!(strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides(&[7]), vec![1]);
        assert_eq!(strides(&[]), Vec::<u64>::new());
    }

    #[test]
    fn schemes_agree_and_invert_exhaustively() {
        let dims = [2u64, 3, 4];
        let n = total_iterations(&dims).unwrap() as i64;
        for j in 1..=n {
            let a = recover_ceiling(j, &dims);
            let b = recover_divmod(j, &dims);
            assert_eq!(a, b, "schemes disagree at j={j}");
            assert_eq!(linearize(&a, &dims), j);
        }
    }

    #[test]
    fn total_iterations_overflow_is_none() {
        assert_eq!(total_iterations(&[u64::MAX, 2]), None);
        assert_eq!(total_iterations(&[6, 7]), Some(42));
        assert_eq!(total_iterations(&[]), Some(1));
    }

    #[test]
    fn into_variants_reuse_buffers() {
        let mut buf = Vec::new();
        recover_divmod_into(5, &[2, 3], &mut buf);
        assert_eq!(buf, vec![2, 2]);
        recover_ceiling_into(5, &[2, 3], &mut buf);
        assert_eq!(buf, vec![2, 2]);
    }

    #[test]
    fn odometer_full_sweep_matches_divmod() {
        let dims = [2u64, 3, 2];
        let mut odo = Odometer::new(&dims);
        for j in 1..=12i64 {
            assert_eq!(odo.indices(), recover_divmod(j, &dims).as_slice());
            odo.advance();
        }
        assert!(odo.exhausted());
    }

    #[test]
    fn odometer_amortized_bound() {
        let dims = [8u64, 16];
        let mut odo = Odometer::new(&dims);
        while odo.advance() {}
        let s = odo.stats();
        assert_eq!(s.advances, 128);
        assert!(s.digit_updates <= 2 * 128);
    }

    proptest! {
        #[test]
        fn prop_bijection(
            dims in proptest::collection::vec(1u64..8, 1..5),
            seed in 0u64..100_000,
        ) {
            let n = total_iterations(&dims).unwrap();
            let j = (seed % n) as i64 + 1;
            let a = recover_ceiling(j, &dims);
            let b = recover_divmod(j, &dims);
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(linearize(&a, &dims), j);
            for (k, ix) in a.iter().enumerate() {
                prop_assert!(*ix >= 1 && *ix as u64 <= dims[k]);
            }
        }

        // The three recovery schemes — ceiling (the paper's), div/mod,
        // and the incremental odometer — must agree at every point of
        // the space, for shapes up to rank 6 mixing degenerate (1),
        // small, and larger trip counts.
        #[test]
        fn prop_three_schemes_agree_over_random_shapes(
            dims in proptest::collection::vec(
                prop_oneof![Just(1u64), 2u64..5, 5u64..17],
                1..=6,
            ),
        ) {
            let n = total_iterations(&dims).unwrap();
            prop_assume!(n <= 4096);
            let mut odo = Odometer::new(&dims);
            for j in 1..=n as i64 {
                let ceil = recover_ceiling(j, &dims);
                let dm = recover_divmod(j, &dims);
                prop_assert_eq!(&ceil, &dm, "ceiling vs divmod at j={}", j);
                prop_assert_eq!(
                    odo.indices(), ceil.as_slice(),
                    "odometer vs ceiling at j={}", j
                );
                prop_assert_eq!(linearize(&ceil, &dims), j);
                odo.advance();
            }
            prop_assert!(odo.exhausted());
            // Amortized bound: with every trip count ≥ 2 a full sweep
            // touches at most 2·N digits; degenerate (trip-1) levels
            // carry on every advance, so only m·N holds in general.
            let bound = if dims.iter().all(|&d| d >= 2) { 2 * n } else { dims.len() as u64 * n };
            prop_assert!(odo.stats().digit_updates <= bound);
        }

        #[test]
        fn prop_odometer_tracks_linear_index(
            dims in proptest::collection::vec(1u64..6, 1..4),
            start in 0u64..50,
            len in 1u64..30,
        ) {
            let n = total_iterations(&dims).unwrap();
            let start = (start % n) + 1;
            let mut odo = Odometer::from_linear(start as i64, &dims);
            for step in 0..len {
                let j = start + step;
                if j > n { break; }
                let expect = recover_divmod(j as i64, &dims);
                prop_assert_eq!(odo.indices(), expect.as_slice());
                odo.advance();
            }
        }
    }
}
