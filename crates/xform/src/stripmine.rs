//! Strip-mining (blocking/chunking) of a single loop.
//!
//! Strip-mining splits `doall i = 1..N` into an outer loop over blocks and
//! an inner loop over the `B` iterations of each block:
//!
//! ```text
//! doall ib = 1 .. ceildiv(N, B) {
//!     for i = (ib - 1) * B + 1 .. min(N, ib * B) { BODY }
//! }
//! ```
//!
//! Combined with coalescing this reproduces the paper's chunked dispatch:
//! coalesce first, then strip-mine the coalesced loop so each dispatch
//! (fetch&add) hands a processor `B` consecutive iterations — amortizing
//! dispatch cost at the price of load-balance granularity. (`lc-sched`
//! models the same trade-off analytically; this pass realizes it in IR.)

use lc_ir::arith::ceil_div_unchecked;
use lc_ir::expr::Expr;
use lc_ir::stmt::{Loop, LoopKind, Stmt};
use lc_ir::symbol::Symbol;
use lc_ir::{Error, Result};

use crate::normalize::normalize_loop;

/// Strip-mine `l` into blocks of `block` iterations. The outer block loop
/// keeps `l`'s kind; the inner intra-block loop is serial (each worker
/// executes its block in order, as the paper's chunked self-scheduling
/// does). The loop is normalized first if needed.
pub fn strip_mine(l: &Loop, block: u64) -> Result<Loop> {
    if block == 0 {
        return Err(Error::unsupported("block size must be positive"));
    }
    let l = normalize_loop(l)?;
    let n = l
        .const_trip_count()
        .expect("normalized loop has const trip");
    let blocks = if n == 0 {
        0
    } else {
        ceil_div_unchecked(n as i64, block as i64) as u64
    };

    let blk_var = fresh_block_var(&l);
    let ib = Expr::Var(blk_var.clone());

    // i runs (ib-1)*B + 1 ..= min(N, ib*B)
    let lower = ((ib.clone() - Expr::lit(1)) * Expr::lit(block as i64) + Expr::lit(1)).fold();
    let upper = Expr::lit(n as i64)
        .min((ib * Expr::lit(block as i64)).fold())
        .fold();

    let inner = Loop {
        var: l.var.clone(),
        lower,
        upper,
        step: Expr::lit(1),
        kind: LoopKind::Serial,
        body: l.body.clone(),
    };
    Ok(Loop {
        var: blk_var,
        lower: Expr::lit(1),
        upper: Expr::lit(blocks as i64),
        step: Expr::lit(1),
        kind: l.kind,
        body: vec![Stmt::Loop(inner)],
    })
}

fn fresh_block_var(l: &Loop) -> Symbol {
    let mut used: Vec<Symbol> = vec![l.var.clone()];
    for s in &l.body {
        collect(s, &mut used);
    }
    let base = format!("{}_blk", l.var);
    if !used.iter().any(|s| s.as_str() == base) {
        return Symbol::new(base);
    }
    let mut n = 0;
    loop {
        let cand = format!("{base}_{n}");
        if !used.iter().any(|s| s.as_str() == cand) {
            return Symbol::new(cand);
        }
        n += 1;
    }
}

fn collect(s: &Stmt, out: &mut Vec<Symbol>) {
    match s {
        Stmt::AssignScalar { var, value } => {
            out.push(var.clone());
            value.variables(out);
        }
        Stmt::AssignArray { target, value } => {
            for ix in &target.indices {
                ix.variables(out);
            }
            value.variables(out);
        }
        Stmt::Loop(l) => {
            out.push(l.var.clone());
            l.lower.variables(out);
            l.upper.variables(out);
            l.step.variables(out);
            for s in &l.body {
                collect(s, out);
            }
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            cond.variables(out);
            for s in then_body.iter().chain(else_body) {
                collect(s, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_ir::interp::{DoallOrder, Interp};
    use lc_ir::parser::parse_program;
    use lc_ir::program::Program;

    fn loop_of(p: &Program) -> (usize, Loop) {
        p.body
            .iter()
            .enumerate()
            .find_map(|(i, s)| match s {
                Stmt::Loop(l) => Some((i, l.clone())),
                _ => None,
            })
            .unwrap()
    }

    fn check_strip(src: &str, block: u64, expect_blocks: u64) {
        let p = parse_program(src).unwrap();
        let (idx, l) = loop_of(&p);
        let mined = strip_mine(&l, block).unwrap();
        assert_eq!(mined.const_trip_count(), Some(expect_blocks));
        let mut p2 = p.clone();
        p2.body[idx] = Stmt::Loop(mined);
        let a = Interp::new().run(&p).unwrap();
        for order in [DoallOrder::Forward, DoallOrder::Shuffled(3)] {
            let b = Interp::new().with_order(order).run(&p2).unwrap();
            assert_eq!(a, b, "strip-mining changed semantics:\n{src}");
        }
    }

    #[test]
    fn exact_division() {
        check_strip(
            "
            array A[12];
            doall i = 1..12 {
                A[i] = i * 3;
            }
            ",
            4,
            3,
        );
    }

    #[test]
    fn ragged_final_block() {
        check_strip(
            "
            array A[10];
            doall i = 1..10 {
                A[i] = i;
            }
            ",
            4,
            3,
        );
    }

    #[test]
    fn block_of_one() {
        check_strip(
            "
            array A[5];
            doall i = 1..5 {
                A[i] = i + 1;
            }
            ",
            1,
            5,
        );
    }

    #[test]
    fn block_larger_than_trip() {
        check_strip(
            "
            array A[3];
            doall i = 1..3 {
                A[i] = 7 - i;
            }
            ",
            100,
            1,
        );
    }

    #[test]
    fn normalizes_first() {
        check_strip(
            "
            array A[20];
            doall i = 5..20 step 3 {
                A[i] = i;
            }
            ",
            2,
            3, // 6 iterations -> 3 blocks of 2
        );
    }

    #[test]
    fn zero_block_rejected() {
        let p = parse_program(
            "
            array A[3];
            doall i = 1..3 {
                A[i] = i;
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        assert!(strip_mine(&l, 0).is_err());
    }

    #[test]
    fn outer_keeps_kind_inner_is_serial() {
        let p = parse_program(
            "
            array A[8];
            doall i = 1..8 {
                A[i] = i;
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        let mined = strip_mine(&l, 3).unwrap();
        assert!(mined.kind.is_doall());
        match &mined.body[0] {
            Stmt::Loop(inner) => {
                assert_eq!(inner.kind, LoopKind::Serial);
                assert_eq!(inner.var.as_str(), "i");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn composes_with_coalescing() {
        use crate::coalesce::{coalesce_loop, CoalesceOptions};
        let p = parse_program(
            "
            array A[6][5];
            doall i = 1..6 {
                doall j = 1..5 {
                    A[i][j] = i * j;
                }
            }
            ",
        )
        .unwrap();
        let (idx, l) = loop_of(&p);
        let coalesced = coalesce_loop(&l, &CoalesceOptions::default()).unwrap();
        let mined = strip_mine(&coalesced.transformed, 7).unwrap();
        assert_eq!(mined.const_trip_count(), Some(5)); // ceil(30/7)
        let mut p2 = p.clone();
        p2.body[idx] = Stmt::Loop(mined);
        let a = Interp::new().run(&p).unwrap();
        let b = Interp::new()
            .with_order(DoallOrder::Shuffled(11))
            .run(&p2)
            .unwrap();
        assert_eq!(a, b);
    }
}
