//! `lc-xform` — the loop-coalescing transformation and its companions.
//!
//! This crate is the reproduction of the paper's core contribution: it
//! rewrites a perfect nest of `doall` loops into a single `doall` whose
//! body first *recovers* the original indices from the coalesced index and
//! then executes the original body.
//!
//! * [`recovery`] — the index-recovery math itself, independent of the IR:
//!   the paper's ceiling-division formula, the conventional div/mod
//!   mapping, and an incremental (odometer) scheme, plus generators that
//!   emit the corresponding IR expressions and their abstract op costs.
//! * [`normalize`] — rewrites `lo..hi step s` loops into the `1..=N` unit-
//!   step form the recovery formulas assume.
//! * [`coalesce`] — the transformation: full or partial collapse of a
//!   perfect nest, with legality checking (DOALL-ness via `lc-ir`'s
//!   dependence analysis plus a scalar-privatization check). One entry
//!   point handles compile-time and runtime trip counts, choosing the
//!   recovery form per level: constant strides stay literals, symbolic
//!   stride products become scalar computations ahead of the loop.
//! * [`interchange`] / [`stripmine`] — the companion transformations the
//!   paper positions coalescing against (interchange to move a parallel
//!   loop outward; strip-mining/chunking to coarsen grain).
//! * [`distribute`] / [`fuse`] / [`perfect`] — the *enabling*
//!   transformations: distribution peels imperfect nests apart, fusion
//!   merges conformable loops back, and perfection sinks pre/post
//!   statements under first/last-iteration guards so a near-perfect nest
//!   becomes coalescible (the `omp collapse` trick).
//! * [`strength`] — common-subexpression extraction over generated
//!   recovery code (the paper's observation that adjacent indices share
//!   their ceiling terms).
//! * [`transform`] — the [`Transform`] trait: one uniform
//!   name / precheck / apply contract over all of the above, so drivers
//!   can run a data-driven pipeline instead of hand-wired calls.
//! * [`validate`] — interpreter-based equivalence and order-independence
//!   checking used by the test-suite to prove transformations correct.
//!
//! # Example
//!
//! ```
//! use lc_ir::parser::parse_program;
//! use lc_ir::stmt::Stmt;
//! use lc_xform::coalesce::{coalesce_loop, CoalesceOptions};
//!
//! let prog = parse_program(
//!     "
//!     array A[6][4];
//!     doall i = 1..6 {
//!         doall j = 1..4 {
//!             A[i][j] = 10 * i + j;
//!         }
//!     }
//!     ",
//! )
//! .unwrap();
//! let lc_ir::Stmt::Loop(nest) = &prog.body[0] else { unreachable!() };
//! let out = coalesce_loop(nest, &CoalesceOptions::default()).unwrap();
//! assert_eq!(out.info.total_iterations, 24);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod coalesce;
pub mod distribute;
pub mod fuse;
pub mod interchange;
pub mod normalize;
pub mod perfect;
pub mod recovery;
pub mod strength;
pub mod stripmine;
pub mod transform;
pub mod validate;

pub use coalesce::{coalesce_band, coalesce_loop, CoalesceInfo, CoalesceOptions, CoalesceResult};
pub use recovery::{Odometer, RecoveryScheme};
pub use transform::{Rewrite, Transform, TransformCx};
