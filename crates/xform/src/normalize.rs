//! Loop normalization: rewrite `lo..hi step s` into `1..=N` with unit step.
//!
//! The recovery formulas assume every coalesced level runs `1 ..= N_k`
//! with step 1; this pass establishes that form, substituting
//! `i := lo + (i' − 1)·s` into the body. Bounds must be compile-time
//! constants (the paper's nests are rectangular with known bounds; symbolic
//! bounds would need runtime trip-count computation, which the simulator
//! models but the IR transformation does not emit).

use lc_ir::analysis::nest::{LoopHeader, Nest};
use lc_ir::expr::Expr;
use lc_ir::stmt::{Loop, Stmt};
use lc_ir::{BoundPart, Error, Result, SkipReason};

/// Normalize a single loop. Returns the rewritten loop; already-normalized
/// loops are returned unchanged (cheaply, but not by reference).
pub fn normalize_loop(l: &Loop) -> Result<Loop> {
    if l.is_normalized() {
        return Ok(l.clone());
    }
    let lo = l.lower.as_const().ok_or_else(|| {
        Error::Unsupported(SkipReason::SymbolicBound {
            var: l.var.clone(),
            part: BoundPart::Lower,
        })
    })?;
    let step = l.step.as_const().ok_or_else(|| {
        Error::Unsupported(SkipReason::SymbolicBound {
            var: l.var.clone(),
            part: BoundPart::Step,
        })
    })?;
    if step == 0 {
        return Err(Error::ZeroStep(l.var.clone()));
    }
    let trip = l.const_trip_count().ok_or_else(|| {
        Error::Unsupported(SkipReason::SymbolicBound {
            var: l.var.clone(),
            part: BoundPart::Upper,
        })
    })?;

    // i = lo + (i' - 1) * step, substituted everywhere i occurred.
    let replacement =
        (Expr::lit(lo) + (Expr::var(l.var.as_str()) - Expr::lit(1)) * Expr::lit(step)).fold();
    let body: Vec<Stmt> = l
        .body
        .iter()
        .map(|s| s.substitute(&l.var, &replacement))
        .collect();
    Ok(Loop {
        var: l.var.clone(),
        lower: Expr::lit(1),
        upper: Expr::lit(trip as i64),
        step: Expr::lit(1),
        kind: l.kind,
        body,
    })
}

/// Normalize every level of a perfect nest, outermost first.
///
/// Substitution happens on the nested [`Loop`] form so inner bounds that
/// mention outer indices are rewritten too, then the nest is re-extracted.
pub fn normalize_nest(nest: &Nest) -> Result<Nest> {
    let mut current = nest.to_loop();
    current = normalize_levels(&current, nest.depth())?;
    Ok(lc_ir::analysis::nest::extract_nest(&current))
}

fn normalize_levels(l: &Loop, remaining: usize) -> Result<Loop> {
    let mut out = normalize_loop(l)?;
    if remaining > 1 {
        if let [Stmt::Loop(inner)] = out.body.as_slice() {
            let inner = normalize_levels(inner, remaining - 1)?;
            out.body = vec![Stmt::Loop(inner)];
        }
    }
    Ok(out)
}

/// Check that every header of a nest is normalized; error otherwise.
pub fn require_normalized(headers: &[LoopHeader]) -> Result<()> {
    for h in headers {
        if !h.is_normalized() {
            return Err(Error::Unsupported(SkipReason::NotNormalized {
                var: h.var.clone(),
            }));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_ir::analysis::nest::extract_nest;
    use lc_ir::interp::Interp;
    use lc_ir::parser::parse_program;
    use lc_ir::program::Program;

    fn loop_of(p: &Program) -> Loop {
        p.body
            .iter()
            .find_map(|s| match s {
                Stmt::Loop(l) => Some(l.clone()),
                _ => None,
            })
            .unwrap()
    }

    fn check_equivalent(src: &str) {
        let p = parse_program(src).unwrap();
        let orig = loop_of(&p);
        let norm = normalize_loop(&orig).unwrap();
        assert!(norm.is_normalized());

        let mut p_norm = p.clone();
        for s in &mut p_norm.body {
            if matches!(s, Stmt::Loop(_)) {
                *s = Stmt::Loop(norm.clone());
                break;
            }
        }
        let a = Interp::new().run(&p).unwrap();
        let b = Interp::new().run(&p_norm).unwrap();
        assert_eq!(a, b, "normalization changed semantics for:\n{src}");
    }

    #[test]
    fn normalize_offset_bounds() {
        check_equivalent(
            "
            array A[20];
            for i = 5..15 {
                A[i] = i * 2;
            }
            ",
        );
    }

    #[test]
    fn normalize_strided_loop() {
        check_equivalent(
            "
            array A[30];
            for i = 3..27 step 4 {
                A[i] = i;
            }
            ",
        );
    }

    #[test]
    fn normalize_negative_step() {
        check_equivalent(
            "
            array A[10];
            for i = 9..2 step -3 {
                A[i] = i + 1;
            }
            ",
        );
    }

    #[test]
    fn normalize_preserves_kind() {
        let p = parse_program(
            "
            array A[10];
            doall i = 2..9 {
                A[i] = i;
            }
            ",
        )
        .unwrap();
        let norm = normalize_loop(&loop_of(&p)).unwrap();
        assert!(norm.kind.is_doall());
        assert_eq!(norm.const_trip_count(), Some(8));
    }

    #[test]
    fn already_normalized_is_unchanged() {
        let p = parse_program(
            "
            array A[4];
            doall i = 1..4 {
                A[i] = i;
            }
            ",
        )
        .unwrap();
        let orig = loop_of(&p);
        assert_eq!(normalize_loop(&orig).unwrap(), orig);
    }

    #[test]
    fn normalize_nest_rewrites_inner_bound_uses_of_outer_var() {
        // The inner bound does not depend on i here (rectangular), but the
        // inner *body* uses i — substitution must reach it.
        let p = parse_program(
            "
            array A[20][6];
            for i = 11..20 {
                for j = 1..6 {
                    A[i][j] = i * j;
                }
            }
            ",
        )
        .unwrap();
        let nest = extract_nest(&loop_of(&p));
        let norm = normalize_nest(&nest).unwrap();
        assert!(norm.is_normalized());
        assert_eq!(norm.trip_counts(), Some(vec![10, 6]));

        let mut p2 = p.clone();
        p2.body[0] = Stmt::Loop(norm.to_loop());
        let a = Interp::new().run(&p).unwrap();
        let b = Interp::new().run(&p2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn symbolic_bound_is_unsupported() {
        let p = parse_program(
            "
            array A[10];
            n = 10;
            for i = 1..n {
                A[i] = i;
            }
            ",
        )
        .unwrap();
        let err = normalize_loop(&loop_of(&p)).unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)));
    }

    #[test]
    fn require_normalized_reports_offender() {
        let p = parse_program(
            "
            array A[10][10];
            doall i = 1..10 {
                doall j = 2..10 {
                    A[i][j] = 1;
                }
            }
            ",
        )
        .unwrap();
        let nest = extract_nest(&loop_of(&p));
        let err = require_normalized(&nest.loops).unwrap_err();
        match err {
            Error::Unsupported(m) => {
                assert!(m.to_string().contains('j'), "{m}")
            }
            other => panic!("{other:?}"),
        }
    }
}
