//! The loop-coalescing transformation.
//!
//! Coalescing rewrites a perfect nest of parallel loops
//!
//! ```text
//! doall i1 = 1..N1 { doall i2 = 1..N2 { ... BODY ... } }
//! ```
//!
//! into a single parallel loop over the whole iteration space
//!
//! ```text
//! doall j = 1..N1*N2 {
//!     i1 = ceildiv(j, N2);
//!     i2 = j - N2 * (ceildiv(j, N2) - 1);
//!     BODY
//! }
//! ```
//!
//! so that a self-scheduled machine dispatches iterations from **one**
//! shared counter instead of one counter (and one barrier) per nest level.
//! Partial collapse — coalescing only a contiguous band of levels — is
//! supported; outer levels are preserved around the coalesced loop and
//! inner levels are preserved inside it.
//!
//! # Constant and symbolic trip counts
//!
//! [`coalesce_band`] is the single entry point for both compile-time and
//! runtime trip counts, choosing the recovery form **per level**:
//!
//! * a level whose stride `P_k = Π_{l>k} N_l` folds to a constant gets a
//!   literal stride in its recovery formula;
//! * a level whose stride involves a runtime bound gets a scalar stride
//!   (`lcs_k`) computed in a preamble ahead of the loop, as in the
//!   paper's symbolic presentation.
//!
//! A mixed nest like `doall i = 1..n { doall j = 1..64 { … } }` therefore
//! coalesces with fully-constant recovery on the constant levels and only
//! the total trip count (`lcs_total = 64 * n`) computed at run time. When
//! every banded trip count is symbolic the emission degenerates to the
//! classic all-scalar stride preamble.
//!
//! # Legality
//!
//! A band of levels may be coalesced when
//!
//! 1. the loops form a perfect nest in unit form `1..=U step 1` (run
//!    [`crate::normalize`] first for constant bounds; symbolic bounds
//!    must additionally be loop-invariant),
//! 2. no data dependence is *carried* at any coalesced level (each level is
//!    DOALL-legal) — either the programmer marked every level `doall`, or
//!    [`CoalesceOptions::check_legality`] lets the dependence tester prove
//!    it, and
//! 3. every scalar assigned in the body is dead on entry to each iteration
//!    (privatizable): the body never reads it before writing it. Scalar
//!    reductions (`s = s + …`) are rejected.

use std::collections::HashSet;

use lc_ir::analysis::depend::{analyze_nest, NestDeps};
use lc_ir::analysis::nest::{extract_nest, LoopHeader, Nest};
use lc_ir::build::ExprBuilder;
use lc_ir::expr::{Cond, Expr};
use lc_ir::stmt::{Loop, LoopKind, Stmt};
use lc_ir::symbol::Symbol;
use lc_ir::{Error, Result, SkipReason};

use crate::normalize::normalize_nest;
use crate::recovery::{per_iteration_cost, recovery_stmts, total_iterations, RecoveryScheme};

/// Options controlling [`coalesce_loop`].
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`CoalesceOptions::default`] or the [builder](CoalesceOptions::builder),
/// e.g. `CoalesceOptions::builder().levels(0, 2).build()`.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct CoalesceOptions {
    /// Index-recovery code to emit (default: the paper's ceiling formula).
    pub scheme: RecoveryScheme,
    /// Verify DOALL legality with the dependence tester. When `false`,
    /// every coalesced level must already be marked `doall`.
    pub check_legality: bool,
    /// The contiguous band of 0-based levels to coalesce, `[start, end)`.
    /// `None` coalesces the whole nest.
    pub levels: Option<(usize, usize)>,
    /// Name for the coalesced index variable; a fresh name derived from
    /// `jc` is chosen when `None` or when the given name collides.
    pub coalesced_var: Option<Symbol>,
    /// Automatically normalize non-unit-step / offset loops first.
    pub auto_normalize: bool,
    /// Run common-subexpression extraction over the emitted recovery
    /// statements (hoists the shared `⌈j/P⌉` terms — the paper's
    /// strength-reduction remark; only pays off for nests ≥ 3 deep).
    pub strength_reduce: bool,
}

impl Default for CoalesceOptions {
    fn default() -> Self {
        CoalesceOptions {
            scheme: RecoveryScheme::Ceiling,
            check_legality: true,
            levels: None,
            coalesced_var: None,
            auto_normalize: true,
            strength_reduce: false,
        }
    }
}

impl CoalesceOptions {
    /// Start building options from the defaults.
    pub fn builder() -> CoalesceOptionsBuilder {
        CoalesceOptionsBuilder {
            opts: CoalesceOptions::default(),
        }
    }

    /// Fit the requested band to a nest of `depth` levels: if the band
    /// is empty or reaches past the nest, fall back to coalescing the
    /// whole nest (`levels = None`) rather than erroring.
    ///
    /// This is the per-nest clamping the source pipeline applies when one
    /// option set drives programs whose nests have differing depths.
    pub fn clamped_to_depth(mut self, depth: usize) -> Self {
        if let Some((start, end)) = self.levels {
            if end > depth || start >= end {
                self.levels = None;
            }
        }
        self
    }
}

/// Builder for [`CoalesceOptions`]; see [`CoalesceOptions::builder`].
#[derive(Debug, Clone)]
pub struct CoalesceOptionsBuilder {
    opts: CoalesceOptions,
}

impl CoalesceOptionsBuilder {
    /// Index-recovery code to emit.
    pub fn scheme(mut self, scheme: RecoveryScheme) -> Self {
        self.opts.scheme = scheme;
        self
    }

    /// Verify DOALL legality with the dependence tester.
    pub fn check_legality(mut self, check: bool) -> Self {
        self.opts.check_legality = check;
        self
    }

    /// Coalesce only the contiguous band of 0-based levels
    /// `[start, end)`.
    pub fn levels(mut self, start: usize, end: usize) -> Self {
        self.opts.levels = Some((start, end));
        self
    }

    /// Coalesce the whole nest (the default; undoes [`Self::levels`]).
    pub fn all_levels(mut self) -> Self {
        self.opts.levels = None;
        self
    }

    /// Set the band from an `Option`: `Some((start, end))` behaves like
    /// [`Self::levels`], `None` like [`Self::all_levels`]. Handy when the
    /// band is itself data (e.g. a kernel's recommended collapse band).
    pub fn levels_opt(mut self, band: Option<(usize, usize)>) -> Self {
        self.opts.levels = band;
        self
    }

    /// Requested name for the coalesced index variable.
    pub fn coalesced_var(mut self, var: impl Into<Symbol>) -> Self {
        self.opts.coalesced_var = Some(var.into());
        self
    }

    /// Automatically normalize non-unit-step / offset loops first.
    pub fn auto_normalize(mut self, auto: bool) -> Self {
        self.opts.auto_normalize = auto;
        self
    }

    /// Run common-subexpression extraction over the emitted recovery
    /// statements.
    pub fn strength_reduce(mut self, reduce: bool) -> Self {
        self.opts.strength_reduce = reduce;
        self
    }

    /// Finish, yielding the options.
    pub fn build(self) -> CoalesceOptions {
        self.opts
    }
}

/// Metadata describing what a coalescing did (consumed by the scheduling
/// and benchmark layers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoalesceInfo {
    /// Trip count of each coalesced level, outermost first. Empty when
    /// any banded trip count is symbolic (known only at run time).
    pub dims: Vec<u64>,
    /// `Π dims` — the coalesced loop's trip count; `0` when symbolic.
    pub total_iterations: u64,
    /// Recovery scheme emitted.
    pub scheme: RecoveryScheme,
    /// Abstract per-iteration cost of the emitted recovery statements;
    /// `0` when any banded trip count is symbolic.
    pub recovery_cost_per_iteration: u64,
    /// The band `[start, end)` of original levels that were coalesced.
    pub levels: (usize, usize),
    /// Depth of the original nest.
    pub original_depth: usize,
    /// The coalesced loop's index variable.
    pub coalesced_var: Symbol,
}

/// A coalescing outcome: the rewritten loop, the (possibly empty) stride
/// preamble, and metadata.
#[derive(Debug, Clone)]
pub struct CoalesceResult {
    /// The transformed outermost loop (outer uncoalesced levels intact).
    pub transformed: Loop,
    /// Scalar assignments computing symbolic stride products; they must
    /// precede the loop. Empty when every banded trip count is constant.
    pub preamble: Vec<Stmt>,
    /// What happened.
    pub info: CoalesceInfo,
}

impl CoalesceResult {
    /// Preamble + loop as a single statement list — splice this in place
    /// of the original loop statement.
    pub fn stmts(&self) -> Vec<Stmt> {
        let mut out = self.preamble.clone();
        out.push(Stmt::Loop(self.transformed.clone()));
        out
    }
}

/// Coalesce (a band of levels of) the perfect nest rooted at `l`.
///
/// Convenience wrapper over [`coalesce_band`]: extracts the nest, tries
/// to normalize it (when `auto_normalize` is set), and runs every
/// analysis from scratch. Nests that cannot be normalized because a
/// bound is symbolic go to the per-level emitter as-is — such loops must
/// already be in unit form `1..=U step 1`. Callers that already hold the
/// nest and its dependence analysis — e.g. `lc-driver`'s cached pipeline
/// — should call [`coalesce_band`] directly so nothing is recomputed.
pub fn coalesce_loop(l: &Loop, opts: &CoalesceOptions) -> Result<CoalesceResult> {
    let nest = extract_nest(l);
    if opts.auto_normalize {
        match normalize_nest(&nest) {
            Ok(normalized) => coalesce_band(&normalized, None, opts),
            // Symbolic bounds cannot be pre-normalized; the per-level
            // emitter handles them directly.
            Err(Error::Unsupported(r)) if r.is_symbolic() => coalesce_band(&nest, None, opts),
            Err(e) => Err(e),
        }
    } else {
        crate::normalize::require_normalized(&nest.loops)?;
        coalesce_band(&nest, None, opts)
    }
}

/// Coalesce a band of an already-extracted nest, selecting constant or
/// symbolic index recovery **per level**.
///
/// Every loop must be in unit form `1..=U step 1` (normalize first for
/// constant bounds). `deps` optionally injects a precomputed dependence
/// analysis of exactly this nest; when `None` (and `opts.check_legality`
/// is set) the tester runs internally. Injecting lets a driver share one
/// analysis between the legality check, the collapse-band advisor, and
/// the coalescer.
pub fn coalesce_band(
    nest: &Nest,
    deps: Option<&NestDeps>,
    opts: &CoalesceOptions,
) -> Result<CoalesceResult> {
    precheck_band(nest, deps, opts)?;

    let depth = nest.depth();
    let (start, end) = opts.levels.unwrap_or((0, depth));
    let band = &nest.loops[start..end];

    let used = used_symbols(nest);
    let jvar = fresh_from(
        &used,
        opts.coalesced_var
            .as_ref()
            .map(|s| s.as_str())
            .unwrap_or("jc"),
    );

    let const_trips: Option<Vec<u64>> = band.iter().map(LoopHeader::const_trip_count).collect();
    let (mut body, preamble, upper, info) = match const_trips {
        Some(dims) => emit_constant(nest, band, &used, &jvar, dims, (start, end), opts)?,
        None => emit_per_level(band, &used, &jvar, (start, end), depth, opts),
    };

    // Inner uncoalesced levels wrap the nest body inside the coalesced
    // loop; outer uncoalesced levels wrap the coalesced loop, unchanged.
    body.extend(wrap_levels(&nest.loops[end..], nest.body.clone()));
    let mut result = Loop {
        var: jvar,
        lower: Expr::lit(1),
        upper,
        step: Expr::lit(1),
        kind: LoopKind::Doall,
        body,
    };
    for h in nest.loops[..start].iter().rev() {
        result = rebuild_level(h, vec![Stmt::Loop(result)]);
    }

    Ok(CoalesceResult {
        transformed: result,
        preamble,
        info,
    })
}

/// The all-constant emission: literal total trip count, recovery via
/// [`recovery_stmts`], optional strength reduction, typed cost.
fn emit_constant(
    nest: &Nest,
    band: &[LoopHeader],
    used: &HashSet<String>,
    jvar: &Symbol,
    dims: Vec<u64>,
    levels: (usize, usize),
    opts: &CoalesceOptions,
) -> Result<(Vec<Stmt>, Vec<Stmt>, Expr, CoalesceInfo)> {
    let total = total_iterations(&dims)?;
    let level_vars: Vec<Symbol> = band.iter().map(|h| h.var.clone()).collect();

    let mut recovery = recovery_stmts(opts.scheme, jvar, &level_vars, &dims);
    let mut recovery_cost = per_iteration_cost(opts.scheme, &dims).units();
    if opts.strength_reduce {
        // Temp names are `{prefix}{n}` for arbitrary n: pick a prefix no
        // existing symbol starts with, so no temp can collide.
        let prefix = (0u32..)
            .map(|i| {
                if i == 0 {
                    "rc_".to_string()
                } else {
                    format!("rc{i}_")
                }
            })
            .find(|p| !used.iter().any(|u| u.starts_with(p.as_str())))
            .expect("some prefix is always free");
        let mut builder = ExprBuilder::from_stmts(recovery);
        builder.intern_shared_divisions(&prefix);
        recovery_cost = builder.cost().units();
        recovery = builder.into_stmts();
    }

    let info = CoalesceInfo {
        recovery_cost_per_iteration: recovery_cost,
        dims,
        total_iterations: total,
        scheme: opts.scheme,
        levels,
        original_depth: nest.depth(),
        coalesced_var: jvar.clone(),
    };
    Ok((recovery, Vec::new(), Expr::lit(total as i64), info))
}

/// The per-level emission for bands with at least one symbolic trip
/// count. Strides that fold to constants stay literals in the recovery
/// formulas; symbolic strides become `lcs_k` scalars in the preamble.
/// When *every* banded trip is symbolic this degenerates to the classic
/// all-scalar stride chain.
fn emit_per_level(
    band: &[LoopHeader],
    used: &HashSet<String>,
    jvar: &Symbol,
    levels: (usize, usize),
    depth: usize,
    opts: &CoalesceOptions,
) -> (Vec<Stmt>, Vec<Stmt>, Expr, CoalesceInfo) {
    let m = band.len();
    // With every trip symbolic, materialize every stride (including the
    // constant innermost `1`) so the emission matches the paper's
    // all-symbolic preamble shape exactly.
    let force_scalar = band.iter().all(|h| h.upper.as_const().is_none());

    let mut preamble = ExprBuilder::new();
    let mut strides: Vec<Expr> = vec![Expr::lit(1); m];
    let mut running = Expr::lit(1);
    for k in (0..m).rev() {
        let stride = if force_scalar || running.as_const().is_none() {
            let name = fresh_from(used, &format!("lcs_{k}"));
            preamble.assign(name.clone(), running.clone());
            Expr::Var(name)
        } else {
            running.clone()
        };
        running = (stride.clone() * band[k].upper.clone()).fold();
        strides[k] = stride;
    }
    let upper = if running.as_const().is_some() {
        // Possible despite a symbolic bound: a constant zero-trip level
        // annihilates the product.
        running
    } else {
        let total_name = fresh_from(used, "lcs_total");
        preamble.assign(total_name.clone(), running);
        Expr::Var(total_name)
    };

    // Recovery per level, on whatever form each stride took.
    let j = Expr::Var(jvar.clone());
    let mut recovery = ExprBuilder::new();
    for (k, h) in band.iter().enumerate() {
        let stride = strides[k].clone();
        let expr = match opts.scheme {
            RecoveryScheme::Ceiling => {
                let first = j.clone().ceil_div(stride.clone());
                if k == 0 {
                    first
                } else {
                    let outer = (stride * h.upper.clone()).fold();
                    first - h.upper.clone() * (j.clone().ceil_div(outer) - Expr::lit(1))
                }
            }
            RecoveryScheme::DivMod => {
                let q = j.clone() - Expr::lit(1);
                let shifted = q.floor_div(stride);
                if k == 0 {
                    shifted + Expr::lit(1)
                } else {
                    shifted.floor_mod(h.upper.clone()) + Expr::lit(1)
                }
            }
        };
        recovery.assign(h.var.clone(), expr);
    }

    // Dims are runtime values: the scheduling layer sees the symbolic
    // marker (empty dims, zero totals).
    let info = CoalesceInfo {
        dims: Vec::new(),
        total_iterations: 0,
        scheme: opts.scheme,
        recovery_cost_per_iteration: 0,
        levels,
        original_depth: depth,
        coalesced_var: jvar.clone(),
    };
    (recovery.into_stmts(), preamble.into_stmts(), upper, info)
}

/// Check — without rewriting anything — that the band requested by
/// `opts` can legally be coalesced on `nest`.
///
/// This is the complete legality precheck [`coalesce_band`] runs before
/// emitting code: band range, unit form, bound invariance, and DOALL
/// legality (dependence test + scalar privatization when
/// [`CoalesceOptions::check_legality`] is set). `Ok(())` guarantees the
/// subsequent [`coalesce_band`] call cannot fail except on arithmetic
/// overflow of a constant trip-count product.
pub fn precheck_band(nest: &Nest, deps: Option<&NestDeps>, opts: &CoalesceOptions) -> Result<()> {
    let depth = nest.depth();
    let (start, end) = opts.levels.unwrap_or((0, depth));
    if start >= end || end > depth {
        return Err(Error::Unsupported(SkipReason::BandOutOfRange {
            start,
            end,
            depth,
        }));
    }

    // Every level must read `1..=U step 1`. Constant-bound loops that
    // are not in this form are merely un-normalized (normalization can
    // fix them); loops with a symbolic bound part are out of scope.
    for h in &nest.loops {
        if h.lower.as_const() != Some(1) || h.step.as_const() != Some(1) {
            let all_parts_const = h.lower.as_const().is_some()
                && h.step.as_const().is_some()
                && h.upper.as_const().is_some();
            let reason = if all_parts_const {
                SkipReason::NotNormalized { var: h.var.clone() }
            } else {
                SkipReason::NotUnitNormalized { var: h.var.clone() }
            };
            return Err(Error::Unsupported(reason));
        }
    }

    let band = &nest.loops[start..end];

    // Symbolic upper bounds must be invariant: no banded bound may
    // mention a variable assigned inside the nest or any nest index.
    // (Constant bounds mention no variables; the scan is skipped.)
    if band.iter().any(|h| h.upper.as_const().is_none()) {
        let mut assigned = Vec::new();
        collect_assigned(&nest.body, &mut assigned);
        for h in &nest.loops {
            assigned.push(h.var.clone());
        }
        for h in band {
            let mut vars = Vec::new();
            h.upper.variables(&mut vars);
            if let Some(v) = vars.iter().find(|v| assigned.contains(v)) {
                return Err(Error::Unsupported(SkipReason::VariantBound {
                    var: h.var.clone(),
                    dep: v.clone(),
                }));
            }
        }
    }

    check_band_legality(nest, deps, start, end, opts)
}

fn check_band_legality(
    nest: &Nest,
    deps: Option<&NestDeps>,
    start: usize,
    end: usize,
    opts: &CoalesceOptions,
) -> Result<()> {
    let band = &nest.loops[start..end];
    if !opts.check_legality {
        if let Some(bad) = band.iter().find(|h| !h.kind.is_doall()) {
            // Keep the historical diagnostics of the two paths: named for
            // constant bands, anonymous for symbolic ones.
            let reason = if band.iter().all(|h| h.upper.as_const().is_some()) {
                SkipReason::NotDoall {
                    var: bad.var.clone(),
                }
            } else {
                SkipReason::NotDoallUnchecked
            };
            return Err(Error::Unsupported(reason));
        }
        return Ok(());
    }
    let owned;
    let deps = match deps {
        Some(d) => d,
        None => {
            owned = analyze_nest(nest)?;
            &owned
        }
    };
    for level in start..end {
        if deps.carried_at(level) {
            return Err(Error::Unsupported(SkipReason::CarriedDependence {
                level,
                var: nest.loops[level].var.clone(),
            }));
        }
    }
    scalar_privatization_ok(nest, start, end)
}

/// Rebuild one preserved nest level around `body`.
fn rebuild_level(h: &LoopHeader, body: Vec<Stmt>) -> Loop {
    Loop {
        var: h.var.clone(),
        lower: h.lower.clone(),
        upper: h.upper.clone(),
        step: h.step.clone(),
        kind: h.kind,
        body,
    }
}

/// Wrap `body` in the given preserved levels, innermost-last.
fn wrap_levels(headers: &[LoopHeader], mut body: Vec<Stmt>) -> Vec<Stmt> {
    for h in headers.iter().rev() {
        body = vec![Stmt::Loop(rebuild_level(h, body))];
    }
    body
}

/// Pick a name that collides with nothing in `used`.
fn fresh_from(used: &HashSet<String>, base: &str) -> Symbol {
    if !used.contains(base) {
        return Symbol::new(base);
    }
    let mut n = 0usize;
    loop {
        let cand = format!("{base}_{n}");
        if !used.contains(cand.as_str()) {
            return Symbol::new(cand);
        }
        n += 1;
    }
}

fn used_symbols(nest: &Nest) -> HashSet<String> {
    let mut syms: Vec<Symbol> = Vec::new();
    for h in &nest.loops {
        syms.push(h.var.clone());
        h.lower.variables(&mut syms);
        h.upper.variables(&mut syms);
        h.step.variables(&mut syms);
    }
    collect_stmt_symbols(&nest.body, &mut syms);
    syms.into_iter().map(|s| s.as_str().to_string()).collect()
}

fn collect_stmt_symbols(stmts: &[Stmt], out: &mut Vec<Symbol>) {
    for s in stmts {
        match s {
            Stmt::AssignScalar { var, value } => {
                out.push(var.clone());
                value.variables(out);
            }
            Stmt::AssignArray { target, value } => {
                out.push(target.array.clone());
                for ix in &target.indices {
                    ix.variables(out);
                }
                value.variables(out);
            }
            Stmt::Loop(l) => {
                out.push(l.var.clone());
                l.lower.variables(out);
                l.upper.variables(out);
                l.step.variables(out);
                collect_stmt_symbols(&l.body, out);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                cond.variables(out);
                collect_stmt_symbols(then_body, out);
                collect_stmt_symbols(else_body, out);
            }
        }
    }
}

/// Everything *assigned* in the statements: scalar targets plus loop
/// index variables (used to prove banded bounds loop-invariant).
fn collect_assigned(stmts: &[Stmt], out: &mut Vec<Symbol>) {
    for s in stmts {
        match s {
            Stmt::AssignScalar { var, .. } => out.push(var.clone()),
            Stmt::AssignArray { .. } => {}
            Stmt::Loop(l) => {
                out.push(l.var.clone());
                collect_assigned(&l.body, out);
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_assigned(then_body, out);
                collect_assigned(else_body, out);
            }
        }
    }
}

/// Verify that every scalar assigned anywhere in the (sub)nest body is
/// written before it is read on every path — i.e. it can be privatized per
/// iteration, so iterations do not communicate through it.
pub(crate) fn scalar_privatization_ok(nest: &Nest, _start: usize, end: usize) -> Result<()> {
    let mut assigned = HashSet::new();
    collect_assigned_scalars(&nest.body, &mut assigned);

    // Variables defined on entry to each iteration: every nest level var
    // (coalesced and outer vars via recovery/outer loops, inner vars by
    // their preserved loops).
    let mut defined: HashSet<Symbol> = nest.loops.iter().map(|h| h.var.clone()).collect();
    // The preserved inner headers execute per coalesced iteration: their
    // bound expressions are reads too.
    for h in &nest.loops[end..] {
        check_reads_expr(&h.lower, &assigned, &defined)?;
        check_reads_expr(&h.upper, &assigned, &defined)?;
        check_reads_expr(&h.step, &assigned, &defined)?;
    }
    walk_check(&nest.body, &assigned, &mut defined)
}

fn collect_assigned_scalars(stmts: &[Stmt], out: &mut HashSet<Symbol>) {
    for s in stmts {
        match s {
            Stmt::AssignScalar { var, .. } => {
                out.insert(var.clone());
            }
            Stmt::AssignArray { .. } => {}
            Stmt::Loop(l) => collect_assigned_scalars(&l.body, out),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_assigned_scalars(then_body, out);
                collect_assigned_scalars(else_body, out);
            }
        }
    }
}

fn check_reads_expr(e: &Expr, assigned: &HashSet<Symbol>, defined: &HashSet<Symbol>) -> Result<()> {
    let mut vars = Vec::new();
    e.variables(&mut vars);
    for v in vars {
        if assigned.contains(&v) && !defined.contains(&v) {
            return Err(Error::Unsupported(SkipReason::ScalarReduction { var: v }));
        }
    }
    Ok(())
}

fn check_reads_cond(c: &Cond, assigned: &HashSet<Symbol>, defined: &HashSet<Symbol>) -> Result<()> {
    match c {
        Cond::Cmp(_, a, b) => {
            check_reads_expr(a, assigned, defined)?;
            check_reads_expr(b, assigned, defined)
        }
        Cond::Not(x) => check_reads_cond(x, assigned, defined),
        Cond::And(a, b) | Cond::Or(a, b) => {
            check_reads_cond(a, assigned, defined)?;
            check_reads_cond(b, assigned, defined)
        }
    }
}

fn walk_check(
    stmts: &[Stmt],
    assigned: &HashSet<Symbol>,
    defined: &mut HashSet<Symbol>,
) -> Result<()> {
    for s in stmts {
        match s {
            Stmt::AssignScalar { var, value } => {
                check_reads_expr(value, assigned, defined)?;
                defined.insert(var.clone());
            }
            Stmt::AssignArray { target, value } => {
                for ix in &target.indices {
                    check_reads_expr(ix, assigned, defined)?;
                }
                check_reads_expr(value, assigned, defined)?;
            }
            Stmt::Loop(l) => {
                check_reads_expr(&l.lower, assigned, defined)?;
                check_reads_expr(&l.upper, assigned, defined)?;
                check_reads_expr(&l.step, assigned, defined)?;
                let mut inner = defined.clone();
                inner.insert(l.var.clone());
                walk_check(&l.body, assigned, &mut inner)?;
                // The loop may run zero times: definitions inside it are
                // not guaranteed afterwards, so `defined` is unchanged.
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                check_reads_cond(cond, assigned, defined)?;
                let mut d_then = defined.clone();
                walk_check(then_body, assigned, &mut d_then)?;
                let mut d_else = defined.clone();
                walk_check(else_body, assigned, &mut d_else)?;
                // Defined afterwards = defined on both paths.
                for v in d_then.intersection(&d_else) {
                    defined.insert(v.clone());
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_ir::interp::{DoallOrder, Interp};
    use lc_ir::parser::parse_program;
    use lc_ir::program::Program;

    fn loop_of(p: &Program) -> (usize, Loop) {
        p.body
            .iter()
            .enumerate()
            .find_map(|(i, s)| match s {
                Stmt::Loop(l) => Some((i, l.clone())),
                _ => None,
            })
            .unwrap()
    }

    /// Coalesce the (first) loop of a program, splice preamble + loop in
    /// its place, and check the transformed program produces an identical
    /// store under several doall orders.
    fn check_coalesce(src: &str, opts: &CoalesceOptions) -> CoalesceResult {
        let p = parse_program(src).unwrap();
        let (idx, l) = loop_of(&p);
        let out = coalesce_loop(&l, opts).unwrap();

        let mut p2 = p.clone();
        p2.body.remove(idx);
        for (off, s) in out.stmts().into_iter().enumerate() {
            p2.body.insert(idx + off, s);
        }
        p2.check().expect("transformed program must be well-formed");

        let reference = Interp::new().run(&p).unwrap();
        for order in [
            DoallOrder::Forward,
            DoallOrder::Reverse,
            DoallOrder::Shuffled(7),
            DoallOrder::Shuffled(991),
        ] {
            let got = Interp::new().with_order(order).run(&p2).unwrap();
            assert_eq!(
                reference, got,
                "coalesced program diverged under {order:?} for:\n{src}"
            );
        }
        out
    }

    #[test]
    fn coalesce_2d_fill_both_schemes() {
        let src = "
            array A[6][4];
            doall i = 1..6 {
                doall j = 1..4 {
                    A[i][j] = 10 * i + j;
                }
            }
            ";
        for scheme in [RecoveryScheme::Ceiling, RecoveryScheme::DivMod] {
            let out = check_coalesce(
                src,
                &CoalesceOptions {
                    scheme,
                    ..Default::default()
                },
            );
            assert_eq!(out.info.dims, vec![6, 4]);
            assert_eq!(out.info.total_iterations, 24);
            assert!(out.preamble.is_empty(), "constant nests need no preamble");
        }
    }

    #[test]
    fn coalesce_3d_fill() {
        let out = check_coalesce(
            "
            array A[3][4][5];
            doall i = 1..3 {
                doall j = 1..4 {
                    doall k = 1..5 {
                        A[i][j][k] = 100 * i + 10 * j + k;
                    }
                }
            }
            ",
            &CoalesceOptions::default(),
        );
        assert_eq!(out.info.total_iterations, 60);
        assert!(out.info.recovery_cost_per_iteration > 0);
    }

    #[test]
    fn coalesce_partial_band_inner_two_of_three() {
        let out = check_coalesce(
            "
            array A[3][4][5];
            doall i = 1..3 {
                doall j = 1..4 {
                    doall k = 1..5 {
                        A[i][j][k] = i + j * k;
                    }
                }
            }
            ",
            &CoalesceOptions {
                levels: Some((1, 3)),
                ..Default::default()
            },
        );
        assert_eq!(out.info.dims, vec![4, 5]);
        assert_eq!(out.info.levels, (1, 3));
    }

    #[test]
    fn coalesce_partial_band_outer_two_of_three() {
        // Inner level stays serial inside the coalesced loop.
        let out = check_coalesce(
            "
            array A[3][4][5];
            doall i = 1..3 {
                doall j = 1..4 {
                    for k = 1..5 {
                        A[i][j][k] = i * j + k;
                    }
                }
            }
            ",
            &CoalesceOptions {
                levels: Some((0, 2)),
                ..Default::default()
            },
        );
        assert_eq!(out.info.dims, vec![3, 4]);
    }

    #[test]
    fn coalesce_normalizes_offsets_and_strides() {
        check_coalesce(
            "
            array A[20][30];
            doall i = 3..17 {
                doall j = 2..30 step 3 {
                    A[i][j] = i * j;
                }
            }
            ",
            &CoalesceOptions::default(),
        );
    }

    #[test]
    fn unnormalized_rejected_without_auto_normalize() {
        let p = parse_program(
            "
            array A[10];
            doall i = 2..5 {
                A[i] = i;
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        let err = coalesce_loop(
            &l,
            &CoalesceOptions {
                auto_normalize: false,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)));
    }

    #[test]
    fn coalesce_with_inner_serial_loop_below_band() {
        // Matmul-shaped: coalesce (i, j); the k loop is a reduction over a
        // privatizable scalar `acc`.
        check_coalesce(
            "
            array A[4][3];
            array B[3][5];
            array C[4][5];
            doall i = 1..4 {
                doall j = 1..5 {
                    acc = 0;
                    for k = 1..3 {
                        acc = acc + A[i][k] * B[k][j];
                    }
                    C[i][j] = acc;
                }
            }
            ",
            &CoalesceOptions {
                levels: Some((0, 2)),
                ..Default::default()
            },
        );
    }

    #[test]
    fn coalesce_with_branches() {
        check_coalesce(
            "
            array A[5][5];
            doall i = 1..5 {
                doall j = 1..5 {
                    if i == j {
                        A[i][j] = 1;
                    } else {
                        A[i][j] = i - j;
                    }
                }
            }
            ",
            &CoalesceOptions::default(),
        );
    }

    #[test]
    fn serial_loops_proven_parallel_are_coalesced() {
        // Not marked doall, but independent — the legality checker proves it.
        check_coalesce(
            "
            array A[4][4];
            for i = 1..4 {
                for j = 1..4 {
                    A[i][j] = A[i][j] + 1;
                }
            }
            ",
            &CoalesceOptions::default(),
        );
    }

    #[test]
    fn serial_loops_rejected_without_checking() {
        let p = parse_program(
            "
            array A[4][4];
            for i = 1..4 {
                for j = 1..4 {
                    A[i][j] = 1;
                }
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        let err = coalesce_loop(
            &l,
            &CoalesceOptions {
                check_legality: false,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            Error::Unsupported(SkipReason::NotDoall { .. })
        ));
    }

    #[test]
    fn carried_dependence_is_rejected() {
        let p = parse_program(
            "
            array A[8][8];
            for i = 2..8 {
                for j = 1..8 {
                    A[i][j] = A[i - 1][j] + 1;
                }
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        let err = coalesce_loop(&l, &CoalesceOptions::default()).unwrap_err();
        match err {
            Error::Unsupported(m) => {
                assert!(matches!(m, SkipReason::CarriedDependence { .. }), "{m}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn inner_carried_dependence_allows_outer_band() {
        // Dependence carried at level 1 (j): coalescing band (0, 1) — just
        // the i loop alone — is legal; band (0, 2) is not.
        let src = "
            array A[8][8];
            for i = 1..8 {
                for j = 2..8 {
                    A[i][j] = A[i][j - 1] + 1;
                }
            }
            ";
        let p = parse_program(src).unwrap();
        let (_, l) = loop_of(&p);
        assert!(coalesce_loop(
            &l,
            &CoalesceOptions {
                levels: Some((0, 2)),
                ..Default::default()
            }
        )
        .is_err());
        check_coalesce(
            src,
            &CoalesceOptions {
                levels: Some((0, 1)),
                ..Default::default()
            },
        );
    }

    #[test]
    fn scalar_reduction_is_rejected() {
        let p = parse_program(
            "
            array A[8];
            s = 0;
            doall i = 1..8 {
                s = s + A[i];
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        let err = coalesce_loop(&l, &CoalesceOptions::default()).unwrap_err();
        match err {
            Error::Unsupported(m) => {
                assert!(matches!(m, SkipReason::ScalarReduction { .. }), "{m}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn privatizable_temp_is_accepted() {
        check_coalesce(
            "
            array A[6][6];
            doall i = 1..6 {
                doall j = 1..6 {
                    t = i * j;
                    A[i][j] = t + t;
                }
            }
            ",
            &CoalesceOptions::default(),
        );
    }

    #[test]
    fn temp_defined_in_one_branch_only_is_rejected() {
        // `t` is only written when i == j, then read unconditionally.
        let p = parse_program(
            "
            array A[4][4];
            doall i = 1..4 {
                doall j = 1..4 {
                    if i == j {
                        t = 1;
                    }
                    A[i][j] = t;
                }
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        assert!(coalesce_loop(&l, &CoalesceOptions::default()).is_err());
    }

    #[test]
    fn temp_defined_in_both_branches_is_accepted() {
        check_coalesce(
            "
            array A[4][4];
            doall i = 1..4 {
                doall j = 1..4 {
                    if i == j {
                        t = 1;
                    } else {
                        t = 0;
                    }
                    A[i][j] = t;
                }
            }
            ",
            &CoalesceOptions::default(),
        );
    }

    #[test]
    fn fresh_variable_avoids_collision() {
        let src = "
            array A[3][3];
            doall i = 1..3 {
                doall j = 1..3 {
                    jc = i + j;
                    A[i][j] = jc;
                }
            }
            ";
        let p = parse_program(src).unwrap();
        let (_, l) = loop_of(&p);
        let out = coalesce_loop(&l, &CoalesceOptions::default()).unwrap();
        assert_ne!(out.info.coalesced_var.as_str(), "jc");
        // And the transformed program still computes the same thing.
        check_coalesce(src, &CoalesceOptions::default());
    }

    #[test]
    fn single_level_coalesce_is_allowed() {
        let out = check_coalesce(
            "
            array A[7];
            doall i = 1..7 {
                A[i] = i * i;
            }
            ",
            &CoalesceOptions::default(),
        );
        assert_eq!(out.info.total_iterations, 7);
    }

    #[test]
    fn invalid_band_is_rejected() {
        let p = parse_program(
            "
            array A[4][4];
            doall i = 1..4 {
                doall j = 1..4 {
                    A[i][j] = 1;
                }
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        for band in [(0usize, 0usize), (1, 1), (0, 3), (2, 1)] {
            let err = coalesce_loop(
                &l,
                &CoalesceOptions {
                    levels: Some(band),
                    ..Default::default()
                },
            )
            .unwrap_err();
            assert!(matches!(err, Error::Unsupported(_)), "band {band:?}");
        }
    }

    #[test]
    fn strength_reduced_coalescing_is_equivalent_and_cheaper() {
        let src = "
            array V[3][4][5][2];
            doall a = 1..3 {
                doall b = 1..4 {
                    doall c = 1..5 {
                        doall d = 1..2 {
                            V[a][b][c][d] = a * 1000 + b * 100 + c * 10 + d;
                        }
                    }
                }
            }
            ";
        let plain = check_coalesce(src, &CoalesceOptions::default());
        let reduced = check_coalesce(
            src,
            &CoalesceOptions {
                strength_reduce: true,
                ..Default::default()
            },
        );
        assert!(
            reduced.info.recovery_cost_per_iteration < plain.info.recovery_cost_per_iteration,
            "CSE did not reduce cost: {} vs {}",
            reduced.info.recovery_cost_per_iteration,
            plain.info.recovery_cost_per_iteration
        );
    }

    #[test]
    fn strength_reduction_temps_avoid_collisions() {
        // The body *reads* `rc_0` as a free outer variable — a temp named
        // rc_0 would clobber it. The prefix chooser must step aside.
        let src = "
            array V[4][5][6];
            rc_0 = 7;
            doall a = 1..4 {
                doall b = 1..5 {
                    doall c = 1..6 {
                        V[a][b][c] = rc_0 * c + a + b;
                    }
                }
            }
            ";
        check_coalesce(
            src,
            &CoalesceOptions {
                strength_reduce: true,
                ..Default::default()
            },
        );
    }

    #[test]
    fn info_reports_paper_cost_shape() {
        // Deeper nests emit costlier recovery code.
        let mk = |depth: usize| {
            let dims_src = (0..depth)
                .map(|k| format!("[{}]", k + 2))
                .collect::<String>();
            let mut src = format!("array A{dims_src};\n");
            for k in 0..depth {
                src.push_str(&format!("doall i{k} = 1..{} {{\n", k + 2));
            }
            let subs = (0..depth).map(|k| format!("[i{k}]")).collect::<String>();
            src.push_str(&format!("A{subs} = 1;\n"));
            for _ in 0..depth {
                src.push('}');
            }
            src
        };
        let cost = |depth: usize| {
            let p = parse_program(&mk(depth)).unwrap();
            let (_, l) = loop_of(&p);
            coalesce_loop(&l, &CoalesceOptions::default())
                .unwrap()
                .info
                .recovery_cost_per_iteration
        };
        assert!(cost(2) < cost(3));
        assert!(cost(3) < cost(4));
    }

    // ------------------------------------------------------------------
    // Symbolic and mixed trip counts (runtime bounds).
    // ------------------------------------------------------------------

    #[test]
    fn symbolic_2d_both_schemes() {
        let src = "
            array A[12][9];
            n = 12;
            m = 9;
            doall i = 1..n {
                doall j = 1..m {
                    A[i][j] = i * 100 + j;
                }
            }
            ";
        for scheme in [RecoveryScheme::Ceiling, RecoveryScheme::DivMod] {
            let out = check_coalesce(
                src,
                &CoalesceOptions {
                    scheme,
                    ..Default::default()
                },
            );
            // All-symbolic: every stride is a preamble scalar
            // (lcs_1, lcs_0, lcs_total), and dims are unknown.
            assert_eq!(out.preamble.len(), 3);
            assert!(out.info.dims.is_empty());
            assert_eq!(out.info.total_iterations, 0);
        }
    }

    #[test]
    fn symbolic_3d() {
        check_coalesce(
            "
            array V[3][4][5];
            a = 3;
            b = 4;
            c = 5;
            doall i = 1..a {
                doall j = 1..b {
                    doall k = 1..c {
                        V[i][j][k] = i + 10 * j + 100 * k;
                    }
                }
            }
            ",
            &CoalesceOptions::default(),
        );
    }

    #[test]
    fn symbolic_bound_expressions() {
        // Bounds that are arithmetic over runtime scalars.
        check_coalesce(
            "
            array A[20][10];
            n = 10;
            doall i = 1..n + n {
                doall j = 1..n {
                    A[i][j] = i - j;
                }
            }
            ",
            &CoalesceOptions::default(),
        );
    }

    #[test]
    fn mixed_constant_and_symbolic() {
        // Outer trip constant, inner symbolic: the inner stride is the
        // literal 1 but the outer stride (= the inner trip) is runtime.
        let out = check_coalesce(
            "
            array A[7][11];
            m = 11;
            doall i = 1..7 {
                doall j = 1..m {
                    A[i][j] = i * j;
                }
            }
            ",
            &CoalesceOptions::default(),
        );
        assert_eq!(out.preamble.len(), 2, "lcs_0 = m; lcs_total = lcs_0 * 7");
    }

    #[test]
    fn mixed_nest_uses_constant_recovery_on_constant_levels() {
        // The acceptance-shaped nest: symbolic outer, constant inner.
        // The inner stride (64) folds to a literal, so the only runtime
        // computation is the total trip count — recovery itself mentions
        // no stride scalar at all.
        let out = check_coalesce(
            "
            array A[5][64];
            n = 5;
            doall i = 1..n {
                doall j = 1..64 {
                    A[i][j] = i * 1000 + j;
                }
            }
            ",
            &CoalesceOptions::default(),
        );
        assert_eq!(out.preamble.len(), 1, "only lcs_total is computed");
        match &out.preamble[0] {
            Stmt::AssignScalar { var, .. } => assert_eq!(var.as_str(), "lcs_total"),
            other => panic!("unexpected preamble stmt {other:?}"),
        }
        let mut vars = Vec::new();
        collect_stmt_symbols(&out.transformed.body, &mut vars);
        assert!(
            !vars.iter().any(|v| v.as_str().starts_with("lcs")),
            "recovery must use literal strides, got {vars:?}"
        );
    }

    #[test]
    fn mixed_partial_band_with_symbolic_outer_level_kept() {
        // Band (1, 3) of a 3-deep nest with a symbolic outermost level:
        // the coalesced band is fully constant, so this takes the
        // constant emission even though the nest as a whole is symbolic.
        let out = check_coalesce(
            "
            array A[4][5][6];
            n = 4;
            doall i = 1..n {
                doall j = 1..5 {
                    doall k = 1..6 {
                        A[i][j][k] = i + 10 * j + 100 * k;
                    }
                }
            }
            ",
            &CoalesceOptions {
                levels: Some((1, 3)),
                ..Default::default()
            },
        );
        assert_eq!(out.info.dims, vec![5, 6]);
        assert_eq!(out.info.total_iterations, 30);
        assert!(out.preamble.is_empty());
    }

    #[test]
    fn partial_band_with_symbolic_inner_serial() {
        check_coalesce(
            "
            array A[6][8];
            array S[6];
            n = 6;
            m = 8;
            doall i = 1..n {
                acc = 0;
                for j = 1..m {
                    acc = acc + A[i][j];
                }
                S[i] = acc;
            }
            ",
            &CoalesceOptions {
                levels: Some((0, 1)),
                ..Default::default()
            },
        );
    }

    #[test]
    fn offset_bounds_are_rejected() {
        let p = parse_program(
            "
            array A[10];
            n = 9;
            doall i = 2..n {
                A[i] = i;
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        let err = coalesce_loop(&l, &CoalesceOptions::default()).unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)));
    }

    #[test]
    fn bound_modified_inside_nest_is_rejected() {
        let p = parse_program(
            "
            array A[10][10];
            n = 10;
            doall i = 1..n {
                n = 5;
                doall j = 1..n {
                    A[i][j] = 1;
                }
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        let err = coalesce_loop(&l, &CoalesceOptions::default()).unwrap_err();
        match err {
            Error::Unsupported(m) => {
                assert!(matches!(m, SkipReason::VariantBound { .. }), "{m}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn carried_dependence_rejected_symbolically() {
        let p = parse_program(
            "
            array A[20];
            n = 20;
            for i = 1..n {
                A[i] = A[i] + 1;
            }
            ",
        )
        .unwrap();
        // This one is fine (no carried dep) — now a genuinely carried one:
        let p2 = parse_program(
            "
            array A[21];
            n = 20;
            for i = 1..n {
                A[i + 1] = A[i] + 1;
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        assert!(coalesce_loop(&l, &CoalesceOptions::default()).is_ok());
        let (_, l2) = loop_of(&p2);
        assert!(coalesce_loop(&l2, &CoalesceOptions::default()).is_err());
    }

    #[test]
    fn symbolic_scalar_reduction_is_rejected() {
        let p = parse_program(
            "
            array A[16];
            n = 16;
            s = 0;
            doall i = 1..n {
                s = s + A[i];
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        let err = coalesce_loop(&l, &CoalesceOptions::default()).unwrap_err();
        match err {
            Error::Unsupported(m) => {
                assert!(matches!(m, SkipReason::ScalarReduction { .. }), "{m}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn name_collisions_are_avoided() {
        check_coalesce(
            "
            array A[4][5];
            jc = 1;
            lcs_0 = 2;
            lcs_total = 3;
            n = 4;
            doall i = 1..n {
                doall j = 1..5 {
                    A[i][j] = i + j + jc + lcs_0 + lcs_total;
                }
            }
            ",
            &CoalesceOptions::default(),
        );
    }

    #[test]
    fn zero_trip_symbolic_loop() {
        // n = 0: the coalesced loop runs 1..0 — empty, no divisions by the
        // zero stride are ever evaluated.
        check_coalesce(
            "
            array A[5][5];
            n = 0;
            doall i = 1..n {
                doall j = 1..5 {
                    A[i][j] = 1;
                }
            }
            ",
            &CoalesceOptions::default(),
        );
    }
}
