//! The loop-coalescing transformation.
//!
//! Coalescing rewrites a perfect nest of parallel loops
//!
//! ```text
//! doall i1 = 1..N1 { doall i2 = 1..N2 { ... BODY ... } }
//! ```
//!
//! into a single parallel loop over the whole iteration space
//!
//! ```text
//! doall j = 1..N1*N2 {
//!     i1 = ceildiv(j, N2);
//!     i2 = j - N2 * (ceildiv(j, N2) - 1);
//!     BODY
//! }
//! ```
//!
//! so that a self-scheduled machine dispatches iterations from **one**
//! shared counter instead of one counter (and one barrier) per nest level.
//! Partial collapse — coalescing only a contiguous band of levels — is
//! supported; outer levels are preserved around the coalesced loop and
//! inner levels are preserved inside it.
//!
//! # Legality
//!
//! A band of levels may be coalesced when
//!
//! 1. the loops form a perfect nest with constant (normalizable) bounds,
//! 2. no data dependence is *carried* at any coalesced level (each level is
//!    DOALL-legal) — either the programmer marked every level `doall`, or
//!    [`CoalesceOptions::check_legality`] lets the dependence tester prove
//!    it, and
//! 3. every scalar assigned in the body is dead on entry to each iteration
//!    (privatizable): the body never reads it before writing it. Scalar
//!    reductions (`s = s + …`) are rejected.

use std::collections::HashSet;

use lc_ir::analysis::depend::{analyze_nest, NestDeps};
use lc_ir::analysis::nest::{extract_nest, Nest};
use lc_ir::expr::{Cond, Expr};
use lc_ir::stmt::{Loop, LoopKind, Stmt};
use lc_ir::symbol::Symbol;
use lc_ir::{Error, Result, SkipReason};

use crate::normalize::normalize_nest;
use crate::recovery::{per_iteration_cost, recovery_stmts, total_iterations, RecoveryScheme};

/// Options controlling [`coalesce_loop`].
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`CoalesceOptions::default`] or the [builder](CoalesceOptions::builder),
/// e.g. `CoalesceOptions::builder().levels(0, 2).build()`.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct CoalesceOptions {
    /// Index-recovery code to emit (default: the paper's ceiling formula).
    pub scheme: RecoveryScheme,
    /// Verify DOALL legality with the dependence tester. When `false`,
    /// every coalesced level must already be marked `doall`.
    pub check_legality: bool,
    /// The contiguous band of 0-based levels to coalesce, `[start, end)`.
    /// `None` coalesces the whole nest.
    pub levels: Option<(usize, usize)>,
    /// Name for the coalesced index variable; a fresh name derived from
    /// `jc` is chosen when `None` or when the given name collides.
    pub coalesced_var: Option<Symbol>,
    /// Automatically normalize non-unit-step / offset loops first.
    pub auto_normalize: bool,
    /// Run common-subexpression extraction over the emitted recovery
    /// statements (hoists the shared `⌈j/P⌉` terms — the paper's
    /// strength-reduction remark; only pays off for nests ≥ 3 deep).
    pub strength_reduce: bool,
}

impl Default for CoalesceOptions {
    fn default() -> Self {
        CoalesceOptions {
            scheme: RecoveryScheme::Ceiling,
            check_legality: true,
            levels: None,
            coalesced_var: None,
            auto_normalize: true,
            strength_reduce: false,
        }
    }
}

impl CoalesceOptions {
    /// Start building options from the defaults.
    pub fn builder() -> CoalesceOptionsBuilder {
        CoalesceOptionsBuilder {
            opts: CoalesceOptions::default(),
        }
    }

    /// Fit the requested band to a nest of `depth` levels: if the band
    /// is empty or reaches past the nest, fall back to coalescing the
    /// whole nest (`levels = None`) rather than erroring.
    ///
    /// This is the per-nest clamping the source pipeline applies when one
    /// option set drives programs whose nests have differing depths.
    pub fn clamped_to_depth(mut self, depth: usize) -> Self {
        if let Some((start, end)) = self.levels {
            if end > depth || start >= end {
                self.levels = None;
            }
        }
        self
    }
}

/// Builder for [`CoalesceOptions`]; see [`CoalesceOptions::builder`].
#[derive(Debug, Clone)]
pub struct CoalesceOptionsBuilder {
    opts: CoalesceOptions,
}

impl CoalesceOptionsBuilder {
    /// Index-recovery code to emit.
    pub fn scheme(mut self, scheme: RecoveryScheme) -> Self {
        self.opts.scheme = scheme;
        self
    }

    /// Verify DOALL legality with the dependence tester.
    pub fn check_legality(mut self, check: bool) -> Self {
        self.opts.check_legality = check;
        self
    }

    /// Coalesce only the contiguous band of 0-based levels
    /// `[start, end)`.
    pub fn levels(mut self, start: usize, end: usize) -> Self {
        self.opts.levels = Some((start, end));
        self
    }

    /// Coalesce the whole nest (the default; undoes [`Self::levels`]).
    pub fn all_levels(mut self) -> Self {
        self.opts.levels = None;
        self
    }

    /// Set the band from an `Option`: `Some((start, end))` behaves like
    /// [`Self::levels`], `None` like [`Self::all_levels`]. Handy when the
    /// band is itself data (e.g. a kernel's recommended collapse band).
    pub fn levels_opt(mut self, band: Option<(usize, usize)>) -> Self {
        self.opts.levels = band;
        self
    }

    /// Requested name for the coalesced index variable.
    pub fn coalesced_var(mut self, var: impl Into<Symbol>) -> Self {
        self.opts.coalesced_var = Some(var.into());
        self
    }

    /// Automatically normalize non-unit-step / offset loops first.
    pub fn auto_normalize(mut self, auto: bool) -> Self {
        self.opts.auto_normalize = auto;
        self
    }

    /// Run common-subexpression extraction over the emitted recovery
    /// statements.
    pub fn strength_reduce(mut self, reduce: bool) -> Self {
        self.opts.strength_reduce = reduce;
        self
    }

    /// Finish, yielding the options.
    pub fn build(self) -> CoalesceOptions {
        self.opts
    }
}

/// Metadata describing what a coalescing did (consumed by the scheduling
/// and benchmark layers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoalesceInfo {
    /// Trip count of each coalesced level, outermost first.
    pub dims: Vec<u64>,
    /// `Π dims` — the coalesced loop's trip count.
    pub total_iterations: u64,
    /// Recovery scheme emitted.
    pub scheme: RecoveryScheme,
    /// Abstract per-iteration cost of the emitted recovery statements.
    pub recovery_cost_per_iteration: u64,
    /// The band `[start, end)` of original levels that were coalesced.
    pub levels: (usize, usize),
    /// Depth of the original nest.
    pub original_depth: usize,
    /// The coalesced loop's index variable.
    pub coalesced_var: Symbol,
}

/// A coalescing outcome: the rewritten loop plus its metadata.
#[derive(Debug, Clone)]
pub struct CoalesceResult {
    /// The transformed outermost loop (outer uncoalesced levels intact).
    pub transformed: Loop,
    /// What happened.
    pub info: CoalesceInfo,
}

/// Coalesce (a band of levels of) the perfect nest rooted at `l`.
///
/// Convenience wrapper over [`coalesce_nest`]: extracts and (by default)
/// normalizes the nest, then runs every analysis from scratch. Callers
/// that already hold the normalized nest and its dependence analysis —
/// e.g. `lc-driver`'s cached pipeline — should call [`coalesce_nest`]
/// directly so nothing is recomputed.
pub fn coalesce_loop(l: &Loop, opts: &CoalesceOptions) -> Result<CoalesceResult> {
    let mut nest = extract_nest(l);
    if opts.auto_normalize {
        nest = normalize_nest(&nest)?;
    } else {
        crate::normalize::require_normalized(&nest.loops)?;
    }
    coalesce_nest(&nest, None, opts)
}

/// Coalesce an already-extracted, already-normalized nest.
///
/// `deps` optionally injects a precomputed dependence analysis of exactly
/// this nest; when `None` (and `opts.check_legality` is set) the tester
/// runs internally. Injecting lets a driver share one analysis between
/// the legality check, the collapse-band advisor, and the coalescer.
pub fn coalesce_nest(
    nest: &Nest,
    deps: Option<&NestDeps>,
    opts: &CoalesceOptions,
) -> Result<CoalesceResult> {
    crate::normalize::require_normalized(&nest.loops)?;
    let depth = nest.depth();
    let (start, end) = opts.levels.unwrap_or((0, depth));
    if start >= end || end > depth {
        return Err(Error::Unsupported(SkipReason::BandOutOfRange {
            start,
            end,
            depth,
        }));
    }

    check_band_legality(nest, deps, start, end, opts)?;

    let dims: Vec<u64> = nest.loops[start..end]
        .iter()
        .map(|h| h.const_trip_count().expect("normalized"))
        .collect();
    let total = total_iterations(&dims)?;

    let jvar = fresh_var(opts.coalesced_var.clone(), nest);
    let level_vars: Vec<Symbol> = nest.loops[start..end]
        .iter()
        .map(|h| h.var.clone())
        .collect();

    // Innermost body: the uncoalesced inner levels wrapped around the nest
    // body, unchanged.
    let mut inner_body = nest.body.clone();
    for h in nest.loops[end..].iter().rev() {
        inner_body = vec![Stmt::Loop(Loop {
            var: h.var.clone(),
            lower: h.lower.clone(),
            upper: h.upper.clone(),
            step: h.step.clone(),
            kind: h.kind,
            body: inner_body,
        })];
    }

    let mut recovery = recovery_stmts(opts.scheme, &jvar, &level_vars, &dims);
    let mut recovery_cost = per_iteration_cost(opts.scheme, &dims);
    if opts.strength_reduce {
        // Temp names are `{prefix}{n}` for arbitrary n: pick a prefix no
        // existing symbol starts with, so no temp can collide.
        let used = used_symbols(nest);
        let prefix = (0u32..)
            .map(|i| {
                if i == 0 {
                    "rc_".to_string()
                } else {
                    format!("rc{i}_")
                }
            })
            .find(|p| !used.iter().any(|u| u.starts_with(p.as_str())))
            .expect("some prefix is always free");
        let (optimized, report) = crate::strength::cse_recovery(&recovery, &prefix);
        recovery = optimized;
        recovery_cost = report.cost_after;
    }
    let mut body = recovery;
    body.extend(inner_body);

    let mut result = Loop {
        var: jvar.clone(),
        lower: Expr::lit(1),
        upper: Expr::lit(total as i64),
        step: Expr::lit(1),
        kind: LoopKind::Doall,
        body,
    };

    // Outer uncoalesced levels wrap the coalesced loop, unchanged.
    for h in nest.loops[..start].iter().rev() {
        result = Loop {
            var: h.var.clone(),
            lower: h.lower.clone(),
            upper: h.upper.clone(),
            step: h.step.clone(),
            kind: h.kind,
            body: vec![Stmt::Loop(result)],
        };
    }

    let info = CoalesceInfo {
        recovery_cost_per_iteration: recovery_cost,
        dims,
        total_iterations: total,
        scheme: opts.scheme,
        levels: (start, end),
        original_depth: depth,
        coalesced_var: jvar,
    };
    Ok(CoalesceResult {
        transformed: result,
        info,
    })
}

fn check_band_legality(
    nest: &Nest,
    deps: Option<&NestDeps>,
    start: usize,
    end: usize,
    opts: &CoalesceOptions,
) -> Result<()> {
    let marked_doall = nest.loops[start..end].iter().all(|h| h.kind.is_doall());
    if !marked_doall && !opts.check_legality {
        let bad = nest.loops[start..end]
            .iter()
            .find(|h| !h.kind.is_doall())
            .expect("some level is not doall");
        return Err(Error::Unsupported(SkipReason::NotDoall {
            var: bad.var.clone(),
        }));
    }
    if opts.check_legality {
        let owned;
        let deps = match deps {
            Some(d) => d,
            None => {
                owned = analyze_nest(nest)?;
                &owned
            }
        };
        for level in start..end {
            if deps.carried_at(level) {
                return Err(Error::Unsupported(SkipReason::CarriedDependence {
                    level,
                    var: nest.loops[level].var.clone(),
                }));
            }
        }
        scalar_privatization_ok(nest, start, end)?;
    }
    Ok(())
}

/// Pick a name that collides with nothing in the nest.
fn fresh_var(requested: Option<Symbol>, nest: &Nest) -> Symbol {
    let used = used_symbols(nest);
    let base = requested
        .map(|s| s.as_str().to_string())
        .unwrap_or_else(|| "jc".to_string());
    if !used.contains(base.as_str()) {
        return Symbol::new(&base);
    }
    let mut n = 0usize;
    loop {
        let cand = format!("{base}_{n}");
        if !used.contains(cand.as_str()) {
            return Symbol::new(cand);
        }
        n += 1;
    }
}

fn used_symbols(nest: &Nest) -> HashSet<String> {
    let mut syms: Vec<Symbol> = Vec::new();
    for h in &nest.loops {
        syms.push(h.var.clone());
        h.lower.variables(&mut syms);
        h.upper.variables(&mut syms);
        h.step.variables(&mut syms);
    }
    collect_stmt_symbols(&nest.body, &mut syms);
    syms.into_iter().map(|s| s.as_str().to_string()).collect()
}

fn collect_stmt_symbols(stmts: &[Stmt], out: &mut Vec<Symbol>) {
    for s in stmts {
        match s {
            Stmt::AssignScalar { var, value } => {
                out.push(var.clone());
                value.variables(out);
            }
            Stmt::AssignArray { target, value } => {
                out.push(target.array.clone());
                for ix in &target.indices {
                    ix.variables(out);
                }
                value.variables(out);
            }
            Stmt::Loop(l) => {
                out.push(l.var.clone());
                l.lower.variables(out);
                l.upper.variables(out);
                l.step.variables(out);
                collect_stmt_symbols(&l.body, out);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                cond.variables(out);
                collect_stmt_symbols(then_body, out);
                collect_stmt_symbols(else_body, out);
            }
        }
    }
}

/// Verify that every scalar assigned anywhere in the (sub)nest body is
/// written before it is read on every path — i.e. it can be privatized per
/// iteration, so iterations do not communicate through it.
pub(crate) fn scalar_privatization_ok(nest: &Nest, _start: usize, end: usize) -> Result<()> {
    // The statements executed per coalesced iteration: the inner levels
    // below `end` plus the innermost body. Loop variables of those inner
    // levels are defined by their loops; variables of coalesced and outer
    // levels are defined by recovery/outer loops.
    let mut body = nest.body.clone();
    for h in nest.loops[end..].iter().rev() {
        body = vec![Stmt::Loop(Loop {
            var: h.var.clone(),
            lower: h.lower.clone(),
            upper: h.upper.clone(),
            step: h.step.clone(),
            kind: h.kind,
            body,
        })];
    }

    let mut assigned = HashSet::new();
    collect_assigned_scalars(&body, &mut assigned);

    // Variables defined on entry to each iteration: every nest level var.
    let mut defined: HashSet<Symbol> = nest.loops.iter().map(|h| h.var.clone()).collect();
    walk_check(&body, &assigned, &mut defined)
}

fn collect_assigned_scalars(stmts: &[Stmt], out: &mut HashSet<Symbol>) {
    for s in stmts {
        match s {
            Stmt::AssignScalar { var, .. } => {
                out.insert(var.clone());
            }
            Stmt::AssignArray { .. } => {}
            Stmt::Loop(l) => collect_assigned_scalars(&l.body, out),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_assigned_scalars(then_body, out);
                collect_assigned_scalars(else_body, out);
            }
        }
    }
}

fn check_reads_expr(e: &Expr, assigned: &HashSet<Symbol>, defined: &HashSet<Symbol>) -> Result<()> {
    let mut vars = Vec::new();
    e.variables(&mut vars);
    for v in vars {
        if assigned.contains(&v) && !defined.contains(&v) {
            return Err(Error::Unsupported(SkipReason::ScalarReduction { var: v }));
        }
    }
    Ok(())
}

fn check_reads_cond(c: &Cond, assigned: &HashSet<Symbol>, defined: &HashSet<Symbol>) -> Result<()> {
    match c {
        Cond::Cmp(_, a, b) => {
            check_reads_expr(a, assigned, defined)?;
            check_reads_expr(b, assigned, defined)
        }
        Cond::Not(x) => check_reads_cond(x, assigned, defined),
        Cond::And(a, b) | Cond::Or(a, b) => {
            check_reads_cond(a, assigned, defined)?;
            check_reads_cond(b, assigned, defined)
        }
    }
}

fn walk_check(
    stmts: &[Stmt],
    assigned: &HashSet<Symbol>,
    defined: &mut HashSet<Symbol>,
) -> Result<()> {
    for s in stmts {
        match s {
            Stmt::AssignScalar { var, value } => {
                check_reads_expr(value, assigned, defined)?;
                defined.insert(var.clone());
            }
            Stmt::AssignArray { target, value } => {
                for ix in &target.indices {
                    check_reads_expr(ix, assigned, defined)?;
                }
                check_reads_expr(value, assigned, defined)?;
            }
            Stmt::Loop(l) => {
                check_reads_expr(&l.lower, assigned, defined)?;
                check_reads_expr(&l.upper, assigned, defined)?;
                check_reads_expr(&l.step, assigned, defined)?;
                let mut inner = defined.clone();
                inner.insert(l.var.clone());
                walk_check(&l.body, assigned, &mut inner)?;
                // The loop may run zero times: definitions inside it are
                // not guaranteed afterwards, so `defined` is unchanged.
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                check_reads_cond(cond, assigned, defined)?;
                let mut d_then = defined.clone();
                walk_check(then_body, assigned, &mut d_then)?;
                let mut d_else = defined.clone();
                walk_check(else_body, assigned, &mut d_else)?;
                // Defined afterwards = defined on both paths.
                for v in d_then.intersection(&d_else) {
                    defined.insert(v.clone());
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_ir::interp::{DoallOrder, Interp};
    use lc_ir::parser::parse_program;
    use lc_ir::program::Program;

    fn loop_of(p: &Program) -> (usize, Loop) {
        p.body
            .iter()
            .enumerate()
            .find_map(|(i, s)| match s {
                Stmt::Loop(l) => Some((i, l.clone())),
                _ => None,
            })
            .unwrap()
    }

    /// Coalesce the (first) loop of a program and check the transformed
    /// program produces an identical store under several doall orders.
    fn check_coalesce(src: &str, opts: &CoalesceOptions) -> CoalesceInfo {
        let p = parse_program(src).unwrap();
        let (idx, l) = loop_of(&p);
        let out = coalesce_loop(&l, opts).unwrap();
        let mut p2 = p.clone();
        p2.body[idx] = Stmt::Loop(out.transformed.clone());
        p2.check().expect("transformed program must be well-formed");

        let reference = Interp::new().run(&p).unwrap();
        for order in [
            DoallOrder::Forward,
            DoallOrder::Reverse,
            DoallOrder::Shuffled(7),
            DoallOrder::Shuffled(991),
        ] {
            let got = Interp::new().with_order(order).run(&p2).unwrap();
            assert_eq!(
                reference, got,
                "coalesced program diverged under {order:?} for:\n{src}"
            );
        }
        out.info
    }

    #[test]
    fn coalesce_2d_fill_both_schemes() {
        let src = "
            array A[6][4];
            doall i = 1..6 {
                doall j = 1..4 {
                    A[i][j] = 10 * i + j;
                }
            }
            ";
        for scheme in [RecoveryScheme::Ceiling, RecoveryScheme::DivMod] {
            let info = check_coalesce(
                src,
                &CoalesceOptions {
                    scheme,
                    ..Default::default()
                },
            );
            assert_eq!(info.dims, vec![6, 4]);
            assert_eq!(info.total_iterations, 24);
        }
    }

    #[test]
    fn coalesce_3d_fill() {
        let info = check_coalesce(
            "
            array A[3][4][5];
            doall i = 1..3 {
                doall j = 1..4 {
                    doall k = 1..5 {
                        A[i][j][k] = 100 * i + 10 * j + k;
                    }
                }
            }
            ",
            &CoalesceOptions::default(),
        );
        assert_eq!(info.total_iterations, 60);
        assert!(info.recovery_cost_per_iteration > 0);
    }

    #[test]
    fn coalesce_partial_band_inner_two_of_three() {
        let info = check_coalesce(
            "
            array A[3][4][5];
            doall i = 1..3 {
                doall j = 1..4 {
                    doall k = 1..5 {
                        A[i][j][k] = i + j * k;
                    }
                }
            }
            ",
            &CoalesceOptions {
                levels: Some((1, 3)),
                ..Default::default()
            },
        );
        assert_eq!(info.dims, vec![4, 5]);
        assert_eq!(info.levels, (1, 3));
    }

    #[test]
    fn coalesce_partial_band_outer_two_of_three() {
        // Inner level stays serial inside the coalesced loop.
        let info = check_coalesce(
            "
            array A[3][4][5];
            doall i = 1..3 {
                doall j = 1..4 {
                    for k = 1..5 {
                        A[i][j][k] = i * j + k;
                    }
                }
            }
            ",
            &CoalesceOptions {
                levels: Some((0, 2)),
                ..Default::default()
            },
        );
        assert_eq!(info.dims, vec![3, 4]);
    }

    #[test]
    fn coalesce_normalizes_offsets_and_strides() {
        check_coalesce(
            "
            array A[20][30];
            doall i = 3..17 {
                doall j = 2..30 step 3 {
                    A[i][j] = i * j;
                }
            }
            ",
            &CoalesceOptions::default(),
        );
    }

    #[test]
    fn coalesce_with_inner_serial_loop_below_band() {
        // Matmul-shaped: coalesce (i, j); the k loop is a reduction over a
        // privatizable scalar `acc`.
        check_coalesce(
            "
            array A[4][3];
            array B[3][5];
            array C[4][5];
            doall i = 1..4 {
                doall j = 1..5 {
                    acc = 0;
                    for k = 1..3 {
                        acc = acc + A[i][k] * B[k][j];
                    }
                    C[i][j] = acc;
                }
            }
            ",
            &CoalesceOptions {
                levels: Some((0, 2)),
                ..Default::default()
            },
        );
    }

    #[test]
    fn coalesce_with_branches() {
        check_coalesce(
            "
            array A[5][5];
            doall i = 1..5 {
                doall j = 1..5 {
                    if i == j {
                        A[i][j] = 1;
                    } else {
                        A[i][j] = i - j;
                    }
                }
            }
            ",
            &CoalesceOptions::default(),
        );
    }

    #[test]
    fn serial_loops_proven_parallel_are_coalesced() {
        // Not marked doall, but independent — the legality checker proves it.
        check_coalesce(
            "
            array A[4][4];
            for i = 1..4 {
                for j = 1..4 {
                    A[i][j] = A[i][j] + 1;
                }
            }
            ",
            &CoalesceOptions::default(),
        );
    }

    #[test]
    fn serial_loops_rejected_without_checking() {
        let p = parse_program(
            "
            array A[4][4];
            for i = 1..4 {
                for j = 1..4 {
                    A[i][j] = 1;
                }
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        let err = coalesce_loop(
            &l,
            &CoalesceOptions {
                check_legality: false,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)));
    }

    #[test]
    fn carried_dependence_is_rejected() {
        let p = parse_program(
            "
            array A[8][8];
            for i = 2..8 {
                for j = 1..8 {
                    A[i][j] = A[i - 1][j] + 1;
                }
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        let err = coalesce_loop(&l, &CoalesceOptions::default()).unwrap_err();
        match err {
            Error::Unsupported(m) => {
                assert!(matches!(m, SkipReason::CarriedDependence { .. }), "{m}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn inner_carried_dependence_allows_outer_band() {
        // Dependence carried at level 1 (j): coalescing band (0, 1) — just
        // the i loop alone — is legal; band (0, 2) is not.
        let src = "
            array A[8][8];
            for i = 1..8 {
                for j = 2..8 {
                    A[i][j] = A[i][j - 1] + 1;
                }
            }
            ";
        let p = parse_program(src).unwrap();
        let (_, l) = loop_of(&p);
        assert!(coalesce_loop(
            &l,
            &CoalesceOptions {
                levels: Some((0, 2)),
                ..Default::default()
            }
        )
        .is_err());
        check_coalesce(
            src,
            &CoalesceOptions {
                levels: Some((0, 1)),
                ..Default::default()
            },
        );
    }

    #[test]
    fn scalar_reduction_is_rejected() {
        let p = parse_program(
            "
            array A[8];
            s = 0;
            doall i = 1..8 {
                s = s + A[i];
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        let err = coalesce_loop(&l, &CoalesceOptions::default()).unwrap_err();
        match err {
            Error::Unsupported(m) => {
                assert!(matches!(m, SkipReason::ScalarReduction { .. }), "{m}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn privatizable_temp_is_accepted() {
        check_coalesce(
            "
            array A[6][6];
            doall i = 1..6 {
                doall j = 1..6 {
                    t = i * j;
                    A[i][j] = t + t;
                }
            }
            ",
            &CoalesceOptions::default(),
        );
    }

    #[test]
    fn temp_defined_in_one_branch_only_is_rejected() {
        // `t` is only written when i == j, then read unconditionally.
        let p = parse_program(
            "
            array A[4][4];
            doall i = 1..4 {
                doall j = 1..4 {
                    if i == j {
                        t = 1;
                    }
                    A[i][j] = t;
                }
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        assert!(coalesce_loop(&l, &CoalesceOptions::default()).is_err());
    }

    #[test]
    fn temp_defined_in_both_branches_is_accepted() {
        check_coalesce(
            "
            array A[4][4];
            doall i = 1..4 {
                doall j = 1..4 {
                    if i == j {
                        t = 1;
                    } else {
                        t = 0;
                    }
                    A[i][j] = t;
                }
            }
            ",
            &CoalesceOptions::default(),
        );
    }

    #[test]
    fn fresh_variable_avoids_collision() {
        let p = parse_program(
            "
            array A[3][3];
            doall i = 1..3 {
                doall j = 1..3 {
                    jc = i + j;
                    A[i][j] = jc;
                }
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        let out = coalesce_loop(&l, &CoalesceOptions::default()).unwrap();
        assert_ne!(out.info.coalesced_var.as_str(), "jc");
        // And the transformed program still computes the same thing.
        check_coalesce(
            "
            array A[3][3];
            doall i = 1..3 {
                doall j = 1..3 {
                    jc = i + j;
                    A[i][j] = jc;
                }
            }
            ",
            &CoalesceOptions::default(),
        );
    }

    #[test]
    fn single_level_coalesce_is_allowed() {
        let info = check_coalesce(
            "
            array A[7];
            doall i = 1..7 {
                A[i] = i * i;
            }
            ",
            &CoalesceOptions::default(),
        );
        assert_eq!(info.total_iterations, 7);
    }

    #[test]
    fn invalid_band_is_rejected() {
        let p = parse_program(
            "
            array A[4][4];
            doall i = 1..4 {
                doall j = 1..4 {
                    A[i][j] = 1;
                }
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        for band in [(0usize, 0usize), (1, 1), (0, 3), (2, 1)] {
            let err = coalesce_loop(
                &l,
                &CoalesceOptions {
                    levels: Some(band),
                    ..Default::default()
                },
            )
            .unwrap_err();
            assert!(matches!(err, Error::Unsupported(_)), "band {band:?}");
        }
    }

    #[test]
    fn strength_reduced_coalescing_is_equivalent_and_cheaper() {
        let src = "
            array V[3][4][5][2];
            doall a = 1..3 {
                doall b = 1..4 {
                    doall c = 1..5 {
                        doall d = 1..2 {
                            V[a][b][c][d] = a * 1000 + b * 100 + c * 10 + d;
                        }
                    }
                }
            }
            ";
        let plain = check_coalesce(src, &CoalesceOptions::default());
        let reduced = check_coalesce(
            src,
            &CoalesceOptions {
                strength_reduce: true,
                ..Default::default()
            },
        );
        assert!(
            reduced.recovery_cost_per_iteration < plain.recovery_cost_per_iteration,
            "CSE did not reduce cost: {} vs {}",
            reduced.recovery_cost_per_iteration,
            plain.recovery_cost_per_iteration
        );
    }

    #[test]
    fn strength_reduction_temps_avoid_collisions() {
        // The body *reads* `rc_0` as a free outer variable — a temp named
        // rc_0 would clobber it. The prefix chooser must step aside.
        let src = "
            array V[4][5][6];
            rc_0 = 7;
            doall a = 1..4 {
                doall b = 1..5 {
                    doall c = 1..6 {
                        V[a][b][c] = rc_0 * c + a + b;
                    }
                }
            }
            ";
        check_coalesce(
            src,
            &CoalesceOptions {
                strength_reduce: true,
                ..Default::default()
            },
        );
    }

    #[test]
    fn info_reports_paper_cost_shape() {
        // Deeper nests emit costlier recovery code.
        let mk = |depth: usize| {
            let dims_src = (0..depth)
                .map(|k| format!("[{}]", k + 2))
                .collect::<String>();
            let mut src = format!("array A{dims_src};\n");
            for k in 0..depth {
                src.push_str(&format!("doall i{k} = 1..{} {{\n", k + 2));
            }
            let subs = (0..depth).map(|k| format!("[i{k}]")).collect::<String>();
            src.push_str(&format!("A{subs} = 1;\n"));
            for _ in 0..depth {
                src.push('}');
            }
            src
        };
        let cost = |depth: usize| {
            let p = parse_program(&mk(depth)).unwrap();
            let (_, l) = loop_of(&p);
            coalesce_loop(&l, &CoalesceOptions::default())
                .unwrap()
                .info
                .recovery_cost_per_iteration
        };
        assert!(cost(2) < cost(3));
        assert!(cost(3) < cost(4));
    }
}
