//! Loop fusion: merging two adjacent conformable loops into one.
//!
//! Fusion is distribution's inverse. After coalescing, fusing adjacent
//! coalesced loops of equal length turns two fork-joins into one — the
//! same overhead argument at the statement-list level. Fusing `L1; L2`
//! (same normalized bounds, loop variables unified) is legal unless it
//! creates a *fusion-preventing* dependence: some iteration `i` of L2
//! would read/write data that iteration `i' > i` of L1 produces — i.e. a
//! dependence from L2's part to L1's part carried backwards in the fused
//! loop. In direction-vector terms: after fusing, any dependence whose
//! source statement came from L2 and sink from L1 is illegal unless
//! loop-independent with textual order preserved (impossible — L1's body
//! precedes L2's in the fused loop), so we reject exactly the flipped
//! carried dependences.

use lc_ir::analysis::depend::{analyze_nest, Dir};
use lc_ir::analysis::nest::{LoopHeader, Nest};
use lc_ir::stmt::{Loop, Stmt};
use lc_ir::{Error, Expr, Result};

use crate::normalize::normalize_loop;

/// Fuse two adjacent loops. Both are normalized first; their trip counts
/// must match. The fused loop uses `a`'s variable and kind (the result is
/// `doall` only if both inputs were).
pub fn fuse(a: &Loop, b: &Loop) -> Result<Loop> {
    let a = normalize_loop(a)?;
    let b = normalize_loop(b)?;
    let ta = a.const_trip_count().expect("normalized");
    let tb = b.const_trip_count().expect("normalized");
    if ta != tb {
        return Err(Error::unsupported(format!(
            "cannot fuse loops with different trip counts ({ta} vs {tb})"
        )));
    }

    // Rename b's loop variable to a's.
    let b_body: Vec<Stmt> = b
        .body
        .iter()
        .map(|s| s.substitute(&b.var, &Expr::Var(a.var.clone())))
        .collect();

    let mut fused_body = a.body.clone();
    let a_len = fused_body.len();
    fused_body.extend(b_body);

    let kind = if a.kind.is_doall() && b.kind.is_doall() {
        lc_ir::stmt::LoopKind::Doall
    } else {
        lc_ir::stmt::LoopKind::Serial
    };
    let fused = Loop {
        var: a.var.clone(),
        lower: Expr::lit(1),
        upper: Expr::lit(ta as i64),
        step: Expr::lit(1),
        kind,
        body: fused_body,
    };

    // Legality: no carried dependence whose source is a b-part statement
    // and sink an a-part statement. (Loop-independent deps in that
    // direction cannot exist; carried ones mean iteration i of the fused
    // loop would consume what iteration i+d was supposed to produce
    // first.)
    let nest = Nest {
        loops: vec![LoopHeader {
            var: fused.var.clone(),
            lower: fused.lower.clone(),
            upper: fused.upper.clone(),
            step: fused.step.clone(),
            kind: fused.kind,
        }],
        body: fused.body.clone(),
    };
    let deps = analyze_nest(&nest)?;
    for d in &deps.deps {
        let carried = d.directions.iter().any(|v| v.contains(&Dir::Lt));
        if carried && d.src_stmt >= a_len && d.dst_stmt < a_len {
            return Err(Error::unsupported(format!(
                "fusion-preventing dependence on `{}`: the second loop \
                 feeds an earlier iteration of the first",
                d.array
            )));
        }
    }

    // The fused doall must still be a doall: if fusion created any
    // carried dependence at all, demote to serial only if both inputs
    // were serial-safe; otherwise reject to avoid silently changing
    // parallel semantics.
    if kind.is_doall() && (0..1).any(|lvl| deps.carried_at(lvl)) {
        return Err(Error::unsupported(
            "fusing these doall loops would create a carried dependence; \
             the result could no longer run in parallel",
        ));
    }

    Ok(fused)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_ir::interp::Interp;
    use lc_ir::parser::parse_program;
    use lc_ir::program::Program;

    fn loops_of(p: &Program) -> Vec<(usize, Loop)> {
        p.body
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Stmt::Loop(l) => Some((i, l.clone())),
                _ => None,
            })
            .collect()
    }

    fn check_fuse(src: &str) -> Loop {
        let p = parse_program(src).unwrap();
        let ls = loops_of(&p);
        assert_eq!(ls.len(), 2, "test program must have two loops");
        let fused = fuse(&ls[0].1, &ls[1].1).unwrap();

        let mut p2 = p.clone();
        p2.body = p
            .body
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != ls[1].0)
            .map(|(i, s)| {
                if i == ls[0].0 {
                    Stmt::Loop(fused.clone())
                } else {
                    s.clone()
                }
            })
            .collect();
        let a = Interp::new().run(&p).unwrap();
        let b = Interp::new().run(&p2).unwrap();
        assert_eq!(a, b, "fusion changed semantics:\n{src}");
        fused
    }

    #[test]
    fn fuse_independent_loops() {
        let fused = check_fuse(
            "
            array A[8];
            array B[8];
            doall i = 1..8 {
                A[i] = i;
            }
            doall j = 1..8 {
                B[j] = j * 2;
            }
            ",
        );
        assert!(fused.kind.is_doall());
        assert_eq!(fused.body.len(), 2);
        assert_eq!(fused.var.as_str(), "i");
    }

    #[test]
    fn fuse_producer_consumer_same_iteration() {
        // B[i] reads A[i]: loop-independent after fusion — legal, but the
        // fused doall... A[i] write and read same iteration is fine.
        let fused = check_fuse(
            "
            array A[8];
            array B[8];
            doall i = 1..8 {
                A[i] = i * 3;
            }
            doall k = 1..8 {
                B[k] = A[k] + 1;
            }
            ",
        );
        assert!(fused.kind.is_doall());
    }

    #[test]
    fn fusion_preventing_dependence_rejected() {
        // Second loop reads A[i+1]: after fusion, iteration i would read
        // a value that iteration i+1 overwrites — before fusion it read
        // the *new* value (first loop fully done). Must reject.
        let p = parse_program(
            "
            array A[9];
            array B[9];
            for i = 1..8 {
                A[i] = i * 3;
            }
            for k = 1..8 {
                B[k] = A[k + 1];
            }
            ",
        )
        .unwrap();
        let ls = loops_of(&p);
        let err = fuse(&ls[0].1, &ls[1].1).unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)), "{err}");
    }

    #[test]
    fn backward_read_is_legal_for_serial_fusion() {
        // Second loop reads A[k-1]: after fusion iteration t reads what
        // iteration t-1 wrote — already written (serial order). Legal for
        // serial loops. (Both loops span 2..9 so trip counts match.)
        check_fuse(
            "
            array A[9];
            array B[9];
            for i = 2..9 {
                A[i] = i * 3;
            }
            for k = 2..9 {
                B[k] = A[k - 1];
            }
            ",
        );
    }

    #[test]
    fn doall_fusion_creating_carried_dep_rejected() {
        // Same as above but doall: the fused loop would carry a flow
        // dependence and stop being parallel — reject rather than demote.
        let p = parse_program(
            "
            array A[8];
            array B[8];
            doall i = 1..8 {
                A[i] = i * 3;
            }
            doall k = 2..8 {
                B[k] = A[k - 1];
            }
            ",
        )
        .unwrap();
        let ls = loops_of(&p);
        // Trip counts differ (8 vs 7) — use matching bounds.
        let p = parse_program(
            "
            array A[9];
            array B[9];
            doall i = 2..9 {
                A[i] = i * 3;
            }
            doall k = 2..9 {
                B[k] = A[k - 1];
            }
            ",
        )
        .unwrap();
        let _ = ls;
        let ls = loops_of(&p);
        let err = fuse(&ls[0].1, &ls[1].1).unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)));
    }

    #[test]
    fn mismatched_trip_counts_rejected() {
        let p = parse_program(
            "
            array A[8];
            array B[9];
            for i = 1..8 {
                A[i] = i;
            }
            for k = 1..9 {
                B[k] = k;
            }
            ",
        )
        .unwrap();
        let ls = loops_of(&p);
        assert!(fuse(&ls[0].1, &ls[1].1).is_err());
    }

    #[test]
    fn fusion_normalizes_offset_bounds() {
        // 3..10 and 11..18 both have 8 iterations; fusion aligns them to
        // 1..8 and rewrites both bodies.
        check_fuse(
            "
            array A[10];
            array B[20];
            for i = 3..10 {
                A[i] = i;
            }
            for k = 11..18 {
                B[k] = k;
            }
            ",
        );
    }

    #[test]
    fn fused_and_coalesced_composes() {
        use crate::coalesce::{coalesce_loop, CoalesceOptions};
        // Fuse two 2-deep doall nests then coalesce the result... fusion
        // at the outer level keeps two inner loops in the body, which is
        // an imperfect nest — coalesce only the outer level.
        let p = parse_program(
            "
            array A[4][5];
            array B[4][6];
            doall i = 1..4 {
                doall j = 1..5 {
                    A[i][j] = i + j;
                }
            }
            doall k = 1..4 {
                doall j = 1..6 {
                    B[k][j] = k * j;
                }
            }
            ",
        )
        .unwrap();
        let ls = loops_of(&p);
        let fused = fuse(&ls[0].1, &ls[1].1).unwrap();
        assert!(fused.kind.is_doall());
        let out = coalesce_loop(&fused, &CoalesceOptions::default()).unwrap();
        // Only the (shared) outer level is coalescible: total = 4.
        assert_eq!(out.info.total_iterations, 4);
    }
}
