//! Loop distribution (fission): splitting one loop into several.
//!
//! Distribution is the classic *enabler* for coalescing: an imperfect
//! nest like
//!
//! ```text
//! doall i { A[i] = …;  doall j { B[i][j] = … } }
//! ```
//!
//! distributes into a 1-deep loop over `A` and a *perfect* 2-deep nest
//! over `B`, which can then be coalesced. Legality follows Kennedy's
//! algorithm: build the statement-level dependence graph (edges run from
//! dependence source to sink), collapse strongly connected components —
//! statements on a dependence cycle must stay in one loop — and emit one
//! loop per component in topological order, preserving the original
//! statement order inside each component.

use lc_ir::analysis::depend::analyze_nest;
use lc_ir::analysis::nest::{LoopHeader, Nest};
use lc_ir::stmt::{Loop, Stmt};
use lc_ir::{Error, Result};

/// Distribute the (outermost level of the) given loop into as many loops
/// as dependences allow, in execution order. Returns the resulting loop
/// list (length 1 means distribution found nothing to split).
pub fn distribute(l: &Loop) -> Result<Vec<Loop>> {
    let k = l.body.len();
    if k <= 1 {
        return Ok(vec![l.clone()]);
    }

    // Statement-level dependence graph at this loop level only.
    let nest = Nest {
        loops: vec![LoopHeader {
            var: l.var.clone(),
            lower: l.lower.clone(),
            upper: l.upper.clone(),
            step: l.step.clone(),
            kind: l.kind,
        }],
        body: l.body.clone(),
    };
    let deps = analyze_nest(&nest)?;

    let mut adj = vec![Vec::new(); k];
    for d in &deps.deps {
        if d.src_stmt != d.dst_stmt {
            adj[d.src_stmt].push(d.dst_stmt);
        }
    }
    // Scalar def-use chains also glue statements together: a statement
    // reading a scalar assigned by an earlier statement must stay after
    // it. Add textual edges for those.
    add_scalar_edges(&l.body, &mut adj);

    let mut components = tarjan_scc(&adj);
    for comp in &mut components {
        comp.sort_unstable();
    }
    // Order components topologically, breaking ties by textual position
    // (smallest statement index first) so unconstrained statements keep
    // their original order.
    let ordered = topo_order_textual(components, &adj);
    debug_assert!(topo_ok(&ordered, &adj));

    let loops: Vec<Loop> = ordered
        .into_iter()
        .map(|comp| Loop {
            var: l.var.clone(),
            lower: l.lower.clone(),
            upper: l.upper.clone(),
            step: l.step.clone(),
            kind: l.kind,
            body: comp.iter().map(|&i| l.body[i].clone()).collect(),
        })
        .collect();
    Ok(loops)
}

/// Distribute and replace: returns the statements that substitute the
/// original loop statement.
pub fn distribute_stmt(s: &Stmt) -> Result<Vec<Stmt>> {
    match s {
        Stmt::Loop(l) => Ok(distribute(l)?.into_iter().map(Stmt::Loop).collect()),
        other => Err(Error::unsupported(format!(
            "can only distribute a loop statement, got {other:?}"
        ))),
    }
}

/// Kahn's algorithm over the SCC condensation with a textual-order
/// priority: among ready components, emit the one containing the smallest
/// statement index.
fn topo_order_textual(components: Vec<Vec<usize>>, adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n_stmts = adj.len();
    let mut comp_of = vec![0usize; n_stmts];
    for (c, comp) in components.iter().enumerate() {
        for &s in comp {
            comp_of[s] = c;
        }
    }
    let nc = components.len();
    let mut indegree = vec![0usize; nc];
    let mut edges: Vec<std::collections::BTreeSet<usize>> =
        vec![std::collections::BTreeSet::new(); nc];
    for (u, vs) in adj.iter().enumerate() {
        for &v in vs {
            let (cu, cv) = (comp_of[u], comp_of[v]);
            if cu != cv && edges[cu].insert(cv) {
                indegree[cv] += 1;
            }
        }
    }
    let mut ready: std::collections::BTreeSet<(usize, usize)> = (0..nc)
        .filter(|&c| indegree[c] == 0)
        .map(|c| (components[c][0], c))
        .collect();
    let mut out = Vec::with_capacity(nc);
    while let Some(&(key, c)) = ready.iter().next() {
        ready.remove(&(key, c));
        out.push(components[c].clone());
        for &d in &edges[c] {
            indegree[d] -= 1;
            if indegree[d] == 0 {
                ready.insert((components[d][0], d));
            }
        }
    }
    assert_eq!(out.len(), nc, "condensation must be acyclic");
    out
}

fn topo_ok(ordered: &[Vec<usize>], adj: &[Vec<usize>]) -> bool {
    let mut pos = vec![0usize; adj.len()];
    for (c, comp) in ordered.iter().enumerate() {
        for &s in comp {
            pos[s] = c;
        }
    }
    adj.iter()
        .enumerate()
        .all(|(u, vs)| vs.iter().all(|&v| pos[u] <= pos[v]))
}

/// Conservative scalar glue: a scalar assigned by one statement and read
/// (or re-assigned) by another carries a *per-iteration* value, so
/// splitting its definition from its uses would leave the second loop
/// reading only the final iteration's value. Force such statements into
/// one component with a cycle edge.
fn add_scalar_edges(body: &[Stmt], adj: &mut [Vec<usize>]) {
    use lc_ir::symbol::Symbol;
    use std::collections::HashSet;

    let mut assigns: Vec<HashSet<Symbol>> = vec![HashSet::new(); body.len()];
    let mut reads: Vec<HashSet<Symbol>> = vec![HashSet::new(); body.len()];
    for (i, s) in body.iter().enumerate() {
        collect_scalar_uses(s, &mut assigns[i], &mut reads[i]);
    }
    for a in 0..body.len() {
        for b in 0..body.len() {
            if a == b {
                continue;
            }
            if assigns[a].intersection(&reads[b]).next().is_some()
                || assigns[a].intersection(&assigns[b]).next().is_some()
            {
                adj[a].push(b);
                adj[b].push(a);
            }
        }
    }
}

fn collect_scalar_uses(
    s: &Stmt,
    assigns: &mut std::collections::HashSet<lc_ir::symbol::Symbol>,
    reads: &mut std::collections::HashSet<lc_ir::symbol::Symbol>,
) {
    let mut read_expr = |e: &lc_ir::expr::Expr| {
        let mut vars = Vec::new();
        e.variables(&mut vars);
        reads.extend(vars);
    };
    match s {
        Stmt::AssignScalar { var, value } => {
            read_expr(value);
            assigns.insert(var.clone());
        }
        Stmt::AssignArray { target, value } => {
            for ix in &target.indices {
                read_expr(ix);
            }
            read_expr(value);
        }
        Stmt::Loop(l) => {
            read_expr(&l.lower);
            read_expr(&l.upper);
            read_expr(&l.step);
            // The loop variable is local; remove it from reads afterwards.
            for inner in &l.body {
                collect_scalar_uses(inner, assigns, reads);
            }
            reads.remove(&l.var);
            assigns.remove(&l.var);
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let mut vars = Vec::new();
            cond.variables(&mut vars);
            reads.extend(vars);
            for inner in then_body.iter().chain(else_body) {
                collect_scalar_uses(inner, assigns, reads);
            }
        }
    }
}

/// Tarjan's strongly-connected components; returns components in reverse
/// topological order of the condensation.
fn tarjan_scc(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    struct State<'a> {
        adj: &'a [Vec<usize>],
        index: Vec<Option<usize>>,
        lowlink: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next_index: usize,
        out: Vec<Vec<usize>>,
    }
    fn strongconnect(st: &mut State<'_>, v: usize) {
        st.index[v] = Some(st.next_index);
        st.lowlink[v] = st.next_index;
        st.next_index += 1;
        st.stack.push(v);
        st.on_stack[v] = true;
        for &w in &st.adj[v].to_vec() {
            match st.index[w] {
                None => {
                    strongconnect(st, w);
                    st.lowlink[v] = st.lowlink[v].min(st.lowlink[w]);
                }
                Some(wi) if st.on_stack[w] => {
                    st.lowlink[v] = st.lowlink[v].min(wi);
                }
                _ => {}
            }
        }
        if st.lowlink[v] == st.index[v].unwrap() {
            let mut comp = Vec::new();
            loop {
                let w = st.stack.pop().unwrap();
                st.on_stack[w] = false;
                comp.push(w);
                if w == v {
                    break;
                }
            }
            st.out.push(comp);
        }
    }
    let n = adj.len();
    let mut st = State {
        adj,
        index: vec![None; n],
        lowlink: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next_index: 0,
        out: Vec::new(),
    };
    for v in 0..n {
        if st.index[v].is_none() {
            strongconnect(&mut st, v);
        }
    }
    st.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_ir::interp::Interp;
    use lc_ir::parser::parse_program;
    use lc_ir::program::Program;

    fn loop_of(p: &Program) -> (usize, Loop) {
        p.body
            .iter()
            .enumerate()
            .find_map(|(i, s)| match s {
                Stmt::Loop(l) => Some((i, l.clone())),
                _ => None,
            })
            .unwrap()
    }

    fn check_distribute(src: &str, expect_loops: usize) -> Vec<Loop> {
        let p = parse_program(src).unwrap();
        let (idx, l) = loop_of(&p);
        let loops = distribute(&l).unwrap();
        assert_eq!(loops.len(), expect_loops, "wrong split count for:\n{src}");

        let mut p2 = p.clone();
        let mut new_body: Vec<Stmt> = p.body[..idx].to_vec();
        new_body.extend(loops.iter().cloned().map(Stmt::Loop));
        new_body.extend(p.body[idx + 1..].to_vec());
        p2.body = new_body;
        let a = Interp::new().run(&p).unwrap();
        let b = Interp::new().run(&p2).unwrap();
        assert_eq!(a, b, "distribution changed semantics:\n{src}");
        loops
    }

    #[test]
    fn independent_statements_split_fully() {
        check_distribute(
            "
            array A[8];
            array B[8];
            for i = 1..8 {
                A[i] = i;
                B[i] = i * 2;
            }
            ",
            2,
        );
    }

    #[test]
    fn forward_dependence_splits_in_order() {
        // B reads what A wrote in the SAME iteration: loop-independent
        // dependence — split is legal, A-loop first.
        let loops = check_distribute(
            "
            array A[8];
            array B[8];
            for i = 1..8 {
                A[i] = i;
                B[i] = A[i] + 1;
            }
            ",
            2,
        );
        match &loops[0].body[0] {
            Stmt::AssignArray { target, .. } => assert_eq!(target.array.as_str(), "A"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn recurrence_cycle_stays_together() {
        // S0 feeds S1 in the same iteration, S1 feeds S0 in the next:
        // a cross-statement cycle — must not split.
        check_distribute(
            "
            array A[9];
            array B[9];
            for i = 2..8 {
                A[i] = B[i - 1] + 1;
                B[i] = A[i] * 2;
            }
            ",
            1,
        );
    }

    #[test]
    fn backward_loop_independent_read_then_write_can_split() {
        // S0 reads A[i+1] (old value), S1 writes A[i]. Anti dependence
        // src=S0 → dst=S1 (forward edge): splitting puts all reads before
        // all writes — still the old values. Legal, 2 loops.
        check_distribute(
            "
            array A[9];
            array B[9];
            for i = 1..8 {
                B[i] = A[i + 1];
                A[i] = i * 10;
            }
            ",
            2,
        );
    }

    #[test]
    fn write_then_later_read_of_earlier_element_keeps_order() {
        // S0 writes A[i]; S1 reads A[i-1] — carried flow S0→S1. Edge is
        // forward: distribution is legal (A-loop completes first, then B
        // reads fully written A). Two loops, same result.
        check_distribute(
            "
            array A[8];
            array B[8];
            for i = 2..8 {
                A[i] = i;
                B[i] = A[i - 1];
            }
            ",
            2,
        );
    }

    #[test]
    fn backward_carried_dependence_fuses_into_cycle() {
        // S0 reads A[i-1] which S1 wrote in a *previous* iteration:
        // src = S1 (the write, earlier iteration) → dst = S0 (backward
        // edge) plus textual/anti edges forward = cycle → no split.
        check_distribute(
            "
            array A[9];
            array B[9];
            for i = 2..8 {
                B[i] = A[i - 1] * 2;
                A[i] = B[i] + 1;
            }
            ",
            1,
        );
    }

    #[test]
    fn distribution_enables_perfect_nest_extraction() {
        // The headline use: peel the prologue store off so the inner nest
        // becomes perfect, then coalescible.
        use crate::coalesce::{coalesce_loop, CoalesceOptions};
        use lc_ir::analysis::nest::extract_nest;

        let p = parse_program(
            "
            array D[6];
            array M[6][7];
            doall i = 1..6 {
                D[i] = i * i;
                doall j = 1..7 {
                    M[i][j] = i + j;
                }
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        // Before distribution: imperfect, nest depth 1.
        assert_eq!(extract_nest(&l).depth(), 1);
        let loops = distribute(&l).unwrap();
        assert_eq!(loops.len(), 2);
        // The second piece is now a perfect 2-deep doall nest.
        let nest = extract_nest(&loops[1]);
        assert_eq!(nest.depth(), 2);
        let coalesced = coalesce_loop(&loops[1], &CoalesceOptions::default()).unwrap();
        assert_eq!(coalesced.info.total_iterations, 42);
    }

    #[test]
    fn scalar_chain_glues_statements() {
        // t is written by S0 and read by S1: they stay in one loop (the
        // scalar would otherwise carry only the last iteration's value
        // into the second loop).
        check_distribute(
            "
            array A[8];
            array B[8];
            for i = 1..8 {
                t = i * 3;
                A[i] = t;
                B[i] = t + 1;
            }
            ",
            1,
        );
    }

    #[test]
    fn single_statement_loop_is_unchanged() {
        let loops = check_distribute(
            "
            array A[4];
            for i = 1..4 {
                A[i] = i;
            }
            ",
            1,
        );
        assert_eq!(loops[0].body.len(), 1);
    }

    #[test]
    fn three_way_chain_splits_into_three() {
        check_distribute(
            "
            array A[8];
            array B[8];
            array C[8];
            for i = 1..8 {
                A[i] = i;
                B[i] = A[i] * 2;
                C[i] = B[i] + A[i];
            }
            ",
            3,
        );
    }

    #[test]
    fn distribute_stmt_rejects_non_loops() {
        let s = Stmt::assign("x", lc_ir::Expr::lit(1));
        assert!(distribute_stmt(&s).is_err());
    }
}
