//! Interpreter-based validation of transformations.
//!
//! Transformed programs are checked against the original in two ways:
//!
//! * **equivalence** — run both on the same randomly seeded store and
//!   require bit-identical final stores;
//! * **order-independence** — run the transformed program with forward,
//!   reverse, and shuffled `doall` orders and require identical stores
//!   (a correct coalesced `doall` cannot care about iteration order).
//!
//! These checks are the dynamic complement to the static legality analysis
//! and are used pervasively by the test suites of this workspace.

use lc_ir::interp::{DoallOrder, Interp, Store};
use lc_ir::program::Program;
use lc_ir::{Error, Result};

/// Build a store for `prog` whose arrays are filled with deterministic
/// pseudo-random values derived from `seed` (a splitmix64 stream).
pub fn seeded_store(prog: &Program, seed: u64) -> Store {
    let mut store = Store::for_program(prog);
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let names: Vec<String> = prog.arrays.iter().map(|a| a.name.to_string()).collect();
    for name in names {
        if let Some(data) = store.data_mut(&name) {
            for v in data {
                // Small values keep intermediate arithmetic overflow-free.
                *v = (next() % 2001) as i64 - 1000;
            }
        }
    }
    store
}

/// Check that `original` and `transformed` compute the same final store
/// from the same seeded input, and that `transformed` is insensitive to
/// `doall` iteration order. Errors carry a description of the divergence.
pub fn check_equivalent(original: &Program, transformed: &Program, seed: u64) -> Result<()> {
    let base = seeded_store(original, seed);
    let (want, _) = Interp::new().run_on(original, base.clone())?;

    for order in [
        DoallOrder::Forward,
        DoallOrder::Reverse,
        DoallOrder::Shuffled(seed ^ 0xABCD),
    ] {
        let (got, _) = Interp::new()
            .with_order(order)
            .run_on(transformed, base.clone())?;
        if got != want {
            return Err(Error::unsupported(format!(
                "transformed program diverges from original under {order:?} (seed {seed})"
            )));
        }
    }
    Ok(())
}

/// Check that a program's result does not depend on `doall` iteration
/// order (necessary for it to be a semantically valid parallel program).
pub fn check_order_independent(prog: &Program, seed: u64) -> Result<()> {
    let base = seeded_store(prog, seed);
    let (want, _) = Interp::new().run_on(prog, base.clone())?;
    for order in [DoallOrder::Reverse, DoallOrder::Shuffled(seed ^ 0x55AA)] {
        let (got, _) = Interp::new().with_order(order).run_on(prog, base.clone())?;
        if got != want {
            return Err(Error::unsupported(format!(
                "program is doall-order dependent (observed under {order:?}, seed {seed})"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalesce::{coalesce_loop, CoalesceOptions};
    use lc_ir::parser::parse_program;
    use lc_ir::stmt::Stmt;

    #[test]
    fn seeded_store_is_deterministic_and_seed_sensitive() {
        let p = parse_program("array A[16]; A[1] = 0;").unwrap();
        let a = seeded_store(&p, 1);
        let b = seeded_store(&p, 1);
        let c = seeded_store(&p, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn equivalence_accepts_coalescing_of_stencil_reader() {
        // Reads neighbours of B, writes A: independent, coalescable, and
        // seed-sensitive (exercises the seeded inputs meaningfully).
        let src = "
            array A[8][8];
            array B[10][10];
            doall i = 1..8 {
                doall j = 1..8 {
                    A[i][j] = B[i][j] + B[i + 1][j] + B[i][j + 1] + B[i + 2][j + 2];
                }
            }
            ";
        let p = parse_program(src).unwrap();
        let Stmt::Loop(l) = &p.body[0] else { panic!() };
        let out = coalesce_loop(l, &CoalesceOptions::default()).unwrap();
        let mut p2 = p.clone();
        p2.body[0] = Stmt::Loop(out.transformed);
        for seed in [1, 42, 999] {
            check_equivalent(&p, &p2, seed).unwrap();
        }
    }

    #[test]
    fn equivalence_rejects_wrong_transformation() {
        let p1 = parse_program(
            "
            array A[8];
            doall i = 1..8 {
                A[i] = A[i] + 1;
            }
            ",
        )
        .unwrap();
        let p2 = parse_program(
            "
            array A[8];
            doall i = 1..8 {
                A[i] = A[i] + 2;
            }
            ",
        )
        .unwrap();
        assert!(check_equivalent(&p1, &p2, 3).is_err());
    }

    #[test]
    fn order_independence_rejects_racy_doall() {
        let p = parse_program(
            "
            array A[8];
            doall i = 2..8 {
                A[i] = A[i - 1] + 1;
            }
            ",
        )
        .unwrap();
        assert!(check_order_independent(&p, 5).is_err());
    }

    #[test]
    fn order_independence_accepts_clean_doall() {
        let p = parse_program(
            "
            array A[8];
            array B[8];
            doall i = 1..8 {
                A[i] = B[i] * 2;
            }
            ",
        )
        .unwrap();
        check_order_independent(&p, 5).unwrap();
    }
}
