//! Coalescing nests whose trip counts are *runtime* values.
//!
//! The paper's `N_1 … N_m` are symbolic — loop bounds known only at run
//! time. [`crate::coalesce`] requires compile-time constants so it can
//! report dims to the scheduling layer; this module handles the general
//! case by emitting the stride products as *scalar computations* ahead of
//! the coalesced loop:
//!
//! ```text
//! doall i = 1..n { doall j = 1..m { BODY } }
//! ```
//! becomes
//! ```text
//! lcs_1 = m;            // stride of level 0 = Π inner trip counts
//! lcs_total = n * m;
//! doall jc = 1..lcs_total {
//!     i = ceildiv(jc, lcs_1);
//!     j = jc - lcs_1 * (ceildiv(jc, lcs_1) - 1);
//!     BODY
//! }
//! ```
//!
//! Preconditions: every coalesced level is already in the form
//! `1..=U step 1` where `U` is any loop-invariant expression (run
//! [`crate::normalize`] first for constant bounds; symbolic bounds with
//! offsets/steps are out of scope, as in the paper). Legality checking
//! uses the same dependence machinery (symbolic bounds are handled
//! conservatively).

use lc_ir::analysis::depend::NestDeps;
use lc_ir::analysis::nest::{extract_nest, Nest};
use lc_ir::expr::Expr;
use lc_ir::stmt::{Loop, LoopKind, Stmt};
use lc_ir::symbol::Symbol;
use lc_ir::{Error, Result, SkipReason};

use crate::coalesce::CoalesceOptions;
use crate::recovery::RecoveryScheme;

/// The statements produced by a symbolic coalescing: stride computations
/// followed by the rewritten loop. Splice `stmts()` in place of the
/// original loop statement.
#[derive(Debug, Clone)]
pub struct SymbolicCoalesce {
    /// Scalar assignments computing the stride products (must precede the
    /// loop).
    pub preamble: Vec<Stmt>,
    /// The coalesced loop.
    pub transformed: Loop,
    /// The coalesced loop's index variable.
    pub coalesced_var: Symbol,
}

impl SymbolicCoalesce {
    /// Preamble + loop as a single statement list.
    pub fn stmts(&self) -> Vec<Stmt> {
        let mut out = self.preamble.clone();
        out.push(Stmt::Loop(self.transformed.clone()));
        out
    }
}

/// Coalesce the whole nest rooted at `l` with possibly-symbolic upper
/// bounds. Bounds must already be `1..=U step 1` per level; `U` may be
/// any expression not written inside the nest.
///
/// Convenience wrapper over [`coalesce_symbolic_nest`] that extracts the
/// nest and runs dependence analysis from scratch.
pub fn coalesce_symbolic(l: &Loop, opts: &CoalesceOptions) -> Result<SymbolicCoalesce> {
    let nest = extract_nest(l);
    coalesce_symbolic_nest(&nest, None, opts)
}

/// [`coalesce_symbolic`] on an already-extracted [`Nest`], optionally
/// reusing a dependence analysis computed elsewhere (e.g. by
/// `lc-driver`'s analysis cache) instead of re-running it.
pub fn coalesce_symbolic_nest(
    nest: &Nest,
    deps: Option<&NestDeps>,
    opts: &CoalesceOptions,
) -> Result<SymbolicCoalesce> {
    let depth = nest.depth();
    let (start, end) = opts.levels.unwrap_or((0, depth));
    if start >= end || end > depth {
        return Err(Error::Unsupported(SkipReason::BandOutOfRange {
            start,
            end,
            depth,
        }));
    }
    for h in &nest.loops {
        if h.lower.as_const() != Some(1) || h.step.as_const() != Some(1) {
            return Err(Error::Unsupported(SkipReason::NotUnitNormalized {
                var: h.var.clone(),
            }));
        }
    }
    // Upper bounds must be invariant: no bound may mention a variable
    // assigned inside the nest or any nest index.
    let mut assigned = Vec::new();
    collect_assigned(&nest.body, &mut assigned);
    for h in &nest.loops {
        assigned.push(h.var.clone());
    }
    for h in &nest.loops[start..end] {
        let mut vars = Vec::new();
        h.upper.variables(&mut vars);
        if let Some(v) = vars.iter().find(|v| assigned.contains(v)) {
            return Err(Error::Unsupported(SkipReason::VariantBound {
                var: h.var.clone(),
                dep: v.clone(),
            }));
        }
    }

    // Legality: reuse the constant-path checker (dependence analysis is
    // conservative with symbolic bounds).
    if opts.check_legality {
        let owned;
        let deps = match deps {
            Some(d) => d,
            None => {
                owned = lc_ir::analysis::depend::analyze_nest(nest)?;
                &owned
            }
        };
        for level in start..end {
            if deps.carried_at(level) {
                return Err(Error::Unsupported(SkipReason::CarriedDependence {
                    level,
                    var: nest.loops[level].var.clone(),
                }));
            }
        }
        crate::coalesce::scalar_privatization_ok(nest, start, end)?;
    } else if !nest.loops[start..end].iter().all(|h| h.kind.is_doall()) {
        return Err(Error::Unsupported(SkipReason::NotDoallUnchecked));
    }

    // Fresh names for the coalesced index and the stride scalars.
    let used = all_symbols(nest);
    let jvar = fresh(&used, "jc");
    let band = &nest.loops[start..end];
    let m = band.len();

    // stride[k] = Π_{l>k} U_l  (within the band); total = U_s * stride[s].
    let stride_names: Vec<Symbol> = (0..m).map(|k| fresh(&used, &format!("lcs_{k}"))).collect();
    let total_name = fresh(&used, "lcs_total");

    let mut preamble = Vec::new();
    let mut running: Expr = Expr::lit(1);
    for k in (0..m).rev() {
        preamble.push(Stmt::AssignScalar {
            var: stride_names[k].clone(),
            value: running.clone().fold(),
        });
        running = (Expr::Var(stride_names[k].clone()) * band[k].upper.clone()).fold();
    }
    preamble.push(Stmt::AssignScalar {
        var: total_name.clone(),
        value: running,
    });
    // Preamble was built innermost-first; order does not matter for
    // correctness (each assignment only uses deeper strides), but emit
    // outermost-last for readability — already the case.

    // Recovery statements with symbolic strides.
    let j = Expr::Var(jvar.clone());
    let mut body = Vec::with_capacity(m + 1);
    for k in 0..m {
        let stride = Expr::Var(stride_names[k].clone());
        let expr = match opts.scheme {
            RecoveryScheme::Ceiling => {
                let first = j.clone().ceil_div(stride.clone());
                if k == 0 {
                    first
                } else {
                    let outer = (stride.clone() * band[k].upper.clone()).fold();
                    first - band[k].upper.clone() * (j.clone().ceil_div(outer) - Expr::lit(1))
                }
            }
            RecoveryScheme::DivMod => {
                let q = j.clone() - Expr::lit(1);
                let shifted = q.floor_div(stride);
                if k == 0 {
                    shifted + Expr::lit(1)
                } else {
                    shifted.floor_mod(band[k].upper.clone()) + Expr::lit(1)
                }
            }
        };
        body.push(Stmt::AssignScalar {
            var: band[k].var.clone(),
            value: expr.fold(),
        });
    }

    // Inner uncoalesced levels, then outer wrapping, as in the constant path.
    let mut inner_body = nest.body.clone();
    for h in nest.loops[end..].iter().rev() {
        inner_body = vec![Stmt::Loop(Loop {
            var: h.var.clone(),
            lower: h.lower.clone(),
            upper: h.upper.clone(),
            step: h.step.clone(),
            kind: h.kind,
            body: inner_body,
        })];
    }
    body.extend(inner_body);

    let mut result = Loop {
        var: jvar.clone(),
        lower: Expr::lit(1),
        upper: Expr::Var(total_name),
        step: Expr::lit(1),
        kind: LoopKind::Doall,
        body,
    };
    for h in nest.loops[..start].iter().rev() {
        result = Loop {
            var: h.var.clone(),
            lower: h.lower.clone(),
            upper: h.upper.clone(),
            step: h.step.clone(),
            kind: h.kind,
            body: vec![Stmt::Loop(result)],
        };
    }

    Ok(SymbolicCoalesce {
        preamble,
        transformed: result,
        coalesced_var: jvar,
    })
}

fn collect_assigned(stmts: &[Stmt], out: &mut Vec<Symbol>) {
    for s in stmts {
        match s {
            Stmt::AssignScalar { var, .. } => out.push(var.clone()),
            Stmt::AssignArray { .. } => {}
            Stmt::Loop(l) => {
                out.push(l.var.clone());
                collect_assigned(&l.body, out);
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_assigned(then_body, out);
                collect_assigned(else_body, out);
            }
        }
    }
}

fn all_symbols(nest: &lc_ir::analysis::nest::Nest) -> Vec<String> {
    let mut syms: Vec<Symbol> = Vec::new();
    for h in &nest.loops {
        syms.push(h.var.clone());
        h.lower.variables(&mut syms);
        h.upper.variables(&mut syms);
        h.step.variables(&mut syms);
    }
    fn walk(stmts: &[Stmt], out: &mut Vec<Symbol>) {
        for s in stmts {
            match s {
                Stmt::AssignScalar { var, value } => {
                    out.push(var.clone());
                    value.variables(out);
                }
                Stmt::AssignArray { target, value } => {
                    out.push(target.array.clone());
                    for ix in &target.indices {
                        ix.variables(out);
                    }
                    value.variables(out);
                }
                Stmt::Loop(l) => {
                    out.push(l.var.clone());
                    l.lower.variables(out);
                    l.upper.variables(out);
                    l.step.variables(out);
                    walk(&l.body, out);
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    cond.variables(out);
                    walk(then_body, out);
                    walk(else_body, out);
                }
            }
        }
    }
    walk(&nest.body, &mut syms);
    syms.into_iter().map(|s| s.as_str().to_string()).collect()
}

fn fresh(used: &[String], base: &str) -> Symbol {
    if !used.iter().any(|u| u == base) {
        return Symbol::new(base);
    }
    let mut n = 0;
    loop {
        let cand = format!("{base}_{n}");
        if !used.contains(&cand) {
            return Symbol::new(cand);
        }
        n += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_ir::interp::{DoallOrder, Interp};
    use lc_ir::parser::parse_program;
    use lc_ir::program::Program;

    fn loop_of(p: &Program) -> (usize, Loop) {
        p.body
            .iter()
            .enumerate()
            .find_map(|(i, s)| match s {
                Stmt::Loop(l) => Some((i, l.clone())),
                _ => None,
            })
            .unwrap()
    }

    fn check(src: &str, opts: &CoalesceOptions) {
        let p = parse_program(src).unwrap();
        let (idx, l) = loop_of(&p);
        let out = coalesce_symbolic(&l, opts).unwrap();

        let mut p2 = p.clone();
        p2.body.remove(idx);
        for (off, s) in out.stmts().into_iter().enumerate() {
            p2.body.insert(idx + off, s);
        }
        p2.check().expect("transformed program must check");
        let reference = Interp::new().run(&p).unwrap();
        for order in [DoallOrder::Forward, DoallOrder::Shuffled(3)] {
            let got = Interp::new().with_order(order).run(&p2).unwrap();
            assert_eq!(reference, got, "symbolic coalescing diverged:\n{src}");
        }
    }

    #[test]
    fn symbolic_2d_both_schemes() {
        let src = "
            array A[12][9];
            n = 12;
            m = 9;
            doall i = 1..n {
                doall j = 1..m {
                    A[i][j] = i * 100 + j;
                }
            }
            ";
        for scheme in [RecoveryScheme::Ceiling, RecoveryScheme::DivMod] {
            check(
                src,
                &CoalesceOptions {
                    scheme,
                    ..Default::default()
                },
            );
        }
    }

    #[test]
    fn symbolic_3d() {
        check(
            "
            array V[3][4][5];
            a = 3;
            b = 4;
            c = 5;
            doall i = 1..a {
                doall j = 1..b {
                    doall k = 1..c {
                        V[i][j][k] = i + 10 * j + 100 * k;
                    }
                }
            }
            ",
            &CoalesceOptions::default(),
        );
    }

    #[test]
    fn symbolic_bound_expressions() {
        // Bounds that are arithmetic over runtime scalars.
        check(
            "
            array A[20][10];
            n = 10;
            doall i = 1..n + n {
                doall j = 1..n {
                    A[i][j] = i - j;
                }
            }
            ",
            &CoalesceOptions::default(),
        );
    }

    #[test]
    fn mixed_constant_and_symbolic() {
        check(
            "
            array A[7][11];
            m = 11;
            doall i = 1..7 {
                doall j = 1..m {
                    A[i][j] = i * j;
                }
            }
            ",
            &CoalesceOptions::default(),
        );
    }

    #[test]
    fn partial_band_with_symbolic_inner_serial() {
        check(
            "
            array A[6][8];
            array S[6];
            n = 6;
            m = 8;
            doall i = 1..n {
                acc = 0;
                for j = 1..m {
                    acc = acc + A[i][j];
                }
                S[i] = acc;
            }
            ",
            &CoalesceOptions {
                levels: Some((0, 1)),
                ..Default::default()
            },
        );
    }

    #[test]
    fn offset_bounds_are_rejected() {
        let p = parse_program(
            "
            array A[10];
            n = 9;
            doall i = 2..n {
                A[i] = i;
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        let err = coalesce_symbolic(&l, &CoalesceOptions::default()).unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)));
    }

    #[test]
    fn bound_modified_inside_nest_is_rejected() {
        let p = parse_program(
            "
            array A[10][10];
            n = 10;
            doall i = 1..n {
                n = 5;
                doall j = 1..n {
                    A[i][j] = 1;
                }
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        let err = coalesce_symbolic(&l, &CoalesceOptions::default()).unwrap_err();
        match err {
            Error::Unsupported(m) => {
                assert!(matches!(m, SkipReason::VariantBound { .. }), "{m}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn carried_dependence_rejected_symbolically() {
        let p = parse_program(
            "
            array A[20];
            n = 20;
            for i = 1..n {
                A[i] = A[i] + 1;
            }
            ",
        )
        .unwrap();
        // This one is fine (no carried dep) — now a genuinely carried one:
        let p2 = parse_program(
            "
            array A[21];
            n = 20;
            for i = 1..n {
                A[i + 1] = A[i] + 1;
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        assert!(coalesce_symbolic(&l, &CoalesceOptions::default()).is_ok());
        let (_, l2) = loop_of(&p2);
        assert!(coalesce_symbolic(&l2, &CoalesceOptions::default()).is_err());
    }

    #[test]
    fn symbolic_scalar_reduction_is_rejected() {
        let p = parse_program(
            "
            array A[16];
            n = 16;
            s = 0;
            doall i = 1..n {
                s = s + A[i];
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        let err = coalesce_symbolic(&l, &CoalesceOptions::default()).unwrap_err();
        match err {
            Error::Unsupported(m) => {
                assert!(matches!(m, SkipReason::ScalarReduction { .. }), "{m}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn name_collisions_are_avoided() {
        check(
            "
            array A[4][5];
            jc = 1;
            lcs_0 = 2;
            lcs_total = 3;
            n = 4;
            doall i = 1..n {
                doall j = 1..5 {
                    A[i][j] = i + j + jc + lcs_0 + lcs_total;
                }
            }
            ",
            &CoalesceOptions::default(),
        );
    }

    #[test]
    fn zero_trip_symbolic_loop() {
        // n = 0: the coalesced loop runs 1..0 — empty, no divisions by the
        // zero stride are ever evaluated.
        check(
            "
            array A[5][5];
            n = 0;
            doall i = 1..n {
                doall j = 1..5 {
                    A[i][j] = 1;
                }
            }
            ",
            &CoalesceOptions::default(),
        );
    }
}
