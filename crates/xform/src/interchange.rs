//! Loop interchange: swapping two adjacent levels of a perfect nest.
//!
//! The paper positions coalescing against the classical alternatives;
//! interchange is the one that moves a parallel loop outward so the serial
//! inner loop amortizes fork-join overhead. Interchanging levels `k` and
//! `k+1` is legal when no dependence has a direction vector of the form
//! `(=, …, =, <, >, …)` at those positions — swapping such a vector would
//! make the sink run before the source.

use lc_ir::analysis::depend::{analyze_nest, Dir};
use lc_ir::analysis::nest::extract_nest;
use lc_ir::stmt::Loop;
use lc_ir::{Error, Result, SkipReason};

/// Interchange levels `level` and `level + 1` (0-based) of the perfect
/// nest rooted at `l`, checking legality first.
pub fn interchange(l: &Loop, level: usize) -> Result<Loop> {
    let mut nest = extract_nest(l);
    if level + 1 >= nest.depth() {
        return Err(Error::Unsupported(SkipReason::InterchangeOutOfRange {
            level,
            depth: nest.depth(),
        }));
    }

    // Rectangularity: neither loop's bounds may mention the other's var
    // (triangular nests need bound rewriting, out of scope).
    for (a, b) in [(level, level + 1), (level + 1, level)] {
        let var = nest.loops[a].var.clone();
        let mut vars = Vec::new();
        nest.loops[b].lower.variables(&mut vars);
        nest.loops[b].upper.variables(&mut vars);
        nest.loops[b].step.variables(&mut vars);
        if vars.contains(&var) {
            return Err(Error::Unsupported(SkipReason::NotRectangular {
                var: nest.loops[b].var.clone(),
                other: var,
            }));
        }
    }

    let deps = analyze_nest(&nest)?;
    for d in &deps.deps {
        for dv in &d.directions {
            let prefix_eq = dv[..level].iter().all(|x| *x == Dir::Eq);
            if prefix_eq && dv[level] == Dir::Lt && dv[level + 1] == Dir::Gt {
                return Err(Error::Unsupported(SkipReason::InterchangeIllegal {
                    level,
                    array: d.array.clone(),
                }));
            }
        }
    }

    nest.loops.swap(level, level + 1);
    Ok(nest.to_loop())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_ir::interp::Interp;
    use lc_ir::parser::parse_program;
    use lc_ir::program::Program;
    use lc_ir::stmt::Stmt;

    fn loop_of(p: &Program) -> (usize, Loop) {
        p.body
            .iter()
            .enumerate()
            .find_map(|(i, s)| match s {
                Stmt::Loop(l) => Some((i, l.clone())),
                _ => None,
            })
            .unwrap()
    }

    fn check_interchange(src: &str, level: usize) {
        let p = parse_program(src).unwrap();
        let (idx, l) = loop_of(&p);
        let swapped = interchange(&l, level).unwrap();
        let mut p2 = p.clone();
        p2.body[idx] = Stmt::Loop(swapped);
        let a = Interp::new().run(&p).unwrap();
        let b = Interp::new().run(&p2).unwrap();
        assert_eq!(a, b, "interchange changed semantics:\n{src}");
    }

    #[test]
    fn interchange_independent_fill() {
        check_interchange(
            "
            array A[4][6];
            for i = 1..4 {
                for j = 1..6 {
                    A[i][j] = 10 * i + j;
                }
            }
            ",
            0,
        );
    }

    #[test]
    fn interchange_swaps_headers() {
        let p = parse_program(
            "
            array A[4][6];
            for i = 1..4 {
                for j = 1..6 {
                    A[i][j] = 1;
                }
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        let swapped = interchange(&l, 0).unwrap();
        assert_eq!(swapped.var.as_str(), "j");
        assert_eq!(swapped.const_trip_count(), Some(6));
    }

    #[test]
    fn interchange_column_recurrence_is_legal() {
        // A[i][j] = A[i-1][j]: direction (<, =) — interchange to (=, <) is
        // still lexicographically positive. The classic motivation: makes
        // the parallel j loop outermost.
        check_interchange(
            "
            array A[6][6];
            for i = 2..6 {
                for j = 1..6 {
                    A[i][j] = A[i - 1][j] + 1;
                }
            }
            ",
            0,
        );
    }

    #[test]
    fn interchange_lt_gt_dependence_is_rejected() {
        // A[i][j] = A[i-1][j+1]: direction (<, >) — interchange illegal.
        let p = parse_program(
            "
            array A[8][8];
            for i = 2..8 {
                for j = 1..7 {
                    A[i][j] = A[i - 1][j + 1] + 1;
                }
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        let err = interchange(&l, 0).unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)));
    }

    #[test]
    fn interchange_middle_levels_of_triple_nest() {
        check_interchange(
            "
            array A[3][4][5];
            for i = 1..3 {
                for j = 1..4 {
                    for k = 1..5 {
                        A[i][j][k] = i * 100 + j * 10 + k;
                    }
                }
            }
            ",
            1,
        );
    }

    #[test]
    fn triangular_nest_is_rejected() {
        let p = parse_program(
            "
            array A[6][6];
            for i = 1..6 {
                for j = 1..i {
                    A[i][j] = 1;
                }
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        let err = interchange(&l, 0).unwrap_err();
        match err {
            Error::Unsupported(m) => {
                assert!(matches!(m, SkipReason::NotRectangular { .. }), "{m}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn out_of_range_level_is_rejected() {
        let p = parse_program(
            "
            array A[4];
            for i = 1..4 {
                A[i] = i;
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        assert!(interchange(&l, 0).is_err());
    }
}
