//! The [`Transform`] trait — one uniform surface over every rewrite in
//! this crate.
//!
//! Each transformation exposes the same three-step contract:
//!
//! 1. [`Transform::name`] — a stable identifier for traces and
//!    configuration (pipeline orders are lists of these names);
//! 2. [`Transform::precheck`] — a side-effect-free legality check
//!    returning a typed [`SkipReason`] when the rewrite cannot apply;
//! 3. [`Transform::apply`] — the rewrite itself, returning a [`Rewrite`]
//!    summary: replacement statements, a rewrite count, and (for
//!    coalescing) the [`CoalesceInfo`] metadata.
//!
//! Drivers iterate a list of `&dyn Transform` values instead of calling
//! five differently-shaped free functions; new transformations plug in
//! by implementing the trait. The free functions remain public — the
//! trait impls here are thin adapters over them, so direct callers and
//! pipeline callers run identical code.
//!
//! # Example
//!
//! ```
//! use lc_ir::analysis::nest::extract_nest;
//! use lc_ir::parser::parse_program;
//! use lc_xform::coalesce::CoalesceOptions;
//! use lc_xform::transform::{Coalesce, Transform, TransformCx};
//!
//! let prog = parse_program(
//!     "
//!     array A[6][4];
//!     doall i = 1..6 {
//!         doall j = 1..4 {
//!             A[i][j] = 10 * i + j;
//!         }
//!     }
//!     ",
//! )
//! .unwrap();
//! let lc_ir::Stmt::Loop(l) = &prog.body[0] else { unreachable!() };
//! let nest = extract_nest(l);
//! let t = Coalesce::new(CoalesceOptions::default());
//! let cx = TransformCx::default();
//! t.precheck(&nest, &cx).expect("legal");
//! let rewrite = t.apply(l, &nest, &cx).unwrap();
//! assert_eq!(rewrite.rewrites, 2); // two levels collapsed
//! ```

use lc_ir::analysis::depend::NestDeps;
use lc_ir::analysis::nest::Nest;
use lc_ir::build::ExprBuilder;
use lc_ir::stmt::{Loop, Stmt};
use lc_ir::{Error, Result, SkipReason};

use crate::coalesce::{coalesce_band, precheck_band, CoalesceInfo, CoalesceOptions};
use crate::interchange::interchange;
use crate::normalize::normalize_nest;
use crate::perfect::perfect_recursively;

/// Shared, read-only context handed to every [`Transform`] call.
///
/// Drivers that memoize analyses populate the fields; standalone callers
/// can pass [`TransformCx::default`] and each transform recomputes what
/// it needs.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransformCx<'a> {
    /// A dependence analysis of exactly the nest being transformed, if
    /// the caller already ran one.
    pub deps: Option<&'a NestDeps>,
}

/// Summary of an applied transformation.
#[derive(Debug, Clone)]
pub struct Rewrite {
    /// Statements replacing the original loop statement (a preamble, if
    /// any, followed by the rewritten loop).
    pub replacement: Vec<Stmt>,
    /// Transform-specific count of rewrites performed: headers
    /// renormalized, statements sunk, levels swapped or collapsed,
    /// subterms hoisted. `0` means the transform was a no-op.
    pub rewrites: u64,
    /// Coalescing metadata, when the transform was a coalescing.
    pub info: Option<CoalesceInfo>,
}

impl Rewrite {
    /// A rewrite that leaves the loop unchanged.
    pub fn noop(l: &Loop) -> Rewrite {
        Rewrite {
            replacement: vec![Stmt::Loop(l.clone())],
            rewrites: 0,
            info: None,
        }
    }
}

/// A loop-nest transformation with a uniform legality / apply contract.
///
/// Implementations must be stateless behind `&self` (configuration is
/// fine, mutation is not) so one instance can serve concurrent pipeline
/// workers.
pub trait Transform: Send + Sync {
    /// Stable name used in traces and pipeline configuration.
    fn name(&self) -> &'static str;

    /// Check whether the transform can apply to `nest`, without
    /// rewriting anything. The default accepts every nest; transforms
    /// with real legality conditions override this.
    fn precheck(&self, nest: &Nest, cx: &TransformCx<'_>) -> std::result::Result<(), SkipReason> {
        let _ = (nest, cx);
        Ok(())
    }

    /// Rewrite the loop. `nest` is the extracted form of `l`; the two
    /// describe the same code. Returns the replacement statements and a
    /// rewrite count; implementations should return [`Rewrite::noop`]
    /// rather than an error when there is simply nothing to do.
    fn apply(&self, l: &Loop, nest: &Nest, cx: &TransformCx<'_>) -> Result<Rewrite>;
}

/// Convert an internal `Result` into a precheck verdict, folding
/// non-`Unsupported` errors into [`SkipReason::Other`].
fn verdict<T>(r: Result<T>) -> std::result::Result<(), SkipReason> {
    match r {
        Ok(_) => Ok(()),
        Err(Error::Unsupported(reason)) => Err(reason),
        Err(e) => Err(SkipReason::Other(e.to_string())),
    }
}

/// [`Transform`] adapter over [`crate::normalize`]: rewrite every header
/// into `1..=N step 1` form.
#[derive(Debug, Clone, Copy, Default)]
pub struct Normalize;

impl Transform for Normalize {
    fn name(&self) -> &'static str {
        "normalize"
    }

    fn precheck(&self, nest: &Nest, _cx: &TransformCx<'_>) -> std::result::Result<(), SkipReason> {
        if nest.is_normalized() {
            return Ok(());
        }
        verdict(normalize_nest(nest))
    }

    fn apply(&self, l: &Loop, nest: &Nest, _cx: &TransformCx<'_>) -> Result<Rewrite> {
        let unnormalized = nest.loops.iter().filter(|h| !h.is_normalized()).count() as u64;
        if unnormalized == 0 {
            return Ok(Rewrite::noop(l));
        }
        let normalized = normalize_nest(nest)?;
        Ok(Rewrite {
            replacement: vec![Stmt::Loop(normalized.to_loop())],
            rewrites: unnormalized,
            info: None,
        })
    }
}

/// [`Transform`] adapter over [`crate::perfect`]: sink prologue/epilogue
/// statements under first/last-iteration guards until the nest is
/// perfect.
#[derive(Debug, Clone, Copy, Default)]
pub struct Perfection;

impl Transform for Perfection {
    fn name(&self) -> &'static str {
        "perfect"
    }

    fn apply(&self, l: &Loop, _nest: &Nest, _cx: &TransformCx<'_>) -> Result<Rewrite> {
        let perfected = perfect_recursively(l)?;
        if perfected == *l {
            return Ok(Rewrite::noop(l));
        }
        Ok(Rewrite {
            replacement: vec![Stmt::Loop(perfected)],
            rewrites: 1,
            info: None,
        })
    }
}

/// [`Transform`] adapter over [`crate::interchange`]: swap the loop at
/// `level` with the one below it (to move a parallel level outward).
#[derive(Debug, Clone, Copy)]
pub struct Interchange {
    /// 0-based nest level to swap with `level + 1`.
    pub level: usize,
}

impl Transform for Interchange {
    fn name(&self) -> &'static str {
        "interchange"
    }

    fn precheck(&self, nest: &Nest, _cx: &TransformCx<'_>) -> std::result::Result<(), SkipReason> {
        verdict(interchange(&nest.to_loop(), self.level))
    }

    fn apply(&self, l: &Loop, _nest: &Nest, _cx: &TransformCx<'_>) -> Result<Rewrite> {
        let swapped = interchange(l, self.level)?;
        Ok(Rewrite {
            replacement: vec![Stmt::Loop(swapped)],
            rewrites: 1,
            info: None,
        })
    }
}

/// [`Transform`] adapter over [`crate::coalesce`]: collapse a band of
/// nest levels into one parallel loop with per-level index recovery.
#[derive(Debug, Clone, Default)]
pub struct Coalesce {
    /// Coalescing configuration (band, scheme, legality checking, …).
    pub opts: CoalesceOptions,
}

impl Coalesce {
    /// A coalescing transform with the given options.
    pub fn new(opts: CoalesceOptions) -> Coalesce {
        Coalesce { opts }
    }
}

impl Transform for Coalesce {
    fn name(&self) -> &'static str {
        "coalesce"
    }

    fn precheck(&self, nest: &Nest, cx: &TransformCx<'_>) -> std::result::Result<(), SkipReason> {
        verdict(precheck_band(nest, cx.deps, &self.opts))
    }

    fn apply(&self, _l: &Loop, nest: &Nest, cx: &TransformCx<'_>) -> Result<Rewrite> {
        let opts = self.opts.clone().clamped_to_depth(nest.depth());
        let result = coalesce_band(nest, cx.deps, &opts)?;
        let (start, end) = result.info.levels;
        Ok(Rewrite {
            replacement: result.stmts(),
            rewrites: (end - start) as u64,
            info: Some(result.info),
        })
    }
}

/// [`Transform`] adapter over [`crate::strength`]: hoist division
/// subterms shared across the statements of the loop body into temps
/// (profitable on generated recovery code, where adjacent indices share
/// their `⌈j/P⌉` terms).
#[derive(Debug, Clone)]
pub struct StrengthReduce {
    /// Prefix for hoisted temporaries; the caller must ensure it cannot
    /// collide with names in scope.
    pub temp_prefix: String,
}

impl Default for StrengthReduce {
    fn default() -> Self {
        StrengthReduce {
            temp_prefix: "rc_".to_string(),
        }
    }
}

impl Transform for StrengthReduce {
    fn name(&self) -> &'static str {
        "strength-reduce"
    }

    fn apply(&self, l: &Loop, _nest: &Nest, _cx: &TransformCx<'_>) -> Result<Rewrite> {
        let mut builder = ExprBuilder::from_stmts(l.body.clone());
        let hoisted = builder.intern_shared_divisions(&self.temp_prefix);
        if hoisted == 0 {
            return Ok(Rewrite::noop(l));
        }
        let mut reduced = l.clone();
        reduced.body = builder.into_stmts();
        Ok(Rewrite {
            replacement: vec![Stmt::Loop(reduced)],
            rewrites: hoisted as u64,
            info: None,
        })
    }
}

/// The crate's transforms in the standard pipeline order, ready to drive
/// data-driven pass managers. `Interchange` defaults to level 0 and
/// `Coalesce`/`StrengthReduce` to their default options; drivers with
/// configuration build their own list.
pub fn standard_transforms() -> Vec<Box<dyn Transform>> {
    vec![
        Box::new(Normalize),
        Box::new(Perfection),
        Box::new(Interchange { level: 0 }),
        Box::new(Coalesce::default()),
        Box::new(StrengthReduce::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_ir::analysis::nest::extract_nest;
    use lc_ir::interp::{DoallOrder, Interp};
    use lc_ir::parser::parse_program;
    use lc_ir::program::Program;

    fn first_loop(p: &Program) -> (usize, Loop) {
        p.body
            .iter()
            .enumerate()
            .find_map(|(i, s)| match s {
                Stmt::Loop(l) => Some((i, l.clone())),
                _ => None,
            })
            .unwrap()
    }

    fn apply_spliced(p: &Program, t: &dyn Transform) -> (Program, Rewrite) {
        let (idx, l) = first_loop(p);
        let nest = extract_nest(&l);
        let cx = TransformCx::default();
        t.precheck(&nest, &cx).expect("precheck must pass");
        let rewrite = t.apply(&l, &nest, &cx).unwrap();
        let mut p2 = p.clone();
        p2.body.remove(idx);
        for (off, s) in rewrite.replacement.iter().cloned().enumerate() {
            p2.body.insert(idx + off, s);
        }
        p2.check().expect("rewritten program must be well-formed");
        (p2, rewrite)
    }

    fn assert_equivalent(p: &Program, p2: &Program) {
        let reference = Interp::new().run(p).unwrap();
        for order in [DoallOrder::Forward, DoallOrder::Shuffled(11)] {
            let got = Interp::new().with_order(order).run(p2).unwrap();
            assert_eq!(reference, got, "transform changed program semantics");
        }
    }

    #[test]
    fn names_are_stable_and_distinct() {
        let ts = standard_transforms();
        let names: Vec<&str> = ts.iter().map(|t| t.name()).collect();
        assert_eq!(
            names,
            vec![
                "normalize",
                "perfect",
                "interchange",
                "coalesce",
                "strength-reduce"
            ]
        );
    }

    #[test]
    fn normalize_transform_rewrites_offset_headers() {
        let p = parse_program(
            "
            array A[20];
            doall i = 3..17 step 2 {
                A[i] = i;
            }
            ",
        )
        .unwrap();
        let (p2, rewrite) = apply_spliced(&p, &Normalize);
        assert_eq!(rewrite.rewrites, 1);
        assert_equivalent(&p, &p2);
    }

    #[test]
    fn normalize_transform_is_noop_on_unit_form() {
        let p = parse_program(
            "
            array A[5];
            doall i = 1..5 {
                A[i] = i;
            }
            ",
        )
        .unwrap();
        let (_, rewrite) = apply_spliced(&p, &Normalize);
        assert_eq!(rewrite.rewrites, 0);
    }

    #[test]
    fn normalize_precheck_rejects_symbolic_bounds() {
        let p = parse_program(
            "
            array A[10];
            n = 10;
            doall i = 2..n {
                A[i] = i;
            }
            ",
        )
        .unwrap();
        let (_, l) = first_loop(&p);
        let nest = extract_nest(&l);
        let err = Normalize
            .precheck(&nest, &TransformCx::default())
            .unwrap_err();
        assert!(err.is_symbolic(), "expected a symbolic skip, got {err}");
    }

    #[test]
    fn coalesce_transform_matches_direct_entry_point() {
        let p = parse_program(
            "
            array A[4][6];
            doall i = 1..4 {
                doall j = 1..6 {
                    A[i][j] = i * 10 + j;
                }
            }
            ",
        )
        .unwrap();
        let (p2, rewrite) = apply_spliced(&p, &Coalesce::default());
        assert_equivalent(&p, &p2);
        let info = rewrite.info.expect("coalescing reports info");
        assert_eq!(info.dims, vec![4, 6]);
        assert_eq!(rewrite.rewrites, 2);

        let (_, l) = first_loop(&p);
        let direct = crate::coalesce::coalesce_loop(&l, &CoalesceOptions::default()).unwrap();
        assert_eq!(direct.stmts(), rewrite.replacement);
    }

    #[test]
    fn coalesce_precheck_reports_typed_reason_without_rewriting() {
        let p = parse_program(
            "
            array A[8];
            s = 0;
            doall i = 1..8 {
                s = s + A[i];
            }
            ",
        )
        .unwrap();
        let (_, l) = first_loop(&p);
        let nest = extract_nest(&l);
        let err = Coalesce::default()
            .precheck(&nest, &TransformCx::default())
            .unwrap_err();
        assert!(matches!(err, SkipReason::ScalarReduction { .. }), "{err}");
    }

    #[test]
    fn interchange_transform_swaps_levels() {
        // Outer level carries a dependence, inner is parallel: after the
        // swap the parallel loop is outermost.
        let p = parse_program(
            "
            array A[8][8];
            for i = 1..8 {
                for j = 1..8 {
                    A[i][j] = A[i][j] + i + j;
                }
            }
            ",
        )
        .unwrap();
        let (p2, rewrite) = apply_spliced(&p, &Interchange { level: 0 });
        assert_eq!(rewrite.rewrites, 1);
        assert_equivalent(&p, &p2);
    }

    #[test]
    fn perfection_transform_sinks_prologue() {
        let p = parse_program(
            "
            array A[6][5];
            array R[6];
            doall i = 1..6 {
                R[i] = i;
                doall j = 1..5 {
                    A[i][j] = i + j;
                }
            }
            ",
        )
        .unwrap();
        let (p2, rewrite) = apply_spliced(&p, &Perfection);
        assert_eq!(rewrite.rewrites, 1);
        assert_equivalent(&p, &p2);
    }

    #[test]
    fn strength_reduce_transform_hoists_shared_divisions() {
        // A body sharing ceildiv(j, 6) across two statements.
        let p = parse_program(
            "
            array A[24];
            array B[24];
            doall j = 1..24 {
                A[j] = ceildiv(j, 6) + 1;
                B[j] = ceildiv(j, 6) * 2;
            }
            ",
        )
        .unwrap();
        let (p2, rewrite) = apply_spliced(&p, &StrengthReduce::default());
        assert_eq!(rewrite.rewrites, 1, "one shared division hoisted");
        assert_equivalent(&p, &p2);
    }

    #[test]
    fn injected_deps_are_honored() {
        use lc_ir::analysis::depend::analyze_nest;
        let p = parse_program(
            "
            array A[4][4];
            for i = 1..4 {
                for j = 1..4 {
                    A[i][j] = i * j;
                }
            }
            ",
        )
        .unwrap();
        let (_, l) = first_loop(&p);
        let nest = extract_nest(&l);
        let deps = analyze_nest(&nest).unwrap();
        let cx = TransformCx { deps: Some(&deps) };
        Coalesce::default().precheck(&nest, &cx).expect("legal");
        let rewrite = Coalesce::default().apply(&l, &nest, &cx).unwrap();
        assert_eq!(rewrite.rewrites, 2);
    }
}
