//! Strength reduction of index-recovery code: common-subexpression
//! extraction over the emitted division terms.
//!
//! The paper observes that adjacent recovery formulas share their ceiling
//! terms — `i_k` needs `⌈j/P_k⌉` and `⌈j/P_{k+1}⌉`, and `i_{k+1}` needs
//! `⌈j/P_{k+1}⌉` again. Hoisting each repeated division into a temporary
//! roughly halves the per-iteration division count for deep nests.
//!
//! The extraction machinery itself now lives in the shared
//! recovery-expression builder ([`lc_ir::ExprBuilder`]); this module is
//! the reporting wrapper the coalescer and the bench tables call.

use lc_ir::build::{ExprBuilder, RecoveryCost};
use lc_ir::stmt::Stmt;

/// What a [`cse_recovery`] run achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CseReport {
    /// Number of temporaries introduced.
    pub hoisted: usize,
    /// Total abstract op cost of the statements before.
    pub cost_before: u64,
    /// Total abstract op cost after (including the temporaries).
    pub cost_after: u64,
}

/// Hoist repeated division subexpressions out of a straight-line block of
/// scalar assignments (the shape [`crate::recovery::recovery_stmts`]
/// emits). Returns the rewritten statements — temporaries first — and a
/// savings report. Statements other than scalar assignments are passed
/// through untouched (their expressions still participate in counting).
pub fn cse_recovery(stmts: &[Stmt], temp_prefix: &str) -> (Vec<Stmt>, CseReport) {
    let mut builder = ExprBuilder::from_stmts(stmts.to_vec());
    let cost_before = builder.cost().units();
    let hoisted = builder.intern_shared_divisions(temp_prefix);
    let out = builder.into_stmts();
    let report = CseReport {
        hoisted,
        cost_before,
        cost_after: RecoveryCost::of_stmts(&out).units(),
    };
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::{recovery_stmts, RecoveryScheme};
    use lc_ir::expr::Expr;
    use lc_ir::interp::Interp;
    use lc_ir::program::Program;
    use lc_ir::stmt::Loop;
    use lc_ir::symbol::Symbol;

    fn recovery_block(scheme: RecoveryScheme, dims: &[u64]) -> Vec<Stmt> {
        let j = Symbol::new("j");
        let vars: Vec<Symbol> = (0..dims.len())
            .map(|k| Symbol::new(format!("i{k}")))
            .collect();
        recovery_stmts(scheme, &j, &vars, dims)
    }

    #[test]
    fn cse_reduces_ceiling_recovery_cost_for_deep_nests() {
        let dims = [4u64, 5, 6, 7];
        let block = recovery_block(RecoveryScheme::Ceiling, &dims);
        let (opt, report) = cse_recovery(&block, "t");
        assert!(report.hoisted >= 1, "{report:?}");
        assert!(
            report.cost_after < report.cost_before,
            "no savings: {report:?}"
        );
        assert!(opt.len() > block.len());
    }

    #[test]
    fn cse_preserves_semantics() {
        for scheme in [RecoveryScheme::Ceiling, RecoveryScheme::DivMod] {
            let dims = [3u64, 4, 5];
            let block = recovery_block(scheme, &dims);
            let (opt, _) = cse_recovery(&block, "t");

            // Evaluate both blocks for every j and compare the recovered
            // indices via the interpreter.
            let n: u64 = dims.iter().product();
            let finish = |body: Vec<Stmt>| {
                let mut b = body;
                b.push(Stmt::store(
                    "OUT",
                    vec![Expr::var("j")],
                    (Expr::var("i0") * Expr::lit(100) + Expr::var("i1") * Expr::lit(10))
                        + Expr::var("i2"),
                ));
                Program::new()
                    .with_array("OUT", vec![n as usize])
                    .with_stmt(Stmt::Loop(Loop::doall("j", n as i64, b)))
            };
            let a = Interp::new().run(&finish(block.clone())).unwrap();
            let b = Interp::new().run(&finish(opt.clone())).unwrap();
            assert_eq!(a, b, "CSE changed results for {scheme:?}");
        }
    }

    #[test]
    fn no_duplicates_means_no_hoisting() {
        let stmts = vec![Stmt::assign("x", Expr::var("a").floor_div(Expr::lit(3)))];
        let (out, report) = cse_recovery(&stmts, "t");
        assert_eq!(report.hoisted, 0);
        assert_eq!(out, stmts);
        assert_eq!(report.cost_before, report.cost_after);
    }

    #[test]
    fn shared_division_is_hoisted_once() {
        // x = a/3 + a/3  → t0 = a/3; x = t0 + t0
        let d = Expr::var("a").floor_div(Expr::lit(3));
        let stmts = vec![Stmt::assign("x", d.clone() + d)];
        let (out, report) = cse_recovery(&stmts, "t");
        assert_eq!(report.hoisted, 1);
        assert_eq!(out.len(), 2);
        match &out[0] {
            Stmt::AssignScalar { var, .. } => assert_eq!(var.as_str(), "t0"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn temporaries_precede_uses_and_respect_dependencies() {
        // Nested sharing: (a/3)/5 appears twice and contains a/3 which
        // appears (after hoisting) inside the temp — ordering must put the
        // inner division first.
        let inner = Expr::var("a").floor_div(Expr::lit(3));
        let outer = inner.clone().floor_div(Expr::lit(5));
        let stmts = vec![
            Stmt::assign("x", outer.clone() + inner.clone()),
            Stmt::assign("y", outer + inner),
        ];
        let (out, report) = cse_recovery(&stmts, "t");
        assert!(report.hoisted >= 2, "{report:?}");
        // Execute to prove ordering correctness.
        let mut body = vec![Stmt::assign("a", Expr::lit(47))];
        body.extend(out);
        body.push(Stmt::store("OUT", vec![Expr::lit(1)], Expr::var("x")));
        body.push(Stmt::store("OUT", vec![Expr::lit(2)], Expr::var("y")));
        let prog = Program::new()
            .with_array("OUT", vec![2])
            .with_stmt_all(body);
        let store = Interp::new().run(&prog).unwrap();
        let expect = (47 / 3) / 5 + 47 / 3;
        assert_eq!(store.get("OUT", &[1]).unwrap(), expect);
        assert_eq!(store.get("OUT", &[2]).unwrap(), expect);
    }
}
