//! Strength reduction of index-recovery code: common-subexpression
//! extraction over the emitted division terms.
//!
//! The paper observes that adjacent recovery formulas share their ceiling
//! terms — `i_k` needs `⌈j/P_k⌉` and `⌈j/P_{k+1}⌉`, and `i_{k+1}` needs
//! `⌈j/P_{k+1}⌉` again. Hoisting each repeated division into a temporary
//! roughly halves the per-iteration division count for deep nests. This
//! pass performs that extraction generically: any division-bearing
//! subexpression (`/`, `%`, `ceildiv`) occurring at least twice across the
//! statements is hoisted, most profitable first.

use std::collections::HashMap;

use lc_ir::expr::{BinOp, Expr};
use lc_ir::stmt::Stmt;
use lc_ir::symbol::Symbol;

/// What a [`cse_recovery`] run achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CseReport {
    /// Number of temporaries introduced.
    pub hoisted: usize,
    /// Total abstract op cost of the statements before.
    pub cost_before: u64,
    /// Total abstract op cost after (including the temporaries).
    pub cost_after: u64,
}

/// Hoist repeated division subexpressions out of a straight-line block of
/// scalar assignments (the shape [`crate::recovery::recovery_stmts`]
/// emits). Returns the rewritten statements — temporaries first — and a
/// savings report. Statements other than scalar assignments are passed
/// through untouched (their expressions still participate in counting).
pub fn cse_recovery(stmts: &[Stmt], temp_prefix: &str) -> (Vec<Stmt>, CseReport) {
    let cost = |ss: &[Stmt]| -> u64 {
        ss.iter()
            .map(|s| match s {
                Stmt::AssignScalar { value, .. } => value.op_cost() + 1,
                Stmt::AssignArray { target, value } => {
                    target.indices.iter().map(Expr::op_cost).sum::<u64>() + value.op_cost() + 1
                }
                _ => 0,
            })
            .sum()
    };
    let cost_before = cost(stmts);

    let mut temps: Vec<Stmt> = Vec::new();
    let mut work: Vec<Stmt> = stmts.to_vec();
    let mut hoisted = 0usize;

    loop {
        // Count division-bearing subexpressions across all current values
        // (including already-hoisted temps, enabling nested sharing).
        let mut counts: HashMap<Expr, usize> = HashMap::new();
        let mut scan = |e: &Expr| collect_divisions(e, &mut counts);
        for s in temps.iter().chain(work.iter()) {
            match s {
                Stmt::AssignScalar { value, .. } => scan(value),
                Stmt::AssignArray { target, value } => {
                    for ix in &target.indices {
                        scan(ix);
                    }
                    scan(value);
                }
                _ => {}
            }
        }
        // Most profitable candidate: highest (count-1) * cost; ties broken
        // toward smaller expressions so inner divisions hoist first.
        let best = counts
            .into_iter()
            .filter(|(_, c)| *c >= 2)
            .max_by_key(|(e, c)| {
                (
                    (*c as u64 - 1) * e.op_cost(),
                    std::cmp::Reverse(e.op_cost()),
                )
            });
        let Some((pat, _)) = best else { break };

        let temp = Symbol::new(format!("{temp_prefix}{hoisted}"));
        let rep = Expr::Var(temp.clone());
        for s in temps.iter_mut().chain(work.iter_mut()) {
            rewrite_stmt(s, &pat, &rep);
        }
        temps.push(Stmt::AssignScalar {
            var: temp,
            value: pat,
        });
        hoisted += 1;
    }

    // Temporaries must precede their uses; they were appended in hoist
    // order, but a later temp can be *used by* an earlier one (we rewrote
    // earlier temps too). Order by dependency: a temp that mentions another
    // temp must come after it. Hoisting order guarantees acyclicity;
    // repeatedly emit temps whose operands are all available.
    let ordered = order_temps(temps);

    let mut out = ordered;
    out.extend(work);
    let report = CseReport {
        hoisted,
        cost_before,
        cost_after: cost(&out),
    };
    (out, report)
}

fn order_temps(temps: Vec<Stmt>) -> Vec<Stmt> {
    let names: Vec<Symbol> = temps
        .iter()
        .map(|s| match s {
            Stmt::AssignScalar { var, .. } => var.clone(),
            _ => unreachable!("temps are scalar assigns"),
        })
        .collect();
    let mut emitted = vec![false; temps.len()];
    let mut out = Vec::with_capacity(temps.len());
    while out.len() < temps.len() {
        let mut progressed = false;
        for (i, t) in temps.iter().enumerate() {
            if emitted[i] {
                continue;
            }
            let Stmt::AssignScalar { value, .. } = t else {
                unreachable!()
            };
            let mut vars = Vec::new();
            value.variables(&mut vars);
            let ready = vars.iter().all(|v| {
                names
                    .iter()
                    .position(|n| n == v)
                    .map(|j| emitted[j])
                    .unwrap_or(true)
            });
            if ready {
                out.push(t.clone());
                emitted[i] = true;
                progressed = true;
            }
        }
        assert!(progressed, "cyclic temp dependencies cannot occur");
    }
    out
}

fn collect_divisions(e: &Expr, counts: &mut HashMap<Expr, usize>) {
    match e {
        Expr::Const(_) | Expr::Var(_) => {}
        Expr::Read(r) => {
            for ix in &r.indices {
                collect_divisions(ix, counts);
            }
        }
        Expr::Unary(_, a) => collect_divisions(a, counts),
        Expr::Binary(op, a, b) => {
            if matches!(op, BinOp::Div | BinOp::Mod | BinOp::CeilDiv) {
                *counts.entry(e.clone()).or_insert(0) += 1;
            }
            collect_divisions(a, counts);
            collect_divisions(b, counts);
        }
    }
}

fn rewrite_stmt(s: &mut Stmt, pat: &Expr, rep: &Expr) {
    match s {
        Stmt::AssignScalar { value, .. } => *value = replace(value, pat, rep),
        Stmt::AssignArray { target, value } => {
            for ix in &mut target.indices {
                *ix = replace(ix, pat, rep);
            }
            *value = replace(value, pat, rep);
        }
        _ => {}
    }
}

/// Replace every occurrence of the subtree `pat` in `e` with `rep`.
fn replace(e: &Expr, pat: &Expr, rep: &Expr) -> Expr {
    if e == pat {
        return rep.clone();
    }
    match e {
        Expr::Const(_) | Expr::Var(_) => e.clone(),
        Expr::Read(r) => Expr::Read(lc_ir::expr::ArrayRef {
            array: r.array.clone(),
            indices: r.indices.iter().map(|ix| replace(ix, pat, rep)).collect(),
        }),
        Expr::Unary(op, a) => Expr::Unary(*op, Box::new(replace(a, pat, rep))),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(replace(a, pat, rep)),
            Box::new(replace(b, pat, rep)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::{recovery_stmts, RecoveryScheme};
    use lc_ir::interp::Interp;
    use lc_ir::program::Program;
    use lc_ir::stmt::Loop;

    fn recovery_block(scheme: RecoveryScheme, dims: &[u64]) -> Vec<Stmt> {
        let j = Symbol::new("j");
        let vars: Vec<Symbol> = (0..dims.len())
            .map(|k| Symbol::new(format!("i{k}")))
            .collect();
        recovery_stmts(scheme, &j, &vars, dims)
    }

    #[test]
    fn cse_reduces_ceiling_recovery_cost_for_deep_nests() {
        let dims = [4u64, 5, 6, 7];
        let block = recovery_block(RecoveryScheme::Ceiling, &dims);
        let (opt, report) = cse_recovery(&block, "t");
        assert!(report.hoisted >= 1, "{report:?}");
        assert!(
            report.cost_after < report.cost_before,
            "no savings: {report:?}"
        );
        assert!(opt.len() > block.len());
    }

    #[test]
    fn cse_preserves_semantics() {
        for scheme in [RecoveryScheme::Ceiling, RecoveryScheme::DivMod] {
            let dims = [3u64, 4, 5];
            let block = recovery_block(scheme, &dims);
            let (opt, _) = cse_recovery(&block, "t");

            // Evaluate both blocks for every j and compare the recovered
            // indices via the interpreter.
            let n: u64 = dims.iter().product();
            let finish = |body: Vec<Stmt>| {
                let mut b = body;
                b.push(Stmt::store(
                    "OUT",
                    vec![Expr::var("j")],
                    (Expr::var("i0") * Expr::lit(100) + Expr::var("i1") * Expr::lit(10))
                        + Expr::var("i2"),
                ));
                Program::new()
                    .with_array("OUT", vec![n as usize])
                    .with_stmt(Stmt::Loop(Loop::doall("j", n as i64, b)))
            };
            let a = Interp::new().run(&finish(block.clone())).unwrap();
            let b = Interp::new().run(&finish(opt.clone())).unwrap();
            assert_eq!(a, b, "CSE changed results for {scheme:?}");
        }
    }

    #[test]
    fn no_duplicates_means_no_hoisting() {
        let stmts = vec![Stmt::assign("x", Expr::var("a").floor_div(Expr::lit(3)))];
        let (out, report) = cse_recovery(&stmts, "t");
        assert_eq!(report.hoisted, 0);
        assert_eq!(out, stmts);
        assert_eq!(report.cost_before, report.cost_after);
    }

    #[test]
    fn shared_division_is_hoisted_once() {
        // x = a/3 + a/3  → t0 = a/3; x = t0 + t0
        let d = Expr::var("a").floor_div(Expr::lit(3));
        let stmts = vec![Stmt::assign("x", d.clone() + d)];
        let (out, report) = cse_recovery(&stmts, "t");
        assert_eq!(report.hoisted, 1);
        assert_eq!(out.len(), 2);
        match &out[0] {
            Stmt::AssignScalar { var, .. } => assert_eq!(var.as_str(), "t0"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn temporaries_precede_uses_and_respect_dependencies() {
        // Nested sharing: (a/3)/5 appears twice and contains a/3 which
        // appears (after hoisting) inside the temp — ordering must put the
        // inner division first.
        let inner = Expr::var("a").floor_div(Expr::lit(3));
        let outer = inner.clone().floor_div(Expr::lit(5));
        let stmts = vec![
            Stmt::assign("x", outer.clone() + inner.clone()),
            Stmt::assign("y", outer + inner),
        ];
        let (out, report) = cse_recovery(&stmts, "t");
        assert!(report.hoisted >= 2, "{report:?}");
        // Execute to prove ordering correctness.
        let mut body = vec![Stmt::assign("a", Expr::lit(47))];
        body.extend(out);
        body.push(Stmt::store("OUT", vec![Expr::lit(1)], Expr::var("x")));
        body.push(Stmt::store("OUT", vec![Expr::lit(2)], Expr::var("y")));
        let prog = Program::new()
            .with_array("OUT", vec![2])
            .with_stmt_all(body);
        let store = Interp::new().run(&prog).unwrap();
        let expect = (47 / 3) / 5 + 47 / 3;
        assert_eq!(store.get("OUT", &[1]).unwrap(), expect);
        assert_eq!(store.get("OUT", &[2]).unwrap(), expect);
    }
}
