//! Nest perfection: sinking pre/post statements into the inner loop under
//! first/last-iteration guards.
//!
//! Coalescing requires a *perfect* nest. Real code often has prologue or
//! epilogue statements between the loop headers:
//!
//! ```text
//! doall i = 1..N {
//!     P;                       // prologue
//!     for j = 1..M { BODY }
//!     E;                       // epilogue
//! }
//! ```
//!
//! Perfection rewrites this to
//!
//! ```text
//! doall i = 1..N {
//!     for j = 1..M {
//!         if j == 1 { P }
//!         BODY
//!         if j == M { E }
//!     }
//! }
//! ```
//!
//! which is exactly how OpenMP implementations handle `collapse` on
//! near-perfect nests. Legality: if the inner loop is serial the guards
//! fire first/last and order is preserved, so the rewrite is always
//! legal (for non-empty inner loops). If the inner loop is a `doall`,
//! iteration order is unspecified, so the guarded statements must not
//! conflict with the other iterations' work — verified by re-running the
//! dependence test on the rewritten nest.

use lc_ir::analysis::depend::analyze_nest;
use lc_ir::analysis::nest::extract_nest;
use lc_ir::expr::{CmpOp, Cond, Expr};
use lc_ir::stmt::{Loop, Stmt};
use lc_ir::{Error, Result, SkipReason};

/// Sink prologue/epilogue statements around the unique inner loop of `l`
/// into that loop under `j == first` / `j == last` guards, producing a
/// perfect 2-level segment. Deeper imperfection is handled by applying
/// the pass repeatedly (see [`perfect_recursively`]).
pub fn perfect_one_level(l: &Loop) -> Result<Loop> {
    let inner_positions: Vec<usize> = l
        .body
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s, Stmt::Loop(_)))
        .map(|(i, _)| i)
        .collect();
    if inner_positions.len() != 1 {
        return Err(Error::Unsupported(SkipReason::ImperfectNest {
            found: inner_positions.len(),
        }));
    }
    let pos = inner_positions[0];
    if l.body.len() == 1 {
        return Ok(l.clone()); // already perfect
    }

    let Stmt::Loop(inner) = &l.body[pos] else {
        unreachable!()
    };
    // The guards compare against the inner bounds; to keep them exact the
    // inner loop must have constant bounds and positive unit step (run
    // normalize first for the general case).
    let (Some(lo), Some(hi), Some(1)) = (
        inner.lower.as_const(),
        inner.upper.as_const(),
        inner.step.as_const(),
    ) else {
        return Err(Error::unsupported(
            "perfection requires a normalized (constant-bound, unit-step) inner loop",
        ));
    };
    if hi < lo {
        return Err(Error::unsupported(
            "cannot sink statements into a zero-trip inner loop",
        ));
    }

    let prologue: Vec<Stmt> = l.body[..pos].to_vec();
    let epilogue: Vec<Stmt> = l.body[pos + 1..].to_vec();

    // Prologue/epilogue must not use or redefine the inner loop variable.
    for s in prologue.iter().chain(&epilogue) {
        let mut vars = Vec::new();
        collect_stmt_vars(s, &mut vars);
        if vars.contains(&inner.var) {
            return Err(Error::unsupported(format!(
                "statement outside the inner loop mentions its index `{}`",
                inner.var
            )));
        }
    }

    let jv = Expr::Var(inner.var.clone());
    let mut new_body = Vec::with_capacity(inner.body.len() + 2);
    if !prologue.is_empty() {
        new_body.push(Stmt::If {
            cond: Cond::cmp(CmpOp::Eq, jv.clone(), Expr::lit(lo)),
            then_body: prologue,
            else_body: vec![],
        });
    }
    new_body.extend(inner.body.clone());
    if !epilogue.is_empty() {
        new_body.push(Stmt::If {
            cond: Cond::cmp(CmpOp::Eq, jv, Expr::lit(hi)),
            then_body: epilogue,
            else_body: vec![],
        });
    }

    let result = Loop {
        var: l.var.clone(),
        lower: l.lower.clone(),
        upper: l.upper.clone(),
        step: l.step.clone(),
        kind: l.kind,
        body: vec![Stmt::Loop(Loop {
            var: inner.var.clone(),
            lower: inner.lower.clone(),
            upper: inner.upper.clone(),
            step: inner.step.clone(),
            kind: inner.kind,
            body: new_body,
        })],
    };

    // For a doall inner loop the guards run in arbitrary order relative
    // to the other iterations: a sunk statement must not conflict with
    // any *other* inner iteration's work. The generic dependence test is
    // guard-blind (it would see the sunk statement as running in every
    // iteration), so exempt self-pairs of one guard — the guard pins the
    // inner index to a single value, so two instances at different inner
    // indices cannot both execute — and reject every other carried-at-j
    // dependence that touches a guard statement.
    if inner.kind.is_doall() {
        let Stmt::Loop(new_inner) = &result.body[0] else {
            unreachable!()
        };
        let guard_idxs: Vec<usize> = new_inner
            .body
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Stmt::If { .. }))
            .filter(|(i, _)| *i == 0 || *i == new_inner.body.len() - 1)
            .map(|(i, _)| i)
            .collect();
        let nest = extract_nest(&result);
        let deps = analyze_nest(&nest)?;
        let inner_level = nest.depth() - 1;
        for d in &deps.deps {
            if !d.carried_levels().contains(&inner_level) {
                continue;
            }
            let src_guard = guard_idxs.contains(&d.src_stmt);
            let dst_guard = guard_idxs.contains(&d.dst_stmt);
            if !src_guard && !dst_guard {
                continue; // pre-existing body dependence, not ours
            }
            if src_guard && dst_guard && d.src_stmt == d.dst_stmt {
                continue; // one guard against itself: j is pinned
            }
            return Err(Error::unsupported(format!(
                "sinking statements into doall `{}` would create a \
                 carried dependence on `{}`",
                inner.var, d.array
            )));
        }
    }
    Ok(result)
}

/// Apply [`perfect_one_level`] at every level until the nest is perfect
/// (or a level cannot be perfected, which is an error).
pub fn perfect_recursively(l: &Loop) -> Result<Loop> {
    let mut current = perfect_one_level(l)?;
    if let [Stmt::Loop(inner)] = current.body.as_slice() {
        if inner.body.iter().any(|s| matches!(s, Stmt::Loop(_))) && inner.body.len() > 1 {
            let fixed = perfect_recursively(inner)?;
            current.body = vec![Stmt::Loop(fixed)];
        } else if let [Stmt::Loop(_)] = inner.body.as_slice() {
            let fixed = perfect_recursively(inner)?;
            current.body = vec![Stmt::Loop(fixed)];
        }
    }
    Ok(current)
}

fn collect_stmt_vars(s: &Stmt, out: &mut Vec<lc_ir::Symbol>) {
    match s {
        Stmt::AssignScalar { var, value } => {
            out.push(var.clone());
            value.variables(out);
        }
        Stmt::AssignArray { target, value } => {
            for ix in &target.indices {
                ix.variables(out);
            }
            value.variables(out);
        }
        Stmt::Loop(l) => {
            l.lower.variables(out);
            l.upper.variables(out);
            l.step.variables(out);
            for inner in &l.body {
                collect_stmt_vars(inner, out);
            }
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            cond.variables(out);
            for inner in then_body.iter().chain(else_body) {
                collect_stmt_vars(inner, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_ir::analysis::nest::extract_nest;
    use lc_ir::interp::{DoallOrder, Interp};
    use lc_ir::parser::parse_program;
    use lc_ir::program::Program;

    fn loop_of(p: &Program) -> (usize, Loop) {
        p.body
            .iter()
            .enumerate()
            .find_map(|(i, s)| match s {
                Stmt::Loop(l) => Some((i, l.clone())),
                _ => None,
            })
            .unwrap()
    }

    fn check_perfect(src: &str) -> Loop {
        let p = parse_program(src).unwrap();
        let (idx, l) = loop_of(&p);
        let fixed = perfect_one_level(&l).unwrap();
        assert!(
            extract_nest(&fixed).depth() >= 2,
            "nest not perfected:\n{src}"
        );
        let mut p2 = p.clone();
        p2.body[idx] = Stmt::Loop(fixed.clone());
        for order in [DoallOrder::Forward, DoallOrder::Shuffled(5)] {
            let a = Interp::new().run(&p).unwrap();
            let b = Interp::new().with_order(order).run(&p2).unwrap();
            assert_eq!(a, b, "perfection changed semantics:\n{src}");
        }
        fixed
    }

    #[test]
    fn prologue_sinks_under_first_guard() {
        let fixed = check_perfect(
            "
            array D[6];
            array M[6][7];
            for i = 1..6 {
                D[i] = i * i;
                for j = 1..7 {
                    M[i][j] = i + j;
                }
            }
            ",
        );
        // Inner body: guard + original statement.
        let nest = extract_nest(&fixed);
        assert_eq!(nest.depth(), 2);
        assert_eq!(nest.body.len(), 2);
        assert!(matches!(nest.body[0], Stmt::If { .. }));
    }

    #[test]
    fn epilogue_sinks_under_last_guard() {
        check_perfect(
            "
            array S[6];
            array M[6][7];
            for i = 1..6 {
                for j = 1..7 {
                    M[i][j] = i * 10 + j;
                }
                S[i] = M[i][7];
            }
            ",
        );
    }

    #[test]
    fn both_prologue_and_epilogue() {
        check_perfect(
            "
            array P[4];
            array Q[4];
            array M[4][5];
            for i = 1..4 {
                P[i] = i;
                for j = 1..5 {
                    M[i][j] = P[i] + j;
                }
                Q[i] = M[i][5] * 2;
            }
            ",
        );
    }

    #[test]
    fn perfected_nest_becomes_coalescible_when_serial_inner() {
        // After perfection the outer doall + serial inner is a perfect
        // nest; the outer level alone can be coalesced (trivially) or the
        // serial inner kept. Key check: perfection composes with
        // extraction.
        let p = parse_program(
            "
            array D[6];
            array M[6][7];
            doall i = 1..6 {
                D[i] = i * i;
                for j = 1..7 {
                    M[i][j] = D[i] + j;
                }
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        let fixed = perfect_one_level(&l).unwrap();
        assert_eq!(extract_nest(&fixed).depth(), 2);
    }

    #[test]
    fn doall_inner_with_independent_prologue_is_accepted() {
        // Prologue writes D[i]; inner iterations read only M — no
        // conflict even under arbitrary inner order... note the guard
        // runs within some iteration, but D[i] is not read by the nest.
        check_perfect(
            "
            array D[6];
            array M[6][7];
            doall i = 1..6 {
                D[i] = i * i;
                doall j = 1..7 {
                    M[i][j] = i + j;
                }
            }
            ",
        );
    }

    #[test]
    fn doall_inner_with_conflicting_prologue_is_rejected() {
        // Prologue writes D[i] which every inner iteration reads: under
        // an arbitrary doall order some iterations would read D[i] before
        // the j==1 guard writes it.
        let p = parse_program(
            "
            array D[6];
            array M[6][7];
            doall i = 1..6 {
                D[i] = i * i;
                doall j = 1..7 {
                    M[i][j] = D[i] + j;
                }
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        let err = perfect_one_level(&l).unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)), "{err}");
    }

    #[test]
    fn statement_using_inner_variable_is_rejected() {
        let p = parse_program(
            "
            array D[6];
            array M[6][7];
            for i = 1..6 {
                j = 3;
                for j = 1..7 {
                    M[i][j] = i + j;
                }
                D[i] = j;
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        assert!(perfect_one_level(&l).is_err());
    }

    #[test]
    fn multiple_inner_loops_are_rejected() {
        let p = parse_program(
            "
            array A[4][4];
            array B[4][4];
            for i = 1..4 {
                for j = 1..4 {
                    A[i][j] = 1;
                }
                for j = 1..4 {
                    B[i][j] = 2;
                }
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        let err = perfect_one_level(&l).unwrap_err();
        match err {
            Error::Unsupported(m) => {
                assert!(matches!(m, SkipReason::ImperfectNest { .. }), "{m}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn already_perfect_is_identity() {
        let p = parse_program(
            "
            array A[3][3];
            for i = 1..3 {
                for j = 1..3 {
                    A[i][j] = 1;
                }
            }
            ",
        )
        .unwrap();
        let (_, l) = loop_of(&p);
        assert_eq!(perfect_one_level(&l).unwrap(), l);
    }

    #[test]
    fn perfect_then_distribute_alternative() {
        // The same imperfect nest can be handled by distribution instead;
        // both routes must agree with the original semantics. (Cross-check
        // of the two enabling transformations.)
        use crate::distribute::distribute;
        let src = "
            array D[6];
            array M[6][7];
            for i = 1..6 {
                D[i] = i * i;
                for j = 1..7 {
                    M[i][j] = i + j;
                }
            }
            ";
        let p = parse_program(src).unwrap();
        let (idx, l) = loop_of(&p);

        let via_perfect = {
            let mut p2 = p.clone();
            p2.body[idx] = Stmt::Loop(perfect_one_level(&l).unwrap());
            Interp::new().run(&p2).unwrap()
        };
        let via_distribute = {
            let loops = distribute(&l).unwrap();
            let mut p2 = p.clone();
            p2.body.remove(idx);
            for (off, lp) in loops.into_iter().enumerate() {
                p2.body.insert(idx + off, Stmt::Loop(lp));
            }
            Interp::new().run(&p2).unwrap()
        };
        let original = Interp::new().run(&p).unwrap();
        assert_eq!(original, via_perfect);
        assert_eq!(original, via_distribute);
    }

    #[test]
    fn recursive_perfection_flattens_three_levels() {
        let p = parse_program(
            "
            array D[4];
            array E[4][5];
            array M[4][5][6];
            for i = 1..4 {
                D[i] = i;
                for j = 1..5 {
                    E[i][j] = i + j;
                    for k = 1..6 {
                        M[i][j][k] = i * j * k;
                    }
                }
            }
            ",
        )
        .unwrap();
        let (idx, l) = loop_of(&p);
        let fixed = perfect_recursively(&l).unwrap();
        assert_eq!(extract_nest(&fixed).depth(), 3);
        let mut p2 = p.clone();
        p2.body[idx] = Stmt::Loop(fixed);
        let a = Interp::new().run(&p).unwrap();
        let b = Interp::new().run(&p2).unwrap();
        assert_eq!(a, b);
    }
}
