//! Index recovery: mapping the coalesced index back to the original nest
//! indices.
//!
//! For a normalized nest with trip counts `N_1 … N_m` the coalesced loop
//! runs `j = 1 ..= N` with `N = N_1·…·N_m`, and each original index must be
//! *recovered* from `j`. Three schemes are implemented:
//!
//! * **Ceiling** — the paper's formula, using only ceiling divisions
//!   (the target machines of 1987 had no cheap modulus, and the formula
//!   composes with the `⌈·⌉` expressions already produced by processor
//!   self-scheduling):
//!
//!   `i_k = ⌈j / P_{k+1}⌉ − N_k · ( ⌈j / P_k⌉ − 1 )`,
//!
//!   where `P_k = N_k · N_{k+1} · … · N_m` (so `P_{m+1} = 1`).
//!
//! * **DivMod** — the conventional mapping on the 0-based offset
//!   `q = j − 1`: `i_k = ((q / stride_k) mod N_k) + 1` with
//!   `stride_k = N_{k+1}·…·N_m`.
//!
//! * **Incremental** — an *odometer*: when a processor executes a chunk of
//!   consecutive iterations it advances the index vector with a carry
//!   chain, paying amortized O(1) additions per iteration. (Only valid
//!   within a chunk; the first iteration of a chunk still needs one of
//!   the direct schemes.)
//!
//! The pure math lives in [`lc_space`] (shared with the simulator and the
//! runtime) and is re-exported here; this module adds the *IR side*:
//! emitting the recovery statements a transformed loop body executes, and
//! costing them in abstract instructions.

use lc_ir::build::RecoveryCost;
use lc_ir::expr::Expr;
use lc_ir::stmt::Stmt;
use lc_ir::symbol::Symbol;
use lc_ir::{Error, Result};

pub use lc_space::{linearize, recover_ceiling, recover_divmod, strides, Odometer, OdometerStats};

/// Total iteration count `N = Π dims[k]`, failing on `i64` overflow.
pub fn total_iterations(dims: &[u64]) -> Result<u64> {
    lc_space::total_iterations(dims).ok_or(Error::Overflow)
}

/// Which index-recovery code the transformation emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryScheme {
    /// The paper's ceiling-division formula (default).
    #[default]
    Ceiling,
    /// Conventional floor-division + modulus on the 0-based offset.
    DivMod,
}

impl RecoveryScheme {
    /// Human-readable name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryScheme::Ceiling => "ceiling",
            RecoveryScheme::DivMod => "divmod",
        }
    }
}

/// Emit the recovery assignments `i_k = f_k(j)` as IR statements, one per
/// nest level, for the chosen scheme.
///
/// `j_var` is the coalesced loop's index variable, `vars[k]` the original
/// index variable of level `k`, and `dims[k]` its trip count. Expressions
/// are constant-folded, which erases divisions by stride 1 and — for the
/// outermost level, where `⌈j / P_1⌉` is identically 1 — the whole
/// correction term.
pub fn recovery_stmts(
    scheme: RecoveryScheme,
    j_var: &Symbol,
    vars: &[Symbol],
    dims: &[u64],
) -> Vec<Stmt> {
    let st = strides(dims);
    let j = Expr::Var(j_var.clone());
    let mut out = Vec::with_capacity(vars.len());
    for k in 0..vars.len() {
        let expr = match scheme {
            RecoveryScheme::Ceiling => {
                let inner = Expr::lit(st[k] as i64);
                let first_term = j.clone().ceil_div(inner);
                if k == 0 {
                    // ⌈j / P_1⌉ = 1 for every j in range: the correction
                    // term vanishes at the outermost level.
                    first_term
                } else {
                    let outer = Expr::lit((st[k] * dims[k]) as i64);
                    first_term
                        - Expr::lit(dims[k] as i64) * (j.clone().ceil_div(outer) - Expr::lit(1))
                }
            }
            RecoveryScheme::DivMod => {
                let q = j.clone() - Expr::lit(1);
                let shifted = q.floor_div(Expr::lit(st[k] as i64));
                if k == 0 {
                    // q / stride_0 is already < N_0: no modulus needed.
                    shifted + Expr::lit(1)
                } else {
                    shifted.floor_mod(Expr::lit(dims[k] as i64)) + Expr::lit(1)
                }
            }
        };
        out.push(Stmt::AssignScalar {
            var: vars[k].clone(),
            value: expr.fold(),
        });
    }
    out
}

/// Typed per-iteration cost of the recovery statements a scheme emits
/// for the given trip counts. The weighted scalar view
/// ([`RecoveryCost::units`]) is on the [`lc_ir::expr::BinOp::op_cost`]
/// scale (one extra unit per store); the typed breakdown lets the
/// scheduler and the analytic tables reason about the division count
/// directly, from the same source the rewrite uses.
pub fn per_iteration_cost(scheme: RecoveryScheme, dims: &[u64]) -> RecoveryCost {
    let j = Symbol::new("j");
    let vars: Vec<Symbol> = (0..dims.len())
        .map(|k| Symbol::new(format!("i{k}")))
        .collect();
    RecoveryCost::of_stmts(&recovery_stmts(scheme, &j, &vars, dims))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_ir::arith::ceil_div_unchecked;
    use proptest::prelude::*;

    #[test]
    fn linearize_and_recover_are_inverse_small() {
        let dims = [2u64, 3, 4];
        let n = total_iterations(&dims).unwrap() as i64;
        for j in 1..=n {
            let ix_c = recover_ceiling(j, &dims);
            let ix_d = recover_divmod(j, &dims);
            assert_eq!(ix_c, ix_d, "schemes disagree at j={j}");
            assert_eq!(linearize(&ix_c, &dims), j, "not inverse at j={j}");
            for (k, &ix) in ix_c.iter().enumerate() {
                assert!(ix >= 1 && ix as u64 <= dims[k], "range at j={j}");
            }
        }
    }

    #[test]
    fn recovery_order_is_lexicographic() {
        // Consecutive j values must yield lexicographically consecutive
        // index vectors (the coalesced loop preserves traversal order).
        let dims = [3u64, 2, 5];
        let mut prev = recover_ceiling(1, &dims);
        for j in 2..=30 {
            let cur = recover_ceiling(j, &dims);
            assert!(prev < cur, "order violated: {prev:?} !< {cur:?}");
            prev = cur;
        }
    }

    #[test]
    fn paper_worked_example_two_levels() {
        // For a (N1=4, N2=5) nest: j=1..20; the paper's i1 = ⌈j/5⌉ and
        // i2 = j - 5(⌈j/5⌉ - 1).
        let dims = [4u64, 5];
        for j in 1..=20i64 {
            let ix = recover_ceiling(j, &dims);
            let i1 = ceil_div_unchecked(j, 5);
            let i2 = j - 5 * (ceil_div_unchecked(j, 5) - 1);
            assert_eq!(ix, vec![i1, i2]);
        }
    }

    #[test]
    fn single_level_recovery_is_identity() {
        let dims = [9u64];
        for j in 1..=9 {
            assert_eq!(recover_ceiling(j, &dims), vec![j]);
            assert_eq!(recover_divmod(j, &dims), vec![j]);
        }
    }

    #[test]
    fn odometer_walks_whole_space_in_order() {
        let dims = [2u64, 3, 2];
        let mut odo = Odometer::new(&dims);
        let mut seen = Vec::new();
        loop {
            seen.push(odo.indices().to_vec());
            if !odo.advance() {
                break;
            }
        }
        assert_eq!(seen.len(), 12);
        for (j, ix) in seen.iter().enumerate() {
            assert_eq!(*ix, recover_divmod(j as i64 + 1, &dims));
        }
        assert!(odo.exhausted());
        assert!(!odo.advance());
    }

    #[test]
    fn total_iterations_overflow_is_reported() {
        assert!(total_iterations(&[u64::MAX, 3]).is_err());
        assert_eq!(total_iterations(&[6, 7]).unwrap(), 42);
    }

    #[test]
    fn recovery_stmts_evaluate_correctly() {
        use lc_ir::interp::Interp;
        use lc_ir::program::Program;
        use lc_ir::stmt::Loop;

        let dims = [3u64, 4];
        for scheme in [RecoveryScheme::Ceiling, RecoveryScheme::DivMod] {
            let j = Symbol::new("j");
            let vars = [Symbol::new("i1"), Symbol::new("i2")];
            let mut body = recovery_stmts(scheme, &j, &vars, &dims);
            body.push(Stmt::store(
                "OUT",
                vec![Expr::var("j")],
                Expr::var("i1") * Expr::lit(100) + Expr::var("i2"),
            ));
            let prog = Program::new()
                .with_array("OUT", vec![12])
                .with_stmt(Stmt::Loop(Loop::doall("j", 12, body)));
            let store = Interp::new().run(&prog).unwrap();
            for jv in 1..=12i64 {
                let expect = recover_divmod(jv, &dims);
                assert_eq!(
                    store.get("OUT", &[jv]).unwrap(),
                    expect[0] * 100 + expect[1],
                    "{scheme:?} at j={jv}"
                );
            }
        }
    }

    #[test]
    fn recovery_cost_grows_with_depth() {
        let c2 = per_iteration_cost(RecoveryScheme::Ceiling, &[10, 10]).units();
        let c4 = per_iteration_cost(RecoveryScheme::Ceiling, &[10, 10, 10, 10]).units();
        assert!(c4 > c2);
        let d2 = per_iteration_cost(RecoveryScheme::DivMod, &[10, 10]);
        let d4 = per_iteration_cost(RecoveryScheme::DivMod, &[10, 10, 10, 10]);
        assert!(d4.units() > d2.units());
        assert!(d4.divs > d2.divs, "deeper nests need more divisions");
        assert!(c2 > 0 && d2.units() > 0);
    }

    #[test]
    fn single_level_recovery_is_nearly_free() {
        // i_0 = j for a one-level "nest": the folded statement is a plain
        // copy, costing just the store.
        let c = per_iteration_cost(RecoveryScheme::Ceiling, &[100]);
        assert_eq!(c.units(), 1);
        assert_eq!(
            c,
            RecoveryCost {
                stores: 1,
                ..RecoveryCost::default()
            }
        );
        // (j - 1)/1 + 1 folds to (j - 1) + 1: two adds plus the store.
        assert_eq!(
            per_iteration_cost(RecoveryScheme::DivMod, &[100]).units(),
            3
        );
    }

    proptest! {
        #[test]
        fn prop_schemes_agree_and_invert(
            dims in proptest::collection::vec(1u64..7, 1..5),
            seed in 0u64..10_000,
        ) {
            let n = total_iterations(&dims).unwrap();
            let j = (seed % n) as i64 + 1;
            let a = recover_ceiling(j, &dims);
            let b = recover_divmod(j, &dims);
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(linearize(&a, &dims), j);
        }
    }
}
