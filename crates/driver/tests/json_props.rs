//! Property tests for `lc_driver::json`: print → parse is the identity
//! for every value the driver can emit, including hostile strings
//! (escapes, control characters, astral-plane characters that a UTF-16
//! encoder would split into surrogate pairs) and boundary integers
//! (`i64::MIN`/`i64::MAX`).

use lc_driver::json::{Json, ParseError};
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::sample::select;

/// Characters that stress the printer's escaping and the parser's
/// decoder: quotes, backslashes, every shorthand escape, raw control
/// characters, multi-byte BMP characters, and astral-plane characters.
fn hostile_char() -> impl Strategy<Value = char> {
    select(vec![
        '"',
        '\\',
        '/',
        '\n',
        '\r',
        '\t',
        '\u{8}',
        '\u{c}',
        '\u{0}',
        '\u{1f}',
        ' ',
        'a',
        'Z',
        '0',
        'é',
        'λ',
        '中',
        '\u{FFFD}',
        '\u{FFFF}',
        '😀',
        '🚀',
        '\u{10000}',
        '\u{10FFFF}',
    ])
}

fn hostile_string() -> impl Strategy<Value = String> {
    vec(hostile_char(), 0..12).prop_map(|chars| chars.into_iter().collect())
}

/// Integers biased toward the edges of the `i64` domain.
fn edge_int() -> impl Strategy<Value = i64> {
    prop_oneof![
        Just(i64::MIN),
        Just(i64::MAX),
        Just(i64::MIN + 1),
        Just(i64::MAX - 1),
        Just(0i64),
        Just(-1i64),
        -1_000_000i64..1_000_000,
    ]
}

/// Arbitrary JSON trees built from the hostile leaves.
fn arb_json() -> BoxedStrategy<Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        proptest::bool::ANY.prop_map(Json::Bool),
        edge_int().prop_map(Json::Int),
        hostile_string().prop_map(Json::Str),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            vec(inner.clone(), 0..4).prop_map(Json::Arr),
            vec((hostile_string(), inner), 0..4).prop_map(Json::Obj),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_round_trips(v in arb_json()) {
        let text = v.to_string();
        let back = Json::parse(&text);
        prop_assert_eq!(back.as_ref(), Ok(&v), "text was: {}", text);
    }

    #[test]
    fn integers_round_trip_exactly(n in edge_int()) {
        let text = Json::Int(n).to_string();
        prop_assert_eq!(Json::parse(&text), Ok(Json::Int(n)));
    }

    #[test]
    fn strings_round_trip_through_escaping(s in hostile_string()) {
        let text = Json::Str(s.clone()).to_string();
        // The printed form is itself valid UTF-8 with balanced quotes.
        prop_assert!(text.starts_with('"') && text.ends_with('"'));
        prop_assert_eq!(Json::parse(&text), Ok(Json::Str(s)));
    }

    #[test]
    fn magnitudes_beyond_i64_are_rejected_with_the_typed_error(
        extra_digit in 0u32..10,
        negative in proptest::bool::ANY,
    ) {
        // Append a digit to i64::MAX's decimal text: always out of range.
        let body = format!("{}{}", i64::MAX, extra_digit);
        let text = if negative { format!("-{body}") } else { body };
        match Json::parse(&text) {
            Err(ParseError::IntOutOfRange { literal, at: 0 }) => {
                prop_assert_eq!(literal, text);
            }
            other => prop_assert!(false, "expected IntOutOfRange, got {:?}", other),
        }
    }
}

/// The canonical surrogate-pair cases, exhaustively rather than randomly:
/// every astral char the hostile alphabet contains must survive a trip
/// through explicit `\uXXXX` pair encoding too.
#[test]
fn explicit_surrogate_pair_escapes_decode() {
    for (c, hi, lo) in [
        ('😀', 0xD83Du32, 0xDE00u32),
        ('🚀', 0xD83D, 0xDE80),
        ('\u{10000}', 0xD800, 0xDC00),
        ('\u{10FFFF}', 0xDBFF, 0xDFFF),
    ] {
        let text = format!("\"\\u{hi:04x}\\u{lo:04x}\"");
        assert_eq!(
            Json::parse(&text).unwrap(),
            Json::Str(c.to_string()),
            "pair ({hi:04x}, {lo:04x})"
        );
    }
}

#[test]
fn i64_min_literal_round_trips() {
    let v = Json::Arr(vec![Json::Int(i64::MIN), Json::Int(i64::MAX)]);
    let text = v.to_string();
    assert_eq!(text, "[-9223372036854775808,9223372036854775807]");
    assert_eq!(Json::parse(&text).unwrap(), v);
}
